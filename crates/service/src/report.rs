//! Machine-readable results of one open-loop measurement.
//!
//! The headline quantity is *sojourn time* — queue wait plus service,
//! clocked from the instant the generator stamped the operation into the
//! shard's ingress queue — reported as p50/p99/p999 per shard and in
//! aggregate, together with achieved-vs-offered λ, shed rate, and
//! queue-depth high-water marks. The schema round-trips through the
//! `cbtree-obs` JSONL machinery (`type: "serve_report"`).

use cbtree_btree::{BatchSummary, OpCountersSnapshot};
use cbtree_harness::{latency_json, LevelLive};
use cbtree_obs::{Json, Trace};
use cbtree_queueing::BatchSizeMoments;
use cbtree_sync::HistogramSnapshot;

/// Measured behavior of one shard over the window.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Inclusive lower bound of the shard's key range.
    pub lo: u64,
    /// Inclusive upper bound of the shard's key range.
    pub hi: u64,
    /// Operations that arrived for this shard inside the window.
    pub offered: u64,
    /// Operations shed at admission (bounded queue full).
    pub rejected_full: u64,
    /// Operations shed at dequeue (enqueue-age timeout exceeded).
    pub timed_out: u64,
    /// Operations served to completion.
    pub served: u64,
    /// Deepest the ingress queue ever got.
    pub queue_depth_hwm: usize,
    /// Sojourn (enqueue → completion) histogram of served operations,
    /// nanoseconds.
    pub sojourn: HistogramSnapshot,
    /// Exact mean sojourn of served operations, seconds.
    pub sojourn_mean_s: f64,
    /// Queue ages of timed-out operations at the moment they were shed
    /// — the waiting time of work that never got served.
    pub shed_wait: HistogramSnapshot,
    /// Mean service time (dequeue → completion) of served ops, seconds.
    pub service_mean_s: f64,
    /// Second raw moment `E[X²]` of the service time, seconds² — feeds
    /// the M/G/1 Pollaczek–Khinchine prediction in the overlay.
    pub service_m2_s2: f64,
    /// Mean queue wait (enqueue → drain) of served ops, seconds — the
    /// first term of the sojourn decomposition.
    pub queue_wait_mean_s: f64,
    /// Mean batch wait (share of the batch busy period spent on the
    /// *other* ops of an op's batch) of served ops, seconds. Zero for
    /// singleton service.
    pub batch_wait_mean_s: f64,
    /// Batches executed that carried at least one measured op.
    pub batches: u64,
    /// Sorted-batch descent accounting summed over those batches:
    /// descents actually paid, leaf reuses, right-link hops, and
    /// fallback inserts.
    pub batch: BatchSummary,
    /// Per-batch-size service accumulations `(n_k, ΣS, ΣS²)` — the
    /// inputs to the M/G/c batch-service moment transform. Sizes with
    /// zero observations are omitted.
    pub batch_sizes: Vec<BatchSizeMoments>,
    /// The shard tree's operation counters over the measured window —
    /// latches per op is the direct evidence of amortized descent.
    pub counters: OpCountersSnapshot,
    /// Per-level lock measurements of the shard's tree over the window
    /// (leaves first), same shape as the closed-loop harness.
    pub levels: Vec<LevelLive>,
    /// Keys in the shard's tree at the end of the run.
    pub final_len: usize,
}

impl ShardReport {
    /// Offered arrival rate over the window, ops/s.
    pub fn offered_rate(&self, window_s: f64) -> f64 {
        if window_s > 0.0 {
            self.offered as f64 / window_s
        } else {
            0.0
        }
    }

    /// Achieved completion rate over the window, ops/s.
    pub fn achieved_rate(&self, window_s: f64) -> f64 {
        if window_s > 0.0 {
            self.served as f64 / window_s
        } else {
            0.0
        }
    }

    /// Fraction of offered operations shed (admission + timeout).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.rejected_full + self.timed_out) as f64 / self.offered as f64
        }
    }

    /// JSON object for the `shards` array of a `serve_report`.
    pub fn to_json(&self, window_s: f64) -> Json {
        Json::obj(vec![
            ("shard", self.shard.into()),
            ("lo", self.lo.into()),
            ("hi", self.hi.into()),
            ("offered", self.offered.into()),
            ("rejected_full", self.rejected_full.into()),
            ("timed_out", self.timed_out.into()),
            ("served", self.served.into()),
            ("queue_depth_hwm", self.queue_depth_hwm.into()),
            (
                "offered_rate",
                Json::f64_or_null(self.offered_rate(window_s)),
            ),
            (
                "achieved_rate",
                Json::f64_or_null(self.achieved_rate(window_s)),
            ),
            ("shed_rate", Json::f64_or_null(self.shed_rate())),
            ("sojourn", latency_json(&self.sojourn)),
            ("sojourn_mean_s", Json::f64_or_null(self.sojourn_mean_s)),
            ("shed_wait", latency_json(&self.shed_wait)),
            ("service_mean_s", Json::f64_or_null(self.service_mean_s)),
            ("service_m2_s2", Json::f64_or_null(self.service_m2_s2)),
            (
                "queue_wait_mean_s",
                Json::f64_or_null(self.queue_wait_mean_s),
            ),
            (
                "batch_wait_mean_s",
                Json::f64_or_null(self.batch_wait_mean_s),
            ),
            ("batches", self.batches.into()),
            (
                "batch",
                Json::obj(vec![
                    ("ops", self.batch.ops.into()),
                    ("descents", self.batch.descents.into()),
                    ("leaf_reuses", self.batch.leaf_reuses.into()),
                    ("right_hops", self.batch.right_hops.into()),
                    ("fallback_inserts", self.batch.fallback_inserts.into()),
                ]),
            ),
            (
                "batch_sizes",
                Json::arr(self.batch_sizes.iter().map(|b| {
                    Json::obj(vec![
                        ("size", b.size.into()),
                        ("batches", b.batches.into()),
                        ("service_sum_s", Json::f64_or_null(b.service_sum_s)),
                        ("service_sum_sq_s2", Json::f64_or_null(b.service_sum_sq_s2)),
                    ])
                })),
            ),
            ("counters", self.counters.to_json()),
            (
                "levels",
                Json::arr(self.levels.iter().map(LevelLive::to_json)),
            ),
            ("final_len", self.final_len.into()),
        ])
    }
}

/// Result of one open-loop service-layer measurement.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Configured aggregate offered rate λ, ops/s.
    pub lambda: f64,
    /// Number of shards.
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Most operations a worker drains and executes as one sorted batch
    /// per wakeup (`1` = singleton service).
    pub batch_max: usize,
    /// Open-loop generator threads.
    pub generators: usize,
    /// Length of the measured window, seconds.
    pub measured_time: f64,
    /// Per-shard measurements.
    pub per_shard: Vec<ShardReport>,
    /// Aggregate sojourn histogram (all shards merged).
    pub sojourn: HistogramSnapshot,
    /// Aggregate mean sojourn of served operations, seconds.
    pub sojourn_mean_s: f64,
    /// Events drained at the end of the run (enqueue/dequeue/shed plus
    /// the shards' latch/op events). Empty unless built with `trace`.
    pub trace: Trace,
}

impl ServeReport {
    /// Total operations offered inside the window.
    pub fn offered(&self) -> u64 {
        self.per_shard.iter().map(|s| s.offered).sum()
    }

    /// Total operations served.
    pub fn served(&self) -> u64 {
        self.per_shard.iter().map(|s| s.served).sum()
    }

    /// Total operations shed (admission rejections + timeouts).
    pub fn shed(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.rejected_full + s.timed_out)
            .sum()
    }

    /// Aggregate offered rate, ops/s.
    pub fn offered_rate(&self) -> f64 {
        if self.measured_time > 0.0 {
            self.offered() as f64 / self.measured_time
        } else {
            0.0
        }
    }

    /// Aggregate achieved (completion) rate, ops/s.
    pub fn achieved_rate(&self) -> f64 {
        if self.measured_time > 0.0 {
            self.served() as f64 / self.measured_time
        } else {
            0.0
        }
    }

    /// Aggregate shed fraction.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.shed() as f64 / offered as f64
        }
    }

    /// The `serve_report` JSONL record. Trace events are summarized,
    /// not inlined (the `serve` binary writes them as separate records).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", "serve_report".into()),
            ("lambda", Json::f64_or_null(self.lambda)),
            ("shards", self.shards.into()),
            ("workers_per_shard", self.workers_per_shard.into()),
            ("batch_max", self.batch_max.into()),
            ("generators", self.generators.into()),
            ("measured_time", Json::f64_or_null(self.measured_time)),
            ("offered", self.offered().into()),
            ("served", self.served().into()),
            (
                "rejected_full",
                Json::from(self.per_shard.iter().map(|s| s.rejected_full).sum::<u64>()),
            ),
            (
                "timed_out",
                Json::from(self.per_shard.iter().map(|s| s.timed_out).sum::<u64>()),
            ),
            ("offered_rate", Json::f64_or_null(self.offered_rate())),
            ("achieved_rate", Json::f64_or_null(self.achieved_rate())),
            ("shed_rate", Json::f64_or_null(self.shed_rate())),
            ("sojourn", latency_json(&self.sojourn)),
            ("sojourn_mean_s", Json::f64_or_null(self.sojourn_mean_s)),
            (
                "shards_detail",
                Json::arr(self.per_shard.iter().map(|s| s.to_json(self.measured_time))),
            ),
            ("trace_events", self.trace.events.len().into()),
            ("trace_dropped", self.trace.dropped.into()),
        ])
    }
}
