//! Bounded lock-free ingress rings with admission control.
//!
//! One ring per shard. Generators `try_push` — a full ring *rejects*
//! instead of blocking (open-loop arrivals cannot be paused; shedding at
//! admission is what keeps sojourn times of accepted operations bounded
//! past saturation). Workers block on [`IngressQueue::pop_batch`] and
//! drain up to a configured batch of operations per wakeup; an optional
//! enqueue-age timeout (enforced by the worker at dequeue) sheds
//! operations whose queue wait already exceeds the deadline, so a
//! backlogged shard spends its service capacity on operations that can
//! still meet the SLO instead of on ones that have already blown it.
//!
//! # Ring layout
//!
//! The hot path is a bounded MPMC ring in the style long used by the
//! trace subsystem's per-thread rings: an array of slots, each carrying
//! a *sequence* word plus two data words, with two monotone cursors
//! (`enqueue_pos`, `dequeue_pos`). A slot's sequence tells both sides
//! whose turn it is: producers claim `enqueue_pos` by CAS when
//! `seq == pos`, publish data, then store `seq = pos + 1`; consumers
//! claim `dequeue_pos` when `seq == pos + 1` and recycle the slot with
//! `seq = pos + ring_len`. No mutex is held on either path, so `c`
//! workers and `G` generators never serialize on a queue lock — only on
//! the two cursors' CAS.
//!
//! The queued operation is *packed into the two data words* so the slot
//! can be plain atomics (safe Rust, no `unsafe` data races): word one is
//! the key, word two packs the opcode (2 bits), the measured flag
//! (1 bit), and the enqueue timestamp as nanoseconds since the ring's
//! creation epoch (61 bits — millennia of headroom).
//!
//! # Doorbell
//!
//! Blocking is layered *beside* the ring, not inside it: an idle worker
//! registers as a sleeper and parks on a condvar with a short timeout;
//! producers ring the doorbell only when the sleeper count is nonzero,
//! so at load the notify branch never executes and the ring runs
//! lock-free end to end. The timeout (not correctness-critical — a
//! bounded-latency backstop) covers the unavoidable race between a
//! consumer's "ring is empty" check and its park.

use cbtree_workload::Operation;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One queued operation with its admission timestamp.
#[derive(Debug, Clone, Copy)]
pub struct QueuedOp {
    /// The operation to execute.
    pub op: Operation,
    /// When the generator enqueued it — the sojourn clock starts here.
    pub enqueued: Instant,
    /// Whether it arrived inside the measured window (warmup and
    /// post-window arrivals are executed but not reported).
    pub measured: bool,
}

/// Why an operation was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The bounded queue was full at admission.
    QueueFull,
    /// The operation's queue wait exceeded the enqueue-age timeout.
    Timeout,
}

/// Opcode values packed into the low bits of a slot's meta word.
const OPC_SEARCH: u64 = 0;
const OPC_INSERT: u64 = 1;
const OPC_DELETE: u64 = 2;
/// Bit 2 of the meta word: the `measured` flag.
const META_MEASURED: u64 = 1 << 2;
/// Enqueue nanoseconds live above the opcode + measured bits.
const META_TS_SHIFT: u32 = 3;

/// How long an idle worker parks before re-polling the ring. Purely a
/// lost-wakeup backstop; the doorbell wakes sleepers promptly.
const PARK: Duration = Duration::from_millis(2);

/// One ring slot: a Vyukov-style sequence word plus the packed payload.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    key: AtomicU64,
    meta: AtomicU64,
}

/// A bounded lock-free MPMC ingress ring (the queue is also the *model
/// object* — an explicit λ-arrival FCFS buffer whose depth and overflow
/// behavior the M/G/c overlay predicts).
#[derive(Debug)]
pub struct IngressQueue {
    ring: Box<[Slot]>,
    /// `ring.len() - 1`; the ring length is a power of two.
    mask: u64,
    /// Admission bound — may be below the (power-of-two) ring length.
    capacity: usize,
    enqueue_pos: AtomicU64,
    dequeue_pos: AtomicU64,
    closed: AtomicBool,
    depth_hwm: AtomicUsize,
    /// Timestamp origin for the packed enqueue nanoseconds.
    epoch: Instant,
    /// Workers currently parked (or about to park) on the doorbell.
    sleepers: AtomicUsize,
    doorbell: Mutex<()>,
    not_empty: Condvar,
}

fn encode(item: &QueuedOp, epoch: Instant) -> (u64, u64) {
    let opc = match item.op {
        Operation::Search(_) => OPC_SEARCH,
        Operation::Insert(_) => OPC_INSERT,
        Operation::Delete(_) => OPC_DELETE,
    };
    let measured = if item.measured { META_MEASURED } else { 0 };
    let ns = item
        .enqueued
        .saturating_duration_since(epoch)
        .as_nanos()
        .min(u128::from(u64::MAX >> META_TS_SHIFT)) as u64;
    (item.op.key(), (ns << META_TS_SHIFT) | measured | opc)
}

fn decode(key: u64, meta: u64, epoch: Instant) -> QueuedOp {
    let op = match meta & 0b11 {
        OPC_SEARCH => Operation::Search(key),
        OPC_INSERT => Operation::Insert(key),
        _ => Operation::Delete(key),
    };
    QueuedOp {
        op,
        enqueued: epoch + Duration::from_nanos(meta >> META_TS_SHIFT),
        measured: meta & META_MEASURED != 0,
    }
}

impl IngressQueue {
    /// A queue admitting at most `capacity` waiting operations.
    ///
    /// # Panics
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        let len = capacity.next_power_of_two().max(2);
        let ring = (0..len)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                key: AtomicU64::new(0),
                meta: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        IngressQueue {
            ring,
            mask: len as u64 - 1,
            capacity,
            enqueue_pos: AtomicU64::new(0),
            dequeue_pos: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            depth_hwm: AtomicUsize::new(0),
            epoch: Instant::now(),
            sleepers: AtomicUsize::new(0),
            doorbell: Mutex::new(()),
            not_empty: Condvar::new(),
        }
    }

    /// Configured capacity (admission bound).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits `item`, or sheds it when the queue is full (or closed).
    /// Lock-free: one CAS on the enqueue cursor plus slot stores.
    pub fn try_push(&self, item: QueuedOp) -> Result<(), Shed> {
        if self.closed.load(Ordering::Acquire) {
            return Err(Shed::QueueFull);
        }
        let (key, meta) = encode(&item, self.epoch);
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            // Admission bound below the power-of-two ring length. The
            // tail read may lag (consumers advance it concurrently), so
            // this can only *under*-admit at the boundary — the depth
            // high-water mark never exceeds `capacity`.
            let tail = self.dequeue_pos.load(Ordering::Relaxed);
            if pos.wrapping_sub(tail) >= self.capacity as u64 {
                return Err(Shed::QueueFull);
            }
            let slot = &self.ring[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(pos) as i64;
            if dif == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.key.store(key, Ordering::Relaxed);
                        slot.meta.store(meta, Ordering::Relaxed);
                        // Publish: consumers acquire this seq before
                        // reading the data words.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        let depth = pos.wrapping_add(1).wrapping_sub(tail) as usize;
                        self.depth_hwm.fetch_max(depth, Ordering::Relaxed);
                        if self.sleepers.load(Ordering::SeqCst) > 0 {
                            // Enter the doorbell critical section so the
                            // notify cannot slip between a sleeper's
                            // registration and its park.
                            drop(self.doorbell.lock().unwrap_or_else(PoisonError::into_inner));
                            self.not_empty.notify_one();
                        }
                        return Ok(());
                    }
                    Err(seen) => pos = seen,
                }
            } else if dif < 0 {
                // A full lap behind: ring physically full (only possible
                // when `capacity` equals the ring length).
                return Err(Shed::QueueFull);
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// One non-blocking dequeue attempt.
    fn try_pop(&self) -> Option<QueuedOp> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.ring[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq.wrapping_sub(pos.wrapping_add(1)) as i64;
            if dif == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safe to read: the acquire on `seq` ordered the
                        // producer's data stores before this point, and
                        // winning the cursor CAS made this consumer the
                        // slot's sole reader until the recycle store.
                        let key = slot.key.load(Ordering::Relaxed);
                        let meta = slot.meta.load(Ordering::Relaxed);
                        slot.seq
                            .store(pos.wrapping_add(self.ring.len() as u64), Ordering::Release);
                        return Some(decode(key, meta, self.epoch));
                    }
                    Err(seen) => pos = seen,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains up to `max` operations into `out`, blocking until at least
    /// one is available or the queue is closed *and* empty
    /// (drain-then-exit shutdown). Returns the number appended; `0`
    /// means shutdown.
    ///
    /// # Panics
    /// Panics when `max` is 0.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<QueuedOp>) -> usize {
        assert!(max >= 1, "batch size must be at least 1");
        loop {
            let mut n = 0;
            while n < max {
                match self.try_pop() {
                    Some(item) => {
                        out.push(item);
                        n += 1;
                    }
                    None => break,
                }
            }
            if n > 0 {
                return n;
            }
            if self.closed.load(Ordering::SeqCst) {
                // A producer that won its cursor CAS before `close` may
                // not have published its slot yet; the cursors tell us
                // whether anything is still in flight.
                if self.enqueue_pos.load(Ordering::SeqCst)
                    == self.dequeue_pos.load(Ordering::SeqCst)
                {
                    return 0;
                }
                std::thread::yield_now();
                continue;
            }
            // Park on the doorbell. Register as a sleeper *inside* the
            // critical section, then re-poll: a producer that publishes
            // after the re-poll sees `sleepers > 0` and must pass
            // through the same mutex before notifying, so its wakeup
            // cannot be lost. The timeout is a belt-and-braces bound,
            // not a correctness requirement.
            let guard = self.doorbell.lock().unwrap_or_else(PoisonError::into_inner);
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            let drained =
                self.dequeue_pos.load(Ordering::SeqCst) != self.enqueue_pos.load(Ordering::SeqCst);
            if drained || self.closed.load(Ordering::SeqCst) {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let _ = self
                .not_empty
                .wait_timeout(guard, PARK)
                .unwrap_or_else(PoisonError::into_inner);
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Blocks until an operation is available or the queue is closed
    /// *and* empty. Single-op convenience over [`IngressQueue::pop_batch`].
    pub fn pop(&self) -> Option<QueuedOp> {
        let mut buf = Vec::with_capacity(1);
        if self.pop_batch(1, &mut buf) == 0 {
            None
        } else {
            buf.pop()
        }
    }

    /// Closes the queue: pending items are still drained, new pushes
    /// shed, and blocked workers wake once the queue empties.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        drop(self.doorbell.lock().unwrap_or_else(PoisonError::into_inner));
        self.not_empty.notify_all();
    }

    /// Current depth (racy; for monitoring only).
    pub fn depth(&self) -> usize {
        let head = self.enqueue_pos.load(Ordering::Relaxed);
        let tail = self.dequeue_pos.load(Ordering::Relaxed);
        head.wrapping_sub(tail) as usize
    }

    /// Deepest the queue has ever been.
    pub fn depth_high_water(&self) -> usize {
        self.depth_hwm.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn item() -> QueuedOp {
        QueuedOp {
            op: Operation::Search(7),
            enqueued: Instant::now(),
            measured: true,
        }
    }

    #[test]
    fn bounded_fifo_and_high_water() {
        let q = IngressQueue::new(2);
        assert!(q.try_push(item()).is_ok());
        assert!(q.try_push(item()).is_ok());
        assert_eq!(q.try_push(item()), Err(Shed::QueueFull));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.depth_high_water(), 2);
        assert!(q.pop().is_some());
        assert!(q.try_push(item()).is_ok(), "slot freed by pop");
        assert_eq!(q.depth_high_water(), 2, "hwm is sticky");
    }

    #[test]
    fn close_drains_then_wakes() {
        let q = IngressQueue::new(4);
        q.try_push(item()).unwrap();
        q.close();
        assert_eq!(q.try_push(item()), Err(Shed::QueueFull), "closed sheds");
        assert!(q.pop().is_some(), "pending item still served");
        assert!(q.pop().is_none(), "then workers see shutdown");
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(IngressQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(item()).unwrap();
        assert!(h.join().unwrap().is_some());
    }

    #[test]
    fn payload_round_trips_through_the_ring() {
        let q = IngressQueue::new(8);
        let before = Instant::now();
        let ops = [
            (Operation::Search(u64::MAX), true),
            (Operation::Insert(0), false),
            (Operation::Delete(0xDEAD_BEEF), true),
        ];
        for &(op, measured) in &ops {
            q.try_push(QueuedOp {
                op,
                enqueued: Instant::now(),
                measured,
            })
            .unwrap();
        }
        for &(op, measured) in &ops {
            let got = q.pop().unwrap();
            assert_eq!(got.op, op);
            assert_eq!(got.measured, measured);
            assert!(got.enqueued >= before, "timestamp survived packing");
            assert!(
                got.enqueued.elapsed() < Duration::from_secs(1),
                "timestamp is recent, not the epoch"
            );
        }
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let q = IngressQueue::new(16);
        for k in 0..10u64 {
            q.try_push(QueuedOp {
                op: Operation::Insert(k),
                enqueued: Instant::now(),
                measured: true,
            })
            .unwrap();
        }
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch(4, &mut buf), 4);
        assert_eq!(q.pop_batch(4, &mut buf), 4, "appends, does not clear");
        assert_eq!(q.pop_batch(4, &mut buf), 2, "partial final batch");
        let keys: Vec<u64> = buf.iter().map(|o| o.op.key()).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>(), "FIFO across batches");
        q.close();
        assert_eq!(q.pop_batch(4, &mut buf), 0, "shutdown returns 0");
    }

    #[test]
    fn capacity_bound_holds_below_ring_length() {
        // Capacity 3 rides a 4-slot ring; admission must stop at 3.
        let q = IngressQueue::new(3);
        for _ in 0..3 {
            assert!(q.try_push(item()).is_ok());
        }
        assert_eq!(q.try_push(item()), Err(Shed::QueueFull));
        assert_eq!(q.depth_high_water(), 3);
    }

    /// The MPMC stress: several producers and consumers hammer a small
    /// ring; every admitted operation comes out exactly once, and each
    /// producer's own operations come out in its submission order
    /// (per-producer FIFO — the property batched execution relies on for
    /// same-key linearizability).
    #[test]
    fn concurrent_producers_and_consumers_account_for_everything() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let q = Arc::new(IngressQueue::new(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut admitted = 0u64;
                for i in 0..PER_PRODUCER {
                    // Key encodes (producer, index) for order checking.
                    let key = (p << 32) | i;
                    loop {
                        let pushed = q.try_push(QueuedOp {
                            op: Operation::Insert(key),
                            enqueued: Instant::now(),
                            measured: true,
                        });
                        if pushed.is_ok() {
                            admitted += 1;
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                admitted
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut buf = Vec::new();
                loop {
                    buf.clear();
                    if q.pop_batch(8, &mut buf) == 0 {
                        return got;
                    }
                    got.extend(buf.iter().map(|o| o.op.key()));
                }
            }));
        }
        let admitted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(admitted, PRODUCERS * PER_PRODUCER);
        q.close();
        let mut all: Vec<u64> = Vec::new();
        let mut last_index = vec![None::<u64>; PRODUCERS as usize];
        for c in consumers {
            let got = c.join().unwrap();
            // Per-producer order within one consumer's stream. (A single
            // consumer sees each producer's ops in claim order; with one
            // worker per shard this is global per-producer FIFO.)
            let mut seen = vec![None::<u64>; PRODUCERS as usize];
            for &key in &got {
                let (p, i) = ((key >> 32) as usize, key & 0xFFFF_FFFF);
                if let Some(prev) = seen[p] {
                    assert!(i > prev, "producer {p} reordered: {i} after {prev}");
                }
                seen[p] = Some(i);
                last_index[p] = Some(last_index[p].map_or(i, |l| l.max(i)));
            }
            all.extend(got);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len() as u64,
            PRODUCERS * PER_PRODUCER,
            "every op delivered exactly once"
        );
    }
}
