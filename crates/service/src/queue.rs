//! Bounded ingress queues with admission control.
//!
//! One queue per shard. Generators `try_push` — a full queue *rejects*
//! instead of blocking (open-loop arrivals cannot be paused; shedding at
//! admission is what keeps sojourn times of accepted operations bounded
//! past saturation). Workers block on `pop` and drain the queue; an
//! optional enqueue-age timeout sheds operations whose queue wait
//! already exceeds the deadline at dequeue time, so a backlogged shard
//! spends its service capacity on operations that can still meet the
//! SLO instead of on ones that have already blown it.

use cbtree_workload::Operation;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// One queued operation with its admission timestamp.
#[derive(Debug, Clone, Copy)]
pub struct QueuedOp {
    /// The operation to execute.
    pub op: Operation,
    /// When the generator enqueued it — the sojourn clock starts here.
    pub enqueued: Instant,
    /// Whether it arrived inside the measured window (warmup and
    /// post-window arrivals are executed but not reported).
    pub measured: bool,
}

/// Why an operation was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The bounded queue was full at admission.
    QueueFull,
    /// The operation's queue wait exceeded the enqueue-age timeout.
    Timeout,
}

#[derive(Debug)]
struct Inner {
    items: VecDeque<QueuedOp>,
    closed: bool,
    depth_hwm: usize,
}

/// A bounded MPMC ingress queue (mutex + condvar; the queue is the
/// *model object* here — an explicit λ-arrival FCFS buffer — not a
/// throughput bottleneck: shards bound contention by construction).
#[derive(Debug)]
pub struct IngressQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    capacity: usize,
}

impl IngressQueue {
    /// A queue admitting at most `capacity` waiting operations.
    ///
    /// # Panics
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        IngressQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(4096)),
                closed: false,
                depth_hwm: 0,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits `item`, or sheds it when the queue is full (or closed).
    ///
    /// Poison-tolerant: a worker that panics while holding the queue
    /// mutex poisons it, but the queue's state is valid after every
    /// partial operation (a half-done push/pop cannot exist — each is a
    /// single `VecDeque` call), so producers recover the guard instead
    /// of propagating a panic storm through every generator thread.
    pub fn try_push(&self, item: QueuedOp) -> Result<(), Shed> {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if g.closed || g.items.len() >= self.capacity {
            return Err(Shed::QueueFull);
        }
        g.items.push_back(item);
        g.depth_hwm = g.depth_hwm.max(g.items.len());
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an operation is available or the queue is closed
    /// *and* empty (drain-then-exit shutdown).
    pub fn pop(&self) -> Option<QueuedOp> {
        let mut g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending items are still drained by `pop`, new
    /// pushes shed, and blocked workers wake once the queue empties.
    pub fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth (racy; for monitoring only).
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Deepest the queue has ever been.
    pub fn depth_high_water(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .depth_hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> QueuedOp {
        QueuedOp {
            op: Operation::Search(7),
            enqueued: Instant::now(),
            measured: true,
        }
    }

    #[test]
    fn bounded_fifo_and_high_water() {
        let q = IngressQueue::new(2);
        assert!(q.try_push(item()).is_ok());
        assert!(q.try_push(item()).is_ok());
        assert_eq!(q.try_push(item()), Err(Shed::QueueFull));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.depth_high_water(), 2);
        assert!(q.pop().is_some());
        assert!(q.try_push(item()).is_ok(), "slot freed by pop");
        assert_eq!(q.depth_high_water(), 2, "hwm is sticky");
    }

    #[test]
    fn close_drains_then_wakes() {
        let q = IngressQueue::new(4);
        q.try_push(item()).unwrap();
        q.close();
        assert_eq!(q.try_push(item()), Err(Shed::QueueFull), "closed sheds");
        assert!(q.pop().is_some(), "pending item still served");
        assert!(q.pop().is_none(), "then workers see shutdown");
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(IngressQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(item()).unwrap();
        assert!(h.join().unwrap().is_some());
    }

    #[test]
    fn poisoned_queue_keeps_serving() {
        // One worker panicking while holding the queue mutex must not
        // cascade: producers and consumers recover the poisoned guard
        // and keep operating on the (still valid) queue state.
        let q = std::sync::Arc::new(IngressQueue::new(4));
        q.try_push(item()).unwrap();
        let q2 = std::sync::Arc::clone(&q);
        let panicked = std::thread::spawn(move || {
            let _g = q2.inner.lock().unwrap();
            panic!("worker dies while holding the ingress queue");
        })
        .join();
        assert!(panicked.is_err(), "the worker really panicked");
        assert!(q.inner.is_poisoned(), "the mutex really was poisoned");
        // Every entry point still works.
        assert!(q.try_push(item()).is_ok());
        assert_eq!(q.depth(), 2);
        assert_eq!(q.depth_high_water(), 2);
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        q.close();
        assert_eq!(q.try_push(item()), Err(Shed::QueueFull), "closed sheds");
        assert!(q.pop().is_none(), "drain-then-exit shutdown still works");
    }
}
