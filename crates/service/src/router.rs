//! Key-range routing: a key space carved into `M` contiguous,
//! non-overlapping ranges, one per shard.
//!
//! Each shard owns an independent `DescentTree`; because the ranges are
//! contiguous, a future range-scan layer can still stitch results back
//! together in key order, and skewed key distributions concentrate on
//! predictable shards (the paper's per-level queueing model then applies
//! *per shard*, each with its own arrival rate).

/// Routes keys to shards by contiguous range.
///
/// Over a key space `[0, S)` (by default the full `u64` space,
/// `S = 2⁶⁴`), shard `i` owns `[⌊S·i/M⌋, ⌊S·(i+1)/M⌋)`: near-equal
/// slices, the first `S mod M` shards one key larger. Keys at or above
/// `S` (possible only with an explicit bounded space) clamp into the
/// last shard, so *every* `u64` key maps to exactly one shard.
#[derive(Debug, Clone)]
pub struct KeyRangeRouter {
    shards: usize,
    /// Size of the partitioned key space (`2⁶⁴` for the full space).
    space: u128,
}

impl KeyRangeRouter {
    /// A router carving the full `u64` key space into `shards` ranges.
    ///
    /// # Panics
    /// Panics when `shards` is 0 or exceeds `u16::MAX` (shard ids ride
    /// in trace events as `u16`).
    pub fn new(shards: usize) -> Self {
        KeyRangeRouter::with_space(shards, None)
    }

    /// A router partitioning `[0, hi)` when `hi` is given (keys `≥ hi`
    /// clamp into the last shard), or the full `u64` space when `None`.
    ///
    /// # Panics
    /// Panics when `shards` is 0, exceeds `u16::MAX`, or exceeds `hi`.
    pub fn with_space(shards: usize, hi: Option<u64>) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shards <= u16::MAX as usize,
            "shard count {shards} exceeds u16"
        );
        let space = hi.map_or(1u128 << 64, u128::from);
        assert!(
            shards as u128 <= space,
            "{shards} shards over a key space of {space}"
        );
        KeyRangeRouter { shards, space }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Inclusive lower boundary of shard `i`'s range: `⌊S·i/M⌋`
    /// (`i == shards` gives the one-past-the-end boundary).
    fn boundary(&self, i: usize) -> u128 {
        debug_assert!(i <= self.shards);
        self.space * i as u128 / self.shards as u128
    }

    /// The shard owning `key`. Total: every `u64` key has exactly one
    /// shard, keys beyond a bounded space clamping into the last.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        // Exact inverse of `boundary`: the largest `i` with
        // `⌊S·i/M⌋ ≤ key` is `⌈(key+1)·M/S⌉ − 1` (a plain `⌊key·M/S⌋`
        // disagrees at range boundaries whenever `M` ∤ `S`).
        let m = self.shards as u128;
        let i = (((u128::from(key) + 1) * m - 1) / self.space) as usize;
        i.min(self.shards - 1)
    }

    /// Shard `i`'s key range as an *inclusive* `(lo, hi)` pair; the last
    /// shard's range always ends at `u64::MAX` (clamped keys included).
    ///
    /// # Panics
    /// Panics when `i >= shards`.
    pub fn range(&self, i: usize) -> (u64, u64) {
        assert!(i < self.shards, "shard {i} out of range");
        let lo = self.boundary(i) as u64;
        let hi = if i + 1 == self.shards {
            u64::MAX
        } else {
            (self.boundary(i + 1) - 1) as u64
        };
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let r = KeyRangeRouter::new(1);
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(u64::MAX), 0);
        assert_eq!(r.range(0), (0, u64::MAX));
    }

    #[test]
    fn boundaries_agree_with_shard_of() {
        for m in [2usize, 3, 5, 8, 16] {
            let r = KeyRangeRouter::new(m);
            for i in 0..m {
                let (lo, hi) = r.range(i);
                assert_eq!(r.shard_of(lo), i, "m={m} i={i} lo");
                assert_eq!(r.shard_of(hi), i, "m={m} i={i} hi");
                if lo > 0 {
                    assert_eq!(r.shard_of(lo - 1), i - 1, "m={m} i={i} below");
                }
            }
        }
    }

    #[test]
    fn bounded_space_clamps_overflow_into_last_shard() {
        let r = KeyRangeRouter::with_space(4, Some(1_000_000));
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(249_999), 0);
        assert_eq!(r.shard_of(250_000), 1);
        assert_eq!(r.shard_of(999_999), 3);
        assert_eq!(r.shard_of(1_000_000), 3, "clamped");
        assert_eq!(r.shard_of(u64::MAX), 3, "clamped");
        assert_eq!(r.range(3).1, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = KeyRangeRouter::new(0);
    }

    #[test]
    #[should_panic(expected = "shards over a key space")]
    fn more_shards_than_keys_rejected() {
        let _ = KeyRangeRouter::with_space(10, Some(5));
    }

    /// Splitmix64: a tiny seeded generator for the property sweeps.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The property at the heart of routing: `route(boundary(i)) == i`
    /// for every shard, and ranges are contiguous and non-overlapping,
    /// over randomized `(space, shards)` pairs — including shard counts
    /// near the key-space size, where the integer division is tightest.
    #[test]
    fn boundaries_route_home_for_random_spaces() {
        let mut state = 0xC0FF_EE00_u64;
        for round in 0..200 {
            // Mix tiny, near-space, and huge configurations.
            let space = match round % 4 {
                0 => 1 + splitmix(&mut state) % 64,
                1 => 1 + splitmix(&mut state) % 1_000_000,
                2 => u64::MAX - splitmix(&mut state) % 1024,
                _ => 1 + splitmix(&mut state),
            };
            let max_shards = space.min(u16::MAX as u64).min(512);
            let shards = (1 + splitmix(&mut state) % max_shards) as usize;
            let r = KeyRangeRouter::with_space(shards, Some(space));
            let mut prev_hi: Option<u64> = None;
            for i in 0..shards {
                let (lo, hi) = r.range(i);
                assert!(lo <= hi, "space={space} m={shards} i={i}: empty range");
                // Contiguous, non-overlapping coverage.
                match prev_hi {
                    None => assert_eq!(lo, 0, "space={space} m={shards}: gap at 0"),
                    Some(p) => {
                        assert_eq!(lo, p + 1, "space={space} m={shards} i={i}: gap or overlap")
                    }
                }
                prev_hi = Some(hi);
                // Both ends of every range route home, as does the key
                // just below the upper boundary.
                assert_eq!(r.shard_of(lo), i, "space={space} m={shards} i={i} lo");
                assert_eq!(r.shard_of(hi), i, "space={space} m={shards} i={i} hi");
                if hi > lo {
                    assert_eq!(r.shard_of(hi - 1), i, "space={space} m={shards} i={i}");
                }
            }
            assert_eq!(prev_hi, Some(u64::MAX), "last shard absorbs the clamp");
            // A random scatter of keys all land inside their shard's range.
            for _ in 0..64 {
                let key = splitmix(&mut state);
                let i = r.shard_of(key);
                let (lo, hi) = r.range(i);
                assert!(
                    key >= lo && key <= hi,
                    "space={space} m={shards}: key {key} routed to [{lo}, {hi}]"
                );
            }
        }
    }

    /// The full-`u64`-space router (no clamping path at all): every
    /// boundary routes home and coverage is exact, including `u64::MAX`.
    #[test]
    fn full_space_boundaries_route_home() {
        let mut state = 0xBEEF_u64;
        for _ in 0..40 {
            let shards = (1 + splitmix(&mut state) % 300) as usize;
            let r = KeyRangeRouter::new(shards);
            let mut prev_hi: Option<u64> = None;
            for i in 0..shards {
                let (lo, hi) = r.range(i);
                match prev_hi {
                    None => assert_eq!(lo, 0),
                    Some(p) => assert_eq!(lo, p + 1, "m={shards} i={i}"),
                }
                prev_hi = Some(hi);
                assert_eq!(r.shard_of(lo), i, "m={shards} i={i} lo");
                assert_eq!(r.shard_of(hi), i, "m={shards} i={i} hi");
            }
            assert_eq!(prev_hi, Some(u64::MAX));
            assert_eq!(r.shard_of(u64::MAX), shards - 1);
        }
    }

    /// Degenerate but legal: as many shards as keys — every shard owns
    /// exactly one key.
    #[test]
    fn one_key_per_shard() {
        let r = KeyRangeRouter::with_space(7, Some(7));
        for k in 0..7u64 {
            assert_eq!(r.shard_of(k), k as usize);
            assert_eq!(r.range(k as usize), (k, if k == 6 { u64::MAX } else { k }));
        }
        assert_eq!(r.shard_of(7), 6, "clamped");
        assert_eq!(r.shard_of(u64::MAX), 6, "clamped");
    }
}
