//! Key-range routing: a key space carved into `M` contiguous,
//! non-overlapping ranges, one per shard.
//!
//! Each shard owns an independent `DescentTree`; because the ranges are
//! contiguous, a future range-scan layer can still stitch results back
//! together in key order, and skewed key distributions concentrate on
//! predictable shards (the paper's per-level queueing model then applies
//! *per shard*, each with its own arrival rate).

/// Routes keys to shards by contiguous range.
///
/// Over a key space `[0, S)` (by default the full `u64` space,
/// `S = 2⁶⁴`), shard `i` owns `[⌊S·i/M⌋, ⌊S·(i+1)/M⌋)`: near-equal
/// slices, the first `S mod M` shards one key larger. Keys at or above
/// `S` (possible only with an explicit bounded space) clamp into the
/// last shard, so *every* `u64` key maps to exactly one shard.
#[derive(Debug, Clone)]
pub struct KeyRangeRouter {
    shards: usize,
    /// Size of the partitioned key space (`2⁶⁴` for the full space).
    space: u128,
}

impl KeyRangeRouter {
    /// A router carving the full `u64` key space into `shards` ranges.
    ///
    /// # Panics
    /// Panics when `shards` is 0 or exceeds `u16::MAX` (shard ids ride
    /// in trace events as `u16`).
    pub fn new(shards: usize) -> Self {
        KeyRangeRouter::with_space(shards, None)
    }

    /// A router partitioning `[0, hi)` when `hi` is given (keys `≥ hi`
    /// clamp into the last shard), or the full `u64` space when `None`.
    ///
    /// # Panics
    /// Panics when `shards` is 0, exceeds `u16::MAX`, or exceeds `hi`.
    pub fn with_space(shards: usize, hi: Option<u64>) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            shards <= u16::MAX as usize,
            "shard count {shards} exceeds u16"
        );
        let space = hi.map_or(1u128 << 64, u128::from);
        assert!(
            shards as u128 <= space,
            "{shards} shards over a key space of {space}"
        );
        KeyRangeRouter { shards, space }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Inclusive lower boundary of shard `i`'s range: `⌊S·i/M⌋`
    /// (`i == shards` gives the one-past-the-end boundary).
    fn boundary(&self, i: usize) -> u128 {
        debug_assert!(i <= self.shards);
        self.space * i as u128 / self.shards as u128
    }

    /// The shard owning `key`. Total: every `u64` key has exactly one
    /// shard, keys beyond a bounded space clamping into the last.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        // Exact inverse of `boundary`: the largest `i` with
        // `⌊S·i/M⌋ ≤ key` is `⌈(key+1)·M/S⌉ − 1` (a plain `⌊key·M/S⌋`
        // disagrees at range boundaries whenever `M` ∤ `S`).
        let m = self.shards as u128;
        let i = (((u128::from(key) + 1) * m - 1) / self.space) as usize;
        i.min(self.shards - 1)
    }

    /// Shard `i`'s key range as an *inclusive* `(lo, hi)` pair; the last
    /// shard's range always ends at `u64::MAX` (clamped keys included).
    ///
    /// # Panics
    /// Panics when `i >= shards`.
    pub fn range(&self, i: usize) -> (u64, u64) {
        assert!(i < self.shards, "shard {i} out of range");
        let lo = self.boundary(i) as u64;
        let hi = if i + 1 == self.shards {
            u64::MAX
        } else {
            (self.boundary(i + 1) - 1) as u64
        };
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let r = KeyRangeRouter::new(1);
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(u64::MAX), 0);
        assert_eq!(r.range(0), (0, u64::MAX));
    }

    #[test]
    fn boundaries_agree_with_shard_of() {
        for m in [2usize, 3, 5, 8, 16] {
            let r = KeyRangeRouter::new(m);
            for i in 0..m {
                let (lo, hi) = r.range(i);
                assert_eq!(r.shard_of(lo), i, "m={m} i={i} lo");
                assert_eq!(r.shard_of(hi), i, "m={m} i={i} hi");
                if lo > 0 {
                    assert_eq!(r.shard_of(lo - 1), i - 1, "m={m} i={i} below");
                }
            }
        }
    }

    #[test]
    fn bounded_space_clamps_overflow_into_last_shard() {
        let r = KeyRangeRouter::with_space(4, Some(1_000_000));
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(249_999), 0);
        assert_eq!(r.shard_of(250_000), 1);
        assert_eq!(r.shard_of(999_999), 3);
        assert_eq!(r.shard_of(1_000_000), 3, "clamped");
        assert_eq!(r.shard_of(u64::MAX), 3, "clamped");
        assert_eq!(r.range(3).1, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = KeyRangeRouter::new(0);
    }

    #[test]
    #[should_panic(expected = "shards over a key space")]
    fn more_shards_than_keys_rejected() {
        let _ = KeyRangeRouter::with_space(10, Some(5));
    }
}
