//! `cbtree-serve`: an *open-loop* sharded service layer over the
//! concurrent B+-trees of `cbtree-btree`.
//!
//! The closed-loop harness (`cbtree-harness`) matches the paper's
//! simulator: a fixed set of threads, each issuing its next operation
//! the instant the previous one completes — offered load falls
//! automatically as the tree slows down, so response times saturate
//! gently and queueing delay is invisible. The paper's *analysis*,
//! however, is an open queueing network: operations arrive at rate λ
//! whether or not the previous ones have finished. This crate closes
//! that gap:
//!
//! * a [`KeyRangeRouter`] carves the key space into `M` contiguous
//!   ranges, each owned by an independent tree shard;
//! * per shard, a bounded [`IngressQueue`] with admission control
//!   (shed when full, plus an optional enqueue-age timeout) is drained
//!   by a configurable worker pool;
//! * open-loop generator threads emit operations on Poisson or bursty
//!   on-off arrival processes (`cbtree-workload`), stamping the enqueue
//!   time so the report measures true *sojourn* time — queue wait plus
//!   service — including the waiting time of operations that are shed
//!   rather than served.
//!
//! [`serve`] runs one measurement at a fixed λ; [`sweep`] maps a λ list
//! into the λ-vs-response-time curve the paper plots; and
//! [`max_sustainable_lambda`] runs the bracket-then-bisect saturation
//! search for the largest λ the service sustains without shedding.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod queue;
mod report;
mod router;
mod shard;

pub use queue::{IngressQueue, QueuedOp, Shed};
pub use report::{ServeReport, ShardReport};
pub use router::KeyRangeRouter;

use cbtree_btree::{ConcurrentBTree, Protocol};
use cbtree_harness::{fork_seed, level_snapshots, LevelLive};
use cbtree_queueing::BatchSizeMoments;
use cbtree_sync::{HistogramSnapshot, SamplePeriod};
use cbtree_workload::{ArrivalProcess, OnOffArrivals, OpStream, OpsConfig, PoissonArrivals, Rng};
use shard::{offer, worker_loop, GenLocal, ShardRuntime, WorkerLocal};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of the arrival process feeding the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// Memoryless Poisson arrivals at the configured λ — the paper's
    /// open-network assumption.
    Poisson,
    /// Two-state on-off modulated Poisson arrivals with the *same*
    /// long-run λ, concentrated into bursts: inside an ON period the
    /// instantaneous rate is `burstiness · λ`; OFF periods are silent.
    OnOff {
        /// Peak-to-mean ratio `b ≥ 1` (`1` degenerates to Poisson).
        burstiness: f64,
        /// Mean length of an ON burst.
        mean_on: Duration,
    },
}

/// Configuration of one open-loop measurement.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Latching protocol every shard's tree runs.
    pub protocol: Protocol,
    /// Number of key-range shards (independent trees + queues).
    pub shards: usize,
    /// Worker threads draining each shard's queue.
    pub workers_per_shard: usize,
    /// Most operations a worker drains (and executes as one sorted
    /// batch) per wakeup. `1` is singleton service — exactly the
    /// pre-batching behavior. Larger values amortize root-to-leaf
    /// descents across ops that land in the same leaf and amortize the
    /// per-descent service floor with them.
    pub batch_max: usize,
    /// Open-loop generator threads. Each emits an independent arrival
    /// process at `lambda / generators`; their superposition offers the
    /// aggregate λ (exactly Poisson for [`ArrivalShape::Poisson`]).
    pub generators: usize,
    /// Node capacity (max keys per node) of each shard's tree.
    pub capacity: usize,
    /// Keys inserted across all shards before measurement starts.
    pub initial_items: usize,
    /// Operation mix and key distribution.
    pub ops: OpsConfig,
    /// Aggregate offered arrival rate, operations per second.
    pub lambda: f64,
    /// Arrival process shape.
    pub arrivals: ArrivalShape,
    /// Minimum service time per operation: workers sleep out the
    /// remainder after the tree op completes, emulating the paper's
    /// disk-resident node cost (an in-memory op is ~1 µs, which pins
    /// `ρ = λ·E[X]` near zero at any paceable λ; the floor makes the
    /// utilization regime of the λ-vs-sojourn curve configurable).
    /// `Duration::ZERO` (the default) serves at raw tree speed.
    pub service_floor: Duration,
    /// Bound on each shard's ingress queue; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Optional admission deadline: an operation whose queue wait
    /// exceeds this at dequeue is shed instead of served.
    pub max_enqueue_age: Option<Duration>,
    /// Untimed warmup before the measured window.
    pub warmup: Duration,
    /// Length of the measured window.
    pub measure: Duration,
    /// Seed for arrival processes and workload streams (forked per
    /// generator, so runs are reproducible up to OS scheduling).
    pub seed: u64,
    /// Lock-timing sampling period for the shards' node locks.
    pub stats_sampling: SamplePeriod,
}

impl ServeConfig {
    /// Paper-style default: mix `.3/.5/.2` over a 1M key space,
    /// capacity-64 nodes, 50k initial items split across `shards`,
    /// Poisson arrivals, one worker per shard.
    pub fn paper(protocol: Protocol, shards: usize, lambda: f64) -> Self {
        ServeConfig {
            protocol,
            shards,
            workers_per_shard: 1,
            batch_max: 1,
            generators: 2,
            capacity: 64,
            initial_items: 50_000,
            ops: OpsConfig::paper(1_000_000),
            lambda,
            arrivals: ArrivalShape::Poisson,
            service_floor: Duration::ZERO,
            queue_capacity: 4096,
            max_enqueue_age: None,
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(1000),
            seed: 0x5E47E,
            stats_sampling: SamplePeriod::EXACT,
        }
    }

    /// A fast variant for smoke tests.
    pub fn quick(protocol: Protocol, shards: usize, lambda: f64) -> Self {
        ServeConfig {
            capacity: 16,
            initial_items: 4_000,
            warmup: Duration::from_millis(30),
            measure: Duration::from_millis(120),
            ..ServeConfig::paper(protocol, shards, lambda)
        }
    }

    /// The router this configuration shards by: the workload's key space
    /// carved into `shards` contiguous ranges (routing over the *used*
    /// space keeps the shards balanced; a sequential workload has no
    /// bound, so it splits the full `u64` space).
    pub fn router(&self) -> KeyRangeRouter {
        KeyRangeRouter::with_space(self.shards, self.ops.keys.key_space_hi())
    }
}

const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Sleeps until `deadline`: coarse bounded chunks down to the last
/// millisecond, then a yield loop. The two-stage shape matters —
/// `thread::sleep` routinely oversleeps by tens to hundreds of
/// microseconds, and at sub-millisecond inter-arrival times a
/// perpetually-late generator degenerates into emitting catch-up
/// *bursts*, inflating every measured queue wait with an artifact of
/// the generator itself. The fine stage uses `yield_now` rather than a
/// pure spin: on an idle core it returns almost immediately (precise
/// pacing), while on an oversubscribed machine it cedes the core to
/// the very workers whose service this run is measuring. Bails out
/// early, returning `false`, once the run is `DONE`; the sleep
/// chunking bounds how long a low-λ generator can block the
/// coordinator's join.
fn pace_until(deadline: Instant, phase: &AtomicU8) -> bool {
    const YIELD_WINDOW: Duration = Duration::from_millis(1);
    loop {
        if phase.load(Ordering::Acquire) == PHASE_DONE {
            return false;
        }
        match deadline.checked_duration_since(Instant::now()) {
            None => return true, // behind schedule: offer immediately
            Some(remain) if remain <= YIELD_WINDOW => break,
            Some(remain) => {
                std::thread::sleep((remain - YIELD_WINDOW).min(Duration::from_millis(2)));
            }
        }
    }
    let mut polls = 0u32;
    while Instant::now() < deadline {
        polls = polls.wrapping_add(1);
        if polls.is_multiple_of(16) && phase.load(Ordering::Acquire) == PHASE_DONE {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

fn make_arrivals(cfg: &ServeConfig, gen: u64) -> ArrivalProcess {
    let rate = cfg.lambda / cfg.generators as f64;
    let seed = fork_seed(cfg.seed, gen);
    match cfg.arrivals {
        ArrivalShape::Poisson => ArrivalProcess::Poisson(PoissonArrivals::new(rate, seed)),
        ArrivalShape::OnOff {
            burstiness,
            mean_on,
        } => ArrivalProcess::OnOff(OnOffArrivals::with_mean_rate(
            rate,
            burstiness,
            mean_on.as_secs_f64(),
            seed,
        )),
    }
}

/// Prefills every shard with its slice of `initial_items` keys drawn
/// from the workload's key distribution and routed like live traffic.
fn prefill(runtimes: &[ShardRuntime], router: &KeyRangeRouter, cfg: &ServeConfig) {
    let mut rng = Rng::new(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut inserted = 0u64;
    while (inserted as usize) < cfg.initial_items {
        let k = cfg.ops.keys.sample(&mut rng, inserted);
        if runtimes[router.shard_of(k)].tree.insert(k, k).is_none() {
            inserted += 1;
        }
    }
    for rt in runtimes {
        rt.tree.txn_commit();
    }
}

/// Runs one open-loop measurement at `cfg.lambda`.
///
/// Choreography: shards (tree + bounded queue + workers) come up first;
/// generators then emit operations on their arrival processes,
/// routing each by key and stamping the enqueue time. Operations that
/// arrive during warmup or after the window are executed but not
/// reported. The coordinator flips phases on one atomic — unlike the
/// closed-loop harness there is no quiesce barrier, because an open
/// loop must keep arriving while snapshots are taken; per-level lock
/// snapshots are diffed across the window instead. After the window,
/// generators stop, the queues are closed, and workers drain them to
/// the end so every accepted measured operation gets an outcome
/// (served or timed out) before the report is assembled.
///
/// # Panics
/// Panics on a zero shard/worker/generator count, an invalid operation
/// mix, a non-positive λ, or a post-run structural check failure.
pub fn serve(cfg: &ServeConfig) -> ServeReport {
    assert!(
        cfg.workers_per_shard >= 1,
        "need at least one worker per shard"
    );
    assert!(
        (1..=255).contains(&cfg.batch_max),
        "batch_max must be in 1..=255 (trace events carry the size in a byte), got {}",
        cfg.batch_max
    );
    assert!(cfg.generators >= 1, "need at least one generator");
    assert!(cfg.ops.is_valid(), "operation mix must sum to 1");
    assert!(
        cfg.lambda.is_finite() && cfg.lambda > 0.0,
        "lambda must be positive, got {}",
        cfg.lambda
    );

    // With tracing compiled in, hold the process-wide trace lock for the
    // whole measurement (rings are global; concurrent runs would
    // interleave their events).
    #[cfg(feature = "trace")]
    let _trace_window = {
        let guard = cbtree_obs::trace::measurement_lock();
        cbtree_obs::trace::enable(true);
        guard
    };

    let router = cfg.router();
    let runtimes: Vec<ShardRuntime> = (0..cfg.shards)
        .map(|_| ShardRuntime {
            tree: Arc::new(ConcurrentBTree::with_sampling(
                cfg.protocol,
                cfg.capacity,
                cfg.stats_sampling,
            )),
            queue: Arc::new(IngressQueue::new(cfg.queue_capacity)),
        })
        .collect();
    prefill(&runtimes, &router, cfg);

    let phase = AtomicU8::new(PHASE_WARMUP);
    let epoch = Instant::now(); // arrival-process time zero

    let (gens, workers, snap_a, snap_b, ctr_a, ctr_b, elapsed, trace) = std::thread::scope(|s| {
        let mut worker_handles = Vec::with_capacity(cfg.shards * cfg.workers_per_shard);
        for (sh, rt) in runtimes.iter().enumerate() {
            for _ in 0..cfg.workers_per_shard {
                let (tree, queue) = (Arc::clone(&rt.tree), Arc::clone(&rt.queue));
                let (max_age, floor) = (cfg.max_enqueue_age, cfg.service_floor);
                let batch_max = cfg.batch_max;
                worker_handles.push(s.spawn(move || {
                    (
                        sh,
                        worker_loop(sh as u16, &tree, &queue, max_age, floor, batch_max),
                    )
                }));
            }
        }

        let mut gen_handles = Vec::with_capacity(cfg.generators);
        for g in 0..cfg.generators as u64 {
            let (phase, router, runtimes) = (&phase, &router, &runtimes);
            let mut arrivals = make_arrivals(cfg, g);
            // Forking the ops seed from `!seed` keeps the operation
            // streams disjoint from the arrival-time streams. Sequential
            // streams append above the prefill, each generator in its
            // own disjoint band so their counters never collide.
            let mut stream = OpStream::new(cfg.ops, fork_seed(!cfg.seed, g))
                .with_seq_base(cfg.initial_items as u64 + (g << 40));
            gen_handles.push(s.spawn(move || {
                let mut local = GenLocal::new(runtimes.len());
                loop {
                    let t = arrivals.next_arrival();
                    if !pace_until(epoch + Duration::from_secs_f64(t), phase) {
                        break;
                    }
                    // An arrival behind schedule is offered immediately:
                    // open-loop catch-up, not back-pressure.
                    let measured = phase.load(Ordering::Acquire) == PHASE_MEASURE;
                    let op = stream.next_op();
                    let sh = router.shard_of(op.key());
                    offer(&runtimes[sh], sh, op, measured, &mut local);
                }
                local
            }));
        }

        // The window. Snapshots are taken while the shards keep serving
        // (an open loop cannot quiesce mid-run); the per-lock counters
        // are monotone, so the diff is exact up to ops in flight at the
        // instants of the two walks.
        std::thread::sleep(cfg.warmup);
        let snap_a: Vec<_> = runtimes
            .iter()
            .map(|rt| level_snapshots(&rt.tree))
            .collect();
        let ctr_a: Vec<_> = runtimes.iter().map(|rt| rt.tree.counters()).collect();
        let _ = cbtree_obs::trace::drain(); // discard prefill/warmup events
        phase.store(PHASE_MEASURE, Ordering::Release);
        let t0 = Instant::now();
        std::thread::sleep(cfg.measure);
        let snap_b: Vec<_> = runtimes
            .iter()
            .map(|rt| level_snapshots(&rt.tree))
            .collect();
        let ctr_b: Vec<_> = runtimes.iter().map(|rt| rt.tree.counters()).collect();
        let elapsed = t0.elapsed();
        phase.store(PHASE_DONE, Ordering::Release);

        let gens: Vec<GenLocal> = gen_handles
            .into_iter()
            .map(|h| h.join().expect("generator panicked"))
            .collect();
        // Generators have stopped: close the queues so workers drain
        // what is left and exit — every accepted measured operation
        // still gets an outcome.
        for rt in &runtimes {
            rt.queue.close();
        }
        let workers: Vec<(usize, WorkerLocal)> = worker_handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        let trace = cbtree_obs::trace::drain();
        (gens, workers, snap_a, snap_b, ctr_a, ctr_b, elapsed, trace)
    });

    // Post-run structural check: a measurement over a corrupted shard is
    // worthless.
    for (sh, rt) in runtimes.iter().enumerate() {
        rt.tree
            .check()
            .unwrap_or_else(|e| panic!("shard {sh}: post-run structural check failed: {e}"));
    }

    let elapsed_secs = elapsed.as_secs_f64();
    let elapsed_ns = elapsed.as_nanos() as u64;
    let mut per_shard = Vec::with_capacity(cfg.shards);
    let mut agg_sojourn = HistogramSnapshot::default();
    let mut agg_sojourn_sum_ns = 0u64;
    for (sh, rt) in runtimes.iter().enumerate() {
        let mut served = 0u64;
        let mut timed_out = 0u64;
        let mut sojourn = HistogramSnapshot::default();
        let mut shed_wait = HistogramSnapshot::default();
        let mut sojourn_sum_ns = 0u64;
        let mut service_sum_s = 0.0f64;
        let mut service_sum_sq_s2 = 0.0f64;
        let mut queue_wait_sum_ns = 0u64;
        let mut batch_wait_sum_ns = 0u64;
        let mut batches = 0u64;
        let mut batch = cbtree_btree::BatchSummary::default();
        let mut size_sums: Vec<(u64, f64, f64)> = Vec::new();
        for (_, w) in workers.iter().filter(|(s, _)| *s == sh) {
            served += w.served;
            timed_out += w.timed_out;
            sojourn.merge(&w.sojourn.snapshot());
            shed_wait.merge(&w.shed_wait.snapshot());
            sojourn_sum_ns = sojourn_sum_ns.saturating_add(w.sojourn_sum_ns);
            service_sum_s += w.service_sum_s;
            service_sum_sq_s2 += w.service_sum_sq_s2;
            queue_wait_sum_ns = queue_wait_sum_ns.saturating_add(w.queue_wait_sum_ns);
            batch_wait_sum_ns = batch_wait_sum_ns.saturating_add(w.batch_wait_sum_ns);
            batches += w.batches;
            batch.merge(&w.batch_summary);
            if size_sums.len() < w.batch_sizes.len() {
                size_sums.resize(w.batch_sizes.len(), (0, 0.0, 0.0));
            }
            for (k, &(n, s, s2)) in w.batch_sizes.iter().enumerate() {
                size_sums[k].0 += n;
                size_sums[k].1 += s;
                size_sums[k].2 += s2;
            }
        }
        let batch_sizes: Vec<BatchSizeMoments> = size_sums
            .iter()
            .enumerate()
            .filter(|(_, &(n, _, _))| n > 0)
            .map(|(k, &(n, s, s2))| BatchSizeMoments {
                size: k as u32,
                batches: n,
                service_sum_s: s,
                service_sum_sq_s2: s2,
            })
            .collect();
        let offered: u64 = gens.iter().map(|g| g.offered[sh]).sum();
        let rejected_full: u64 = gens.iter().map(|g| g.rejected[sh]).sum();

        // Diff the window's lock counters per level, using the
        // end-of-window shape (new nodes have zero baseline).
        let mut levels = Vec::with_capacity(snap_b[sh].len());
        for (i, (nodes, after)) in snap_b[sh].iter().enumerate() {
            let window = match snap_a[sh].get(i) {
                Some((_, before)) => after.since(before),
                None => *after,
            };
            levels.push(LevelLive {
                level: i + 1,
                nodes: *nodes,
                rho_w: window.writer_utilization(elapsed_ns, *nodes),
                stats: window,
            });
        }

        agg_sojourn.merge(&sojourn);
        agg_sojourn_sum_ns = agg_sojourn_sum_ns.saturating_add(sojourn_sum_ns);
        let (lo, hi) = router.range(sh);
        per_shard.push(ShardReport {
            shard: sh,
            lo,
            hi,
            offered,
            rejected_full,
            timed_out,
            served,
            queue_depth_hwm: rt.queue.depth_high_water(),
            sojourn,
            sojourn_mean_s: if served > 0 {
                sojourn_sum_ns as f64 * 1e-9 / served as f64
            } else {
                0.0
            },
            shed_wait,
            service_mean_s: if served > 0 {
                service_sum_s / served as f64
            } else {
                0.0
            },
            service_m2_s2: if served > 0 {
                service_sum_sq_s2 / served as f64
            } else {
                0.0
            },
            queue_wait_mean_s: if served > 0 {
                queue_wait_sum_ns as f64 * 1e-9 / served as f64
            } else {
                0.0
            },
            batch_wait_mean_s: if served > 0 {
                batch_wait_sum_ns as f64 * 1e-9 / served as f64
            } else {
                0.0
            },
            batches,
            batch,
            batch_sizes,
            counters: ctr_b[sh].since(&ctr_a[sh]),
            levels,
            final_len: rt.tree.len(),
        });
    }

    let total_served: u64 = per_shard.iter().map(|s| s.served).sum();
    ServeReport {
        lambda: cfg.lambda,
        shards: cfg.shards,
        workers_per_shard: cfg.workers_per_shard,
        batch_max: cfg.batch_max,
        generators: cfg.generators,
        measured_time: elapsed_secs,
        per_shard,
        sojourn: agg_sojourn,
        sojourn_mean_s: if total_served > 0 {
            agg_sojourn_sum_ns as f64 * 1e-9 / total_served as f64
        } else {
            0.0
        },
        trace,
    }
}

/// Runs [`serve`] once per λ in `lambdas` — the λ-vs-response-time
/// curve.
pub fn sweep(base: &ServeConfig, lambdas: &[f64]) -> Vec<ServeReport> {
    lambdas
        .iter()
        .map(|&lambda| {
            serve(&ServeConfig {
                lambda,
                ..base.clone()
            })
        })
        .collect()
}

/// Shed-rate bound under which a λ counts as sustained: an open-loop
/// run at a sustainable rate should shed (admission + timeout) at most
/// this fraction of its offered operations.
pub const SUSTAINABLE_SHED_RATE: f64 = 0.01;

/// Whether `report` shows a sustained rate: the shed fraction is within
/// [`SUSTAINABLE_SHED_RATE`] and the service kept up with the offered
/// rate (completions within 10% of arrivals — a growing backlog means
/// the queue, not the tree, absorbed the load).
pub fn is_sustainable(report: &ServeReport) -> bool {
    report.shed_rate() <= SUSTAINABLE_SHED_RATE
        && report.achieved_rate() >= 0.9 * report.offered_rate()
}

/// The saturation-search schedule, separated from measurement so it is
/// unit-testable. Brackets the sustainability boundary by doubling from
/// `lambda0` (halving instead when even `lambda0` is unsustainable),
/// then bisects the bracket `bisect_iters` times. Returns the largest λ
/// probed sustainable (0.0 when none was) and every λ probed, in order.
/// `sustainable` is called exactly once per returned probe.
pub fn saturation_schedule(
    lambda0: f64,
    max_doublings: usize,
    bisect_iters: usize,
    mut sustainable: impl FnMut(f64) -> bool,
) -> (f64, Vec<f64>) {
    assert!(
        lambda0.is_finite() && lambda0 > 0.0,
        "lambda0 must be positive, got {lambda0}"
    );
    let mut probed = Vec::new();
    let mut probe = |l: f64, probed: &mut Vec<f64>| {
        probed.push(l);
        sustainable(l)
    };

    // Bracket upward: double until a probe fails.
    let mut lo = 0.0f64; // largest known-sustainable
    let mut hi = None; // smallest known-unsustainable
    let mut l = lambda0;
    for _ in 0..=max_doublings {
        if probe(l, &mut probed) {
            lo = l;
            l *= 2.0;
        } else {
            hi = Some(l);
            break;
        }
    }
    let Some(mut hi) = hi else {
        // Never saturated within the doubling budget: report the largest
        // rate actually demonstrated.
        return (lo, probed);
    };
    if lo == 0.0 {
        // Even lambda0 was unsustainable: bracket downward instead.
        let mut l = lambda0 / 2.0;
        for _ in 0..max_doublings {
            if probe(l, &mut probed) {
                lo = l;
                break;
            }
            hi = l;
            l /= 2.0;
        }
        if lo == 0.0 {
            return (0.0, probed);
        }
    }
    for _ in 0..bisect_iters {
        let mid = (lo + hi) / 2.0;
        if probe(mid, &mut probed) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, probed)
}

/// Finds the maximum sustainable arrival rate: brackets by doubling
/// from `lambda0`, bisects `bisect_iters` times, judging each probe
/// with [`is_sustainable`]. Returns the largest sustained λ and every
/// `ServeReport` measured, in probe order.
pub fn max_sustainable_lambda(
    base: &ServeConfig,
    lambda0: f64,
    bisect_iters: usize,
) -> (f64, Vec<ServeReport>) {
    let mut reports = Vec::new();
    let (best, _probed) = saturation_schedule(lambda0, 10, bisect_iters, |lambda| {
        let report = serve(&ServeConfig {
            lambda,
            ..base.clone()
        });
        let ok = is_sustainable(&report);
        reports.push(report);
        ok
    });
    (best, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtree_obs::Json;

    #[test]
    fn schedule_converges_to_threshold() {
        // True capacity 1000: every probe below is sustainable.
        let (best, probed) = saturation_schedule(100.0, 10, 20, |l| l <= 1000.0);
        assert!((best - 1000.0).abs() < 1.0, "best {best}");
        // Doubling bracket: 100, 200, 400, 800, 1600(fail), then bisect.
        assert_eq!(&probed[..5], &[100.0, 200.0, 400.0, 800.0, 1600.0]);
        assert_eq!(probed.len(), 5 + 20);
    }

    #[test]
    fn schedule_halves_down_when_start_is_unsustainable() {
        let (best, probed) = saturation_schedule(8000.0, 10, 20, |l| l <= 1000.0);
        assert!((best - 1000.0).abs() < 2.0, "best {best}");
        assert_eq!(&probed[..4], &[8000.0, 4000.0, 2000.0, 1000.0]);
    }

    #[test]
    fn schedule_handles_never_sustainable_and_never_saturated() {
        let (best, _) = saturation_schedule(100.0, 3, 5, |_| false);
        assert_eq!(best, 0.0);
        let (best, probed) = saturation_schedule(100.0, 3, 5, |_| true);
        assert_eq!(best, 800.0, "largest demonstrated rate");
        assert_eq!(probed, vec![100.0, 200.0, 400.0, 800.0]);
    }

    #[test]
    fn router_covers_the_workload_key_space() {
        let cfg = ServeConfig::quick(Protocol::BLink, 4, 1000.0);
        let router = cfg.router();
        // Paper workload: uniform over [0, 1M) — shards split that.
        assert_eq!(router.shard_of(0), 0);
        assert_eq!(router.shard_of(999_999), 3);
        assert_eq!(router.shard_of(250_000), 1);
    }

    #[test]
    fn serve_smoke_low_lambda_sheds_nothing() {
        let mut cfg = ServeConfig::quick(Protocol::BLink, 2, 2_000.0);
        cfg.initial_items = 2_000;
        let report = serve(&cfg);
        assert_eq!(report.shards, 2);
        assert!(report.offered() > 0, "no arrivals in the window");
        assert!(report.served() > 0);
        assert_eq!(report.shed(), 0, "low λ must not shed");
        assert!(report.shed_rate() == 0.0);
        // Every measured-window op got an outcome: served + shed =
        // offered is not exact (ops in flight at the window edges are
        // counted on the offered side only when *admission* fell inside
        // the window), but the drain guarantees served ≤ offered and
        // close to it at low λ.
        assert!(report.served() <= report.offered());
        assert_eq!(report.sojourn.total(), report.served());
        assert!(report.sojourn_mean_s > 0.0);
        assert!(report.sojourn.p50() <= report.sojourn.p999());
        for s in &report.per_shard {
            assert_eq!(s.sojourn.total(), s.served);
            assert!(s.queue_depth_hwm <= cfg.queue_capacity);
            assert!(s.final_len > 0, "prefill routed keys into every shard");
            assert!(!s.levels.is_empty());
        }
        // Shard ranges tile the key space.
        assert_eq!(report.per_shard[0].lo, 0);
        assert_eq!(report.per_shard[1].hi, u64::MAX);
        assert!(report.per_shard[0].hi + 1 == report.per_shard[1].lo);
    }

    #[test]
    fn serve_report_json_round_trips() {
        let mut cfg = ServeConfig::quick(Protocol::LockCoupling, 2, 1_500.0);
        cfg.initial_items = 1_000;
        cfg.measure = Duration::from_millis(80);
        let report = serve(&cfg);
        let j = report.to_json();
        let parsed = Json::parse(&j.to_string().unwrap()).unwrap();
        assert_eq!(parsed, j, "serialize → parse must be the identity");
        assert_eq!(
            parsed.get("type").and_then(Json::as_str),
            Some("serve_report")
        );
        assert_eq!(
            parsed.get("served").and_then(Json::as_u64),
            Some(report.served())
        );
        assert_eq!(
            parsed
                .get("shards_detail")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn tiny_queue_sheds_under_overload() {
        // One shard, one worker, a 4-deep queue, and a λ far beyond what
        // a single worker serves: admission control must shed rather
        // than queue without bound, and the sojourn of *served* ops
        // stays bounded by what a 4-deep queue can hold.
        let mut cfg = ServeConfig::quick(Protocol::BLink, 1, 200_000.0);
        cfg.initial_items = 1_000;
        cfg.queue_capacity = 4;
        cfg.generators = 2;
        cfg.measure = Duration::from_millis(100);
        let report = serve(&cfg);
        assert!(report.shed() > 0, "overload must shed");
        assert!(report.shed_rate() > 0.0);
        assert!(report.per_shard[0].queue_depth_hwm <= 4);
        assert!(!is_sustainable(&report));
    }

    #[test]
    fn batched_service_drains_and_accounts() {
        let mut cfg = ServeConfig::quick(Protocol::BLink, 1, 20_000.0);
        cfg.initial_items = 2_000;
        cfg.batch_max = 16;
        let report = serve(&cfg);
        assert!(report.served() > 0);
        assert_eq!(report.batch_max, 16);
        let s = &report.per_shard[0];
        assert!(s.batches > 0, "batched drain must have executed batches");
        assert!(
            s.batch.ops >= s.served,
            "every served op rode in a counted batch"
        );
        // Every op either reused the held leaf or paid a fresh descent;
        // fallback inserts pay one extra descent on top.
        assert_eq!(
            s.batch.descents,
            s.batch.ops - s.batch.leaf_reuses + s.batch.fallback_inserts,
            "descent accounting identity: {:?}",
            s.batch
        );
        // The per-size sums tile the batch accounting exactly.
        let n_ops: u64 = s
            .batch_sizes
            .iter()
            .map(|b| b.batches * u64::from(b.size))
            .sum();
        assert_eq!(n_ops, s.batch.ops);
        assert_eq!(
            s.batch_sizes.iter().map(|b| b.batches).sum::<u64>(),
            s.batches
        );
        // Sojourn decomposes into queue wait + batch wait + effective
        // service (up to clock-read jitter around the batch edges).
        let sum = s.queue_wait_mean_s + s.batch_wait_mean_s + s.service_mean_s;
        assert!(
            (sum - s.sojourn_mean_s).abs() <= 0.15 * s.sojourn_mean_s + 1e-3,
            "decomposition {sum} vs sojourn {}",
            s.sojourn_mean_s
        );
        assert!(s.counters.ops > 0, "window counters captured");
    }

    #[test]
    fn sequential_batches_amortize_descents() {
        // Append-only sequential keys: consecutive drained ops land in
        // the same rightmost leaf, so sorted-batch descent should serve
        // most of a batch from the held leaf. The service floor prices
        // each descent like a disk read, so a singleton server would
        // saturate at 1/floor = 10k ops/s — the 20k λ forces a backlog
        // that only batch amortization can drain.
        let mut cfg = ServeConfig::quick(Protocol::BLink, 1, 20_000.0);
        cfg.ops = OpsConfig {
            q_search: 0.0,
            q_insert: 1.0,
            q_delete: 0.0,
            keys: cbtree_workload::KeyDist::Sequential,
        };
        cfg.initial_items = 1_000;
        cfg.service_floor = Duration::from_micros(100);
        cfg.batch_max = 32;
        cfg.generators = 1;
        let report = serve(&cfg);
        let s = &report.per_shard[0];
        assert!(s.batches > 0);
        assert!(
            s.batch.leaf_reuses > 0,
            "sequential batches must reuse the held leaf: {:?}",
            s.batch
        );
        assert!(
            s.batch.descents < s.batch.ops,
            "amortization must beat one descent per op: {:?}",
            s.batch
        );
    }

    #[test]
    fn bursty_arrivals_run_end_to_end() {
        let mut cfg = ServeConfig::quick(Protocol::BLink, 2, 3_000.0);
        cfg.initial_items = 1_000;
        cfg.arrivals = ArrivalShape::OnOff {
            burstiness: 4.0,
            mean_on: Duration::from_millis(10),
        };
        let report = serve(&cfg);
        assert!(report.offered() > 0);
        assert!(report.served() > 0);
    }

    #[test]
    fn enqueue_age_timeout_sheds_stale_ops() {
        // Zero-tolerance deadline: every queued op is already too old at
        // dequeue, so everything offered times out and nothing is
        // served.
        let mut cfg = ServeConfig::quick(Protocol::BLink, 1, 5_000.0);
        cfg.initial_items = 500;
        cfg.max_enqueue_age = Some(Duration::ZERO);
        cfg.measure = Duration::from_millis(80);
        let report = serve(&cfg);
        assert_eq!(report.served(), 0);
        let timed_out: u64 = report.per_shard.iter().map(|s| s.timed_out).sum();
        assert!(timed_out > 0, "stale ops must be counted as timed out");
        assert!(report.per_shard[0].shed_wait.total() > 0);
    }
}
