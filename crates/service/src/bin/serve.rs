//! `serve`: drive the sharded trees under *open-loop* load and print
//! sojourn-time-under-load tables.
//!
//! ```text
//! cargo run --release -p cbtree-serve --bin serve -- \
//!     --algo blink --shards 4 --sweep 20000,50000,100000
//! ```

use cbtree_btree::Protocol;
use cbtree_obs::table::{fmt_f, Table};
use cbtree_obs::{replay, Json};
use cbtree_serve::{
    max_sustainable_lambda, serve, sweep, ArrivalShape, ServeConfig, ServeReport,
    SUSTAINABLE_SHED_RATE,
};
use cbtree_sync::SamplePeriod;
use cbtree_workload::{KeyDist, OpsConfig};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "\
usage: serve [options]

  --algo NAME        b-link | lock-coupling | optimistic | two-phase |
                     recovery-naive | recovery-leaf  (default b-link)
  --shards N         key-range shards, each an independent tree + queue
                     (default 2)
  --workers N        worker threads per shard (default 1)
  --batch-max N      most ops a worker drains and executes as one
                     sorted batch per wakeup, 1..=255 (default 1 =
                     singleton service)
  --generators N     open-loop generator threads (default 2)
  --lambda F         aggregate offered arrival rate, ops/s (default 50000)
  --sweep F,F,...    one measurement per listed lambda (the
                     lambda-vs-response-time curve)
  --saturate F       max-sustainable-rate search: bracket by doubling
                     from lambda F, then bisect
  --bisect N         bisection iterations for --saturate (default 4)
  --burstiness F     use bursty on-off arrivals with peak-to-mean ratio F
                     instead of Poisson (same long-run lambda)
  --mean-on-ms N     mean ON-burst length for --burstiness (default 10)
  --service-floor-us N
                     minimum service time per op: workers sleep out the
                     remainder, emulating disk-resident nodes (default 0
                     = raw in-memory tree speed)
  --queue-cap N      per-shard ingress queue bound; arrivals beyond it
                     are shed (default 4096)
  --max-age-ms N     shed queued ops older than N ms at dequeue
                     (default: no age limit)
  --capacity N       max keys per node (default 64)
  --items N          keys prefilled across all shards (default 50000)
  --keyspace N       key space size (default 1000000)
  --key-dist SPEC    key distribution over the key space:
                     uniform | zipf:<theta> | seq  (default uniform;
                     seq appends above the prefill — the workload where
                     sorted-batch descent amortizes hardest)
  --mix S,I,D        operation mix, must sum to 1 (default 0.3,0.5,0.2)
  --warmup-ms N      untimed warmup (default 200)
  --measure-ms N     measured window (default 1000)
  --seed N           seed for arrivals and workloads (default 386174)
  --sample-every N   time 1 in N lock acquisitions (default 1 = exact)
  --assert-low-shed  exit nonzero unless the lowest-lambda measurement
                     shed no operations (CI guard)
  --json PATH        write the run as JSONL records: meta, one
                     serve_report per measurement, and (single-run mode,
                     built with --features trace) the drained events
  --trace-buf N      per-thread trace ring capacity (needs trace)
  -h, --help         print this help
";

enum Mode {
    Single,
    Sweep(Vec<f64>),
    Saturate(f64),
}

struct Args {
    cfg: ServeConfig,
    mode: Mode,
    bisect: usize,
    json: Option<PathBuf>,
    assert_low_shed: bool,
    trace_buf: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = ServeConfig::paper(Protocol::BLink, 2, 50_000.0);
    let mut keyspace = 1_000_000u64;
    let mut key_dist = String::from("uniform");
    let mut mix = (0.3, 0.5, 0.2);
    let mut mode = Mode::Single;
    let mut bisect = 4usize;
    let mut burstiness: Option<f64> = None;
    let mut mean_on = Duration::from_millis(10);
    let mut json = None;
    let mut assert_low_shed = false;
    let mut trace_buf = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} requires an argument"))
        };
        match flag.as_str() {
            "--algo" => cfg.protocol = value()?.parse()?,
            "--shards" => {
                cfg.shards = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
                if cfg.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--workers" => {
                cfg.workers_per_shard = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--batch-max" => {
                cfg.batch_max = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
                if !(1..=255).contains(&cfg.batch_max) {
                    return Err("--batch-max must be in 1..=255".into());
                }
            }
            "--generators" => {
                cfg.generators = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--lambda" => cfg.lambda = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--sweep" => {
                let v = value()?;
                let lambdas: Vec<f64> = v
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--sweep {v}: {e}"))?;
                if lambdas.is_empty() || lambdas.iter().any(|&l| !(l.is_finite() && l > 0.0)) {
                    return Err(format!("--sweep needs positive rates, got {v:?}"));
                }
                mode = Mode::Sweep(lambdas);
            }
            "--saturate" => {
                mode = Mode::Saturate(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--bisect" => bisect = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--burstiness" => {
                burstiness = Some(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--mean-on-ms" => {
                mean_on =
                    Duration::from_millis(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--service-floor-us" => {
                cfg.service_floor =
                    Duration::from_micros(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--queue-cap" => {
                cfg.queue_capacity = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--max-age-ms" => {
                cfg.max_enqueue_age = Some(Duration::from_millis(
                    value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
                ));
            }
            "--capacity" => cfg.capacity = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--items" => {
                cfg.initial_items = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--keyspace" => keyspace = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--key-dist" => key_dist = value()?,
            "--mix" => {
                let v = value()?;
                let parts: Vec<f64> = v
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--mix {v}: {e}"))?;
                if parts.len() != 3 {
                    return Err(format!("--mix needs three components, got {v:?}"));
                }
                mix = (parts[0], parts[1], parts[2]);
            }
            "--warmup-ms" => {
                cfg.warmup =
                    Duration::from_millis(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--measure-ms" => {
                cfg.measure =
                    Duration::from_millis(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--seed" => cfg.seed = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--sample-every" => {
                cfg.stats_sampling =
                    SamplePeriod::every(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--assert-low-shed" => assert_low_shed = true,
            "--json" => json = Some(PathBuf::from(value()?)),
            "--trace-buf" => {
                let n: usize = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
                if n == 0 {
                    return Err("--trace-buf must be positive".into());
                }
                trace_buf = Some(n);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    if let Some(b) = burstiness {
        cfg.arrivals = ArrivalShape::OnOff {
            burstiness: b,
            mean_on,
        };
    }
    cfg.ops = OpsConfig {
        q_search: mix.0,
        q_insert: mix.1,
        q_delete: mix.2,
        keys: KeyDist::parse_cli(&key_dist, keyspace)?,
    };
    if !cfg.ops.is_valid() {
        return Err(format!(
            "operation mix {}/{}/{} does not sum to 1",
            mix.0, mix.1, mix.2
        ));
    }
    Ok(Args {
        cfg,
        mode,
        bisect,
        json,
        assert_low_shed,
        trace_buf,
    })
}

/// The `meta` JSONL record for a serve run.
fn meta_json(cfg: &ServeConfig) -> Json {
    let arrivals = match cfg.arrivals {
        ArrivalShape::Poisson => Json::obj(vec![("shape", "poisson".into())]),
        ArrivalShape::OnOff {
            burstiness,
            mean_on,
        } => Json::obj(vec![
            ("shape", "on_off".into()),
            ("burstiness", Json::f64_or_null(burstiness)),
            ("mean_on_s", Json::f64_or_null(mean_on.as_secs_f64())),
        ]),
    };
    Json::obj(vec![
        ("type", "meta".into()),
        ("schema", cbtree_obs::SCHEMA_VERSION.into()),
        ("kind", "serve_run".into()),
        ("protocol", cfg.protocol.name().into()),
        ("shards", cfg.shards.into()),
        ("workers_per_shard", cfg.workers_per_shard.into()),
        ("batch_max", cfg.batch_max.into()),
        ("generators", cfg.generators.into()),
        ("arrivals", arrivals),
        (
            "service_floor_us",
            u64::try_from(cfg.service_floor.as_micros())
                .unwrap_or(u64::MAX)
                .into(),
        ),
        ("queue_capacity", cfg.queue_capacity.into()),
        (
            "max_enqueue_age_ms",
            match cfg.max_enqueue_age {
                Some(d) => u64::try_from(d.as_millis()).unwrap_or(u64::MAX).into(),
                None => Json::Null,
            },
        ),
        ("capacity", cfg.capacity.into()),
        ("initial_items", cfg.initial_items.into()),
        (
            "mix",
            Json::arr([
                cfg.ops.q_search.into(),
                cfg.ops.q_insert.into(),
                cfg.ops.q_delete.into(),
            ]),
        ),
        ("keyspace", cfg.ops.keys.span().into()),
        ("key_dist", cfg.ops.keys.name().into()),
        ("seed", cfg.seed.into()),
        (
            "warmup_ms",
            u64::try_from(cfg.warmup.as_millis())
                .unwrap_or(u64::MAX)
                .into(),
        ),
        (
            "measure_ms",
            u64::try_from(cfg.measure.as_millis())
                .unwrap_or(u64::MAX)
                .into(),
        ),
    ])
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn print_report(report: &ServeReport) {
    println!(
        "open-loop window {:.3} s | lambda {:.0} offered, {:.0}/s arrived, {:.0}/s served | shed {:.2}%",
        report.measured_time,
        report.lambda,
        report.offered_rate(),
        report.achieved_rate(),
        report.shed_rate() * 100.0,
    );
    println!(
        "sojourn (us): mean {:.2} | p50 {:.2} | p99 {:.2} | p999 {:.2}  (queue wait + service, {} served ops)",
        report.sojourn_mean_s * 1e6,
        us(report.sojourn.p50()),
        us(report.sojourn.p99()),
        us(report.sojourn.p999()),
        report.served(),
    );
    let mut t = Table::new(
        "per-shard behavior",
        &[
            "shard",
            "offered",
            "served",
            "shed%",
            "q-hwm",
            "soj-p50(us)",
            "soj-p99(us)",
            "soj-p999(us)",
            "svc-mean(us)",
            "keys",
        ],
    );
    for s in &report.per_shard {
        t.push(vec![
            s.shard.to_string(),
            s.offered.to_string(),
            s.served.to_string(),
            fmt_f(s.shed_rate() * 100.0, 2),
            s.queue_depth_hwm.to_string(),
            fmt_f(us(s.sojourn.p50()), 2),
            fmt_f(us(s.sojourn.p99()), 2),
            fmt_f(us(s.sojourn.p999()), 2),
            fmt_f(s.service_mean_s * 1e6, 2),
            s.final_len.to_string(),
        ]);
    }
    t.print();
    if report.per_shard.iter().any(|s| s.batches > 0) {
        let mut b = Table::new(
            "per-shard batched execution",
            &[
                "shard",
                "batches",
                "mean-size",
                "descents/op",
                "reuse%",
                "latch/op",
                "q-wait(us)",
                "b-wait(us)",
            ],
        );
        for s in &report.per_shard {
            if s.batches == 0 {
                continue;
            }
            let ops = s.batch.ops.max(1) as f64;
            b.push(vec![
                s.shard.to_string(),
                s.batches.to_string(),
                fmt_f(ops / s.batches as f64, 2),
                fmt_f(s.batch.descents as f64 / ops, 3),
                fmt_f(s.batch.leaf_reuses as f64 / ops * 100.0, 1),
                fmt_f(s.counters.latches_per_op(), 2),
                fmt_f(s.queue_wait_mean_s * 1e6, 2),
                fmt_f(s.batch_wait_mean_s * 1e6, 2),
            ]);
        }
        b.print();
    }
    if !report.trace.is_empty() {
        println!(
            "trace: {} events from {} threads ({} dropped)",
            report.trace.events.len(),
            report.trace.threads,
            report.trace.dropped
        );
    }
}

fn print_curve(reports: &[ServeReport]) {
    let mut t = Table::new(
        "lambda vs response time",
        &[
            "lambda",
            "offered/s",
            "served/s",
            "shed%",
            "soj-mean(us)",
            "soj-p50(us)",
            "soj-p99(us)",
            "soj-p999(us)",
        ],
    );
    for r in reports {
        t.push(vec![
            fmt_f(r.lambda, 0),
            fmt_f(r.offered_rate(), 0),
            fmt_f(r.achieved_rate(), 0),
            fmt_f(r.shed_rate() * 100.0, 2),
            fmt_f(r.sojourn_mean_s * 1e6, 2),
            fmt_f(us(r.sojourn.p50()), 2),
            fmt_f(us(r.sojourn.p99()), 2),
            fmt_f(us(r.sojourn.p999()), 2),
        ]);
    }
    t.print();
}

fn write_json(
    path: &std::path::Path,
    cfg: &ServeConfig,
    reports: &[ServeReport],
) -> Result<(), String> {
    let mut records = vec![meta_json(cfg)];
    records.extend(reports.iter().map(ServeReport::to_json));
    // Single-run mode inlines the drained trace (a sweep's would dwarf
    // the reports).
    if let [only] = reports {
        if !only.trace.is_empty() {
            records.push(only.trace.info_json());
            records.push(replay(&only.trace).to_json());
            records.extend(only.trace.events.iter().map(|e| e.to_json()));
        }
    }
    cbtree_obs::write_jsonl(path, &records)
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    // Read-back guard: every record must round-trip through the parser,
    // so downstream analyzers never meet a half-written artifact.
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("re-reading {}: {e}", path.display()))?;
    for (i, line) in text.lines().enumerate() {
        Json::parse(line)
            .map_err(|e| format!("{}:{}: round-trip failed: {e}", path.display(), i + 1))?;
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    if let Some(n) = args.trace_buf {
        cbtree_obs::trace::set_default_ring_capacity(n);
    }

    println!(
        "service: {} | {} shards x {} workers | batch max {} | {} keys | {} generators | queue cap {}{}",
        args.cfg.protocol.name(),
        args.cfg.shards,
        args.cfg.workers_per_shard,
        args.cfg.batch_max,
        args.cfg.ops.keys.name(),
        args.cfg.generators,
        args.cfg.queue_capacity,
        match args.cfg.arrivals {
            ArrivalShape::Poisson => String::new(),
            ArrivalShape::OnOff { burstiness, .. } =>
                format!(" | on-off arrivals, burstiness {burstiness}"),
        },
    );

    let reports: Vec<ServeReport> = match &args.mode {
        Mode::Single => {
            let report = serve(&args.cfg);
            print_report(&report);
            vec![report]
        }
        Mode::Sweep(lambdas) => {
            let reports = sweep(&args.cfg, lambdas);
            print_curve(&reports);
            reports
        }
        Mode::Saturate(lambda0) => {
            println!(
                "saturation search from lambda {lambda0:.0} ({} bisections, shed bound {:.1}%)",
                args.bisect,
                SUSTAINABLE_SHED_RATE * 100.0
            );
            let (best, reports) = max_sustainable_lambda(&args.cfg, *lambda0, args.bisect);
            print_curve(&reports);
            println!("max sustainable arrival rate: {best:.0} ops/s");
            reports
        }
    };

    if let Some(path) = &args.json {
        if let Err(e) = write_json(path, &args.cfg, &reports) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    if args.assert_low_shed {
        // CI guard: the *least-loaded* measurement must shed nothing —
        // if it does, admission control is broken (or the smoke sweep's
        // lowest lambda is mis-sized for the machine).
        let least = reports
            .iter()
            .min_by(|a, b| a.lambda.total_cmp(&b.lambda))
            .expect("at least one measurement");
        if least.shed() > 0 {
            eprintln!(
                "error: lowest-lambda run ({:.0} ops/s) shed {} of {} offered ops",
                least.lambda,
                least.shed(),
                least.offered()
            );
            std::process::exit(1);
        }
        println!(
            "assert-low-shed: ok (lambda {:.0} shed nothing)",
            least.lambda
        );
    }
}
