//! One shard: an independent concurrent B+-tree, its bounded ingress
//! queue, and the worker loop that drains the queue into the tree.

use crate::queue::{IngressQueue, QueuedOp, Shed};
use cbtree_btree::ConcurrentBTree;
use cbtree_obs::event::shed as shed_reason;
use cbtree_obs::trace;
use cbtree_sync::Histogram;
use cbtree_workload::Operation;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shard's shared runtime state.
pub(crate) struct ShardRuntime {
    /// The shard's own tree — no key ever crosses shards.
    pub tree: Arc<ConcurrentBTree<u64>>,
    /// The shard's bounded ingress queue.
    pub queue: Arc<IngressQueue>,
}

/// Per-worker measurement accumulators, merged at join. Workers never
/// share these, so the measurement path adds no synchronization beyond
/// the queue itself.
#[derive(Default)]
pub(crate) struct WorkerLocal {
    pub served: u64,
    pub timed_out: u64,
    /// Sojourn (enqueue → completion) of served ops, ns.
    pub sojourn: Histogram,
    pub sojourn_sum_ns: u64,
    /// Queue age of timed-out ops at shed, ns.
    pub shed_wait: Histogram,
    /// Service time (dequeue → completion) raw moment sums, seconds.
    pub service_sum_s: f64,
    pub service_sum_sq_s2: f64,
}

fn apply(tree: &ConcurrentBTree<u64>, op: Operation) {
    match op {
        Operation::Search(k) => {
            std::hint::black_box(tree.get(&k));
        }
        Operation::Insert(k) => {
            std::hint::black_box(tree.insert(k, k));
        }
        Operation::Delete(k) => {
            std::hint::black_box(tree.remove(&k));
        }
    }
}

/// Drains the shard's queue until it is closed and empty.
///
/// Admission control's second gate lives here: an operation whose queue
/// wait already exceeds `max_age` at dequeue is shed (counted, its age
/// recorded) instead of served — under overload the queue would
/// otherwise serve only operations that have already blown any
/// deadline. Metrics are recorded only for operations that arrived
/// inside the measured window.
///
/// `service_floor` pads every served operation to a minimum service
/// time by sleeping out the remainder — the open-loop analogue of the
/// paper's disk-resident node cost: an in-memory tree op takes ~1 µs,
/// which pins utilization near zero at any arrival rate a generator
/// can pace; the floor makes `ρ = λ·E[X]` controllable so the
/// λ-vs-sojourn curve actually exercises the queueing regime. Sleeping
/// (not spinning) emulates I/O: a waiting server burns no CPU.
pub(crate) fn worker_loop(
    shard: u16,
    tree: &ConcurrentBTree<u64>,
    queue: &IngressQueue,
    max_age: Option<Duration>,
    service_floor: Duration,
) -> WorkerLocal {
    let mut local = WorkerLocal::default();
    while let Some(q) = queue.pop() {
        let wait = q.enqueued.elapsed();
        if let Some(limit) = max_age {
            if wait > limit {
                if q.measured {
                    local.timed_out += 1;
                    local
                        .shed_wait
                        .record(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
                }
                trace::shed(shard, shed_reason::TIMEOUT, q.op.key());
                continue;
            }
        }
        trace::dequeue(shard, q.op.key());
        let t0 = Instant::now();
        apply(tree, q.op);
        if let Some(pad) = service_floor.checked_sub(t0.elapsed()) {
            if !pad.is_zero() {
                std::thread::sleep(pad);
            }
        }
        let service = t0.elapsed().as_secs_f64();
        let sojourn = q.enqueued.elapsed();
        if q.measured {
            local.served += 1;
            let ns = u64::try_from(sojourn.as_nanos()).unwrap_or(u64::MAX);
            local.sojourn.record(ns);
            local.sojourn_sum_ns = local.sojourn_sum_ns.saturating_add(ns);
            local.service_sum_s += service;
            local.service_sum_sq_s2 += service * service;
        }
    }
    local
}

/// Outcome counters a generator keeps per shard.
#[derive(Debug, Default, Clone)]
pub(crate) struct GenLocal {
    pub offered: Vec<u64>,
    pub rejected: Vec<u64>,
}

impl GenLocal {
    pub fn new(shards: usize) -> Self {
        GenLocal {
            offered: vec![0; shards],
            rejected: vec![0; shards],
        }
    }
}

/// Routes one arrival into its shard queue, tracking measured-window
/// admission outcomes.
pub(crate) fn offer(
    runtime: &ShardRuntime,
    shard: usize,
    op: Operation,
    measured: bool,
    gen: &mut GenLocal,
) {
    if measured {
        gen.offered[shard] += 1;
    }
    let item = QueuedOp {
        op,
        enqueued: Instant::now(),
        measured,
    };
    match runtime.queue.try_push(item) {
        Ok(()) => trace::enqueue(shard as u16, op.key()),
        Err(Shed::QueueFull) | Err(Shed::Timeout) => {
            if measured {
                gen.rejected[shard] += 1;
            }
            trace::shed(shard as u16, shed_reason::QUEUE_FULL, op.key());
        }
    }
}
