//! One shard: an independent concurrent B+-tree, its bounded ingress
//! ring, and the worker loop that drains the ring into the tree in
//! batches.

use crate::queue::{IngressQueue, QueuedOp, Shed};
use cbtree_btree::{BatchOp, BatchSummary, ConcurrentBTree};
use cbtree_obs::event::shed as shed_reason;
use cbtree_obs::trace;
use cbtree_sync::Histogram;
use cbtree_workload::Operation;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shard's shared runtime state.
pub(crate) struct ShardRuntime {
    /// The shard's own tree — no key ever crosses shards.
    pub tree: Arc<ConcurrentBTree<u64>>,
    /// The shard's bounded ingress queue.
    pub queue: Arc<IngressQueue>,
}

/// Per-worker measurement accumulators, merged at join. Workers never
/// share these, so the measurement path adds no synchronization beyond
/// the queue itself.
#[derive(Default)]
pub(crate) struct WorkerLocal {
    pub served: u64,
    pub timed_out: u64,
    /// Sojourn (enqueue → batch completion) of served ops, ns.
    pub sojourn: Histogram,
    pub sojourn_sum_ns: u64,
    /// Queue age of timed-out ops at shed, ns.
    pub shed_wait: Histogram,
    /// Effective per-op service (`S/k` for an op in a size-`k` batch
    /// whose whole-batch service was `S`) raw moment sums, seconds.
    /// For `batch_max = 1` this is exactly the singleton service time.
    pub service_sum_s: f64,
    pub service_sum_sq_s2: f64,
    /// Queue-wait component of sojourn (enqueue → drain), ns.
    pub queue_wait_sum_ns: u64,
    /// Batch-wait component (time inside the batch busy period spent on
    /// the *other* ops of the batch, `S·(k−1)/k`), ns. Sojourn
    /// decomposes as queue-wait + batch-wait + effective service.
    pub batch_wait_sum_ns: u64,
    /// Batches this worker executed that contained a measured op.
    pub batches: u64,
    /// Descent accounting summed over those batches.
    pub batch_summary: BatchSummary,
    /// Per-batch-size `(batches, ΣS, ΣS²)` sums (seconds), indexed by
    /// batch size — the inputs to the M/G/c batch-service transform.
    pub batch_sizes: Vec<(u64, f64, f64)>,
}

/// Drains the shard's queue until it is closed and empty, up to
/// `batch_max` operations per wakeup, executing each drained batch
/// through the tree's sorted-batch descent.
///
/// Admission control's second gate lives here: an operation whose queue
/// wait already exceeds `max_age` at drain is shed (counted, its age
/// recorded) instead of served — under overload the queue would
/// otherwise serve only operations that have already blown any
/// deadline. Metrics are recorded only for operations that arrived
/// inside the measured window.
///
/// `service_floor` pads each batch to a minimum of one floor *per
/// descent actually paid* by sleeping out the remainder — the open-loop
/// analogue of the paper's disk-resident node cost: an in-memory tree
/// op takes ~1 µs, which pins utilization near zero at any arrival rate
/// a generator can pace; the floor makes `ρ = λ·E[X]` controllable.
/// Charging per *descent* rather than per *op* is what lets batching
/// show up in the service distribution: a batch that reuses its held
/// leaf for `k − 1` of `k` ops pays one emulated I/O where singleton
/// execution pays `k`. Sleeping (not spinning) emulates I/O: a waiting
/// server burns no CPU.
pub(crate) fn worker_loop(
    shard: u16,
    tree: &ConcurrentBTree<u64>,
    queue: &IngressQueue,
    max_age: Option<Duration>,
    service_floor: Duration,
    batch_max: usize,
) -> WorkerLocal {
    let mut local = WorkerLocal::default();
    let mut drained: Vec<QueuedOp> = Vec::with_capacity(batch_max);
    let mut accepted: Vec<QueuedOp> = Vec::with_capacity(batch_max);
    loop {
        drained.clear();
        if queue.pop_batch(batch_max, &mut drained) == 0 {
            break;
        }
        accepted.clear();
        for q in &drained {
            let wait = q.enqueued.elapsed();
            if let Some(limit) = max_age {
                if wait > limit {
                    if q.measured {
                        local.timed_out += 1;
                        local
                            .shed_wait
                            .record(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
                    }
                    trace::shed(shard, shed_reason::TIMEOUT, q.op.key());
                    continue;
                }
            }
            trace::dequeue(shard, q.op.key());
            accepted.push(*q);
        }
        if accepted.is_empty() {
            continue;
        }
        let k = accepted.len();
        let ops: Vec<BatchOp<u64>> = accepted
            .iter()
            .map(|q| match q.op {
                Operation::Search(key) => BatchOp::Get(key),
                Operation::Insert(key) => BatchOp::Insert(key, key),
                Operation::Delete(key) => BatchOp::Remove(key),
            })
            .collect();
        trace::batch_begin(shard, k);
        let t0 = Instant::now();
        let outcome = tree.execute_batch(ops);
        std::hint::black_box(&outcome.results);
        let floor_total = service_floor
            .checked_mul(u32::try_from(outcome.summary.descents).unwrap_or(u32::MAX))
            .unwrap_or(Duration::MAX);
        if let Some(pad) = floor_total.checked_sub(t0.elapsed()) {
            if !pad.is_zero() {
                std::thread::sleep(pad);
            }
        }
        let service = t0.elapsed();
        trace::batch_end(shard, k, outcome.summary.leaf_reuses);
        // Batch-level accounting follows the measurement window: only
        // batches carrying at least one measured op count, so warmup
        // batches don't pollute the service moments.
        if accepted.iter().any(|q| q.measured) {
            local.batches += 1;
            local.batch_summary.merge(&outcome.summary);
            if local.batch_sizes.len() <= k {
                local.batch_sizes.resize(k + 1, (0, 0.0, 0.0));
            }
            let s = service.as_secs_f64();
            let entry = &mut local.batch_sizes[k];
            entry.0 += 1;
            entry.1 += s;
            entry.2 += s * s;
        }
        let eff_s = service.as_secs_f64() / k as f64;
        let service_ns = u64::try_from(service.as_nanos()).unwrap_or(u64::MAX);
        let batch_wait_ns = service_ns - service_ns / k as u64;
        for q in &accepted {
            if !q.measured {
                continue;
            }
            local.served += 1;
            let sojourn = q.enqueued.elapsed();
            let ns = u64::try_from(sojourn.as_nanos()).unwrap_or(u64::MAX);
            local.sojourn.record(ns);
            local.sojourn_sum_ns = local.sojourn_sum_ns.saturating_add(ns);
            let qw = t0.saturating_duration_since(q.enqueued);
            local.queue_wait_sum_ns = local
                .queue_wait_sum_ns
                .saturating_add(u64::try_from(qw.as_nanos()).unwrap_or(u64::MAX));
            local.batch_wait_sum_ns = local.batch_wait_sum_ns.saturating_add(batch_wait_ns);
            local.service_sum_s += eff_s;
            local.service_sum_sq_s2 += eff_s * eff_s;
        }
    }
    local
}

/// Outcome counters a generator keeps per shard.
#[derive(Debug, Default, Clone)]
pub(crate) struct GenLocal {
    pub offered: Vec<u64>,
    pub rejected: Vec<u64>,
}

impl GenLocal {
    pub fn new(shards: usize) -> Self {
        GenLocal {
            offered: vec![0; shards],
            rejected: vec![0; shards],
        }
    }
}

/// Routes one arrival into its shard queue, tracking measured-window
/// admission outcomes.
pub(crate) fn offer(
    runtime: &ShardRuntime,
    shard: usize,
    op: Operation,
    measured: bool,
    gen: &mut GenLocal,
) {
    if measured {
        gen.offered[shard] += 1;
    }
    let item = QueuedOp {
        op,
        enqueued: Instant::now(),
        measured,
    };
    match runtime.queue.try_push(item) {
        Ok(()) => trace::enqueue(shard as u16, op.key()),
        Err(Shed::QueueFull) | Err(Shed::Timeout) => {
            if measured {
                gen.rejected[shard] += 1;
            }
            trace::shed(shard as u16, shed_reason::QUEUE_FULL, op.key());
        }
    }
}
