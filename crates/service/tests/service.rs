//! Integration tests for the open-loop service layer: router partition
//! properties, saturation behavior of admission control, and a
//! differential check against the closed-loop harness.

use cbtree_btree::Protocol;
use cbtree_harness::LiveConfig;
use cbtree_serve::{serve, KeyRangeRouter, ServeConfig};
use cbtree_workload::Rng;
use std::time::Duration;

/// Property test over every shard count in `1..=16`: the ranges are
/// contiguous, tile the whole `u64` key space with no gap or overlap,
/// are balanced to within one key, and `shard_of` is the exact inverse
/// of `range` — checked at every boundary and on a fuzzed key sample.
#[test]
fn router_partitions_tile_the_key_space() {
    let mut rng = Rng::new(0xDECAF);
    for m in 1..=16usize {
        let r = KeyRangeRouter::new(m);
        let mut next_lo = Some(0u64);
        let mut sizes = Vec::with_capacity(m);
        for i in 0..m {
            let (lo, hi) = r.range(i);
            assert_eq!(Some(lo), next_lo, "m={m}: shard {i} leaves a gap");
            assert!(hi >= lo, "m={m}: shard {i} range inverted");
            sizes.push(u128::from(hi) - u128::from(lo) + 1);
            // Every boundary key belongs to its own shard, and the key
            // just below to the previous one.
            assert_eq!(r.shard_of(lo), i, "m={m}: lo of shard {i}");
            assert_eq!(r.shard_of(hi), i, "m={m}: hi of shard {i}");
            if i > 0 {
                assert_eq!(r.shard_of(lo - 1), i - 1, "m={m}: below shard {i}");
            }
            next_lo = hi.checked_add(1);
        }
        assert_eq!(next_lo, None, "m={m}: ranges must end at u64::MAX");
        let spread = sizes.iter().max().unwrap() - sizes.iter().min().unwrap();
        assert!(spread <= 1, "m={m}: range sizes differ by {spread}");
        // Fuzzed keys: `shard_of` agrees with the owning range (which,
        // with the tiling above, proves every key maps to exactly one
        // shard).
        for _ in 0..4096 {
            let k = rng.next_u64();
            let s = r.shard_of(k);
            let (lo, hi) = r.range(s);
            assert!(
                (lo..=hi).contains(&k),
                "m={m}: key {k} routed to shard {s} [{lo}, {hi}]"
            );
        }
    }
}

/// The same tiling properties hold for bounded key spaces, with the
/// clamped tail keys folded into the last shard.
#[test]
fn bounded_router_partitions_tile_their_space() {
    let mut rng = Rng::new(0xB0B);
    for _ in 0..64 {
        let m = 1 + rng.next_below(16) as usize;
        let space = m as u64 + rng.next_below(10_000_000);
        let r = KeyRangeRouter::with_space(m, Some(space));
        let mut next_lo = Some(0u64);
        for i in 0..m {
            let (lo, hi) = r.range(i);
            assert_eq!(Some(lo), next_lo, "m={m} space={space}: gap at {i}");
            assert_eq!(r.shard_of(lo), i);
            assert_eq!(r.shard_of(hi), i);
            next_lo = hi.checked_add(1);
        }
        assert_eq!(next_lo, None);
        for _ in 0..512 {
            let k = rng.next_below(space);
            let s = r.shard_of(k);
            let (lo, hi) = r.range(s);
            assert!((lo..=hi).contains(&k));
        }
        assert_eq!(r.shard_of(space), m - 1, "first clamped key");
        assert_eq!(r.shard_of(u64::MAX), m - 1, "largest clamped key");
    }
}

/// Past saturation, admission control must keep the sojourn of
/// *accepted* operations bounded by what the queue can hold and report
/// the overflow as shed — the open loop's answer to "what happens when
/// λ exceeds capacity".
#[test]
fn past_saturation_bounded_queue_bounds_accepted_sojourn() {
    let mut cfg = ServeConfig::quick(Protocol::BLink, 1, 2_000.0);
    cfg.initial_items = 1_000;
    cfg.generators = 1;
    // 1 ms service floor → capacity ≈ 1000 ops/s, so λ = 2000 offers 2×
    // capacity. An 8-deep queue bounds any accepted op's sojourn to
    // roughly (8 + 1) services.
    cfg.service_floor = Duration::from_millis(1);
    cfg.queue_capacity = 8;
    cfg.warmup = Duration::from_millis(100);
    cfg.measure = Duration::from_millis(500);
    let report = serve(&cfg);

    assert!(report.offered() > 0);
    assert!(report.shed() > 0, "2x overload must shed");
    let shed_rate = report.shed_rate();
    assert!(
        shed_rate > 0.2,
        "2x overload should shed a large fraction, got {shed_rate}"
    );
    // p99 sojourn of *served* ops stays near the queue-bound ceiling:
    // (capacity + 1) services plus generous scheduling slop.
    let p99_s = report.sojourn.p99() as f64 * 1e-9;
    let ceiling = (cfg.queue_capacity as f64 + 2.0) * 4.0 * 1e-3;
    assert!(
        p99_s < ceiling,
        "p99 sojourn {p99_s}s exceeds the queue-bounded ceiling {ceiling}s"
    );
    assert!(report.per_shard[0].queue_depth_hwm <= cfg.queue_capacity);
}

/// Differential sanity: a closed-loop `live` run and an open-loop
/// `serve` run on the same protocol, tree, and mix must agree on the
/// per-completion leaf-level exclusive lock demand — `ρ_w · nodes /
/// rate`, the total leaf write-hold seconds each completed operation
/// induces. (Raw `ρ_w` is a per-node average, which the faster-growing
/// closed-loop tree dilutes; multiplying the node count back makes the
/// quantity a property of the *operation*, not of how the load
/// arrives, as long as both runs sit at low utilization.) The loose
/// tolerance absorbs scheduler noise; the assert still catches
/// structural divergence (a service layer that skipped ops,
/// double-counted, or mis-windowed its snapshot diff would be off by
/// far more).
#[test]
fn open_and_closed_loop_agree_on_per_op_lock_demand() {
    let protocol = Protocol::BLink;
    let mut live_cfg = LiveConfig::quick(protocol, 1);
    live_cfg.measure = Duration::from_millis(400);
    live_cfg.seed = 0xD1FF;
    let live = cbtree_harness::run(&live_cfg);
    assert!(live.completed > 0);
    let live_leaf = &live.levels[0];
    assert!(live_leaf.stats.w_acquires > 0);
    let live_demand = live_leaf.rho_w * live_leaf.nodes as f64 / live.throughput;

    // Open loop at ~25% of the closed loop's throughput: comfortably
    // sustainable, so both runs sit in the low-utilization regime where
    // per-op demand is rate-independent.
    let mut serve_cfg = ServeConfig::quick(protocol, 1, (live.throughput / 4.0).max(500.0));
    serve_cfg.generators = 1;
    serve_cfg.seed = 0xD1FF;
    serve_cfg.measure = Duration::from_millis(400);
    let open = serve(&serve_cfg);
    assert!(open.served() > 0);
    assert_eq!(open.shed(), 0, "quarter-rate load must not shed");
    let open_leaf = &open.per_shard[0].levels[0];
    assert!(open_leaf.stats.w_acquires > 0);
    let open_demand = open_leaf.rho_w * open_leaf.nodes as f64 / open.achieved_rate();

    assert!(
        live_demand > 0.0 && open_demand > 0.0,
        "both loops must measure nonzero leaf writer demand"
    );
    let ratio = open_demand / live_demand;
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "per-op leaf writer demand diverged: open {open_demand:.3e} vs live {live_demand:.3e} \
         s/op (ratio {ratio:.2})"
    );
}

/// With tracing compiled in, a serve run's drained trace carries the
/// ingress-queue life cycle: enqueues pair with dequeues and the shed
/// count matches the report.
#[cfg(feature = "trace")]
#[test]
fn traced_serve_run_records_queue_events() {
    use cbtree_obs::replay;
    cbtree_obs::trace::set_default_ring_capacity(1 << 17);
    let mut cfg = ServeConfig::quick(Protocol::BLink, 2, 2_000.0);
    cfg.initial_items = 1_000;
    let report = serve(&cfg);
    let t = &report.trace;
    assert!(!t.events.is_empty(), "traced run produced no events");
    let r = replay(t);
    assert!(r.enqueues > 0, "no enqueue events drained");
    assert!(r.dequeues > 0, "no dequeue events drained");
    // Low λ: nothing shed, and (drops aside) queue events balance.
    assert_eq!(r.sheds, 0);
    if t.dropped == 0 {
        assert!(
            r.dequeues <= r.enqueues,
            "more dequeues ({}) than enqueues ({})",
            r.dequeues,
            r.enqueues
        );
    }
}
