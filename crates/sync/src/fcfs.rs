//! The FCFS reader/writer lock.
//!
//! Requests are served strictly in arrival order from a single ticketed
//! queue: a reader that arrives behind a waiting writer queues behind it
//! (no reader overtaking), and when a writer releases, the maximal
//! *prefix* of queued readers is admitted as one burst. This is exactly
//! the lock discipline of the paper's queueing model (Theorem 6 solves an
//! FCFS R/W queue with arrival-order reader bursts) and of the simulator's
//! `LockTable` — so measurements taken on this lock are directly
//! comparable with both.
//!
//! The implementation is dependency-free: one `std::sync::Mutex` guards
//! the queue state and one `Condvar` parks waiters. An uncontended
//! acquisition locks the mutex once and takes a single `Instant` reading
//! (the hold-time start); a contended one additionally timestamps its
//! queue entry so the embedded [`LockStats`] can histogram the wait.

use crate::stats::LockStats;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Queue/holder state, all under one mutex.
#[derive(Debug, Default)]
struct State {
    active_readers: usize,
    writer_active: bool,
    next_id: u64,
    /// Waiting requests in arrival order: `(ticket, exclusive)`.
    queue: VecDeque<(u64, bool)>,
    /// Tickets granted by a releaser but not yet observed by their waiter
    /// (holder counts are already updated when a ticket lands here).
    granted: Vec<u64>,
}

impl State {
    fn compatible(&self, exclusive: bool) -> bool {
        if exclusive {
            !self.writer_active && self.active_readers == 0
        } else {
            !self.writer_active
        }
    }

    fn admit(&mut self, exclusive: bool) {
        if exclusive {
            self.writer_active = true;
        } else {
            self.active_readers += 1;
        }
    }
}

/// The raw (untyped) FCFS lock: queue discipline only, no data.
#[derive(Debug, Default)]
struct RawFcfs {
    state: Mutex<State>,
    cv: Condvar,
}

impl RawFcfs {
    fn lock_state(&self) -> MutexGuard<'_, State> {
        // A panic while holding a *guard* never happens inside the lock's
        // own critical sections, so poison here only means a panicking
        // interleaved user thread; the state itself is always consistent.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until granted. Returns `(granted_at, wait_ns, contended)`.
    fn acquire(&self, exclusive: bool) -> (Instant, u64, bool) {
        let mut st = self.lock_state();
        if st.queue.is_empty() && st.compatible(exclusive) {
            st.admit(exclusive);
            drop(st);
            return (Instant::now(), 0, false);
        }
        let id = st.next_id;
        st.next_id += 1;
        st.queue.push_back((id, exclusive));
        let enqueued_at = Instant::now();
        loop {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = st.granted.iter().position(|&g| g == id) {
                st.granted.swap_remove(pos);
                break;
            }
        }
        drop(st);
        let granted_at = Instant::now();
        let wait = granted_at.duration_since(enqueued_at).as_nanos() as u64;
        (granted_at, wait, true)
    }

    /// Releases one holder and grants the maximal compatible FCFS prefix
    /// of the waiting queue (a writer, or an arrival-order reader burst).
    fn release(&self, exclusive: bool) {
        let mut st = self.lock_state();
        if exclusive {
            debug_assert!(st.writer_active, "release of an unheld writer lock");
            st.writer_active = false;
        } else {
            debug_assert!(st.active_readers > 0, "release of an unheld reader lock");
            st.active_readers -= 1;
        }
        let mut granted_any = false;
        while let Some(&(id, exc)) = st.queue.front() {
            if exc {
                if st.compatible(true) {
                    st.queue.pop_front();
                    st.writer_active = true;
                    st.granted.push(id);
                    granted_any = true;
                }
                break; // a granted or still-blocked writer ends the prefix
            } else if st.compatible(false) {
                st.queue.pop_front();
                st.active_readers += 1;
                st.granted.push(id);
                granted_any = true; // keep admitting the reader burst
            } else {
                break;
            }
        }
        if granted_any {
            drop(st);
            self.cv.notify_all();
        }
    }

    fn queued(&self) -> usize {
        self.lock_state().queue.len()
    }
}

/// A first-come-first-served reader/writer lock around a value, with
/// built-in wait/hold observability.
///
/// # Example
///
/// ```
/// use cbtree_sync::FcfsRwLock;
/// use std::sync::Arc;
///
/// let lock = Arc::new(FcfsRwLock::new(0u64));
/// *lock.write() += 1;
/// assert_eq!(*lock.read(), 1);
/// let snap = lock.stats().snapshot();
/// assert_eq!(snap.r_acquires, 1);
/// assert_eq!(snap.w_acquires, 1);
/// ```
#[derive(Default)]
pub struct FcfsRwLock<T: ?Sized> {
    raw: RawFcfs,
    stats: LockStats,
    data: UnsafeCell<T>,
}

// SAFETY: the lock mediates all access to `data`; sending the lock sends
// the value, sharing the lock hands out `&T`/`&mut T` only under the
// reader/writer protocol, so the std `RwLock<T>` bounds apply verbatim.
#[allow(unsafe_code)]
unsafe impl<T: ?Sized + Send> Send for FcfsRwLock<T> {}
#[allow(unsafe_code)]
unsafe impl<T: ?Sized + Send + Sync> Sync for FcfsRwLock<T> {}

impl<T> FcfsRwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        FcfsRwLock {
            raw: RawFcfs::default(),
            stats: LockStats::default(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> FcfsRwLock<T> {
    fn start_read(&self) -> Instant {
        crate::inject::perturb(crate::inject::Site::AcquireShared);
        let (granted_at, wait_ns, contended) = self.raw.acquire(false);
        self.stats.record_acquire(false, wait_ns, contended);
        granted_at
    }

    fn start_write(&self) -> Instant {
        crate::inject::perturb(crate::inject::Site::AcquireExclusive);
        let (granted_at, wait_ns, contended) = self.raw.acquire(true);
        self.stats.record_acquire(true, wait_ns, contended);
        granted_at
    }

    fn finish(&self, exclusive: bool, granted_at: Instant) {
        self.stats
            .record_release(exclusive, granted_at.elapsed().as_nanos() as u64);
        self.raw.release(exclusive);
        crate::inject::perturb(crate::inject::Site::Release);
    }

    /// Acquires a shared latch, blocking FCFS behind earlier arrivals.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            lock: self,
            granted_at: self.start_read(),
        }
    }

    /// Acquires the exclusive latch, blocking FCFS behind earlier arrivals.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            lock: self,
            granted_at: self.start_write(),
        }
    }

    /// Shared latch with an owned (`Arc`-holding) guard, usable past the
    /// borrow of the `Arc` it was taken from — the latch-crabbing shape.
    pub fn read_arc(self: &Arc<Self>) -> ArcRwLockReadGuard<T> {
        ArcRwLockReadGuard {
            granted_at: self.start_read(),
            lock: Arc::clone(self),
        }
    }

    /// Exclusive latch with an owned (`Arc`-holding) guard.
    pub fn write_arc(self: &Arc<Self>) -> ArcRwLockWriteGuard<T> {
        ArcRwLockWriteGuard {
            granted_at: self.start_write(),
            lock: Arc::clone(self),
        }
    }

    /// The lock's embedded statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Number of requests currently queued (diagnostic; racy by nature).
    pub fn queued(&self) -> usize {
        self.raw.queued()
    }

    /// Mutable access without locking (requires `&mut`, hence exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized> fmt::Debug for FcfsRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FcfsRwLock").finish_non_exhaustive()
    }
}

/// Shared guard borrowing the lock.
#[must_use = "dropping the guard releases the latch"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a FcfsRwLock<T>,
    granted_at: Instant,
}

/// Exclusive guard borrowing the lock.
#[must_use = "dropping the guard releases the latch"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a FcfsRwLock<T>,
    granted_at: Instant,
}

/// Shared guard owning a strong reference to the lock.
#[must_use = "dropping the guard releases the latch"]
pub struct ArcRwLockReadGuard<T: ?Sized> {
    lock: Arc<FcfsRwLock<T>>,
    granted_at: Instant,
}

/// Exclusive guard owning a strong reference to the lock.
#[must_use = "dropping the guard releases the latch"]
pub struct ArcRwLockWriteGuard<T: ?Sized> {
    lock: Arc<FcfsRwLock<T>>,
    granted_at: Instant,
}

impl<T: ?Sized> ArcRwLockReadGuard<T> {
    /// The lock this guard holds (associated fn, like `parking_lot`'s, so
    /// it cannot shadow a method of `T`).
    pub fn rwlock(this: &Self) -> &Arc<FcfsRwLock<T>> {
        &this.lock
    }
}

impl<T: ?Sized> ArcRwLockWriteGuard<T> {
    /// The lock this guard holds.
    pub fn rwlock(this: &Self) -> &Arc<FcfsRwLock<T>> {
        &this.lock
    }
}

macro_rules! impl_guard {
    ($guard:ident, $($lt:lifetime,)? deref_mut: $mutable:tt, exclusive: $exclusive:expr) => {
        impl<$($lt,)? T: ?Sized> Deref for $guard<$($lt,)? T> {
            type Target = T;
            fn deref(&self) -> &T {
                // SAFETY: the guard proves the latch is held in a mode
                // that permits this access until `Drop` runs.
                #[allow(unsafe_code)]
                unsafe {
                    &*self.lock.data.get()
                }
            }
        }
        impl_guard!(@mut $guard, $($lt,)? $mutable);
        impl<$($lt,)? T: ?Sized> Drop for $guard<$($lt,)? T> {
            fn drop(&mut self) {
                self.lock.finish($exclusive, self.granted_at);
            }
        }
        impl<$($lt,)? T: ?Sized + fmt::Debug> fmt::Debug for $guard<$($lt,)? T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&**self, f)
            }
        }
    };
    (@mut $guard:ident, $($lt:lifetime,)? yes) => {
        impl<$($lt,)? T: ?Sized> DerefMut for $guard<$($lt,)? T> {
            fn deref_mut(&mut self) -> &mut T {
                // SAFETY: exclusive latch held for the guard's lifetime.
                #[allow(unsafe_code)]
                unsafe {
                    &mut *self.lock.data.get()
                }
            }
        }
    };
    (@mut $guard:ident, $($lt:lifetime,)? no) => {};
}

impl_guard!(RwLockReadGuard, 'a, deref_mut: no, exclusive: false);
impl_guard!(RwLockWriteGuard, 'a, deref_mut: yes, exclusive: true);
impl_guard!(ArcRwLockReadGuard, deref_mut: no, exclusive: false);
impl_guard!(ArcRwLockWriteGuard, deref_mut: yes, exclusive: true);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn read_write_roundtrip() {
        let lock = FcfsRwLock::new(vec![1, 2, 3]);
        assert_eq!(lock.read().len(), 3);
        lock.write().push(4);
        assert_eq!(*lock.read(), vec![1, 2, 3, 4]);
        assert_eq!(lock.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn arc_guards_outlive_their_borrow() {
        let lock = Arc::new(FcfsRwLock::new(7u64));
        let guard = {
            let alias = Arc::clone(&lock);
            alias.read_arc()
        };
        assert_eq!(*guard, 7);
        assert!(Arc::ptr_eq(ArcRwLockReadGuard::rwlock(&guard), &lock));
        drop(guard);
        *lock.write_arc() = 8;
        assert_eq!(*lock.read(), 8);
    }

    #[test]
    fn readers_share_writers_exclude() {
        // Readers: each holds its shared latch until every reader is
        // inside the critical section at once. A correct lock admits
        // them all concurrently so the rendezvous completes immediately;
        // a lock that serialized readers trips the watchdog instead.
        // No sleeps — the handshake is purely event-ordered.
        const READERS: usize = 4;
        let lock = Arc::new(FcfsRwLock::new(0u64));
        let in_cs = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..READERS {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                s.spawn(move || {
                    let _g = lock.read();
                    in_cs.fetch_add(1, Ordering::SeqCst);
                    let t0 = Instant::now();
                    while in_cs.load(Ordering::SeqCst) < READERS {
                        assert!(
                            t0.elapsed() < std::time::Duration::from_secs(5),
                            "readers never all shared the lock"
                        );
                        std::thread::yield_now();
                    }
                });
            }
        });

        // Writers: strict mutual exclusion on a non-atomic counter.
        let total = 64;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..total / 8 {
                        let mut g = lock.write();
                        let v = *g;
                        std::thread::yield_now();
                        *g = v + 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), total);
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut lock = FcfsRwLock::new(1);
        *lock.get_mut() = 5;
        assert_eq!(*lock.read(), 5);
        assert_eq!(lock.queued(), 0);
    }

    #[test]
    fn stats_count_contention() {
        let lock = Arc::new(FcfsRwLock::new(()));
        let g = lock.write();
        let t = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _g = lock.read(); // must queue behind the writer
            })
        };
        // Event-ordered handshake: once the reader is visibly queued it
        // is contended by construction — no sleep or duration floor
        // needed, so the test cannot flake on scheduler jitter.
        while lock.queued() == 0 {
            std::thread::yield_now();
        }
        drop(g);
        t.join().unwrap();
        let snap = lock.stats().snapshot();
        assert_eq!(snap.w_acquires, 1);
        assert_eq!(snap.r_acquires, 1);
        assert_eq!(snap.r_contended, 1);
        assert!(snap.r_wait_ns > 0, "a queued acquisition records its wait");
        assert!(snap.w_hold_ns > 0, "the held span covers the handshake");
    }

    #[test]
    fn debug_does_not_block() {
        let lock = FcfsRwLock::new(3);
        let _g = lock.write();
        let s = format!("{lock:?}");
        assert!(s.contains("FcfsRwLock"));
    }
}
