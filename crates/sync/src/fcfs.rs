//! The FCFS reader/writer lock.
//!
//! Requests are served strictly in arrival order from a single ticketed
//! queue: a reader that arrives behind a waiting writer queues behind it
//! (no reader overtaking), and when a writer releases, the maximal
//! *prefix* of queued readers is admitted as one burst. This is exactly
//! the lock discipline of the paper's queueing model (Theorem 6 solves an
//! FCFS R/W queue with arrival-order reader bursts) and of the simulator's
//! `LockTable` — so measurements taken on this lock are directly
//! comparable with both.
//!
//! # Two-tier implementation
//!
//! The holder state lives in one packed `AtomicU64`:
//!
//! ```text
//!   bit 63   bit 62     bits 32..=61     bits 0..=31
//!  ┌────────┬────────┬────────────────┬──────────────┐
//!  │ WRITER │ QUEUED │ version (30 b) │ reader count │
//!  └────────┴────────┴────────────────┴──────────────┘
//! ```
//!
//! While `QUEUED` is clear (nobody is waiting), shared and exclusive
//! acquire *and* release are each a single CAS on this word — no mutex,
//! no syscall, no `Instant` reading unless the acquisition is sampled for
//! timing. The moment any request has to wait, it sets `QUEUED` (under
//! the queue mutex) and every subsequent acquire/release detours through
//! the original ticketed `Mutex`+`Condvar` queue, which preserves the
//! FCFS discipline bit for bit: strict arrival order, no reader
//! overtaking a queued writer, and maximal reader-burst admission on
//! writer release. `QUEUED` is set and cleared only under the mutex, so
//! `QUEUED == !queue.is_empty()` holds at every mutex release; a fast
//! path can never sneak past a waiter because its CAS carries the full
//! word (any concurrent `QUEUED` flip invalidates the expected value).
//!
//! # Version counter (optimistic reads)
//!
//! The 30-bit *version* field increments exactly once per exclusive
//! release — on both the CAS fast path and the mutex fallback — and
//! never on shared release. Readers can snapshot it without acquiring
//! anything ([`FcfsRwLock::version`]), do their reads, and re-validate
//! ([`FcfsRwLock::validate`], [`FcfsRwLock::read_optimistic`]): an
//! unchanged version with no writer present proves no exclusive section
//! ran in between (a seqlock, in the optimistic-lock-coupling style of
//! LeanStore/ART). `read_optimistic` is `unsafe`: the closure runs
//! against data a writer may be mutating, so it must obey the torn-read
//! discipline documented as its safety contract. Wraparound after 2^30
//! writes is harmless for validation windows spanning fewer than 2^30
//! exclusive sections.
//!
//! Wait and hold durations are recorded by 1-in-N sampling (see
//! [`SamplePeriod`]): acquisition *counts* stay exact, and sampled
//! durations are scaled by N so the sums behind `writer_utilization` and
//! the mean-wait estimators stay unbiased.

use crate::stats::{LockStats, SamplePeriod};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Packed-word bit assignments.
const WRITER: u64 = 1 << 63;
const QUEUED: u64 = 1 << 62;
/// Version field: 30 bits at 32..=61, one unit per exclusive release.
const VSHIFT: u32 = 32;
const VUNIT: u64 = 1 << VSHIFT;
const VMASK: u64 = ((1 << 30) - 1) << VSHIFT;
/// Reader count: the low 32 bits.
const READERS: u64 = VUNIT - 1;

/// Holder bits compatible with granting a request of the given mode
/// (the version field never blocks anyone).
#[inline]
fn compatible(word: u64, exclusive: bool) -> bool {
    if exclusive {
        word & (WRITER | READERS) == 0
    } else {
        word & WRITER == 0
    }
}

/// The word after one version bump: +1 in the version field, wrapping
/// inside it (the carry out of bit 61 is discarded, never reaching
/// `QUEUED`), all other bits preserved.
#[inline]
fn bump_version(word: u64) -> u64 {
    (word & !VMASK) | (word.wrapping_add(VUNIT) & VMASK)
}

/// Queue state, all under one mutex. Holder counts live in the packed
/// word, not here.
#[derive(Debug, Default)]
struct State {
    next_id: u64,
    /// Waiting requests in arrival order: `(ticket, exclusive)`.
    queue: VecDeque<(u64, bool)>,
    /// Tickets granted by a releaser but not yet observed by their waiter
    /// (holder bits are already in the word when a ticket lands here).
    granted: Vec<u64>,
}

/// What a slow-path acquisition observed.
struct SlowAcquire {
    /// Nanoseconds spent queued (0 when not sampled or not queued).
    wait_ns: u64,
    /// Whether the request actually entered the wait queue.
    queued: bool,
}

/// The raw (untyped) FCFS lock: queue discipline only, no data.
#[derive(Debug, Default)]
struct RawFcfs {
    word: AtomicU64,
    state: Mutex<State>,
    cv: Condvar,
}

impl RawFcfs {
    fn lock_state(&self) -> MutexGuard<'_, State> {
        // A panic while holding a *guard* never happens inside the lock's
        // own critical sections, so poison here only means a panicking
        // interleaved user thread; the state itself is always consistent.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Uncontended acquire: one CAS, succeeds only while nobody waits and
    /// the holder bits are compatible.
    #[inline]
    fn try_acquire_fast(&self, exclusive: bool) -> bool {
        let mut cur = self.word.load(Ordering::Relaxed);
        loop {
            if cur & QUEUED != 0 {
                return false;
            }
            let next = if exclusive {
                if cur & (WRITER | READERS) != 0 {
                    return false;
                }
                cur | WRITER
            } else {
                if cur & WRITER != 0 {
                    return false;
                }
                debug_assert!(cur & READERS < READERS, "reader count overflow");
                cur + 1
            };
            match self
                .word
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Slow-path acquire: joins the FCFS queue (or grabs the lock under
    /// the mutex if it freed up in the meantime). Blocks until granted.
    /// `sampled` controls whether the queue wait is timed.
    fn acquire_slow(&self, exclusive: bool, sampled: bool) -> SlowAcquire {
        let mut st = self.lock_state();
        // Announce a potential waiter *before* re-reading the holder
        // bits: any release CAS that lands after this `fetch_or` either
        // already freed the lock (we see it below) or fails and detours
        // through the mutex behind us (it will see our queue entry). The
        // bit is only ever set or cleared under the mutex.
        let cur = self.word.fetch_or(QUEUED, Ordering::AcqRel) | QUEUED;
        if st.queue.is_empty() && compatible(cur, exclusive) {
            // Second chance: the lock freed up between the failed fast
            // path and here, and nobody is ahead of us. Admit ourselves.
            if exclusive {
                self.word.fetch_or(WRITER, Ordering::AcqRel);
            } else {
                self.word.fetch_add(1, Ordering::AcqRel);
            }
            self.word.fetch_and(!QUEUED, Ordering::AcqRel);
            return SlowAcquire {
                wait_ns: 0,
                queued: false,
            };
        }
        let id = st.next_id;
        st.next_id += 1;
        st.queue.push_back((id, exclusive));
        let enqueued_at = sampled.then(Instant::now);
        loop {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = st.granted.iter().position(|&g| g == id) {
                st.granted.swap_remove(pos);
                break;
            }
        }
        drop(st);
        SlowAcquire {
            wait_ns: enqueued_at.map_or(0, |t| t.elapsed().as_nanos() as u64),
            queued: true,
        }
    }

    /// Uncontended release: one CAS, succeeds only while nobody waits.
    /// An exclusive release bumps the version field in the same CAS.
    #[inline]
    fn try_release_fast(&self, exclusive: bool) -> bool {
        let mut cur = self.word.load(Ordering::Relaxed);
        loop {
            if cur & QUEUED != 0 {
                return false;
            }
            let next = if exclusive {
                debug_assert!(cur & WRITER != 0, "release of an unheld writer lock");
                bump_version(cur) & !WRITER
            } else {
                debug_assert!(cur & READERS > 0, "release of an unheld reader lock");
                cur - 1
            };
            match self
                .word
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Slow-path release: drops the holder bit under the mutex and grants
    /// the maximal compatible FCFS prefix of the waiting queue (a writer,
    /// or an arrival-order reader burst).
    fn release_slow(&self, exclusive: bool) {
        let mut st = self.lock_state();
        if exclusive {
            // Drop WRITER and bump the version in one step. A CAS loop
            // rather than `fetch_and`: the bump needs read-modify-write
            // of the version field. Concurrent interference is limited
            // to `QUEUED` `fetch_or`s from arriving waiters (the fast
            // paths refuse while QUEUED is set, and QUEUED itself only
            // flips under the mutex we hold), so the loop terminates.
            let mut cur = self.word.load(Ordering::Relaxed);
            loop {
                debug_assert!(cur & WRITER != 0, "slow release of an unheld writer lock");
                let next = bump_version(cur) & !WRITER;
                match self.word.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        } else {
            self.word.fetch_sub(1, Ordering::AcqRel);
        }
        let mut granted_any = false;
        while let Some(&(id, exc)) = st.queue.front() {
            let cur = self.word.load(Ordering::Relaxed);
            if exc {
                if compatible(cur, true) {
                    st.queue.pop_front();
                    self.word.fetch_or(WRITER, Ordering::AcqRel);
                    st.granted.push(id);
                    granted_any = true;
                }
                break; // a granted or still-blocked writer ends the prefix
            } else if compatible(cur, false) {
                st.queue.pop_front();
                self.word.fetch_add(1, Ordering::AcqRel);
                st.granted.push(id);
                granted_any = true; // keep admitting the reader burst
            } else {
                break;
            }
        }
        if st.queue.is_empty() {
            self.word.fetch_and(!QUEUED, Ordering::AcqRel);
        }
        if granted_any {
            drop(st);
            self.cv.notify_all();
        }
    }

    fn release(&self, exclusive: bool) {
        if !self.try_release_fast(exclusive) {
            self.release_slow(exclusive);
        }
    }

    fn queued(&self) -> usize {
        self.lock_state().queue.len()
    }

    /// The current version, or `None` while a writer holds the lock (a
    /// version snapshotted under an active writer could never validate —
    /// the writer's release will bump it — so callers spin/yield instead
    /// of starting a doomed optimistic read).
    #[inline]
    fn version(&self) -> Option<u64> {
        let word = self.word.load(Ordering::Acquire);
        (word & WRITER == 0).then_some((word & VMASK) >> VSHIFT)
    }
}

/// A first-come-first-served reader/writer lock around a value, with
/// built-in wait/hold observability.
///
/// # Example
///
/// ```
/// use cbtree_sync::FcfsRwLock;
/// use std::sync::Arc;
///
/// let lock = Arc::new(FcfsRwLock::new(0u64));
/// *lock.write() += 1;
/// assert_eq!(*lock.read(), 1);
/// let snap = lock.stats().snapshot();
/// assert_eq!(snap.r_acquires, 1);
/// assert_eq!(snap.w_acquires, 1);
/// ```
#[derive(Default)]
pub struct FcfsRwLock<T: ?Sized> {
    raw: RawFcfs,
    stats: LockStats,
    /// Small owner-assigned tag stamped on trace events (the B-tree
    /// stores the node's level; 0 = untagged). Read only when the
    /// `trace` feature is compiled in.
    trace_tag: AtomicU16,
    data: UnsafeCell<T>,
}

// SAFETY: the lock mediates all access to `data`; sending the lock sends
// the value, sharing the lock hands out `&T`/`&mut T` only under the
// reader/writer protocol, so the std `RwLock<T>` bounds apply verbatim.
#[allow(unsafe_code)]
unsafe impl<T: ?Sized + Send> Send for FcfsRwLock<T> {}
#[allow(unsafe_code)]
unsafe impl<T: ?Sized + Send + Sync> Sync for FcfsRwLock<T> {}

impl<T> FcfsRwLock<T> {
    /// Wraps a value with exact (unsampled) wait/hold timing.
    pub fn new(value: T) -> Self {
        FcfsRwLock::with_sampling(value, SamplePeriod::EXACT)
    }

    /// Wraps a value, timing only one in `sample.period()` acquisitions
    /// (durations are scaled back up so the stats stay unbiased).
    pub fn with_sampling(value: T, sample: SamplePeriod) -> Self {
        FcfsRwLock {
            raw: RawFcfs::default(),
            stats: LockStats::with_sampling(sample),
            trace_tag: AtomicU16::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> FcfsRwLock<T> {
    /// Tags the lock with a small id stamped on its trace events (the
    /// B-tree stores the node's level; leaves = 1). A no-op load-wise
    /// unless the `trace` feature is compiled in.
    pub fn set_trace_tag(&self, tag: u16) {
        self.trace_tag.store(tag, Ordering::Relaxed);
    }

    /// Emits one latch trace event for this lock. Compiled out (along
    /// with the tag load and address cast) without the `trace` feature.
    /// The `enabled` check runs before anything else: `emit` is a
    /// function pointer, so the indirect call — and the tag load and
    /// address cast feeding it — would otherwise be paid even while
    /// tracing is off, which is exactly the cost the lockbench
    /// `--assert-overhead` guard bounds.
    #[inline(always)]
    fn trace_latch(&self, emit: fn(u16, bool, u64), exclusive: bool) {
        #[cfg(feature = "trace")]
        {
            /// Outlined emission: keeps the traced-build hot path at one
            /// load-and-branch so acquire/release stay small enough to
            /// inline; everything else lives behind this cold call.
            #[cold]
            #[inline(never)]
            fn emit_cold(emit: fn(u16, bool, u64), tag: u16, exclusive: bool, node: u64) {
                emit(tag, exclusive, node);
            }
            if cbtree_obs::trace::enabled() {
                emit_cold(
                    emit,
                    self.trace_tag.load(Ordering::Relaxed),
                    exclusive,
                    self as *const Self as *const () as u64,
                );
            }
        }
        #[cfg(not(feature = "trace"))]
        let _ = (emit, exclusive);
    }

    /// Acquires in the given mode; returns the hold-timing start when
    /// this acquisition was sampled.
    fn start(&self, exclusive: bool) -> Option<Instant> {
        crate::inject::perturb(if exclusive {
            crate::inject::Site::AcquireExclusive
        } else {
            crate::inject::Site::AcquireShared
        });
        self.trace_latch(cbtree_obs::trace::latch_request, exclusive);
        let sampled = self.stats.begin_acquire(exclusive);
        if self.raw.try_acquire_fast(exclusive) {
            self.trace_latch(cbtree_obs::trace::latch_grant, exclusive);
            if sampled {
                self.stats.record_sampled_wait(exclusive, 0);
                return Some(Instant::now());
            }
            return None;
        }
        let slow = self.raw.acquire_slow(exclusive, sampled);
        self.trace_latch(cbtree_obs::trace::latch_grant, exclusive);
        if slow.queued {
            self.stats.record_contended(exclusive);
        }
        if sampled {
            self.stats.record_sampled_wait(exclusive, slow.wait_ns);
            Some(Instant::now())
        } else {
            None
        }
    }

    fn finish(&self, exclusive: bool, hold_start: Option<Instant>) {
        if let Some(t0) = hold_start {
            self.stats
                .record_sampled_hold(exclusive, t0.elapsed().as_nanos() as u64);
        }
        // Emit before the release itself so the hold window closes while
        // the latch is still held.
        self.trace_latch(cbtree_obs::trace::latch_release, exclusive);
        self.raw.release(exclusive);
        crate::inject::perturb(crate::inject::Site::Release);
    }

    /// Acquires a shared latch, blocking FCFS behind earlier arrivals.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            hold_start: self.start(false),
            lock: self,
        }
    }

    /// Acquires the exclusive latch, blocking FCFS behind earlier arrivals.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            hold_start: self.start(true),
            lock: self,
        }
    }

    /// Non-blocking acquire attempt in the given mode. Takes only the
    /// uncontended fast path: fails whenever the holder bits are
    /// incompatible *or* any waiter is queued, and never joins the queue
    /// itself. Stats count the acquisition only on success, so failed
    /// probes do not skew acquire counts or sampling.
    fn try_start(&self, exclusive: bool) -> Option<Option<Instant>> {
        crate::inject::perturb(if exclusive {
            crate::inject::Site::AcquireExclusive
        } else {
            crate::inject::Site::AcquireShared
        });
        if !self.raw.try_acquire_fast(exclusive) {
            return None;
        }
        // Successful probe: request and grant coincide (zero wait).
        self.trace_latch(cbtree_obs::trace::latch_request, exclusive);
        self.trace_latch(cbtree_obs::trace::latch_grant, exclusive);
        let sampled = self.stats.begin_acquire(exclusive);
        if sampled {
            self.stats.record_sampled_wait(exclusive, 0);
            Some(Some(Instant::now()))
        } else {
            Some(None)
        }
    }

    /// Shared latch with an owned (`Arc`-holding) guard, usable past the
    /// borrow of the `Arc` it was taken from — the latch-crabbing shape.
    pub fn read_arc(self: &Arc<Self>) -> ArcRwLockReadGuard<T> {
        ArcRwLockReadGuard {
            hold_start: self.start(false),
            lock: Arc::clone(self),
        }
    }

    /// Exclusive latch with an owned (`Arc`-holding) guard.
    pub fn write_arc(self: &Arc<Self>) -> ArcRwLockWriteGuard<T> {
        ArcRwLockWriteGuard {
            hold_start: self.start(true),
            lock: Arc::clone(self),
        }
    }

    /// Attempts a shared latch without ever blocking or queueing (fast
    /// path only; `None` whenever the latch is write-held *or* anyone is
    /// waiting). Used by callers that must stay deadlock-free while
    /// already holding other latches, e.g. transaction-retained descents.
    pub fn try_read_arc(self: &Arc<Self>) -> Option<ArcRwLockReadGuard<T>> {
        self.try_start(false).map(|hold_start| ArcRwLockReadGuard {
            hold_start,
            lock: Arc::clone(self),
        })
    }

    /// Attempts the exclusive latch without ever blocking or queueing
    /// (fast path only; `None` whenever any holder or waiter exists).
    pub fn try_write_arc(self: &Arc<Self>) -> Option<ArcRwLockWriteGuard<T>> {
        self.try_start(true).map(|hold_start| ArcRwLockWriteGuard {
            hold_start,
            lock: Arc::clone(self),
        })
    }

    /// Shared latch with an *unowned* guard: the guard keeps a raw
    /// pointer to this lock and releases through it on drop, without
    /// borrowing the lock or holding a strong reference to it. This is
    /// the guard shape for locks embedded in a slab/arena, where the
    /// storage's liveness is guaranteed by something the caller holds
    /// (e.g. an `Arc` to the arena) rather than per-lock.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `self` remains valid (not dropped or
    /// moved) for the entire lifetime of the returned guard. The usual
    /// discipline is to pair every unowned guard with an owned handle to
    /// the allocation containing the lock, dropped only after the guard.
    pub unsafe fn read_unowned(&self) -> UnownedReadGuard<T> {
        UnownedReadGuard {
            hold_start: self.start(false),
            lock: NonNull::from(self),
        }
    }

    /// Exclusive latch with an unowned guard.
    ///
    /// # Safety
    ///
    /// As for [`FcfsRwLock::read_unowned`]: `self` must outlive the guard.
    pub unsafe fn write_unowned(&self) -> UnownedWriteGuard<T> {
        UnownedWriteGuard {
            hold_start: self.start(true),
            lock: NonNull::from(self),
        }
    }

    /// Non-blocking shared probe with an unowned guard (fast path only,
    /// like [`FcfsRwLock::try_read_arc`]).
    ///
    /// # Safety
    ///
    /// As for [`FcfsRwLock::read_unowned`]: `self` must outlive the guard.
    pub unsafe fn try_read_unowned(&self) -> Option<UnownedReadGuard<T>> {
        self.try_start(false).map(|hold_start| UnownedReadGuard {
            hold_start,
            lock: NonNull::from(self),
        })
    }

    /// Non-blocking exclusive probe with an unowned guard (fast path
    /// only, like [`FcfsRwLock::try_write_arc`]).
    ///
    /// # Safety
    ///
    /// As for [`FcfsRwLock::read_unowned`]: `self` must outlive the guard.
    pub unsafe fn try_write_unowned(&self) -> Option<UnownedWriteGuard<T>> {
        self.try_start(true).map(|hold_start| UnownedWriteGuard {
            hold_start,
            lock: NonNull::from(self),
        })
    }

    /// Snapshots the version counter without acquiring anything.
    /// Returns `None` while a writer holds the latch (an optimistic read
    /// started now could never validate). Costs one atomic load; no
    /// stats, no queueing, invisible to other threads.
    #[inline]
    pub fn version(&self) -> Option<u64> {
        crate::inject::perturb(crate::inject::Site::ReadVersion);
        self.raw.version()
    }

    /// Re-checks a previously snapshotted version: `true` iff no writer
    /// holds the latch *and* the version still equals `version`, i.e. no
    /// exclusive section completed since the snapshot was taken.
    ///
    /// Callers close a seqlock read window with this check, so it
    /// carries the reader-side fence of the classic seqlock recipe
    /// (acquire load, data reads, acquire *fence*, re-load): the
    /// unguarded data reads that preceded this call cannot be reordered
    /// after the validating re-load — neither by the compiler nor by a
    /// weakly ordered CPU — so a torn read can never slip past a
    /// passing validation.
    #[inline]
    pub fn validate(&self, version: u64) -> bool {
        crate::inject::perturb(crate::inject::Site::Validate);
        // An acquire *load* alone only keeps later accesses from being
        // hoisted above it; this fence is what pins the preceding
        // unguarded reads before the re-load.
        std::sync::atomic::fence(Ordering::Acquire);
        self.raw.version() == Some(version)
    }

    /// One version-validated optimistic read: snapshots the version,
    /// runs `f` against the data *without any latch*, and re-validates.
    /// Returns `Some((version, result))` only when no exclusive section
    /// overlapped the window; otherwise the result is discarded and the
    /// caller restarts. The returned version lets latch-free descents
    /// re-validate this node again later (parent-then-child coupling).
    /// The validating re-load is fenced (see [`FcfsRwLock::validate`])
    /// so the unguarded reads cannot drift past it.
    ///
    /// # Safety
    ///
    /// This is a seqlock read (the classic optimistic-lock-coupling
    /// window of LeanStore/ART): `f` runs against `&T` while a writer
    /// may be mutating the same bytes through `&mut T`, and the version
    /// re-check can only *discard* what `f` computed — it cannot undo
    /// anything `f` already did inside the window. The caller must
    /// guarantee that `f` tolerates every intermediate state a
    /// concurrent writer can expose (byte-blends of valid states, stale
    /// lengths, not-yet-initialized slots):
    ///
    /// * `f` only reads: it never writes through the reference and has
    ///   no side effects that escape before validation.
    /// * Every index into a growable region is checked (`get`, never
    ///   `[...]`) — lengths may be torn, and the protected structure
    ///   must never reallocate its buffers while shared (the B-tree
    ///   pre-reserves node vectors at construction).
    /// * `f` materializes no heap-owning value out of the data: cloning
    ///   a torn `String`/`Vec` dereferences a torn pointer, which is
    ///   undefined behavior *before* validation ever runs. Plain-old
    ///   data (integers, levels, keys) may be copied out. `Arc`s stored
    ///   in the data may be cloned only when the caller separately
    ///   guarantees that every pointer value the slot can hold refers
    ///   to an allocation kept alive for the whole structure lifetime
    ///   (the B-tree's never-unlinked node discipline).
    /// * On `None` the caller discards the result entirely.
    #[allow(unsafe_code)]
    pub unsafe fn read_optimistic<R>(&self, f: impl FnOnce(&T) -> R) -> Option<(u64, R)> {
        let version = self.version()?;
        // The perturbation sites sit *inside* the window (after the
        // snapshot, before the validation) so the schedule-perturbation
        // checker can dilate exactly the interval a torn read needs.
        // SAFETY: the unguarded read is the caller's contract (above);
        // any overlap with an exclusive holder is detected by the
        // fenced version re-check below and the value is discarded.
        let out = f(unsafe { &*self.data.get() });
        self.validate(version).then_some((version, out))
    }

    /// The lock's embedded statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Number of requests currently queued (diagnostic; racy by nature).
    pub fn queued(&self) -> usize {
        self.raw.queued()
    }

    /// Mutable access without locking (requires `&mut`, hence exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized> fmt::Debug for FcfsRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FcfsRwLock").finish_non_exhaustive()
    }
}

/// Shared guard borrowing the lock.
#[must_use = "dropping the guard releases the latch"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a FcfsRwLock<T>,
    hold_start: Option<Instant>,
}

/// Exclusive guard borrowing the lock.
#[must_use = "dropping the guard releases the latch"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a FcfsRwLock<T>,
    hold_start: Option<Instant>,
}

/// Shared guard owning a strong reference to the lock.
#[must_use = "dropping the guard releases the latch"]
pub struct ArcRwLockReadGuard<T: ?Sized> {
    lock: Arc<FcfsRwLock<T>>,
    hold_start: Option<Instant>,
}

/// Exclusive guard owning a strong reference to the lock.
#[must_use = "dropping the guard releases the latch"]
pub struct ArcRwLockWriteGuard<T: ?Sized> {
    lock: Arc<FcfsRwLock<T>>,
    hold_start: Option<Instant>,
}

impl<T: ?Sized> ArcRwLockReadGuard<T> {
    /// The lock this guard holds (associated fn, like `parking_lot`'s, so
    /// it cannot shadow a method of `T`).
    pub fn rwlock(this: &Self) -> &Arc<FcfsRwLock<T>> {
        &this.lock
    }
}

impl<T: ?Sized> ArcRwLockWriteGuard<T> {
    /// The lock this guard holds.
    pub fn rwlock(this: &Self) -> &Arc<FcfsRwLock<T>> {
        &this.lock
    }
}

/// Shared guard releasing through a raw pointer; the lock's liveness is
/// the caller's obligation (see [`FcfsRwLock::read_unowned`]).
#[must_use = "dropping the guard releases the latch"]
pub struct UnownedReadGuard<T: ?Sized> {
    lock: NonNull<FcfsRwLock<T>>,
    hold_start: Option<Instant>,
}

/// Exclusive guard releasing through a raw pointer; the lock's liveness
/// is the caller's obligation (see [`FcfsRwLock::write_unowned`]).
#[must_use = "dropping the guard releases the latch"]
pub struct UnownedWriteGuard<T: ?Sized> {
    lock: NonNull<FcfsRwLock<T>>,
    hold_start: Option<Instant>,
}

// SAFETY: an unowned guard is a held latch plus a pointer to a lock the
// caller keeps alive; moving it between threads is as sound as for the
// Arc guards, so the bounds mirror `Arc<FcfsRwLock<T>>`'s.
unsafe impl<T: ?Sized + Send + Sync> Send for UnownedReadGuard<T> {}
// SAFETY: shared access through the guard is `&T`; same story as above.
unsafe impl<T: ?Sized + Send + Sync> Sync for UnownedReadGuard<T> {}
// SAFETY: as above, with `&mut T` access requiring `T: Send`.
unsafe impl<T: ?Sized + Send + Sync> Send for UnownedWriteGuard<T> {}
// SAFETY: as above.
unsafe impl<T: ?Sized + Send + Sync> Sync for UnownedWriteGuard<T> {}

impl<T: ?Sized> UnownedReadGuard<T> {
    fn lock(&self) -> &FcfsRwLock<T> {
        // SAFETY: the constructor's contract — the lock outlives the
        // guard — makes the pointer valid for the guard's lifetime.
        unsafe { self.lock.as_ref() }
    }

    /// The lock this guard holds (associated fn, like the Arc guards').
    pub fn rwlock(this: &Self) -> &FcfsRwLock<T> {
        this.lock()
    }
}

impl<T: ?Sized> UnownedWriteGuard<T> {
    fn lock(&self) -> &FcfsRwLock<T> {
        // SAFETY: as for `UnownedReadGuard::lock`.
        unsafe { self.lock.as_ref() }
    }

    /// The lock this guard holds.
    pub fn rwlock(this: &Self) -> &FcfsRwLock<T> {
        this.lock()
    }
}

impl<T: ?Sized> Deref for UnownedReadGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves the shared latch is held until Drop.
        unsafe { &*self.lock().data.get() }
    }
}

impl<T: ?Sized> Deref for UnownedWriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves the exclusive latch is held until Drop.
        unsafe { &*self.lock().data.get() }
    }
}

impl<T: ?Sized> DerefMut for UnownedWriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive latch held for the guard's lifetime.
        unsafe { &mut *self.lock().data.get() }
    }
}

impl<T: ?Sized> Drop for UnownedReadGuard<T> {
    fn drop(&mut self) {
        self.lock().finish(false, self.hold_start);
    }
}

impl<T: ?Sized> Drop for UnownedWriteGuard<T> {
    fn drop(&mut self) {
        self.lock().finish(true, self.hold_start);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for UnownedReadGuard<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for UnownedWriteGuard<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

macro_rules! impl_guard {
    ($guard:ident, $($lt:lifetime,)? deref_mut: $mutable:tt, exclusive: $exclusive:expr) => {
        impl<$($lt,)? T: ?Sized> Deref for $guard<$($lt,)? T> {
            type Target = T;
            fn deref(&self) -> &T {
                // SAFETY: the guard proves the latch is held in a mode
                // that permits this access until `Drop` runs.
                #[allow(unsafe_code)]
                unsafe {
                    &*self.lock.data.get()
                }
            }
        }
        impl_guard!(@mut $guard, $($lt,)? $mutable);
        impl<$($lt,)? T: ?Sized> Drop for $guard<$($lt,)? T> {
            fn drop(&mut self) {
                self.lock.finish($exclusive, self.hold_start);
            }
        }
        impl<$($lt,)? T: ?Sized + fmt::Debug> fmt::Debug for $guard<$($lt,)? T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&**self, f)
            }
        }
    };
    (@mut $guard:ident, $($lt:lifetime,)? yes) => {
        impl<$($lt,)? T: ?Sized> DerefMut for $guard<$($lt,)? T> {
            fn deref_mut(&mut self) -> &mut T {
                // SAFETY: exclusive latch held for the guard's lifetime.
                #[allow(unsafe_code)]
                unsafe {
                    &mut *self.lock.data.get()
                }
            }
        }
    };
    (@mut $guard:ident, $($lt:lifetime,)? no) => {};
}

impl_guard!(RwLockReadGuard, 'a, deref_mut: no, exclusive: false);
impl_guard!(RwLockWriteGuard, 'a, deref_mut: yes, exclusive: true);
impl_guard!(ArcRwLockReadGuard, deref_mut: no, exclusive: false);
impl_guard!(ArcRwLockWriteGuard, deref_mut: yes, exclusive: true);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn read_write_roundtrip() {
        let lock = FcfsRwLock::new(vec![1, 2, 3]);
        assert_eq!(lock.read().len(), 3);
        lock.write().push(4);
        assert_eq!(*lock.read(), vec![1, 2, 3, 4]);
        assert_eq!(lock.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn fast_path_leaves_word_clean() {
        let lock = FcfsRwLock::new(0u64);
        {
            let _r1 = lock.read();
            let _r2 = lock.read();
            assert_eq!(lock.raw.word.load(Ordering::Relaxed), 2);
        }
        assert_eq!(lock.raw.word.load(Ordering::Relaxed), 0);
        {
            let _w = lock.write();
            assert_eq!(lock.raw.word.load(Ordering::Relaxed), WRITER);
        }
        // The write release leaves only the bumped version behind: the
        // holder and queue bits are clean.
        assert_eq!(lock.raw.word.load(Ordering::Relaxed), VUNIT);
        assert_eq!(lock.queued(), 0);
    }

    #[test]
    fn queued_bit_tracks_the_queue() {
        let lock = Arc::new(FcfsRwLock::new(0u64));
        let g = lock.write();
        let t = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _g = lock.read();
            })
        };
        while lock.queued() == 0 {
            std::thread::yield_now();
        }
        assert_ne!(lock.raw.word.load(Ordering::Relaxed) & QUEUED, 0);
        drop(g);
        t.join().unwrap();
        // Granting the last waiter clears QUEUED, and the holder bits
        // return to zero once the reader departs; only the slow-path
        // write release's version bump remains in the word.
        assert_eq!(lock.raw.word.load(Ordering::Relaxed), VUNIT);
    }

    #[test]
    fn version_bumps_once_per_write_release_fast_path() {
        let lock = FcfsRwLock::new(0u64);
        assert_eq!(lock.version(), Some(0));
        for i in 1..=5u64 {
            *lock.write() += 1;
            assert_eq!(lock.version(), Some(i), "one bump per write release");
        }
        // Read acquisitions and releases never move the version.
        for _ in 0..10 {
            drop(lock.read());
        }
        assert_eq!(lock.version(), Some(5));
        assert!(lock.validate(5));
        assert!(!lock.validate(4));
    }

    #[test]
    fn version_hidden_while_writer_holds() {
        let lock = FcfsRwLock::new(0u64);
        let g = lock.write();
        assert_eq!(lock.version(), None, "no snapshot under an active writer");
        assert!(!lock.validate(0), "nothing validates under a writer");
        drop(g);
        assert_eq!(lock.version(), Some(1));
    }

    #[test]
    fn version_wraps_inside_its_field() {
        let lock = FcfsRwLock::new(0u64);
        // Pin the version field to its maximum and release once: the
        // carry must stay out of QUEUED.
        lock.raw.word.store(VMASK, Ordering::Relaxed);
        drop(lock.write());
        assert_eq!(lock.raw.word.load(Ordering::Relaxed), 0);
        assert_eq!(lock.version(), Some(0));
    }

    #[test]
    #[allow(unsafe_code)]
    fn read_optimistic_validates_and_discards() {
        let lock = FcfsRwLock::new(7u64);
        // SAFETY: the closure copies out a plain `u64` — no heap, no
        // unchecked indexing — so a torn window is at worst a wrong
        // value, discarded on failed validation.
        let read = |lock: &FcfsRwLock<u64>| unsafe { lock.read_optimistic(|x| *x) };
        let (v, out) = read(&lock).expect("uncontended");
        assert_eq!((v, out), (0, 7));
        *lock.write() = 8;
        // The old snapshot no longer validates; a fresh one does.
        assert!(!lock.validate(v));
        let (v2, out2) = read(&lock).expect("uncontended");
        assert_eq!((v2, out2), (1, 8));
        // Under an active writer the optimistic read refuses up front.
        let g = lock.write();
        assert!(read(&lock).is_none());
        drop(g);
    }

    #[test]
    fn arc_guards_outlive_their_borrow() {
        let lock = Arc::new(FcfsRwLock::new(7u64));
        let guard = {
            let alias = Arc::clone(&lock);
            alias.read_arc()
        };
        assert_eq!(*guard, 7);
        assert!(Arc::ptr_eq(ArcRwLockReadGuard::rwlock(&guard), &lock));
        drop(guard);
        *lock.write_arc() = 8;
        assert_eq!(*lock.read(), 8);
    }

    #[test]
    fn readers_share_writers_exclude() {
        // Readers: each holds its shared latch until every reader is
        // inside the critical section at once. A correct lock admits
        // them all concurrently so the rendezvous completes immediately;
        // a lock that serialized readers trips the watchdog instead.
        // No sleeps — the handshake is purely event-ordered.
        const READERS: usize = 4;
        let lock = Arc::new(FcfsRwLock::new(0u64));
        let in_cs = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..READERS {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                s.spawn(move || {
                    let _g = lock.read();
                    in_cs.fetch_add(1, Ordering::SeqCst);
                    let t0 = Instant::now();
                    while in_cs.load(Ordering::SeqCst) < READERS {
                        assert!(
                            t0.elapsed() < std::time::Duration::from_secs(5),
                            "readers never all shared the lock"
                        );
                        std::thread::yield_now();
                    }
                });
            }
        });

        // Writers: strict mutual exclusion on a non-atomic counter.
        let total = 64;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..total / 8 {
                        let mut g = lock.write();
                        let v = *g;
                        std::thread::yield_now();
                        *g = v + 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), total);
    }

    #[test]
    fn try_acquires_succeed_uncontended_and_count() {
        let lock = Arc::new(FcfsRwLock::new(5u64));
        {
            let g = lock.try_write_arc().expect("free lock");
            assert_eq!(*g, 5);
            // A second writer, and any reader, must fail while held.
            assert!(lock.try_write_arc().is_none());
            assert!(lock.try_read_arc().is_none());
        }
        {
            let r1 = lock.try_read_arc().expect("free lock");
            let r2 = lock.try_read_arc().expect("readers share");
            assert_eq!(*r1 + *r2, 10);
            assert!(lock.try_write_arc().is_none(), "writer excluded by readers");
        }
        let snap = lock.stats().snapshot();
        // Only the four successful acquisitions were counted.
        assert_eq!(snap.w_acquires, 1);
        assert_eq!(snap.r_acquires, 2);
        assert_eq!(snap.w_contended, 0);
        assert_eq!(snap.r_contended, 0);
    }

    #[test]
    fn try_acquires_fail_while_waiters_are_queued() {
        let lock = Arc::new(FcfsRwLock::new(0u64));
        let g = lock.write();
        let t = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _g = lock.read();
            })
        };
        while lock.queued() == 0 {
            std::thread::yield_now();
        }
        // The queue is non-empty, so even a compatible probe must refuse
        // (it would otherwise overtake the FCFS queue).
        assert!(lock.try_write_arc().is_none());
        assert!(lock.try_read_arc().is_none());
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut lock = FcfsRwLock::new(1);
        *lock.get_mut() = 5;
        assert_eq!(*lock.read(), 5);
        assert_eq!(lock.queued(), 0);
    }

    #[test]
    fn stats_count_contention() {
        let lock = Arc::new(FcfsRwLock::new(()));
        let g = lock.write();
        let t = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _g = lock.read(); // must queue behind the writer
            })
        };
        // Event-ordered handshake: once the reader is visibly queued it
        // is contended by construction — no sleep or duration floor
        // needed, so the test cannot flake on scheduler jitter.
        while lock.queued() == 0 {
            std::thread::yield_now();
        }
        drop(g);
        t.join().unwrap();
        let snap = lock.stats().snapshot();
        assert_eq!(snap.w_acquires, 1);
        assert_eq!(snap.r_acquires, 1);
        assert_eq!(snap.r_contended, 1);
        assert!(snap.r_wait_ns > 0, "a queued acquisition records its wait");
        assert!(snap.w_hold_ns > 0, "the held span covers the handshake");
    }

    #[test]
    fn uncontended_acquires_are_never_contended() {
        let lock = FcfsRwLock::new(());
        for _ in 0..100 {
            drop(lock.read());
            drop(lock.write());
        }
        let snap = lock.stats().snapshot();
        assert_eq!(snap.r_acquires, 100);
        assert_eq!(snap.w_acquires, 100);
        assert_eq!(snap.r_contended, 0);
        assert_eq!(snap.w_contended, 0);
        assert_eq!(snap.r_wait_ns, 0);
        assert_eq!(snap.w_wait_ns, 0);
        // Exact sampling: every acquire records a (zero) wait observation.
        assert_eq!(snap.r_wait_hist.total(), 100);
        assert!(snap.w_hold_ns > 0, "holds are timed even when uncontended");
    }

    #[test]
    fn sampled_lock_keeps_counts_exact() {
        let lock = FcfsRwLock::with_sampling(0u64, SamplePeriod::every(4));
        for _ in 0..101 {
            *lock.write() += 1;
            drop(lock.read());
        }
        let snap = lock.stats().snapshot();
        assert_eq!(snap.w_acquires, 101, "counts must stay exact");
        assert_eq!(snap.r_acquires, 101);
        // Under the inject feature the period is forced to 1 (exact).
        let expect = if cfg!(feature = "inject") { 101 } else { 26 };
        assert_eq!(snap.w_wait_hist.total(), expect);
    }

    #[test]
    fn debug_does_not_block() {
        let lock = FcfsRwLock::new(3);
        let _g = lock.write();
        let s = format!("{lock:?}");
        assert!(s.contains("FcfsRwLock"));
    }
}
