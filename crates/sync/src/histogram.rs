//! Log-bucketed duration histogram with lock-free recording.
//!
//! Bucket `b` holds observations whose nanosecond value has `b`
//! significant bits, i.e. durations in `[2^(b-1), 2^b)` ns (bucket 0 is
//! exactly 0 ns). Recording is a single relaxed `fetch_add`, so writer
//! threads never serialize on the histogram itself — the property the
//! measurement harness needs to observe lock waits without creating a
//! second contention point.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: enough for 0 ns up to ≥ 2^39 ns ≈ 9 minutes, far
/// beyond any plausible latch wait.
pub const BUCKETS: usize = 40;

/// Lock-free log₂-bucketed histogram of nanosecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket index a nanosecond duration falls into.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Lower bound (inclusive) of a bucket, in nanoseconds.
pub fn bucket_floor(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation (relaxed; safe from any thread).
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts }
    }
}

/// A plain-integer copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub counts: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Counts recorded since `earlier` (bucket-wise saturating diff).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (c, (a, b)) in counts
            .iter_mut()
            .zip(self.counts.iter().zip(&earlier.counts))
        {
            *c = a.saturating_sub(*b);
        }
        HistogramSnapshot { counts }
    }

    /// Adds another snapshot's counts into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Approximate quantile in nanoseconds, using each bucket's lower
    /// bound. `q` is clamped into `[0.0, 1.0]` (NaN acts as 0). Returns
    /// 0 when empty; `q = 0.0` is the minimum observed bucket and
    /// `q = 1.0` the maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // Clamp the rank into [1, total]: near 2^53 observations, f64
        // rounding can push `ceil(q * total)` past `total`, which would
        // walk off the scan and report the top bucket for data that
        // never reached it.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Median (50th percentile), in nanoseconds. 0 when empty.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile, in nanoseconds. 0 when empty.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile, in nanoseconds. 0 when empty.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile, in nanoseconds — the tail-latency quantile
    /// every latency report leads with. 0 when empty.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for b in 1..BUCKETS {
            assert_eq!(bucket_of(bucket_floor(b)), b, "floor of bucket {b}");
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(100); // 7 bits
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.total(), 4);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[bucket_of(100)], 2);
    }

    #[test]
    fn since_and_merge() {
        let h = Histogram::new();
        h.record(5);
        let a = h.snapshot();
        h.record(5);
        h.record(7);
        let b = h.snapshot();
        let d = b.since(&a);
        assert_eq!(d.total(), 2);
        let mut m = a;
        m.merge(&d);
        assert_eq!(m, b);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), bucket_floor(bucket_of(10)));
        assert_eq!(s.quantile(1.0), bucket_floor(bucket_of(1_000_000)));
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn quantile_extremes_and_clamping() {
        let h = Histogram::new();
        h.record(1); // bucket 1
        for _ in 0..8 {
            h.record(100); // bucket 7
        }
        h.record(1_000_000); // bucket 20
        let s = h.snapshot();
        // q = 0 is the minimum, q = 1 the maximum; out-of-range and NaN
        // inputs clamp rather than panic or walk off the array.
        assert_eq!(s.quantile(0.0), bucket_floor(1));
        assert_eq!(s.quantile(1.0), bucket_floor(20));
        assert_eq!(s.quantile(-3.5), s.quantile(0.0));
        assert_eq!(s.quantile(7.0), s.quantile(1.0));
        assert_eq!(s.quantile(f64::NAN), s.quantile(0.0));
    }

    #[test]
    fn quantile_single_bucket_is_constant() {
        let h = Histogram::new();
        for _ in 0..5 {
            h.record(700); // all in one bucket
        }
        let s = h.snapshot();
        let floor = bucket_floor(bucket_of(700));
        for q in [0.0, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(s.quantile(q), floor, "q = {q}");
        }
    }

    #[test]
    fn quantile_rank_clamps_near_f64_precision_limit() {
        // 2^53 + 3 is not representable as f64 and rounds UP, so an
        // unclamped ceil(1.0 * total) exceeds total and the scan would
        // fall through to the top bucket. The rank clamp must keep the
        // answer inside the data.
        let mut s = HistogramSnapshot::default();
        s.counts[2] = (1u64 << 53) + 3;
        assert_eq!(s.quantile(1.0), bucket_floor(2));
        assert_eq!(s.quantile(0.5), bucket_floor(2));
    }

    #[test]
    fn percentile_accessors_empty_and_single_sample() {
        // Empty: every accessor is 0 rather than panicking.
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p90(), 0);
        assert_eq!(empty.p99(), 0);
        assert_eq!(empty.p999(), 0);
        // Single sample: every percentile is that sample's bucket.
        let h = Histogram::new();
        h.record(750);
        let s = h.snapshot();
        let floor = bucket_floor(bucket_of(750));
        assert_eq!(s.p50(), floor);
        assert_eq!(s.p90(), floor);
        assert_eq!(s.p99(), floor);
        assert_eq!(s.p999(), floor);
    }

    #[test]
    fn p999_separates_the_tail() {
        // 9900 fast observations and 100 slow ones (1% tail): p99's rank
        // lands on the last fast observation, p999 reaches the slow ones.
        let h = Histogram::new();
        for _ in 0..9_900 {
            h.record(100);
        }
        for _ in 0..100 {
            h.record(5_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.p99(), bucket_floor(bucket_of(100)));
        assert_eq!(s.p999(), bucket_floor(bucket_of(5_000_000)));
        assert_eq!(s.p999(), s.quantile(0.999), "accessor is the quantile");
    }

    #[test]
    fn quantile_zero_duration_observations() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 0);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn since_merge_round_trip_preserves_quantiles() {
        let h = Histogram::new();
        h.record(10);
        h.record(10_000);
        let early = h.snapshot();
        for ns in [3, 33, 333, 3_333, 33_333] {
            h.record(ns);
        }
        let late = h.snapshot();
        let delta = late.since(&early);
        assert_eq!(delta.total(), 5);
        // since() then merge() reconstructs the later snapshot exactly,
        // so every quantile agrees.
        let mut rebuilt = early;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, late);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(rebuilt.quantile(q), late.quantile(q), "q = {q}");
        }
        // since() against a *newer* snapshot saturates at zero rather
        // than underflowing.
        let backwards = early.since(&late);
        assert_eq!(backwards.total(), 0);
        assert_eq!(backwards.quantile(0.5), 0);
    }
}
