//! Schedule-perturbation fault injection.
//!
//! Concurrency bugs hide in narrow timing windows — a reader that chose
//! its leaf an instant before a half-split moved the key right, a root
//! swap racing an ascent. The OS scheduler explores only a thin slice of
//! the interleaving space, so a stress run can pass thousands of times
//! while a one-in-a-million window stays closed. This module widens those
//! windows on purpose: *injection points* placed at lock acquire/release
//! and inside the B-link half-split window consult a **seeded** decision
//! stream and either yield the thread or spin-delay it.
//!
//! Determinism model: every perturbation decision is a pure function of
//! `(seed, thread ordinal, call index)` — re-running a failing seed
//! replays the identical decision stream, which in practice reproduces
//! the same class of interleaving (exact thread timing still belongs to
//! the OS; the decisions, and therefore the perturbation pattern, are
//! exactly reproducible). Worker threads that want stable ordinals across
//! runs call [`register_thread`] before their first injected operation;
//! unregistered threads draw ordinals from a global counter in first-use
//! order.
//!
//! The module is compiled only with the `inject` cargo feature. Without
//! the feature every entry point is an inlined no-op, so production
//! builds carry zero cost. With the feature on but no injector enabled,
//! the cost per site is one relaxed atomic load.

/// Where in the locking protocol a perturbation point sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Immediately before requesting a shared latch.
    AcquireShared,
    /// Immediately before requesting an exclusive latch.
    AcquireExclusive,
    /// Immediately after releasing a latch.
    Release,
    /// Inside a B-link half-split: the sibling is linked and reachable,
    /// but the separator has not yet been posted to the parent.
    HalfSplit,
    /// Immediately before snapshotting a latch's version counter — the
    /// opening edge of an optimistic (OLC) read window.
    ReadVersion,
    /// Immediately before re-checking a snapshotted version — the
    /// closing edge of an optimistic read window. Dilating this gap is
    /// what forces the torn interleavings a missing re-validation hides.
    Validate,
}

/// Tuning knobs of the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectConfig {
    /// Probability (per mille) that a lock-site visit yields the thread.
    pub yield_per_mille: u32,
    /// Probability (per mille) that a lock-site visit spin-delays.
    pub spin_per_mille: u32,
    /// Maximum spin iterations per delay (each iteration is a
    /// `spin_loop` hint; thousands ≈ a microsecond).
    pub max_spin: u32,
    /// Spin iterations applied on *every* [`Site::HalfSplit`] visit —
    /// the half-split window is the structurally interesting one, so it
    /// is always widened rather than probabilistically.
    pub split_window_spin: u32,
}

impl Default for InjectConfig {
    fn default() -> Self {
        InjectConfig {
            yield_per_mille: 50,
            spin_per_mille: 200,
            max_spin: 2_000,
            split_window_spin: 4_000,
        }
    }
}

/// Counters of perturbations actually performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectStats {
    /// Injection-point visits while enabled.
    pub visits: u64,
    /// Thread yields injected.
    pub yields: u64,
    /// Spin delays injected.
    pub spins: u64,
}

#[cfg(feature = "inject")]
mod imp {
    use super::{InjectConfig, InjectStats, Site};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    /// Bumped on every `enable`, invalidating thread-local streams.
    static EPOCH: AtomicU64 = AtomicU64::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static YIELD_PM: AtomicU32 = AtomicU32::new(0);
    static SPIN_PM: AtomicU32 = AtomicU32::new(0);
    static MAX_SPIN: AtomicU32 = AtomicU32::new(0);
    static SPLIT_SPIN: AtomicU32 = AtomicU32::new(0);
    static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(0);

    static VISITS: AtomicU64 = AtomicU64::new(0);
    static YIELDS: AtomicU64 = AtomicU64::new(0);
    static SPINS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        /// `(epoch, rng state)` of this thread's decision stream.
        static STREAM: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
        /// Explicitly registered ordinal (`u64::MAX` = unregistered).
        static ORDINAL: Cell<u64> = const { Cell::new(u64::MAX) };
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn enable(seed: u64, cfg: InjectConfig) -> bool {
        SEED.store(seed, Ordering::Relaxed);
        YIELD_PM.store(cfg.yield_per_mille.min(1000), Ordering::Relaxed);
        SPIN_PM.store(cfg.spin_per_mille.min(1000), Ordering::Relaxed);
        MAX_SPIN.store(cfg.max_spin.max(1), Ordering::Relaxed);
        SPLIT_SPIN.store(cfg.split_window_spin, Ordering::Relaxed);
        NEXT_ORDINAL.store(0, Ordering::Relaxed);
        VISITS.store(0, Ordering::Relaxed);
        YIELDS.store(0, Ordering::Relaxed);
        SPINS.store(0, Ordering::Relaxed);
        EPOCH.fetch_add(1, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Release);
        true
    }

    pub fn disable() {
        ENABLED.store(false, Ordering::Release);
    }

    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Acquire)
    }

    pub fn register_thread(ordinal: u64) {
        ORDINAL.with(|o| o.set(ordinal));
        // Invalidate the local stream so the next visit reseeds from the
        // registered ordinal.
        STREAM.with(|s| s.set((0, 0)));
    }

    pub fn stats() -> InjectStats {
        InjectStats {
            visits: VISITS.load(Ordering::Relaxed),
            yields: YIELDS.load(Ordering::Relaxed),
            spins: SPINS.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub fn perturb(site: Site) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        perturb_slow(site);
    }

    #[cold]
    fn perturb_slow(site: Site) {
        VISITS.fetch_add(1, Ordering::Relaxed);
        if site == Site::HalfSplit {
            let n = SPLIT_SPIN.load(Ordering::Relaxed);
            if n > 0 {
                SPINS.fetch_add(1, Ordering::Relaxed);
                for _ in 0..n {
                    std::hint::spin_loop();
                }
                std::thread::yield_now();
            }
            return;
        }
        let epoch = EPOCH.load(Ordering::Relaxed);
        let draw = STREAM.with(|s| {
            let (e, mut state) = s.get();
            if e != epoch {
                let ordinal = ORDINAL.with(|o| {
                    let v = o.get();
                    if v != u64::MAX {
                        v
                    } else {
                        NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed)
                    }
                });
                let mut sm =
                    SEED.load(Ordering::Relaxed) ^ ordinal.wrapping_mul(0xA24B_AED4_963E_E407);
                state = splitmix64(&mut sm);
            }
            let draw = splitmix64(&mut state);
            s.set((epoch, state));
            draw
        });
        let roll = (draw % 1000) as u32;
        let y = YIELD_PM.load(Ordering::Relaxed);
        if roll < y {
            YIELDS.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
        } else if roll < y + SPIN_PM.load(Ordering::Relaxed) {
            SPINS.fetch_add(1, Ordering::Relaxed);
            let n = 1 + ((draw >> 32) as u32 % MAX_SPIN.load(Ordering::Relaxed));
            for _ in 0..n {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(not(feature = "inject"))]
mod imp {
    use super::{InjectConfig, InjectStats, Site};

    pub fn enable(_seed: u64, _cfg: InjectConfig) -> bool {
        false
    }
    pub fn disable() {}
    pub fn is_enabled() -> bool {
        false
    }
    pub fn register_thread(_ordinal: u64) {}
    pub fn stats() -> InjectStats {
        InjectStats::default()
    }
    #[inline(always)]
    pub fn perturb(_site: Site) {}
}

/// Installs the injector: subsequent injection-point visits draw from the
/// decision stream seeded by `seed`. Returns `false` (and does nothing)
/// when the crate was built without the `inject` feature.
pub fn enable(seed: u64, cfg: InjectConfig) -> bool {
    imp::enable(seed, cfg)
}

/// Turns injection off (sites return to near-zero-cost no-ops).
pub fn disable() {
    imp::disable()
}

/// Whether an injector is currently installed.
pub fn is_enabled() -> bool {
    imp::is_enabled()
}

/// Pins this thread's decision-stream ordinal (call before the thread's
/// first injected operation to make its stream reproducible across runs
/// regardless of spawn order).
pub fn register_thread(ordinal: u64) {
    imp::register_thread(ordinal)
}

/// Perturbation counters since the last [`enable`].
pub fn stats() -> InjectStats {
    imp::stats()
}

/// An injection point: possibly yields or spin-delays the calling thread.
/// No-op unless [`enable`]d (and compiled with the `inject` feature).
#[inline]
pub fn perturb(site: Site) {
    imp::perturb(site)
}

#[cfg(all(test, feature = "inject"))]
mod tests {
    use super::*;

    /// Serialize tests that toggle the global injector.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_by_default_and_after_disable() {
        let _g = GATE.lock().unwrap();
        disable();
        assert!(!is_enabled());
        perturb(Site::AcquireShared); // must be a no-op
        assert!(enable(42, InjectConfig::default()));
        assert!(is_enabled());
        disable();
        assert!(!is_enabled());
    }

    #[test]
    fn visits_counted_and_decisions_deterministic() {
        let _g = GATE.lock().unwrap();
        let cfg = InjectConfig {
            yield_per_mille: 100,
            spin_per_mille: 300,
            max_spin: 4,
            split_window_spin: 2,
        };
        let run = |seed: u64| {
            enable(seed, cfg);
            register_thread(7);
            for _ in 0..500 {
                perturb(Site::AcquireExclusive);
                perturb(Site::Release);
            }
            perturb(Site::HalfSplit);
            let s = stats();
            disable();
            s
        };
        let a = run(1234);
        let b = run(1234);
        let c = run(9999);
        assert_eq!(a, b, "same seed must replay the same decisions");
        assert_eq!(a.visits, 1001);
        assert!(a.spins >= 1, "half-split window always widens");
        // Different seeds should (overwhelmingly) make different choices.
        assert_ne!(a, c, "distinct seeds should differ");
    }

    #[test]
    fn olc_window_sites_draw_from_the_stream() {
        let _g = GATE.lock().unwrap();
        let cfg = InjectConfig {
            yield_per_mille: 500,
            spin_per_mille: 500,
            max_spin: 2,
            split_window_spin: 0,
        };
        enable(77, cfg);
        register_thread(3);
        for _ in 0..200 {
            perturb(Site::ReadVersion);
            perturb(Site::Validate);
        }
        let s = stats();
        disable();
        assert_eq!(s.visits, 400);
        // yield+spin probability is 1.0, so every visit perturbed.
        assert_eq!(s.yields + s.spins, 400);
    }

    #[test]
    fn half_split_site_always_spins() {
        let _g = GATE.lock().unwrap();
        enable(5, InjectConfig::default());
        register_thread(0);
        let before = stats();
        perturb(Site::HalfSplit);
        let after = stats();
        disable();
        assert_eq!(after.spins, before.spins + 1);
    }
}
