//! `cbtree-sync`: a dependency-free FCFS reader/writer lock with
//! built-in observability.
//!
//! This crate is the synchronization substrate of the *live execution*
//! pillar. It provides [`FcfsRwLock`], a reader/writer lock whose queue
//! discipline matches the paper's Appendix queueing model and the
//! discrete-event simulator's `LockTable`:
//!
//! - requests are served **first-come-first-served** from a single
//!   arrival-order queue (no reader overtaking, no writer preference);
//! - when the lock frees up, the **maximal compatible prefix** of the
//!   queue is admitted — a single writer, or a burst of consecutive
//!   readers granted together;
//! - **uncontended acquire and release are each one CAS** on a packed
//!   `AtomicU64` holding `(writer, queue-nonempty, reader count)`; the
//!   lock detours through its ticketed `Mutex`+`Condvar` queue only
//!   while someone is actually waiting, so the FCFS discipline above is
//!   preserved bit for bit whenever it matters;
//! - every lock embeds [`LockStats`]: relaxed-atomic counters and
//!   log₂-bucketed wait histograms, so a measurement harness can read
//!   per-lock waiting times, hold times, and writer utilization `ρ_w`
//!   without perturbing the lock's hot path. Duration timing can be
//!   1-in-N sampled ([`SamplePeriod`]) with counts kept exact and
//!   sampled durations scaled so the derived estimators stay unbiased.
//!
//! All `unsafe` in the workspace's locking layer is confined to this
//! crate (the `UnsafeCell` data access behind the guards); the B-tree
//! crate itself stays `#![deny(unsafe_code)]`.
//!
//! With the `inject` cargo feature, the lock also exposes
//! [`inject`] — seeded schedule-perturbation fault injection used by the
//! `cbtree-check` concurrency-correctness pillar to explore many more
//! interleavings per stress run and to replay a failing seed's decision
//! stream.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod fcfs;
mod histogram;
pub mod inject;
mod stats;

pub use fcfs::{
    ArcRwLockReadGuard, ArcRwLockWriteGuard, FcfsRwLock, RwLockReadGuard, RwLockWriteGuard,
    UnownedReadGuard, UnownedWriteGuard,
};
pub use histogram::{bucket_floor, bucket_of, Histogram, HistogramSnapshot, BUCKETS};
pub use inject::{InjectConfig, InjectStats};
pub use stats::{LockStats, LockStatsSnapshot, SamplePeriod};
