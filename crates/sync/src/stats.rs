//! Per-lock observability: atomic counters and wait histograms.
//!
//! Every [`crate::FcfsRwLock`] embeds one [`LockStats`]. Recording uses
//! relaxed atomics only — no extra synchronization on the hot path — and
//! readers take [`LockStatsSnapshot`]s that can be diffed across a
//! measurement window and merged across the locks of one B-tree level.
//! The derived quantities are exactly the observables of the paper's
//! queueing model: writer utilization `ρ_w = Σ hold_W / elapsed`, mean
//! reader/writer waits, and contention rates.
//!
//! # Sampled timing
//!
//! Reading `Instant::now()` twice per acquisition costs more than an
//! uncontended acquisition itself, so duration measurement is optionally
//! **1-in-N sampled** (see [`SamplePeriod`]). Acquisition and contention
//! *counts* are always exact; only the wait/hold *durations* are sampled.
//! A sampled duration is added to the running sums as `dur × N`, which
//! keeps every sum — and therefore `writer_utilization` and the mean-wait
//! estimators, which divide those sums by exact denominators — unbiased:
//! `E[Σ scaled] = N · (1/N) · Σ true = Σ true`. Histograms record the raw
//! (unscaled) sampled values; because the sample is a deterministic
//! 1-in-N systematic sample of the acquisition stream, bucket
//! *proportions* and quantiles remain representative while `total()`
//! reflects only the sampled count.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// How often wait/hold durations are measured: one acquisition in
/// `period()` is timed, and its duration is scaled by `period()` when
/// added to the stat sums so estimators stay unbiased.
///
/// Periods are powers of two (the sampling decision is a mask test on the
/// acquisition counter). [`SamplePeriod::EXACT`] (N=1) times everything —
/// it is the default and preserves the crate's original behavior. When
/// the `inject` cargo feature is enabled the effective period is forced
/// to 1 so the check pillar's schedule perturbation sees unchanged
/// timing behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SamplePeriod {
    shift: u32,
}

impl SamplePeriod {
    /// Time every acquisition (N = 1).
    pub const EXACT: SamplePeriod = SamplePeriod { shift: 0 };

    /// Time one in `n` acquisitions, with `n` rounded **up** to the next
    /// power of two (`every(0)` and `every(1)` are [`Self::EXACT`]).
    pub fn every(n: u64) -> SamplePeriod {
        SamplePeriod {
            shift: n.max(1).next_power_of_two().trailing_zeros(),
        }
    }

    /// The sampling period N (a power of two).
    pub fn period(self) -> u64 {
        1u64 << self.effective_shift()
    }

    #[inline]
    pub(crate) fn effective_shift(self) -> u32 {
        if cfg!(feature = "inject") {
            0
        } else {
            self.shift
        }
    }
}

impl Default for SamplePeriod {
    fn default() -> Self {
        SamplePeriod::EXACT
    }
}

/// Atomic per-lock counters, updated by the lock itself.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Log2 of the sampling period; set at construction, before the lock
    /// is shared, and read-only afterwards.
    sample_shift: u32,
    pub(crate) r_acquires: AtomicU64,
    pub(crate) w_acquires: AtomicU64,
    pub(crate) r_contended: AtomicU64,
    pub(crate) w_contended: AtomicU64,
    pub(crate) r_wait_ns: AtomicU64,
    pub(crate) w_wait_ns: AtomicU64,
    pub(crate) r_hold_ns: AtomicU64,
    pub(crate) w_hold_ns: AtomicU64,
    pub(crate) r_wait_hist: Histogram,
    pub(crate) w_wait_hist: Histogram,
}

impl LockStats {
    pub(crate) fn with_sampling(sample: SamplePeriod) -> LockStats {
        LockStats {
            sample_shift: sample.effective_shift(),
            ..LockStats::default()
        }
    }

    /// Counts an acquisition (exact) and decides whether this one is
    /// timed: returns `true` for one acquisition in `2^sample_shift`,
    /// reusing the count itself as the systematic-sampling clock.
    #[inline]
    pub(crate) fn begin_acquire(&self, exclusive: bool) -> bool {
        let acq = if exclusive {
            &self.w_acquires
        } else {
            &self.r_acquires
        };
        let prev = acq.fetch_add(1, Ordering::Relaxed);
        let mask = (1u64 << self.sample_shift) - 1;
        prev & mask == 0
    }

    /// Counts a queued (contended) acquisition. Exact, independent of
    /// sampling.
    #[inline]
    pub(crate) fn record_contended(&self, exclusive: bool) {
        if exclusive {
            self.w_contended.fetch_add(1, Ordering::Relaxed);
        } else {
            self.r_contended.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a sampled wait: the raw value feeds the histogram, the
    /// scaled value (`wait_ns × N`) feeds the unbiased sum.
    #[inline]
    pub(crate) fn record_sampled_wait(&self, exclusive: bool, wait_ns: u64) {
        let (wait, hist) = if exclusive {
            (&self.w_wait_ns, &self.w_wait_hist)
        } else {
            (&self.r_wait_ns, &self.r_wait_hist)
        };
        wait.fetch_add(wait_ns << self.sample_shift, Ordering::Relaxed);
        hist.record(wait_ns);
    }

    /// Records a sampled hold duration, scaled by the sampling period.
    #[inline]
    pub(crate) fn record_sampled_hold(&self, exclusive: bool, hold_ns: u64) {
        let hold = if exclusive {
            &self.w_hold_ns
        } else {
            &self.r_hold_ns
        };
        hold.fetch_add(hold_ns << self.sample_shift, Ordering::Relaxed);
    }

    /// A plain-integer copy of the counters at this instant.
    pub fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            r_acquires: self.r_acquires.load(Ordering::Relaxed),
            w_acquires: self.w_acquires.load(Ordering::Relaxed),
            r_contended: self.r_contended.load(Ordering::Relaxed),
            w_contended: self.w_contended.load(Ordering::Relaxed),
            r_wait_ns: self.r_wait_ns.load(Ordering::Relaxed),
            w_wait_ns: self.w_wait_ns.load(Ordering::Relaxed),
            r_hold_ns: self.r_hold_ns.load(Ordering::Relaxed),
            w_hold_ns: self.w_hold_ns.load(Ordering::Relaxed),
            r_wait_hist: self.r_wait_hist.snapshot(),
            w_wait_hist: self.w_wait_hist.snapshot(),
        }
    }
}

/// Counters of one lock (or a merged group of locks) at one instant, or
/// the difference of two such snapshots over a measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStatsSnapshot {
    /// Shared acquisitions granted.
    pub r_acquires: u64,
    /// Exclusive acquisitions granted.
    pub w_acquires: u64,
    /// Shared acquisitions that had to queue.
    pub r_contended: u64,
    /// Exclusive acquisitions that had to queue.
    pub w_contended: u64,
    /// Total nanoseconds shared requesters spent queued (sampled timing
    /// is pre-scaled, so this estimates the true total).
    pub r_wait_ns: u64,
    /// Total nanoseconds exclusive requesters spent queued.
    pub w_wait_ns: u64,
    /// Total nanoseconds the lock was held shared (summed over holders).
    pub r_hold_ns: u64,
    /// Total nanoseconds the lock was held exclusively.
    pub w_hold_ns: u64,
    /// Histogram of shared wait times (sampled acquisitions only).
    pub r_wait_hist: HistogramSnapshot,
    /// Histogram of exclusive wait times (sampled acquisitions only).
    pub w_wait_hist: HistogramSnapshot,
}

impl LockStatsSnapshot {
    /// Counters accumulated since `earlier` (field-wise saturating diff).
    pub fn since(&self, earlier: &LockStatsSnapshot) -> LockStatsSnapshot {
        LockStatsSnapshot {
            r_acquires: self.r_acquires.saturating_sub(earlier.r_acquires),
            w_acquires: self.w_acquires.saturating_sub(earlier.w_acquires),
            r_contended: self.r_contended.saturating_sub(earlier.r_contended),
            w_contended: self.w_contended.saturating_sub(earlier.w_contended),
            r_wait_ns: self.r_wait_ns.saturating_sub(earlier.r_wait_ns),
            w_wait_ns: self.w_wait_ns.saturating_sub(earlier.w_wait_ns),
            r_hold_ns: self.r_hold_ns.saturating_sub(earlier.r_hold_ns),
            w_hold_ns: self.w_hold_ns.saturating_sub(earlier.w_hold_ns),
            r_wait_hist: self.r_wait_hist.since(&earlier.r_wait_hist),
            w_wait_hist: self.w_wait_hist.since(&earlier.w_wait_hist),
        }
    }

    /// Adds another snapshot's counters into this one (aggregation across
    /// the locks of a tree level).
    pub fn merge(&mut self, other: &LockStatsSnapshot) {
        self.r_acquires += other.r_acquires;
        self.w_acquires += other.w_acquires;
        self.r_contended += other.r_contended;
        self.w_contended += other.w_contended;
        self.r_wait_ns += other.r_wait_ns;
        self.w_wait_ns += other.w_wait_ns;
        self.r_hold_ns += other.r_hold_ns;
        self.w_hold_ns += other.w_hold_ns;
        self.r_wait_hist.merge(&other.r_wait_hist);
        self.w_wait_hist.merge(&other.w_wait_hist);
    }

    /// Mean exclusive wait in nanoseconds (0 when no acquisitions).
    pub fn mean_w_wait_ns(&self) -> f64 {
        if self.w_acquires == 0 {
            0.0
        } else {
            self.w_wait_ns as f64 / self.w_acquires as f64
        }
    }

    /// Mean shared wait in nanoseconds (0 when no acquisitions).
    pub fn mean_r_wait_ns(&self) -> f64 {
        if self.r_acquires == 0 {
            0.0
        } else {
            self.r_wait_ns as f64 / self.r_acquires as f64
        }
    }

    /// Measured writer utilization over a window of `elapsed_ns`
    /// spanning `locks` locks: `Σ hold_W / (locks · elapsed)` — the live
    /// counterpart of the model's `ρ_w`.
    pub fn writer_utilization(&self, elapsed_ns: u64, locks: u64) -> f64 {
        let denom = elapsed_ns.saturating_mul(locks.max(1));
        if denom == 0 {
            0.0
        } else {
            (self.w_hold_ns as f64 / denom as f64).min(1.0)
        }
    }

    /// Fraction of exclusive acquisitions that queued.
    pub fn w_contention_rate(&self) -> f64 {
        if self.w_acquires == 0 {
            0.0
        } else {
            self.w_contended as f64 / self.w_acquires as f64
        }
    }

    /// JSON object of the raw counters plus derived means and sampled
    /// wait quantiles (histogram buckets stay internal; their p50/p90/p99
    /// upper bounds are what downstream tooling consumes).
    pub fn to_json(&self) -> cbtree_obs::Json {
        use cbtree_obs::Json;
        let quantiles = |h: &HistogramSnapshot| {
            Json::obj(vec![
                ("p50_ns", h.p50().into()),
                ("p90_ns", h.p90().into()),
                ("p99_ns", h.p99().into()),
                ("p999_ns", h.p999().into()),
            ])
        };
        Json::obj(vec![
            ("r_acquires", self.r_acquires.into()),
            ("w_acquires", self.w_acquires.into()),
            ("r_contended", self.r_contended.into()),
            ("w_contended", self.w_contended.into()),
            ("r_wait_ns", self.r_wait_ns.into()),
            ("w_wait_ns", self.w_wait_ns.into()),
            ("r_hold_ns", self.r_hold_ns.into()),
            ("w_hold_ns", self.w_hold_ns.into()),
            ("mean_r_wait_ns", Json::f64_or_null(self.mean_r_wait_ns())),
            ("mean_w_wait_ns", Json::f64_or_null(self.mean_w_wait_ns())),
            ("r_wait", quantiles(&self.r_wait_hist)),
            ("w_wait", quantiles(&self.w_wait_hist)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let s = LockStats::default();
        assert!(s.begin_acquire(false), "first acquisition is sampled");
        assert!(s.begin_acquire(true));
        s.record_contended(true);
        s.record_sampled_wait(false, 100);
        s.record_sampled_wait(true, 200);
        s.record_sampled_hold(false, 1_000);
        s.record_sampled_hold(true, 2_000);
        let snap = s.snapshot();
        assert_eq!(snap.r_acquires, 1);
        assert_eq!(snap.w_acquires, 1);
        assert_eq!(snap.r_contended, 0);
        assert_eq!(snap.w_contended, 1);
        assert_eq!(snap.r_wait_ns, 100);
        assert_eq!(snap.w_wait_ns, 200);
        assert_eq!(snap.r_hold_ns, 1_000);
        assert_eq!(snap.w_hold_ns, 2_000);
        assert_eq!(snap.r_wait_hist.total(), 1);
        assert_eq!(snap.w_wait_hist.total(), 1);
    }

    #[test]
    fn since_and_merge_compose() {
        let s = LockStats::default();
        s.begin_acquire(true);
        s.record_contended(true);
        s.record_sampled_wait(true, 10);
        let a = s.snapshot();
        s.begin_acquire(true);
        s.record_sampled_wait(true, 30);
        s.record_sampled_hold(true, 50);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.w_acquires, 1);
        assert_eq!(d.w_contended, 0);
        assert_eq!(d.w_wait_ns, 30);
        assert_eq!(d.w_hold_ns, 50);
        let mut m = a;
        m.merge(&d);
        assert_eq!(m, b);
    }

    #[test]
    fn derived_metrics() {
        let mut snap = LockStatsSnapshot::default();
        assert_eq!(snap.mean_w_wait_ns(), 0.0);
        assert_eq!(snap.writer_utilization(0, 0), 0.0);
        snap.w_acquires = 4;
        snap.w_contended = 1;
        snap.w_wait_ns = 400;
        snap.w_hold_ns = 500;
        assert_eq!(snap.mean_w_wait_ns(), 100.0);
        assert_eq!(snap.w_contention_rate(), 0.25);
        assert_eq!(snap.writer_utilization(1_000, 1), 0.5);
        assert_eq!(snap.writer_utilization(1_000, 2), 0.25);
        assert_eq!(snap.writer_utilization(100, 1), 1.0, "clamped at 1");
    }

    #[test]
    fn sample_period_rounds_up_to_power_of_two() {
        assert_eq!(SamplePeriod::EXACT.period(), 1);
        assert_eq!(SamplePeriod::every(0), SamplePeriod::EXACT);
        assert_eq!(SamplePeriod::every(1), SamplePeriod::EXACT);
        if cfg!(feature = "inject") {
            // Inject builds force exact timing regardless of the knob.
            assert_eq!(SamplePeriod::every(8).period(), 1);
            return;
        }
        assert_eq!(SamplePeriod::every(2).period(), 2);
        assert_eq!(SamplePeriod::every(5).period(), 8);
        assert_eq!(SamplePeriod::every(8).period(), 8);
        assert_eq!(SamplePeriod::every(1000).period(), 1024);
    }

    #[test]
    fn sampling_selects_one_in_n_and_scales_sums() {
        let s = LockStats::with_sampling(SamplePeriod::every(4));
        let mut sampled = 0;
        for _ in 0..16 {
            if s.begin_acquire(true) {
                sampled += 1;
                s.record_sampled_wait(true, 100);
                s.record_sampled_hold(true, 100);
            }
        }
        let snap = s.snapshot();
        assert_eq!(snap.w_acquires, 16, "counts stay exact");
        if cfg!(feature = "inject") {
            assert_eq!(sampled, 16);
            assert_eq!(snap.w_wait_ns, 1_600);
            return;
        }
        assert_eq!(sampled, 4, "acquisitions 0, 4, 8, 12 are sampled");
        // Each sampled 100ns contributes 100 << 2 = 400 to the sum, so the
        // estimated total equals the true total (16 × 100).
        assert_eq!(snap.w_wait_ns, 1_600);
        assert_eq!(snap.w_hold_ns, 1_600);
        assert_eq!(snap.w_wait_hist.total(), 4, "histogram holds raw samples");
    }
}
