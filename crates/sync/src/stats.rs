//! Per-lock observability: atomic counters and wait histograms.
//!
//! Every [`crate::FcfsRwLock`] embeds one [`LockStats`]. Recording uses
//! relaxed atomics only — no extra synchronization on the hot path — and
//! readers take [`LockStatsSnapshot`]s that can be diffed across a
//! measurement window and merged across the locks of one B-tree level.
//! The derived quantities are exactly the observables of the paper's
//! queueing model: writer utilization `ρ_w = Σ hold_W / elapsed`, mean
//! reader/writer waits, and contention rates.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic per-lock counters, updated by the lock itself.
#[derive(Debug, Default)]
pub struct LockStats {
    pub(crate) r_acquires: AtomicU64,
    pub(crate) w_acquires: AtomicU64,
    pub(crate) r_contended: AtomicU64,
    pub(crate) w_contended: AtomicU64,
    pub(crate) r_wait_ns: AtomicU64,
    pub(crate) w_wait_ns: AtomicU64,
    pub(crate) r_hold_ns: AtomicU64,
    pub(crate) w_hold_ns: AtomicU64,
    pub(crate) r_wait_hist: Histogram,
    pub(crate) w_wait_hist: Histogram,
}

impl LockStats {
    pub(crate) fn record_acquire(&self, exclusive: bool, wait_ns: u64, contended: bool) {
        let (acq, cont, wait, hist) = if exclusive {
            (
                &self.w_acquires,
                &self.w_contended,
                &self.w_wait_ns,
                &self.w_wait_hist,
            )
        } else {
            (
                &self.r_acquires,
                &self.r_contended,
                &self.r_wait_ns,
                &self.r_wait_hist,
            )
        };
        acq.fetch_add(1, Ordering::Relaxed);
        if contended {
            cont.fetch_add(1, Ordering::Relaxed);
        }
        wait.fetch_add(wait_ns, Ordering::Relaxed);
        hist.record(wait_ns);
    }

    pub(crate) fn record_release(&self, exclusive: bool, hold_ns: u64) {
        if exclusive {
            self.w_hold_ns.fetch_add(hold_ns, Ordering::Relaxed);
        } else {
            self.r_hold_ns.fetch_add(hold_ns, Ordering::Relaxed);
        }
    }

    /// A plain-integer copy of the counters at this instant.
    pub fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            r_acquires: self.r_acquires.load(Ordering::Relaxed),
            w_acquires: self.w_acquires.load(Ordering::Relaxed),
            r_contended: self.r_contended.load(Ordering::Relaxed),
            w_contended: self.w_contended.load(Ordering::Relaxed),
            r_wait_ns: self.r_wait_ns.load(Ordering::Relaxed),
            w_wait_ns: self.w_wait_ns.load(Ordering::Relaxed),
            r_hold_ns: self.r_hold_ns.load(Ordering::Relaxed),
            w_hold_ns: self.w_hold_ns.load(Ordering::Relaxed),
            r_wait_hist: self.r_wait_hist.snapshot(),
            w_wait_hist: self.w_wait_hist.snapshot(),
        }
    }
}

/// Counters of one lock (or a merged group of locks) at one instant, or
/// the difference of two such snapshots over a measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStatsSnapshot {
    /// Shared acquisitions granted.
    pub r_acquires: u64,
    /// Exclusive acquisitions granted.
    pub w_acquires: u64,
    /// Shared acquisitions that had to queue.
    pub r_contended: u64,
    /// Exclusive acquisitions that had to queue.
    pub w_contended: u64,
    /// Total nanoseconds shared requesters spent queued.
    pub r_wait_ns: u64,
    /// Total nanoseconds exclusive requesters spent queued.
    pub w_wait_ns: u64,
    /// Total nanoseconds the lock was held shared (summed over holders).
    pub r_hold_ns: u64,
    /// Total nanoseconds the lock was held exclusively.
    pub w_hold_ns: u64,
    /// Histogram of shared wait times.
    pub r_wait_hist: HistogramSnapshot,
    /// Histogram of exclusive wait times.
    pub w_wait_hist: HistogramSnapshot,
}

impl LockStatsSnapshot {
    /// Counters accumulated since `earlier` (field-wise saturating diff).
    pub fn since(&self, earlier: &LockStatsSnapshot) -> LockStatsSnapshot {
        LockStatsSnapshot {
            r_acquires: self.r_acquires.saturating_sub(earlier.r_acquires),
            w_acquires: self.w_acquires.saturating_sub(earlier.w_acquires),
            r_contended: self.r_contended.saturating_sub(earlier.r_contended),
            w_contended: self.w_contended.saturating_sub(earlier.w_contended),
            r_wait_ns: self.r_wait_ns.saturating_sub(earlier.r_wait_ns),
            w_wait_ns: self.w_wait_ns.saturating_sub(earlier.w_wait_ns),
            r_hold_ns: self.r_hold_ns.saturating_sub(earlier.r_hold_ns),
            w_hold_ns: self.w_hold_ns.saturating_sub(earlier.w_hold_ns),
            r_wait_hist: self.r_wait_hist.since(&earlier.r_wait_hist),
            w_wait_hist: self.w_wait_hist.since(&earlier.w_wait_hist),
        }
    }

    /// Adds another snapshot's counters into this one (aggregation across
    /// the locks of a tree level).
    pub fn merge(&mut self, other: &LockStatsSnapshot) {
        self.r_acquires += other.r_acquires;
        self.w_acquires += other.w_acquires;
        self.r_contended += other.r_contended;
        self.w_contended += other.w_contended;
        self.r_wait_ns += other.r_wait_ns;
        self.w_wait_ns += other.w_wait_ns;
        self.r_hold_ns += other.r_hold_ns;
        self.w_hold_ns += other.w_hold_ns;
        self.r_wait_hist.merge(&other.r_wait_hist);
        self.w_wait_hist.merge(&other.w_wait_hist);
    }

    /// Mean exclusive wait in nanoseconds (0 when no acquisitions).
    pub fn mean_w_wait_ns(&self) -> f64 {
        if self.w_acquires == 0 {
            0.0
        } else {
            self.w_wait_ns as f64 / self.w_acquires as f64
        }
    }

    /// Mean shared wait in nanoseconds (0 when no acquisitions).
    pub fn mean_r_wait_ns(&self) -> f64 {
        if self.r_acquires == 0 {
            0.0
        } else {
            self.r_wait_ns as f64 / self.r_acquires as f64
        }
    }

    /// Measured writer utilization over a window of `elapsed_ns`
    /// spanning `locks` locks: `Σ hold_W / (locks · elapsed)` — the live
    /// counterpart of the model's `ρ_w`.
    pub fn writer_utilization(&self, elapsed_ns: u64, locks: u64) -> f64 {
        let denom = elapsed_ns.saturating_mul(locks.max(1));
        if denom == 0 {
            0.0
        } else {
            (self.w_hold_ns as f64 / denom as f64).min(1.0)
        }
    }

    /// Fraction of exclusive acquisitions that queued.
    pub fn w_contention_rate(&self) -> f64 {
        if self.w_acquires == 0 {
            0.0
        } else {
            self.w_contended as f64 / self.w_acquires as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let s = LockStats::default();
        s.record_acquire(false, 100, false);
        s.record_acquire(true, 200, true);
        s.record_release(false, 1_000);
        s.record_release(true, 2_000);
        let snap = s.snapshot();
        assert_eq!(snap.r_acquires, 1);
        assert_eq!(snap.w_acquires, 1);
        assert_eq!(snap.r_contended, 0);
        assert_eq!(snap.w_contended, 1);
        assert_eq!(snap.r_wait_ns, 100);
        assert_eq!(snap.w_wait_ns, 200);
        assert_eq!(snap.r_hold_ns, 1_000);
        assert_eq!(snap.w_hold_ns, 2_000);
        assert_eq!(snap.r_wait_hist.total(), 1);
        assert_eq!(snap.w_wait_hist.total(), 1);
    }

    #[test]
    fn since_and_merge_compose() {
        let s = LockStats::default();
        s.record_acquire(true, 10, true);
        let a = s.snapshot();
        s.record_acquire(true, 30, false);
        s.record_release(true, 50);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.w_acquires, 1);
        assert_eq!(d.w_contended, 0);
        assert_eq!(d.w_wait_ns, 30);
        assert_eq!(d.w_hold_ns, 50);
        let mut m = a;
        m.merge(&d);
        assert_eq!(m, b);
    }

    #[test]
    fn derived_metrics() {
        let mut snap = LockStatsSnapshot::default();
        assert_eq!(snap.mean_w_wait_ns(), 0.0);
        assert_eq!(snap.writer_utilization(0, 0), 0.0);
        snap.w_acquires = 4;
        snap.w_contended = 1;
        snap.w_wait_ns = 400;
        snap.w_hold_ns = 500;
        assert_eq!(snap.mean_w_wait_ns(), 100.0);
        assert_eq!(snap.w_contention_rate(), 0.25);
        assert_eq!(snap.writer_utilization(1_000, 1), 0.5);
        assert_eq!(snap.writer_utilization(1_000, 2), 0.25);
        assert_eq!(snap.writer_utilization(100, 1), 1.0, "clamped at 1");
    }
}
