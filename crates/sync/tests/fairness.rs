//! FCFS fairness tests for [`cbtree_sync::FcfsRwLock`].
//!
//! The paper's Appendix queueing model (and the simulator's `LockTable`)
//! assume locks grant strictly in arrival order, with consecutive queued
//! readers admitted together as one burst. These tests pin that behavior
//! on the real lock: writers complete in arrival order, readers queued
//! between writers run concurrently as a burst, and under a seeded
//! 16-thread storm every thread makes progress (no starvation).

use cbtree_sync::FcfsRwLock;
use cbtree_workload::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spin until `lock` reports `n` queued waiters (with a 5 s watchdog) —
/// the `queued()` observability hook lets tests sequence arrivals
/// without relying on sleeps.
fn await_queue_len<T>(lock: &FcfsRwLock<T>, n: usize) {
    let t0 = Instant::now();
    while lock.queued() < n {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "queue never reached {n} waiters (at {})",
            lock.queued()
        );
        std::thread::yield_now();
    }
}

/// Writers that arrive while the lock is held are granted in arrival
/// order, so the written history is exactly the arrival sequence.
#[test]
fn writers_complete_in_arrival_order() {
    const WRITERS: usize = 8;
    let lock = Arc::new(FcfsRwLock::new(Vec::<usize>::new()));

    std::thread::scope(|s| {
        // Hold the lock exclusively while the writers queue up one by
        // one; `await_queue_len` serializes their arrival order.
        let gate = lock.write();
        for i in 0..WRITERS {
            await_queue_len(&lock, i);
            let l = Arc::clone(&lock);
            s.spawn(move || {
                l.write().push(i);
            });
            await_queue_len(&lock, i + 1);
        }
        drop(gate);
    });

    let history = lock.read().clone();
    assert_eq!(history, (0..WRITERS).collect::<Vec<_>>());
}

/// Readers queued between two writers are admitted together, as one
/// concurrent burst, after the first writer and before the second.
#[test]
fn queued_readers_run_as_one_burst_between_writers() {
    const READERS: usize = 4;
    let lock = Arc::new(FcfsRwLock::new(Vec::<&'static str>::new()));
    let inside = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        let gate = lock.write();

        // Arrival order behind the gate: W1, then R x READERS, then W2.
        {
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                lock.write().push("w1");
            });
        }
        await_queue_len(&lock, 1);
        for _ in 0..READERS {
            let l = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            let peak = Arc::clone(&peak);
            let n = lock.queued();
            s.spawn(move || {
                let guard = l.read();
                let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                // Hold the latch until the whole burst is inside: the
                // release that ends w1 grants all queued readers in one
                // step, so every reader arrives while we linger and the
                // rendezvous completes without any sleep. The watchdog
                // only trips if the burst was wrongly split.
                let t0 = Instant::now();
                while peak.load(Ordering::SeqCst) < READERS {
                    assert!(
                        t0.elapsed() < Duration::from_secs(5),
                        "reader burst was split"
                    );
                    std::thread::yield_now();
                }
                assert!(guard.is_empty() || guard[0] == "w1");
                inside.fetch_sub(1, Ordering::SeqCst);
                drop(guard);
            });
            await_queue_len(&lock, n + 1);
        }
        let n = lock.queued();
        {
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                lock.write().push("w2");
            });
        }
        await_queue_len(&lock, n + 1);

        drop(gate);
    });

    // FCFS: w1 first, w2 last; every reader saw at most w1.
    assert_eq!(lock.read().clone(), vec!["w1", "w2"]);
    // Burst: all READERS readers were inside the lock simultaneously.
    assert_eq!(
        peak.load(Ordering::SeqCst),
        READERS,
        "readers between two writers must be admitted as one burst"
    );
}

/// A writer queued behind readers blocks later-arriving readers (no
/// reader sneaks past a waiting writer), which is what rules out writer
/// starvation by a continuous reader stream.
#[test]
fn late_readers_do_not_overtake_a_queued_writer() {
    let lock = Arc::new(FcfsRwLock::new(0u64));

    std::thread::scope(|s| {
        let r = lock.read();
        {
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                *lock.write() += 1;
            });
        }
        await_queue_len(&lock, 1);
        // A reader arriving now must queue behind the writer even though
        // the lock is currently held shared.
        {
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                let g = lock.read();
                assert_eq!(*g, 1, "reader overtook the queued writer");
            });
        }
        await_queue_len(&lock, 2);
        drop(r);
    });
}

/// 16 threads hammer one lock with a seeded random read/write mix; every
/// thread completes its full quota (no starvation, no lost wakeups), and
/// the write count matches the sum of increments.
#[test]
fn sixteen_thread_storm_starves_no_one() {
    const THREADS: u64 = 16;
    const OPS: u64 = 400;
    const SEED: u64 = 0x5EED_FA1A;

    let lock = Arc::new(FcfsRwLock::new(0u64));
    let mut expected_writes = 0u64;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            // Decide each thread's op sequence up front with the shared
            // deterministic generator so the expected total is exact.
            let mut rng = Rng::new(SEED ^ t);
            let ops: Vec<bool> = (0..OPS).map(|_| rng.chance(0.25)).collect();
            expected_writes += ops.iter().filter(|&&w| w).count() as u64;
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                for write in ops {
                    if write {
                        *lock.write() += 1;
                    } else {
                        std::hint::black_box(*lock.read());
                    }
                }
            });
        }
    });

    assert_eq!(*lock.read(), expected_writes);
    let snap = lock.stats().snapshot();
    assert_eq!(snap.w_acquires, expected_writes);
    assert_eq!(snap.r_acquires, THREADS * OPS - expected_writes + 1);
}
