//! Integration tests for the packed-word fast path: FCFS discipline must
//! survive arbitrary interleavings of fast (CAS-only) and queued (slow
//! path) acquisitions, and sampled statistics must agree with exact ones.

use cbtree_sync::{FcfsRwLock, SamplePeriod};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

/// Deterministic FCFS handoff: a pinned reader forces a writer onto the
/// slow path; a second reader that provably arrives *after* the writer
/// queued must be granted after it, even though the second reader would
/// otherwise be read-compatible with the pinned one. Each round orders
/// the grants through a shared sequence counter.
#[test]
fn no_reader_overtakes_a_queued_writer() {
    const ROUNDS: usize = 100;

    for _ in 0..ROUNDS {
        let lock = Arc::new(FcfsRwLock::new(0u64));
        let seq = Arc::new(AtomicU64::new(0));

        // 1. Pin the lock in shared mode via the fast path.
        let pin = lock.read();

        // 2. A writer arrives and must queue behind the pin.
        let writer = {
            let lock = Arc::clone(&lock);
            let seq = Arc::clone(&seq);
            thread::spawn(move || {
                let mut g = lock.write();
                let my_seq = seq.fetch_add(1, Ordering::SeqCst);
                *g += 1;
                my_seq
            })
        };
        // Wait until the writer is visibly in the queue, so the next
        // reader's arrival is strictly after the writer's.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while lock.queued() < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "writer never queued behind the pinned reader"
            );
            thread::yield_now();
        }

        // 3. A late reader arrives. It is compatible with the pin, but
        //    FCFS forbids admitting it past the queued writer: the
        //    QUEUED bit must divert it to the slow path, behind the
        //    writer.
        let late_reader = {
            let lock = Arc::clone(&lock);
            let seq = Arc::clone(&seq);
            thread::spawn(move || {
                let g = lock.read();
                let my_seq = seq.fetch_add(1, Ordering::SeqCst);
                std::hint::black_box(*g);
                my_seq
            })
        };
        // Let the late reader reach the lock; it must block, so the
        // sequence counter stays at 0 while the pin is held.
        while lock.queued() < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "late reader never queued behind the writer"
            );
            thread::yield_now();
        }
        assert_eq!(
            seq.load(Ordering::SeqCst),
            0,
            "someone was granted the lock while the reader pinned it"
        );

        // 4. Release the pin: the writer must be served first.
        drop(pin);
        let w_seq = writer.join().unwrap();
        let r_seq = late_reader.join().unwrap();
        assert!(
            w_seq < r_seq,
            "late reader (seq {r_seq}) overtook the queued writer (seq {w_seq})"
        );
        assert_eq!(*lock.read(), 1);
        let snap = lock.stats().snapshot();
        assert_eq!(snap.w_acquires, 1);
        assert_eq!(snap.w_contended, 1);
        assert_eq!(snap.r_contended, 1);
    }
}

/// Interleaves guaranteed-fast-path acquisitions (no contention) with
/// guaranteed-queued ones (a reader pins the lock while writers arrive)
/// and checks exact counts plus queue drain.
#[test]
fn fast_and_queued_acquisitions_interleave_correctly() {
    const ROUNDS: usize = 50;
    let lock = Arc::new(FcfsRwLock::new(0u64));

    for round in 0..ROUNDS {
        // Fast-path exercise: uncontended write and read.
        *lock.write() += 1;
        assert_eq!(*lock.read(), round as u64 * 3 + 1);

        // Queued exercise: hold a read guard, launch two writers that
        // must take the slow path, then release and let them drain.
        let pin = lock.read();
        let mut writers = Vec::new();
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            writers.push(thread::spawn(move || {
                *lock.write() += 1;
            }));
        }
        // Wait until both writers are visibly queued so their slow-path
        // entry is not racy in this test.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while lock.queued() < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "writers never queued behind the pinned reader"
            );
            thread::yield_now();
        }
        drop(pin);
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(lock.queued(), 0);
    }

    let snap = lock.stats().snapshot();
    assert_eq!(*lock.read(), ROUNDS as u64 * 3);
    assert_eq!(snap.w_acquires, ROUNDS as u64 * 3);
    // Every pinned round forced exactly two writers through the queue.
    assert_eq!(snap.w_contended, ROUNDS as u64 * 2);
}

/// Runs the same deterministic workload under exact (N = 1) and sampled
/// (N = 8) timing and checks the *scaled* sampled statistics agree with
/// the exact ones: identical counts, and utilization / mean waits within
/// a few percent. Holds are stretched with a spin loop so per-sample
/// noise stays small relative to the signal; the comparison retries a
/// few times before failing to tolerate scheduler outliers.
#[test]
fn sampled_stats_agree_with_exact_stats() {
    fn workload(sample: SamplePeriod) -> (cbtree_sync::LockStatsSnapshot, u64) {
        const WRITES_PER_THREAD: u64 = 400;
        const THREADS: usize = 4;
        let lock = Arc::new(FcfsRwLock::with_sampling(0u64, sample));
        let start = Arc::new(Barrier::new(THREADS));
        let t0 = std::time::Instant::now();
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let start = Arc::clone(&start);
            handles.push(thread::spawn(move || {
                start.wait();
                for i in 0..WRITES_PER_THREAD {
                    let mut g = lock.write();
                    // ~1us of real work per hold so hold times dominate
                    // measurement overhead.
                    let mut acc = *g;
                    for _ in 0..400 {
                        acc = std::hint::black_box(
                            acc.wrapping_mul(6364136223846793005).wrapping_add(i),
                        );
                    }
                    *g = acc;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = t0.elapsed().as_nanos() as u64;
        (lock.stats().snapshot(), elapsed)
    }

    const ATTEMPTS: usize = 5;
    let mut last_err = String::new();
    for attempt in 0..ATTEMPTS {
        let (exact, exact_elapsed) = workload(SamplePeriod::EXACT);
        let (sampled, sampled_elapsed) = workload(SamplePeriod::every(8));

        // Counts are exact under any sampling period.
        assert_eq!(exact.w_acquires, 1600);
        assert_eq!(sampled.w_acquires, 1600);
        assert_eq!(exact.r_acquires, 0);
        assert_eq!(sampled.r_acquires, 0);

        // Sampled timing actually sampled: raw histogram entries are
        // roughly total/8, not total. (Under the `inject` feature the
        // sampling period is forced to 1 so the schedule-perturbation
        // pillar sees every duration; then all 1600 waits are timed.)
        let timed = sampled.w_wait_hist.total();
        if cfg!(feature = "inject") {
            // Under `inject` the sampling period is forced to 1 so the
            // schedule-perturbation pillar sees every duration, and the
            // random perturbation delays make cross-run aggregates too
            // noisy to compare — the count assertions above are the
            // meaningful part of this test there.
            assert_eq!(timed, 1600);
            return;
        }
        assert!(
            (100..=400).contains(&timed),
            "expected ~200 timed waits at N=8, got {timed}"
        );
        assert_eq!(exact.w_wait_hist.total(), 1600);

        // Scaled aggregates agree within tolerance.
        let rho_exact = exact.writer_utilization(exact_elapsed, 1);
        let rho_sampled = sampled.writer_utilization(sampled_elapsed, 1);
        let wait_exact = exact.mean_w_wait_ns();
        let wait_sampled = sampled.mean_w_wait_ns();

        let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1e-9);
        let tol = 0.25;
        if rel(rho_exact, rho_sampled) < tol
            && (wait_exact < 500.0 || rel(wait_exact, wait_sampled) < 2.0 * tol)
        {
            return;
        }
        last_err = format!(
            "attempt {attempt}: rho {rho_exact:.4} vs {rho_sampled:.4}, \
             mean w-wait {wait_exact:.0} ns vs {wait_sampled:.0} ns"
        );
    }
    panic!("sampled stats never converged to exact stats: {last_err}");
}

/// Uncontended (pure fast path) version discipline: every write release
/// bumps the version by exactly one, read acquire/release never moves
/// it, and a snapshot taken before a write stops validating afterwards.
#[test]
fn version_bumps_once_per_fast_path_write_release() {
    let lock = FcfsRwLock::new(0u64);
    assert_eq!(lock.version(), Some(0));
    for i in 0..50u64 {
        let snap = lock.version().expect("uncontended");
        assert_eq!(snap, i);
        for _ in 0..4 {
            std::hint::black_box(*lock.read());
        }
        assert_eq!(lock.version(), Some(i), "read releases must not bump");
        assert!(lock.validate(snap));
        *lock.write() += 1;
        assert_eq!(lock.version(), Some(i + 1), "one bump per write release");
        assert!(
            !lock.validate(snap),
            "pre-write snapshot must stop validating"
        );
    }
}

/// The version counter must survive the Mutex+Condvar fallback: a writer
/// forced through the queued acquire path AND the queued release path
/// (a late reader keeps QUEUED set while the writer holds) still bumps
/// exactly once, and the queued readers bump nothing.
#[test]
fn version_bumps_once_through_the_queued_slow_path() {
    const ROUNDS: u64 = 20;
    let lock = Arc::new(FcfsRwLock::new(0u64));
    for round in 0..ROUNDS {
        assert_eq!(lock.version(), Some(round), "one bump per completed round");

        // A pinned reader forces the writer to queue; a late reader
        // queued behind the writer keeps QUEUED set across the writer's
        // release, forcing that release through the mutex as well.
        let pin = lock.read();
        let writer = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                *lock.write() += 1;
            })
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while lock.queued() < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "writer never queued behind the pinned reader"
            );
            thread::yield_now();
        }
        let late = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                std::hint::black_box(*lock.read());
            })
        };
        while lock.queued() < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "late reader never queued behind the writer"
            );
            thread::yield_now();
        }
        drop(pin);
        writer.join().unwrap();
        late.join().unwrap();
        assert_eq!(
            lock.version(),
            Some(round + 1),
            "slow-path write release must bump exactly once"
        );
    }
    assert_eq!(*lock.read(), ROUNDS);
}

/// A writer released on the slow path must hand the lock to the queue
/// head even while fast-path readers keep arriving (the QUEUED bit must
/// close the fast path until the queue drains).
#[test]
fn queued_writer_eventually_acquires_under_reader_storm() {
    let lock = Arc::new(FcfsRwLock::new(0u64));
    let stop = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..4 {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                std::hint::black_box(*lock.read());
            }
        }));
    }

    // 100 writes through the storm: each must terminate (FCFS admits
    // the writer ahead of all readers that arrive after it queues).
    for _ in 0..100 {
        *lock.write() += 1;
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(*lock.read(), 100);
    let snap = lock.stats().snapshot();
    assert_eq!(snap.w_acquires, 100);
}
