//! Workload generation for the concurrent B-tree framework.
//!
//! Everything the simulator, the real concurrent B-tree stress tests, and
//! the benchmarks need to drive reproducible experiments:
//!
//! * [`rng`] — a small, fast, fully deterministic PRNG (xoshiro256**)
//!   seeded from a `u64`, so every experiment is replayable from a seed
//!   (the paper runs "5 simulations, each with a different seed");
//! * [`dist`] — the sampling distributions the paper's simulator uses
//!   (exponential service times, Poisson arrivals) plus uniform and Zipf
//!   key distributions;
//! * [`ops`] — operation streams: search/insert/delete mixes over a key
//!   space, including the paper's two-phase protocol (a construction
//!   phase that builds the tree with the same insert:delete ratio as the
//!   concurrent phase);
//! * [`arrivals`] — Poisson arrival-time streams and timed traces.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrivals;
pub mod dist;
pub mod ops;
pub mod rng;

pub use arrivals::{ArrivalProcess, OnOffArrivals, PoissonArrivals};
pub use dist::{Exponential, KeyDist};
pub use ops::{OpStream, Operation, OpsConfig};
pub use rng::Rng;
