//! A small deterministic PRNG: xoshiro256** seeded via splitmix64.
//!
//! The framework's experiments must be exactly reproducible from a `u64`
//! seed across platforms and runs (the paper reruns each configuration
//! with 5 seeds). xoshiro256** is a well-studied generator with 256 bits
//! of state, excellent statistical quality for simulation purposes, and a
//! trivial implementation — no dependency needed.

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Distinct seeds yield
    /// independent-looking streams (state is expanded via splitmix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — never zero, safe for `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)` (half-open).
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator (for per-thread streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound_and_is_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let x = r.next_below(10);
            assert!(x < 10);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_endpoints() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let x = r.range_u64(10, 12);
            assert!(x == 10 || x == 11);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(13);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn fork_streams_are_distinct() {
        let mut r = Rng::new(21);
        let mut a = r.fork();
        let mut b = r.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn zero_bound_panics() {
        Rng::new(1).next_below(0);
    }
}
