//! Poisson arrival streams: exponential inter-arrival times at a given
//! rate ("the concurrent operations arrive in a Poisson process", §4).

use crate::dist::Exponential;
use crate::rng::Rng;

/// An infinite stream of Poisson arrival instants.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    inter: Exponential,
    rng: Rng,
    now: f64,
}

impl PoissonArrivals {
    /// Creates a stream with the given arrival `rate` (events per time
    /// unit), starting at time 0.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64, seed: u64) -> Self {
        PoissonArrivals {
            inter: Exponential::with_rate(rate),
            rng: Rng::new(seed),
            now: 0.0,
        }
    }

    /// The next arrival instant (strictly increasing).
    pub fn next_arrival(&mut self) -> f64 {
        self.now += self.inter.sample(&mut self.rng);
        self.now
    }

    /// The configured arrival rate.
    pub fn rate(&self) -> f64 {
        1.0 / self.inter.mean()
    }

    /// All arrivals up to (and excluding) `horizon`, from the current
    /// position.
    pub fn until(&mut self, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= horizon {
                // Put the overshoot back by rewinding is unnecessary for
                // our use (streams are consumed once per experiment), but
                // don't record it.
                break;
            }
            out.push(t);
        }
        out
    }
}

impl Iterator for PoissonArrivals {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_increase_monotonically() {
        let mut p = PoissonArrivals::new(2.0, 1);
        let mut last = 0.0;
        for _ in 0..1000 {
            let t = p.next_arrival();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let mut p = PoissonArrivals::new(5.0, 3);
        let n = 100_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = p.next_arrival();
        }
        let rate = n as f64 / last;
        assert!((rate - 5.0).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn interarrival_variance_is_exponential() {
        // Var of exp(rate 2) inter-arrivals = 1/4.
        let mut p = PoissonArrivals::new(2.0, 9);
        let n = 100_000;
        let mut prev = 0.0;
        let mut gaps = Vec::with_capacity(n);
        for _ in 0..n {
            let t = p.next_arrival();
            gaps.push(t - prev);
            prev = t;
        }
        let mean = gaps.iter().sum::<f64>() / n as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n as f64;
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }

    #[test]
    fn until_respects_horizon() {
        let mut p = PoissonArrivals::new(10.0, 4);
        let xs = p.until(100.0);
        assert!(!xs.is_empty());
        assert!(xs.iter().all(|&t| t < 100.0));
        let expect = 1000.0; // rate · horizon
        assert!(
            (xs.len() as f64 - expect).abs() < 150.0,
            "count {}",
            xs.len()
        );
    }

    #[test]
    fn iterator_interface() {
        let p = PoissonArrivals::new(1.0, 5);
        let v: Vec<f64> = p.take(10).collect();
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<f64> = PoissonArrivals::new(3.0, 8).take(100).collect();
        let b: Vec<f64> = PoissonArrivals::new(3.0, 8).take(100).collect();
        assert_eq!(a, b);
    }
}
