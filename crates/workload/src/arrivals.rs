//! Arrival-time streams for open-loop load generation.
//!
//! [`PoissonArrivals`] is the paper's model ("the concurrent operations
//! arrive in a Poisson process", §4). [`OnOffArrivals`] is a two-state
//! on-off modulated Poisson process (an MMPP(2) with a silent state):
//! exponentially distributed ON periods emitting Poisson arrivals at a
//! burst rate, alternating with exponentially distributed silent OFF
//! periods. Its long-run mean rate is `burst_rate · E[on]/(E[on]+E[off])`,
//! so a sweep can hold the offered load fixed while varying burstiness.
//! [`ArrivalProcess`] unifies both behind one `next_arrival` interface
//! for the service layer's generator threads.

use crate::dist::Exponential;
use crate::rng::Rng;

/// An infinite stream of Poisson arrival instants.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    inter: Exponential,
    rng: Rng,
    now: f64,
}

impl PoissonArrivals {
    /// Creates a stream with the given arrival `rate` (events per time
    /// unit), starting at time 0.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64, seed: u64) -> Self {
        PoissonArrivals {
            inter: Exponential::with_rate(rate),
            rng: Rng::new(seed),
            now: 0.0,
        }
    }

    /// The next arrival instant (strictly increasing).
    pub fn next_arrival(&mut self) -> f64 {
        self.now += self.inter.sample(&mut self.rng);
        self.now
    }

    /// The configured arrival rate.
    pub fn rate(&self) -> f64 {
        1.0 / self.inter.mean()
    }

    /// All arrivals up to (and excluding) `horizon`, from the current
    /// position.
    pub fn until(&mut self, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= horizon {
                // Put the overshoot back by rewinding is unnecessary for
                // our use (streams are consumed once per experiment), but
                // don't record it.
                break;
            }
            out.push(t);
        }
        out
    }
}

impl Iterator for PoissonArrivals {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        Some(self.next_arrival())
    }
}

/// Two-state on-off modulated Poisson arrivals.
///
/// The process alternates between an ON state (arrivals at `burst_rate`)
/// and an OFF state (no arrivals). State residence times are
/// exponential with means `mean_on` and `mean_off`. The process starts
/// ON at time 0 (with a freshly sampled residence time), so a stream
/// with `mean_off = 0` degenerates to plain Poisson arrivals at
/// `burst_rate`.
#[derive(Debug, Clone)]
pub struct OnOffArrivals {
    inter: Exponential,
    on_dur: Exponential,
    off_dur: Exponential,
    rng: Rng,
    now: f64,
    /// End of the current ON period.
    on_until: f64,
}

impl OnOffArrivals {
    /// Creates an on-off stream emitting at `burst_rate` during ON
    /// periods of mean length `mean_on`, separated by OFF periods of
    /// mean length `mean_off` (all in the same time unit).
    ///
    /// # Panics
    /// Panics unless `burst_rate` and `mean_on` are finite and positive
    /// and `mean_off` is finite and non-negative.
    pub fn new(burst_rate: f64, mean_on: f64, mean_off: f64, seed: u64) -> Self {
        assert!(
            mean_on.is_finite() && mean_on > 0.0,
            "invalid mean_on {mean_on}"
        );
        let mut s = OnOffArrivals {
            inter: Exponential::with_rate(burst_rate),
            on_dur: Exponential::with_mean(mean_on),
            off_dur: Exponential::with_mean(mean_off),
            rng: Rng::new(seed),
            now: 0.0,
            on_until: 0.0,
        };
        s.on_until = s.on_dur.sample(&mut s.rng);
        s
    }

    /// An on-off stream whose *long-run mean* rate is `mean_rate`, with
    /// a `burstiness` factor `b ≥ 1`: during ON periods arrivals come
    /// `b×` faster than the mean, and the duty cycle is `1/b`. `b = 1`
    /// is plain Poisson. ON periods have mean length `mean_on`.
    pub fn with_mean_rate(mean_rate: f64, burstiness: f64, mean_on: f64, seed: u64) -> Self {
        assert!(
            burstiness.is_finite() && burstiness >= 1.0,
            "burstiness must be >= 1, got {burstiness}"
        );
        // duty = 1/b  =>  mean_off = mean_on·(b − 1).
        OnOffArrivals::new(
            mean_rate * burstiness,
            mean_on,
            mean_on * (burstiness - 1.0),
            seed,
        )
    }

    /// The long-run mean arrival rate
    /// `burst_rate · E[on] / (E[on] + E[off])`.
    pub fn rate(&self) -> f64 {
        let duty = self.on_dur.mean() / (self.on_dur.mean() + self.off_dur.mean());
        duty / self.inter.mean()
    }

    /// The arrival rate during ON periods.
    pub fn burst_rate(&self) -> f64 {
        1.0 / self.inter.mean()
    }

    /// The next arrival instant (strictly increasing).
    pub fn next_arrival(&mut self) -> f64 {
        loop {
            let candidate = self.now + self.inter.sample(&mut self.rng);
            if candidate <= self.on_until {
                self.now = candidate;
                return candidate;
            }
            // The candidate falls past the ON window: discard it (the
            // exponential is memoryless, so restarting the inter-arrival
            // clock at the next ON start keeps the within-burst process
            // Poisson) and skip the OFF period.
            self.now = self.on_until + self.off_dur.sample(&mut self.rng);
            self.on_until = self.now + self.on_dur.sample(&mut self.rng);
        }
    }
}

impl Iterator for OnOffArrivals {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        Some(self.next_arrival())
    }
}

/// Either arrival stream behind one interface, for generator threads
/// that are configured at run time.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Plain Poisson arrivals.
    Poisson(PoissonArrivals),
    /// Two-state on-off modulated Poisson arrivals.
    OnOff(OnOffArrivals),
}

impl ArrivalProcess {
    /// The next arrival instant (strictly increasing).
    pub fn next_arrival(&mut self) -> f64 {
        match self {
            ArrivalProcess::Poisson(p) => p.next_arrival(),
            ArrivalProcess::OnOff(o) => o.next_arrival(),
        }
    }

    /// The long-run mean arrival rate.
    pub fn rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson(p) => p.rate(),
            ArrivalProcess::OnOff(o) => o.rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_increase_monotonically() {
        let mut p = PoissonArrivals::new(2.0, 1);
        let mut last = 0.0;
        for _ in 0..1000 {
            let t = p.next_arrival();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let mut p = PoissonArrivals::new(5.0, 3);
        let n = 100_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = p.next_arrival();
        }
        let rate = n as f64 / last;
        assert!((rate - 5.0).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn interarrival_variance_is_exponential() {
        // Var of exp(rate 2) inter-arrivals = 1/4.
        let mut p = PoissonArrivals::new(2.0, 9);
        let n = 100_000;
        let mut prev = 0.0;
        let mut gaps = Vec::with_capacity(n);
        for _ in 0..n {
            let t = p.next_arrival();
            gaps.push(t - prev);
            prev = t;
        }
        let mean = gaps.iter().sum::<f64>() / n as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n as f64;
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }

    #[test]
    fn until_respects_horizon() {
        let mut p = PoissonArrivals::new(10.0, 4);
        let xs = p.until(100.0);
        assert!(!xs.is_empty());
        assert!(xs.iter().all(|&t| t < 100.0));
        let expect = 1000.0; // rate · horizon
        assert!(
            (xs.len() as f64 - expect).abs() < 150.0,
            "count {}",
            xs.len()
        );
    }

    #[test]
    fn iterator_interface() {
        let p = PoissonArrivals::new(1.0, 5);
        let v: Vec<f64> = p.take(10).collect();
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<f64> = PoissonArrivals::new(3.0, 8).take(100).collect();
        let b: Vec<f64> = PoissonArrivals::new(3.0, 8).take(100).collect();
        assert_eq!(a, b);
    }

    /// `until` must be exactly "repeated `next_arrival`, stop at the
    /// horizon": same instants, bit for bit, with the overshoot sample
    /// consumed but not reported.
    #[test]
    fn until_matches_repeated_next_arrival_exactly() {
        for (rate, seed, horizon) in [(10.0, 4, 50.0), (0.5, 77, 200.0), (3.0, 1, 0.0)] {
            let mut by_until = PoissonArrivals::new(rate, seed);
            let mut by_hand = PoissonArrivals::new(rate, seed);
            let xs = by_until.until(horizon);
            let mut ys = Vec::new();
            loop {
                let t = by_hand.next_arrival();
                if t >= horizon {
                    break;
                }
                ys.push(t);
            }
            assert_eq!(xs, ys, "rate {rate}, seed {seed}");
            // Both consumed the same samples: the streams stay in
            // lockstep afterwards.
            assert_eq!(by_until.next_arrival(), by_hand.next_arrival());
        }
    }

    #[test]
    fn onoff_deterministic_and_monotone() {
        let a: Vec<f64> = OnOffArrivals::new(20.0, 1.0, 3.0, 42).take(500).collect();
        let b: Vec<f64> = OnOffArrivals::new(20.0, 1.0, 3.0, 42).take(500).collect();
        assert_eq!(a, b, "same seed must give identical instants");
        assert!(a.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
        let c: Vec<f64> = OnOffArrivals::new(20.0, 1.0, 3.0, 43).take(500).collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn onoff_mean_rate_matches_duty_cycle() {
        // burst 40/s, ON mean 1 s, OFF mean 3 s → long-run rate 10/s.
        let mut p = OnOffArrivals::new(40.0, 1.0, 3.0, 9);
        assert!((p.rate() - 10.0).abs() < 1e-12);
        assert!((p.burst_rate() - 40.0).abs() < 1e-12);
        let n = 200_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = p.next_arrival();
        }
        let rate = n as f64 / last;
        assert!((rate - 10.0).abs() < 0.5, "empirical rate {rate}");
    }

    #[test]
    fn onoff_with_mean_rate_parameterization() {
        // Mean rate fixed at 8/s, burstiness 4: bursts at 32/s, duty 1/4.
        let p = OnOffArrivals::with_mean_rate(8.0, 4.0, 0.5, 3);
        assert!((p.rate() - 8.0).abs() < 1e-12);
        assert!((p.burst_rate() - 32.0).abs() < 1e-12);
        // Burstiness 1 degenerates to plain Poisson pacing (no gaps).
        let mut flat = OnOffArrivals::with_mean_rate(8.0, 1.0, 0.5, 3);
        assert!((flat.rate() - 8.0).abs() < 1e-12);
        let n = 50_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = flat.next_arrival();
        }
        let rate = n as f64 / last;
        assert!((rate - 8.0).abs() < 0.3, "degenerate rate {rate}");
    }

    #[test]
    fn onoff_is_burstier_than_poisson() {
        // Squared coefficient of variation of inter-arrival gaps: 1 for
        // Poisson, substantially larger once OFF periods interleave.
        let scv = |gaps: &[f64]| {
            let n = gaps.len() as f64;
            let mean = gaps.iter().sum::<f64>() / n;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
            var / (mean * mean)
        };
        let collect_gaps = |mut f: Box<dyn FnMut() -> f64>| -> Vec<f64> {
            let mut prev = 0.0;
            (0..100_000)
                .map(|_| {
                    let t = f();
                    let g = t - prev;
                    prev = t;
                    g
                })
                .collect()
        };
        let mut pois = PoissonArrivals::new(10.0, 5);
        let mut onoff = OnOffArrivals::with_mean_rate(10.0, 8.0, 0.2, 5);
        let scv_pois = scv(&collect_gaps(Box::new(move || pois.next_arrival())));
        let scv_onoff = scv(&collect_gaps(Box::new(move || onoff.next_arrival())));
        assert!((scv_pois - 1.0).abs() < 0.1, "poisson scv {scv_pois}");
        assert!(
            scv_onoff > 2.0,
            "on-off scv {scv_onoff} should reflect bursts"
        );
    }

    #[test]
    fn arrival_process_dispatches_both_variants() {
        let mut p = ArrivalProcess::Poisson(PoissonArrivals::new(5.0, 1));
        let mut o = ArrivalProcess::OnOff(OnOffArrivals::new(20.0, 1.0, 3.0, 1));
        assert!((p.rate() - 5.0).abs() < 1e-12);
        assert!((o.rate() - 5.0).abs() < 1e-12);
        assert!(p.next_arrival() > 0.0);
        assert!(o.next_arrival() > 0.0);
    }
}
