//! Sampling distributions: exponential service times and key-space
//! distributions (uniform, Zipf, sequential).

use crate::rng::Rng;

/// Exponential distribution with a given mean (the paper's simulator:
/// "all service times have exponential distributions").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    /// Panics unless `mean` is finite and non-negative (a zero mean gives
    /// a degenerate distribution at 0, useful for "free" steps).
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "invalid exponential mean {mean}"
        );
        Exponential { mean }
    }

    /// Creates an exponential distribution with the given rate `μ`
    /// (mean `1/μ`).
    pub fn with_rate(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "invalid exponential rate {rate}"
        );
        Exponential { mean: 1.0 / rate }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws a sample by inverse-CDF: `-mean·ln(U)`, `U ∈ (0, 1]`.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        -self.mean * rng.next_f64_open().ln()
    }
}

/// Distribution of keys drawn by the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
    },
    /// Zipf-distributed ranks over `[0, n)` mapped through a fixed
    /// pseudo-random permutation, exponent `theta` (hot keys spread across
    /// the key space rather than clustered at one end).
    Zipf {
        /// Number of distinct ranks.
        n: u64,
        /// Skew exponent (`0` = uniform; YCSB uses ~0.99).
        theta: f64,
    },
    /// Monotonically increasing keys (classic worst case for rightmost-
    /// leaf contention). Stateless here: sampled keys are drawn near the
    /// top of the current counter supplied by the caller.
    Sequential,
}

impl KeyDist {
    /// Draws a key. `counter` supports [`KeyDist::Sequential`] (the
    /// caller's monotonically growing high-water mark); other variants
    /// ignore it.
    pub fn sample(&self, rng: &mut Rng, counter: u64) -> u64 {
        match *self {
            KeyDist::Uniform { lo, hi } => rng.range_u64(lo, hi),
            KeyDist::Zipf { n, theta } => {
                let rank = zipf_rank(rng, n, theta);
                // Scatter hot keys across the space via a bijection on
                // [0, n) so the distribution over ranks is preserved.
                permute_below(rank, n)
            }
            KeyDist::Sequential => counter,
        }
    }

    /// The number of distinct keys this distribution draws from (the
    /// `keyspace` every run's `meta` record reports). Sequential streams
    /// are unbounded, reported as 0 by convention.
    pub fn span(&self) -> u64 {
        match *self {
            KeyDist::Uniform { lo, hi } => hi.saturating_sub(lo),
            KeyDist::Zipf { n, .. } => n,
            KeyDist::Sequential => 0,
        }
    }

    /// Exclusive upper bound of the keys this distribution can draw, or
    /// `None` when unbounded (sequential streams grow without limit, so
    /// a key-range router must split the full `u64` space).
    pub fn key_space_hi(&self) -> Option<u64> {
        match *self {
            KeyDist::Uniform { hi, .. } => Some(hi),
            KeyDist::Zipf { n, .. } => Some(n),
            KeyDist::Sequential => None,
        }
    }

    /// Short name for tables and JSONL records.
    pub fn name(&self) -> &'static str {
        match self {
            KeyDist::Uniform { .. } => "uniform",
            KeyDist::Zipf { .. } => "zipf",
            KeyDist::Sequential => "seq",
        }
    }

    /// Parses the CLI spelling shared by the `live` and `serve` binaries:
    /// `uniform` (over `[0, key_space)`), `zipf:<theta>` (ranks over
    /// `[0, key_space)`), or `seq` / `sequential`.
    pub fn parse_cli(spec: &str, key_space: u64) -> Result<KeyDist, String> {
        match spec {
            "uniform" => Ok(KeyDist::Uniform {
                lo: 0,
                hi: key_space,
            }),
            "seq" | "sequential" => Ok(KeyDist::Sequential),
            _ => {
                let theta = spec
                    .strip_prefix("zipf:")
                    .ok_or_else(|| {
                        format!("unknown key distribution {spec:?} (uniform | zipf:<theta> | seq)")
                    })?
                    .parse::<f64>()
                    .map_err(|e| format!("bad zipf theta in {spec:?}: {e}"))?;
                if !theta.is_finite() || theta < 0.0 {
                    return Err(format!("zipf theta must be finite and >= 0, got {theta}"));
                }
                Ok(KeyDist::Zipf {
                    n: key_space,
                    theta,
                })
            }
        }
    }
}

/// Samples a Zipf(θ) rank in `[0, n)` by rejection-inversion
/// (approximation adequate for workload skew; exact for θ = 0).
fn zipf_rank(rng: &mut Rng, n: u64, theta: f64) -> u64 {
    if n <= 1 {
        return 0;
    }
    if theta <= 0.0 {
        return rng.next_below(n);
    }
    // Inverse-CDF on the continuous approximation of the generalized
    // harmonic CDF: P(X ≤ x) ≈ (x^(1−θ) − 1)/(n^(1−θ) − 1) for θ ≠ 1.
    let u = rng.next_f64_open();
    let x = if (theta - 1.0).abs() < 1e-9 {
        // θ = 1: CDF ≈ ln(x)/ln(n)
        (n as f64).powf(u)
    } else {
        let s = 1.0 - theta;
        ((u * ((n as f64).powf(s) - 1.0)) + 1.0).powf(1.0 / s)
    };
    (x as u64).min(n - 1)
}

/// A fixed pseudo-random *permutation* of `[0, n)`: a bijective mix on the
/// next power of two, cycle-walked back into range. Bijectivity matters —
/// a plain hash-mod-n would merge ranks and distort the distribution.
fn permute_below(rank: u64, n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let bits = 64 - (n - 1).leading_zeros();
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut x = rank;
    loop {
        // Each step is invertible modulo 2^bits: odd multiply, xor-shift.
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15 | 1) & mask;
        x ^= x >> (bits / 2).max(1);
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9 | 1) & mask;
        if x < n {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(3.0);
        let mut rng = Rng::new(17);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exponential_variance_matches() {
        let d = Exponential::with_mean(2.0);
        let mut rng = Rng::new(23);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn rate_and_mean_agree() {
        assert!((Exponential::with_rate(4.0).mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_mean_is_degenerate() {
        let d = Exponential::with_mean(0.0);
        let mut rng = Rng::new(1);
        assert_eq!(d.sample(&mut rng), 0.0);
    }

    #[test]
    fn samples_nonnegative() {
        let d = Exponential::with_mean(1.0);
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn uniform_keys_cover_range() {
        let kd = KeyDist::Uniform { lo: 100, hi: 110 };
        let mut rng = Rng::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let k = kd.sample(&mut rng, 0);
            assert!((100..110).contains(&k));
            seen.insert(k);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn zipf_skews_toward_few_keys() {
        let kd = KeyDist::Zipf {
            n: 1000,
            theta: 0.99,
        };
        let mut rng = Rng::new(4);
        let mut counts = std::collections::HashMap::new();
        let n = 50_000;
        for _ in 0..n {
            *counts.entry(kd.sample(&mut rng, 0)).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 > 0.2 * n as f64,
            "top-10 keys should dominate a skewed workload: {top10}/{n}"
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let kd = KeyDist::Zipf { n: 10, theta: 0.0 };
        let mut rng = Rng::new(6);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[kd.sample(&mut rng, 0) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket {c}");
        }
    }

    #[test]
    fn permute_below_is_a_bijection() {
        for n in [1u64, 2, 7, 10, 64, 1000] {
            let mut seen = std::collections::HashSet::new();
            for r in 0..n {
                let p = permute_below(r, n);
                assert!(p < n);
                assert!(seen.insert(p), "collision at n={n}, rank={r}");
            }
        }
    }

    #[test]
    fn sequential_returns_counter() {
        let kd = KeyDist::Sequential;
        let mut rng = Rng::new(5);
        assert_eq!(kd.sample(&mut rng, 42), 42);
    }

    #[test]
    fn span_and_key_space_hi_per_variant() {
        let uni = KeyDist::Uniform { lo: 100, hi: 350 };
        assert_eq!(uni.span(), 250);
        assert_eq!(uni.key_space_hi(), Some(350));
        let zipf = KeyDist::Zipf { n: 64, theta: 0.9 };
        assert_eq!(zipf.span(), 64);
        assert_eq!(zipf.key_space_hi(), Some(64));
        assert_eq!(KeyDist::Sequential.span(), 0);
        assert_eq!(KeyDist::Sequential.key_space_hi(), None);
    }

    #[test]
    fn parse_cli_round_trips_each_spelling() {
        assert_eq!(
            KeyDist::parse_cli("uniform", 1000).unwrap(),
            KeyDist::Uniform { lo: 0, hi: 1000 }
        );
        assert_eq!(
            KeyDist::parse_cli("zipf:0.99", 500).unwrap(),
            KeyDist::Zipf {
                n: 500,
                theta: 0.99
            }
        );
        assert_eq!(KeyDist::parse_cli("seq", 42).unwrap(), KeyDist::Sequential);
        assert_eq!(
            KeyDist::parse_cli("sequential", 42).unwrap(),
            KeyDist::Sequential
        );
        assert!(KeyDist::parse_cli("hotset", 10).is_err());
        assert!(KeyDist::parse_cli("zipf:nope", 10).is_err());
        assert!(KeyDist::parse_cli("zipf:-1", 10).is_err());
        for (kd, name) in [
            (KeyDist::parse_cli("uniform", 10).unwrap(), "uniform"),
            (KeyDist::parse_cli("zipf:0.5", 10).unwrap(), "zipf"),
            (KeyDist::Sequential, "seq"),
        ] {
            assert_eq!(kd.name(), name);
        }
    }
}
