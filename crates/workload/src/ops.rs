//! Operation streams: search/insert/delete mixes over a key space.
//!
//! Mirrors the paper's simulator protocol (§4): "The simulator first
//! builds a B-tree out of a sequence of insert and delete operations.
//! Next, a sequence of concurrent B-tree operations is performed. [...]
//! The proportion of insert to delete operations in the construction phase
//! is the same as the proportion in the concurrent operation phase."

use crate::dist::KeyDist;
use crate::rng::Rng;

/// One B-tree operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Look a key up.
    Search(u64),
    /// Insert a key.
    Insert(u64),
    /// Delete a key.
    Delete(u64),
}

impl Operation {
    /// The key the operation targets.
    pub fn key(&self) -> u64 {
        match *self {
            Operation::Search(k) | Operation::Insert(k) | Operation::Delete(k) => k,
        }
    }

    /// Whether the operation may modify the tree.
    pub fn is_update(&self) -> bool {
        !matches!(self, Operation::Search(_))
    }
}

/// Configuration of an operation stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpsConfig {
    /// Probability an operation is a search.
    pub q_search: f64,
    /// Probability an operation is an insert.
    pub q_insert: f64,
    /// Probability an operation is a delete.
    pub q_delete: f64,
    /// Key distribution.
    pub keys: KeyDist,
}

impl OpsConfig {
    /// The paper's mix (`.3/.5/.2`) over a uniform key space.
    pub fn paper(key_space: u64) -> Self {
        OpsConfig {
            q_search: 0.3,
            q_insert: 0.5,
            q_delete: 0.2,
            keys: KeyDist::Uniform {
                lo: 0,
                hi: key_space,
            },
        }
    }

    /// Validates that the proportions form a distribution.
    pub fn is_valid(&self) -> bool {
        let vals = [self.q_search, self.q_insert, self.q_delete];
        vals.iter().all(|v| (0.0..=1.0).contains(v))
            && (vals.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }
}

/// A reproducible, infinite stream of operations.
///
/// Delete operations target keys known to have been inserted (tracked in a
/// bounded pool) so deletes usually hit, matching a B-tree whose
/// construction and concurrent phases share the insert:delete ratio.
#[derive(Debug, Clone)]
pub struct OpStream {
    cfg: OpsConfig,
    rng: Rng,
    seq_counter: u64,
    /// Pool of recently inserted keys for deletes to target.
    live_pool: Vec<u64>,
    pool_cap: usize,
    /// Transaction size: a commit point falls after every `txn` drawn
    /// operations.
    txn: usize,
    /// Operations drawn so far (for commit-point bookkeeping).
    drawn: u64,
}

impl OpStream {
    /// Creates a stream from a config and seed.
    ///
    /// # Panics
    /// Panics when the proportions do not form a distribution.
    pub fn new(cfg: OpsConfig, seed: u64) -> Self {
        assert!(cfg.is_valid(), "invalid operation mix {cfg:?}");
        OpStream {
            cfg,
            rng: Rng::new(seed),
            seq_counter: 0,
            live_pool: Vec::new(),
            pool_cap: 4096,
            txn: 1,
            drawn: 0,
        }
    }

    /// Sets the transaction size: a commit point falls after every `txn`
    /// operations (the paper's §7 recovery variants retain exclusive
    /// latches between commit points). `txn = 1` commits after every
    /// operation — the default, and a no-op for non-recovery protocols.
    ///
    /// # Panics
    /// Panics when `txn == 0`.
    pub fn with_txn(mut self, txn: usize) -> Self {
        assert!(txn >= 1, "transaction size must be at least 1");
        self.txn = txn;
        self
    }

    /// The configured transaction size.
    pub fn txn(&self) -> usize {
        self.txn
    }

    /// Starts the sequential-key counter at `base` instead of 0, so a
    /// stream generating [`KeyDist::Sequential`] keys appends *after* a
    /// prefill that already consumed counters `0..base` (without this,
    /// every generated insert would collide with a prefilled key and
    /// degenerate into replacement). No-op for other distributions.
    pub fn with_seq_base(mut self, base: u64) -> Self {
        self.seq_counter = base;
        self
    }

    /// Whether the most recently drawn operation ends a transaction
    /// (callers commit when this is true). Trivially true between
    /// transactions and before the first draw.
    pub fn at_commit_point(&self) -> bool {
        self.drawn.is_multiple_of(self.txn as u64)
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Operation {
        self.drawn += 1;
        let u = self.rng.next_f64();
        let key = self.cfg.keys.sample(&mut self.rng, self.seq_counter);
        if u < self.cfg.q_search {
            Operation::Search(key)
        } else if u < self.cfg.q_search + self.cfg.q_insert {
            self.seq_counter += 1;
            self.remember(key);
            Operation::Insert(key)
        } else {
            // Prefer deleting a key we know was inserted.
            let victim = self.pick_live().unwrap_or(key);
            Operation::Delete(victim)
        }
    }

    /// Generates the construction sequence the paper's simulator uses to
    /// grow a tree to roughly `target_items` items: inserts and deletes in
    /// the configured ratio, continuing until the net count reaches the
    /// target.
    pub fn construction_sequence(&mut self, target_items: usize) -> Vec<Operation> {
        let updates = self.cfg.q_insert + self.cfg.q_delete;
        assert!(
            self.cfg.q_insert > self.cfg.q_delete,
            "construction needs net growth (q_insert > q_delete)"
        );
        let mut out = Vec::new();
        let mut net = 0usize;
        while net < target_items {
            let u = self.rng.next_f64() * updates;
            let key = self.cfg.keys.sample(&mut self.rng, self.seq_counter);
            if u < self.cfg.q_insert {
                self.seq_counter += 1;
                self.remember(key);
                out.push(Operation::Insert(key));
                net += 1;
            } else if let Some(victim) = self.pick_live() {
                out.push(Operation::Delete(victim));
                net = net.saturating_sub(1);
            }
        }
        out
    }

    /// Takes `n` operations as a vector (for traces).
    pub fn take_ops(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }

    fn remember(&mut self, key: u64) {
        if self.live_pool.len() < self.pool_cap {
            self.live_pool.push(key);
        } else {
            let idx = self.rng.next_below(self.pool_cap as u64) as usize;
            self.live_pool[idx] = key;
        }
    }

    fn pick_live(&mut self) -> Option<u64> {
        if self.live_pool.is_empty() {
            return None;
        }
        let idx = self.rng.next_below(self.live_pool.len() as u64) as usize;
        Some(self.live_pool.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> OpStream {
        OpStream::new(OpsConfig::paper(1_000_000), seed)
    }

    #[test]
    fn mix_proportions_respected() {
        let mut s = stream(1);
        let n = 100_000;
        let (mut qs, mut qi, mut qd) = (0u32, 0u32, 0u32);
        for _ in 0..n {
            match s.next_op() {
                Operation::Search(_) => qs += 1,
                Operation::Insert(_) => qi += 1,
                Operation::Delete(_) => qd += 1,
            }
        }
        let f = |c: u32| c as f64 / n as f64;
        assert!((f(qs) - 0.3).abs() < 0.01, "searches {}", f(qs));
        assert!((f(qi) - 0.5).abs() < 0.01, "inserts {}", f(qi));
        assert!((f(qd) - 0.2).abs() < 0.01, "deletes {}", f(qd));
    }

    #[test]
    fn deterministic_from_seed() {
        let a: Vec<Operation> = stream(99).take_ops(1000);
        let b: Vec<Operation> = stream(99).take_ops(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_traces() {
        assert_ne!(stream(1).take_ops(50), stream(2).take_ops(50));
    }

    #[test]
    fn construction_reaches_target_net_size() {
        let mut s = stream(7);
        let seq = s.construction_sequence(5000);
        let net: i64 = seq
            .iter()
            .map(|op| match op {
                Operation::Insert(_) => 1,
                Operation::Delete(_) => -1,
                Operation::Search(_) => 0,
            })
            .sum();
        assert!(net >= 5000, "net inserts {net}");
        // Deletes appear in roughly the configured ratio to inserts.
        let dels = seq
            .iter()
            .filter(|o| matches!(o, Operation::Delete(_)))
            .count();
        let ins = seq
            .iter()
            .filter(|o| matches!(o, Operation::Insert(_)))
            .count();
        let ratio = dels as f64 / ins as f64;
        assert!(
            (ratio - 0.4).abs() < 0.05,
            "delete:insert ratio {ratio} (expect .2/.5)"
        );
    }

    #[test]
    fn deletes_target_inserted_keys() {
        let mut s = stream(11);
        let mut inserted = std::collections::HashSet::new();
        let mut hits = 0;
        let mut total = 0;
        for _ in 0..10_000 {
            match s.next_op() {
                Operation::Insert(k) => {
                    inserted.insert(k);
                }
                Operation::Delete(k) => {
                    total += 1;
                    if inserted.contains(&k) {
                        hits += 1;
                    }
                }
                Operation::Search(_) => {}
            }
        }
        assert!(total > 0);
        assert!(
            hits as f64 / total as f64 > 0.9,
            "deletes should usually hit inserted keys: {hits}/{total}"
        );
    }

    #[test]
    fn txn_commit_points_fall_every_k_ops() {
        let mut s = stream(5).with_txn(3);
        assert_eq!(s.txn(), 3);
        assert!(s.at_commit_point(), "trivially at a boundary before ops");
        let mut commits = 0;
        for i in 1..=12 {
            s.next_op();
            if s.at_commit_point() {
                commits += 1;
                assert_eq!(i % 3, 0, "commit at op {i}");
            }
        }
        assert_eq!(commits, 4);
        // Default is txn = 1: every op is a commit point.
        let mut s = stream(5);
        s.next_op();
        assert!(s.at_commit_point());
    }

    #[test]
    #[should_panic(expected = "transaction size")]
    fn zero_txn_rejected() {
        let _ = stream(0).with_txn(0);
    }

    #[test]
    fn seq_base_offsets_generated_keys_past_a_prefill() {
        let cfg = OpsConfig {
            q_search: 0.0,
            q_insert: 1.0,
            q_delete: 0.0,
            keys: KeyDist::Sequential,
        };
        let mut s = OpStream::new(cfg, 3).with_seq_base(500);
        for i in 0..20u64 {
            assert_eq!(s.next_op(), Operation::Insert(500 + i));
        }
    }

    #[test]
    fn operation_accessors() {
        assert_eq!(Operation::Search(5).key(), 5);
        assert!(!Operation::Search(5).is_update());
        assert!(Operation::Insert(1).is_update());
        assert!(Operation::Delete(1).is_update());
    }

    #[test]
    #[should_panic(expected = "invalid operation mix")]
    fn invalid_mix_panics() {
        let cfg = OpsConfig {
            q_search: 0.9,
            q_insert: 0.9,
            q_delete: 0.0,
            keys: KeyDist::Uniform { lo: 0, hi: 10 },
        };
        let _ = OpStream::new(cfg, 0);
    }
}
