//! `live`: run the real concurrent B+-trees on OS threads and print the
//! measured per-level performance table.
//!
//! ```text
//! cargo run --release -p cbtree-harness --bin live -- --algo blink --threads 8
//! ```

use cbtree_btree::Protocol;
use cbtree_harness::{run, saturation_search, LiveConfig, LiveReport};
use cbtree_obs::table::{fmt_f, Table};
use cbtree_obs::{replay, Json};
use cbtree_sync::SamplePeriod;
use cbtree_workload::{KeyDist, OpsConfig};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "\
usage: live [options]

  --algo NAME        b-link | lock-coupling | optimistic | olc | two-phase |
                     recovery-naive | recovery-leaf  (default b-link;
                     historical aliases like blink/coupling also work)
  --threads N        worker threads (default 4)
  --txn N            transaction size: commit after every N ops; only the
                     recovery protocols retain latches between commits
                     (default 1)
  --capacity N       max keys per node (default 64)
  --items N          keys prefilled before measurement (default 50000)
  --keyspace N       key space size (default 1000000)
  --key-dist SPEC    key distribution over the key space:
                     uniform | zipf:<theta> | seq  (default uniform)
  --mix S,I,D        operation mix, must sum to 1 (default 0.3,0.5,0.2)
  --warmup-ms N      untimed warmup (default 200)
  --measure-ms N     measured window (default 1000)
  --seed N           workload seed (default 4606)
  --sample-every N   time 1 in N lock acquisitions, N rounded up to a
                     power of two (default 1 = exact; counts stay exact
                     and sampled stats stay unbiased either way)
  --saturate N       saturation search: double threads from 1 up to N
  --json PATH        write the run as JSONL records: meta, live_report,
                     and (when built with --features trace) trace_info,
                     trace_summary, and one record per drained event
  --trace-buf N      per-thread trace ring capacity in events (power of
                     two; default 65536; needs --features trace)
  -h, --help         print this help
";

struct Args {
    cfg: LiveConfig,
    saturate: Option<usize>,
    json: Option<PathBuf>,
    trace_buf: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = LiveConfig::paper(Protocol::BLink, 4);
    let mut keyspace = 1_000_000u64;
    let mut key_dist = String::from("uniform");
    let mut mix = (0.3, 0.5, 0.2);
    let mut saturate = None;
    let mut json = None;
    let mut trace_buf = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} requires an argument"))
        };
        match flag.as_str() {
            "--algo" => cfg.protocol = value()?.parse()?,
            "--threads" => cfg.threads = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--txn" => {
                cfg.txn = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
                if cfg.txn == 0 {
                    return Err("--txn must be at least 1".into());
                }
            }
            "--capacity" => cfg.capacity = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--items" => {
                cfg.initial_items = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--keyspace" => keyspace = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--key-dist" => key_dist = value()?,
            "--mix" => {
                let v = value()?;
                let parts: Vec<f64> = v
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--mix {v}: {e}"))?;
                if parts.len() != 3 {
                    return Err(format!("--mix needs three components, got {v:?}"));
                }
                mix = (parts[0], parts[1], parts[2]);
            }
            "--warmup-ms" => {
                cfg.warmup =
                    Duration::from_millis(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--measure-ms" => {
                cfg.measure =
                    Duration::from_millis(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--seed" => cfg.seed = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--sample-every" => {
                cfg.stats_sampling =
                    SamplePeriod::every(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--saturate" => {
                saturate = Some(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            "--json" => json = Some(PathBuf::from(value()?)),
            "--trace-buf" => {
                let n: usize = value()?.parse().map_err(|e| format!("{flag}: {e}"))?;
                if n == 0 {
                    return Err("--trace-buf must be positive".into());
                }
                trace_buf = Some(n);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    cfg.ops = OpsConfig {
        q_search: mix.0,
        q_insert: mix.1,
        q_delete: mix.2,
        keys: KeyDist::parse_cli(&key_dist, keyspace)?,
    };
    if !cfg.ops.is_valid() {
        return Err(format!(
            "operation mix {}/{}/{} does not sum to 1",
            mix.0, mix.1, mix.2
        ));
    }
    Ok(Args {
        cfg,
        saturate,
        json,
        trace_buf,
    })
}

/// The `meta` JSONL record: everything a downstream analyzer needs to
/// rebuild the analytical/simulation configuration this run measured.
fn meta_json(cfg: &LiveConfig) -> Json {
    Json::obj(vec![
        ("type", "meta".into()),
        ("schema", cbtree_obs::SCHEMA_VERSION.into()),
        ("kind", "live_run".into()),
        ("protocol", cfg.protocol.name().into()),
        ("threads", cfg.threads.into()),
        ("capacity", cfg.capacity.into()),
        ("initial_items", cfg.initial_items.into()),
        (
            "mix",
            Json::arr([
                cfg.ops.q_search.into(),
                cfg.ops.q_insert.into(),
                cfg.ops.q_delete.into(),
            ]),
        ),
        ("keyspace", cfg.ops.keys.span().into()),
        ("key_dist", cfg.ops.keys.name().into()),
        ("seed", cfg.seed.into()),
        ("txn", cfg.txn.into()),
        (
            "warmup_ms",
            u64::try_from(cfg.warmup.as_millis())
                .unwrap_or(u64::MAX)
                .into(),
        ),
        (
            "measure_ms",
            u64::try_from(cfg.measure.as_millis())
                .unwrap_or(u64::MAX)
                .into(),
        ),
    ])
}

/// Serializes one finished run as JSONL: meta, report, and — when a
/// trace was drained — its shape, replay summary, and every event.
fn write_json(
    path: &std::path::Path,
    cfg: &LiveConfig,
    report: &LiveReport,
) -> std::io::Result<()> {
    let mut records = vec![meta_json(cfg), report.to_json()];
    if !report.trace.is_empty() {
        records.push(report.trace.info_json());
        records.push(replay(&report.trace).to_json());
        records.extend(report.trace.events.iter().map(|e| e.to_json()));
    }
    cbtree_obs::write_jsonl(path, &records)
}

fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

fn print_report(cfg: &LiveConfig, report: &LiveReport) {
    println!(
        "live execution: {} | {} threads | capacity {} | {} initial items",
        cfg.protocol.name(),
        report.threads,
        cfg.capacity,
        cfg.initial_items
    );
    println!(
        "window {:.3} s | {} ops completed | throughput {:.0} ops/s",
        report.measured_time, report.completed, report.throughput
    );
    println!(
        "response time (us): search {:.2} ± {:.2} | insert {:.2} ± {:.2} | delete {:.2} ± {:.2} | mix mean {:.2}",
        us(report.resp_search.mean),
        us(report.resp_search.ci95),
        us(report.resp_insert.mean),
        us(report.resp_insert.ci95),
        us(report.resp_delete.mean),
        us(report.resp_delete.ci95),
        us(report.mean_response_time()),
    );
    println!(
        "latency quantiles (us): p50 {:.2} | p99 {:.2} | p999 {:.2}",
        report.latency.p50() as f64 / 1e3,
        report.latency.p99() as f64 / 1e3,
        report.latency.p999() as f64 / 1e3,
    );
    println!(
        "final height {} | final keys {} | root writer utilization {:.4}",
        report.final_height, report.final_len, report.root_writer_utilization
    );
    let c = &report.counters;
    println!(
        "engine telemetry: {:.2} latches/op | restart rate {:.4} | chase rate {:.4} | peak latch chain {}",
        c.latches_per_op(),
        c.restart_rate(),
        c.chase_rate(),
        c.peak_chain,
    );
    if cfg.txn > 1 || c.txn_commits > 0 {
        println!(
            "transactions: size {} | {} commits | {} deadlock-avoidance spills",
            cfg.txn, c.txn_commits, c.txn_spills
        );
    }
    println!();
    let mut t = Table::new(
        "per-level lock behavior (level 1 = leaves)",
        &[
            "level",
            "nodes",
            "w-acq",
            "r-acq",
            "rho_w",
            "w-wait(us)",
            "r-wait(us)",
            "w-cont",
        ],
    );
    for l in report.levels.iter().rev() {
        t.push(vec![
            l.level.to_string(),
            l.nodes.to_string(),
            l.stats.w_acquires.to_string(),
            l.stats.r_acquires.to_string(),
            fmt_f(l.rho_w, 4),
            fmt_f(l.stats.mean_w_wait_ns() / 1e3, 3),
            fmt_f(l.stats.mean_r_wait_ns() / 1e3, 3),
            fmt_f(l.stats.w_contention_rate(), 4),
        ]);
    }
    t.print();
    if !report.trace.is_empty() {
        println!(
            "trace: {} events from {} threads ({} dropped)",
            report.trace.events.len(),
            report.trace.threads,
            report.trace.dropped
        );
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    if let Some(n) = args.trace_buf {
        cbtree_obs::trace::set_default_ring_capacity(n);
    }

    match args.saturate {
        None => {
            let report = run(&args.cfg);
            print_report(&args.cfg, &report);
            if let Some(path) = &args.json {
                if let Err(e) = write_json(path, &args.cfg, &report) {
                    eprintln!("error: writing {}: {e}", path.display());
                    std::process::exit(1);
                }
                println!("wrote {}", path.display());
            }
        }
        Some(max_threads) => {
            println!(
                "saturation search: {} up to {max_threads} threads",
                args.cfg.protocol.name()
            );
            let mut t = Table::new(
                "saturation",
                &["threads", "ops/s", "mix-mean(us)", "root-rho_w"],
            );
            let runs = saturation_search(&args.cfg, max_threads);
            let mut best: Option<&(usize, LiveReport)> = None;
            for pair in &runs {
                let (threads, report) = pair;
                t.push(vec![
                    threads.to_string(),
                    fmt_f(report.throughput, 0),
                    fmt_f(us(report.mean_response_time()), 2),
                    fmt_f(report.root_writer_utilization, 4),
                ]);
                if best.is_none_or(|b| report.throughput > b.1.throughput) {
                    best = Some(pair);
                }
            }
            t.print();
            if let Some((threads, report)) = best {
                println!(
                    "max sustainable throughput: {:.0} ops/s at {} threads",
                    report.throughput, threads
                );
            }
            if let Some(path) = &args.json {
                // Saturation mode: one meta record plus one report per
                // measured point (no event records — each point's trace
                // would dwarf the sweep).
                let mut records = vec![meta_json(&args.cfg)];
                records.extend(runs.iter().map(|(_, r)| r.to_json()));
                if let Err(e) = cbtree_obs::write_jsonl(path, &records) {
                    eprintln!("error: writing {}: {e}", path.display());
                    std::process::exit(1);
                }
                println!("wrote {}", path.display());
            }
        }
    }
}
