//! `cbtree-harness`: the *live execution* pillar.
//!
//! The framework now has three ways of producing the same performance
//! observables:
//!
//! 1. **Analysis** (`cbtree-analysis`): closed-form queueing models;
//! 2. **Simulation** (`cbtree-sim`): discrete-event simulation of lock
//!    queues on a modeled tree;
//! 3. **Live execution** (this crate): the *real* concurrent B+-trees of
//!    `cbtree-btree`, latched with the observable FCFS lock of
//!    `cbtree-sync`, driven by OS threads under `cbtree-workload`
//!    operation mixes.
//!
//! A [`run`] executes one measurement: prefill the tree, warm up, take a
//! quiescent per-level snapshot of every node's lock statistics, run a
//! timed measurement window, quiesce again, snapshot again, and diff.
//! The resulting [`LiveReport`] mirrors the simulator's `SimReport`
//! schema (same `Summary` type, same leaves-first per-level vectors), so
//! the `analyze` binary can print analysis vs simulation vs live
//! three-way tables.
//!
//! [`saturation_search`] finds the maximum sustainable throughput by
//! doubling the thread count until added threads stop paying.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use cbtree_btree::node::for_each_handle;
use cbtree_btree::{ConcurrentBTree, OpCountersSnapshot, Protocol};
use cbtree_obs::{Json, Trace};
use cbtree_sim::stats::{Summary, Welford};
use cbtree_sync::{Histogram, HistogramSnapshot, LockStatsSnapshot, SamplePeriod};
use cbtree_workload::{OpStream, Operation, OpsConfig, Rng};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Configuration of one live measurement.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Latching protocol to run.
    pub protocol: Protocol,
    /// Number of worker OS threads (closed-loop: each thread issues its
    /// next operation as soon as the previous one completes).
    pub threads: usize,
    /// Node capacity (max keys per node).
    pub capacity: usize,
    /// Keys inserted before measurement starts.
    pub initial_items: usize,
    /// Operation mix and key distribution.
    pub ops: OpsConfig,
    /// Untimed warmup before the measured window.
    pub warmup: Duration,
    /// Length of the measured window.
    pub measure: Duration,
    /// Seed for all workload streams (thread `t` uses a SplitMix64-forked
    /// stream of `(seed, t)`, so runs are reproducible up to OS
    /// scheduling and distinct `(seed, thread)` pairs get disjoint
    /// streams).
    pub seed: u64,
    /// Lock-timing sampling period for the tree's node locks: one in
    /// `stats_sampling.period()` acquisitions is timed (counts stay
    /// exact, sampled durations are scaled so the derived statistics stay
    /// unbiased). [`SamplePeriod::EXACT`] times everything.
    pub stats_sampling: SamplePeriod,
    /// Transaction size: workers commit after every `txn` operations.
    /// Only the recovery protocols retain latches between commits; for
    /// every other protocol the commit is a no-op, so `txn = 1` (the
    /// default) makes all protocols directly comparable.
    pub txn: usize,
}

impl LiveConfig {
    /// The paper-style default: mix `.3/.5/.2`, capacity 64, 50k initial
    /// items over a 1M key space.
    pub fn paper(protocol: Protocol, threads: usize) -> Self {
        LiveConfig {
            protocol,
            threads,
            capacity: 64,
            initial_items: 50_000,
            ops: OpsConfig::paper(1_000_000),
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(1000),
            seed: 0x11FE,
            stats_sampling: SamplePeriod::EXACT,
            txn: 1,
        }
    }

    /// A fast variant for smoke tests.
    pub fn quick(protocol: Protocol, threads: usize) -> Self {
        LiveConfig {
            capacity: 16,
            initial_items: 4_000,
            warmup: Duration::from_millis(30),
            measure: Duration::from_millis(120),
            ..LiveConfig::paper(protocol, threads)
        }
    }
}

/// Measured lock behavior of one tree level over the window.
#[derive(Debug, Clone)]
pub struct LevelLive {
    /// Level number (1 = leaves).
    pub level: usize,
    /// Nodes on this level at the end of the window.
    pub nodes: u64,
    /// Aggregated lock counters accumulated during the window.
    pub stats: LockStatsSnapshot,
    /// Measured writer utilization `ρ_w` of this level: total exclusive
    /// hold time divided by `nodes · window` — the per-lock average.
    pub rho_w: f64,
}

impl LevelLive {
    /// JSON object `{level, nodes, rho_w, stats}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("level", self.level.into()),
            ("nodes", self.nodes.into()),
            ("rho_w", Json::f64_or_null(self.rho_w)),
            ("stats", self.stats.to_json()),
        ])
    }
}

/// Result of one live measurement, schema-aligned with
/// `cbtree_sim::SimReport`.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Worker threads used.
    pub threads: usize,
    /// Completions per second over the measured window.
    pub throughput: f64,
    /// Operations completed in the measured window.
    pub completed: u64,
    /// Duration of the measured window in seconds.
    pub measured_time: f64,
    /// Mean/CI of search response times, in seconds.
    pub resp_search: Summary,
    /// Mean/CI of insert response times, in seconds.
    pub resp_insert: Summary,
    /// Mean/CI of delete response times, in seconds.
    pub resp_delete: Summary,
    /// Mean exclusive-lock wait per level in seconds (leaves first).
    pub wait_w_by_level: Vec<f64>,
    /// Mean shared-lock wait per level in seconds (leaves first).
    pub wait_r_by_level: Vec<f64>,
    /// Measured writer utilization of the root's level.
    pub root_writer_utilization: f64,
    /// Engine telemetry accumulated over the measured window: latch
    /// acquisitions per level, optimistic restarts, right-link chases,
    /// transaction commits/spills. Restart and chase rates here are the
    /// direct validation inputs for the Optimistic and Link-type
    /// analytical models.
    pub counters: OpCountersSnapshot,
    /// Log-bucketed histogram of every completed operation's latency in
    /// nanoseconds, all op kinds pooled — the p50/p99/p999 source.
    pub latency: HistogramSnapshot,
    /// Full per-level measurements (leaves first).
    pub levels: Vec<LevelLive>,
    /// Tree height at the end of the run.
    pub final_height: usize,
    /// Keys in the tree at the end of the run.
    pub final_len: usize,
    /// Events drained from the per-thread rings at the closing quiesce
    /// point — the measured window only (the warmup drain is discarded).
    /// Empty unless the `trace` cargo feature is on and tracing enabled.
    pub trace: Trace,
}

impl LiveReport {
    /// Mean response time across the operation mix, in seconds.
    pub fn mean_response_time(&self) -> f64 {
        let total = self.resp_search.n + self.resp_insert.n + self.resp_delete.n;
        if total == 0 {
            return 0.0;
        }
        (self.resp_search.mean * self.resp_search.n as f64
            + self.resp_insert.mean * self.resp_insert.n as f64
            + self.resp_delete.mean * self.resp_delete.n as f64)
            / total as f64
    }

    /// JSON record of the whole report (`type: "live_report"`). Trace
    /// events are *not* inlined — `live --json` writes them as separate
    /// JSONL records after this one; only the drained-trace shape
    /// (event/drop counts) is summarized here.
    pub fn to_json(&self) -> Json {
        let secs_arr = |v: &[f64]| Json::arr(v.iter().map(|&x| Json::f64_or_null(x)));
        Json::obj(vec![
            ("type", "live_report".into()),
            ("threads", self.threads.into()),
            ("throughput", Json::f64_or_null(self.throughput)),
            ("completed", self.completed.into()),
            ("measured_time", Json::f64_or_null(self.measured_time)),
            ("resp_search", self.resp_search.to_json()),
            ("resp_insert", self.resp_insert.to_json()),
            ("resp_delete", self.resp_delete.to_json()),
            ("wait_w_by_level", secs_arr(&self.wait_w_by_level)),
            ("wait_r_by_level", secs_arr(&self.wait_r_by_level)),
            (
                "root_writer_utilization",
                Json::f64_or_null(self.root_writer_utilization),
            ),
            ("counters", self.counters.to_json()),
            ("latency", latency_json(&self.latency)),
            (
                "levels",
                Json::arr(self.levels.iter().map(LevelLive::to_json)),
            ),
            ("final_height", self.final_height.into()),
            ("final_len", self.final_len.into()),
            ("trace_events", self.trace.events.len().into()),
            ("trace_dropped", self.trace.dropped.into()),
        ])
    }
}

/// The standard latency-quantile JSON object every report in the
/// workspace uses: `{n, p50_ns, p90_ns, p99_ns, p999_ns}`.
pub fn latency_json(h: &HistogramSnapshot) -> Json {
    Json::obj(vec![
        ("n", h.total().into()),
        ("p50_ns", h.p50().into()),
        ("p90_ns", h.p90().into()),
        ("p99_ns", h.p99().into()),
        ("p999_ns", h.p999().into()),
    ])
}

/// Worker phases, driven by the coordinator through one atomic.
const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Per-thread measurement accumulators.
#[derive(Default)]
struct ThreadStats {
    search: Welford,
    insert: Welford,
    delete: Welford,
    latency: Histogram,
    completed: u64,
}

/// Per-level aggregate of every node's lock snapshot, leaves first:
/// `(node count, merged stats)` per level. Shared quiesce plumbing —
/// the closed-loop harness and the open-loop service layer
/// (`cbtree-serve`) both diff these snapshots across their measured
/// windows.
pub fn level_snapshots(tree: &ConcurrentBTree<u64>) -> Vec<(u64, LockStatsSnapshot)> {
    let height = tree.height();
    let mut agg: Vec<(u64, LockStatsSnapshot)> = vec![(0, LockStatsSnapshot::default()); height];
    for_each_handle(&tree.root_handle(), |level, node| {
        // Level 1 = leaves = index 0 (leaves-first, like SimReport).
        if let Some((count, snap)) = agg.get_mut(level - 1) {
            *count += 1;
            snap.merge(&node.stats().snapshot());
        }
    });
    agg
}

/// Prefills `tree` with `items` distinct keys drawn from the workload's
/// key distribution (independent of the operation mix, so read-only
/// mixes still get a populated tree).
fn prefill(tree: &ConcurrentBTree<u64>, cfg: &LiveConfig) {
    let mut rng = Rng::new(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut inserted = 0u64;
    while (inserted as usize) < cfg.initial_items {
        let k = cfg.ops.keys.sample(&mut rng, inserted);
        if tree.insert(k, k).is_none() {
            inserted += 1;
        }
    }
    // Recovery protocols retain latches: release them before workers
    // start, or the prefilling thread would block the whole run.
    tree.txn_commit();
}

/// Forks a per-thread workload seed with a SplitMix64 step: the stream
/// index enters through the golden-ratio increment and the state is run
/// through the full finalizer, so distinct `(seed, thread)` pairs
/// collide only when `seed − seed′ = (thread′ − thread) · γ (mod 2⁶⁴)` —
/// unlike the old `seed ^ (0xA5A5 + t)`, which aliased nearby seeds
/// across thread indices (e.g. `(3, 0)` and `(0, 1)` shared a stream).
/// Shared with the service layer's generator threads.
pub fn fork_seed(seed: u64, thread: u64) -> u64 {
    let mut z = seed.wrapping_add(thread.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn apply(tree: &ConcurrentBTree<u64>, op: Operation) {
    match op {
        Operation::Search(k) => {
            std::hint::black_box(tree.get(&k));
        }
        Operation::Insert(k) => {
            std::hint::black_box(tree.insert(k, k));
        }
        Operation::Delete(k) => {
            std::hint::black_box(tree.remove(&k));
        }
    }
}

/// Runs one live measurement.
///
/// Choreography: worker threads run the closed-loop workload through a
/// warmup phase; the coordinator then parks everyone on a barrier
/// (quiescing the tree), walks it to snapshot every lock's counters,
/// releases the workers into the timed window, quiesces again, snapshots
/// again, and diffs the two snapshots per level.
///
/// # Panics
/// Panics when `threads == 0` or the operation mix is invalid.
pub fn run(cfg: &LiveConfig) -> LiveReport {
    assert!(cfg.threads > 0, "need at least one worker thread");
    assert!(cfg.ops.is_valid(), "operation mix must sum to 1");

    // With tracing compiled in, the whole measurement holds the global
    // trace lock: rings are process-wide, so two concurrent runs would
    // interleave their events and corrupt each other's drains.
    #[cfg(feature = "trace")]
    let _trace_window = {
        let guard = cbtree_obs::trace::measurement_lock();
        cbtree_obs::trace::enable(true);
        guard
    };

    let tree = Arc::new(ConcurrentBTree::with_sampling(
        cfg.protocol,
        cfg.capacity,
        cfg.stats_sampling,
    ));
    prefill(&tree, cfg);

    let phase = Arc::new(AtomicU8::new(PHASE_WARMUP));
    // Two rendezvous per quiesce point: workers arrive (tree quiescent),
    // the coordinator snapshots, everyone departs together.
    let quiesce_a = Arc::new(Barrier::new(cfg.threads + 1));
    let resume_a = Arc::new(Barrier::new(cfg.threads + 1));
    let quiesce_b = Arc::new(Barrier::new(cfg.threads + 1));
    let resume_b = Arc::new(Barrier::new(cfg.threads + 1));

    let (reports, snap_a, snap_b, counters, elapsed, trace) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.threads);
        for t in 0..cfg.threads as u64 {
            let tree = Arc::clone(&tree);
            let phase = Arc::clone(&phase);
            let (qa, ra) = (Arc::clone(&quiesce_a), Arc::clone(&resume_a));
            let (qb, rb) = (Arc::clone(&quiesce_b), Arc::clone(&resume_b));
            let mut stream = OpStream::new(cfg.ops, fork_seed(cfg.seed, t)).with_txn(cfg.txn);
            handles.push(s.spawn(move || {
                // Warmup: run until the coordinator flips the phase.
                while phase.load(Ordering::Acquire) == PHASE_WARMUP {
                    apply(&tree, stream.next_op());
                    if stream.at_commit_point() {
                        tree.txn_commit();
                    }
                }
                // Commit before parking: a worker must never carry
                // retained latches into a quiesce barrier (the
                // coordinator's snapshot walk would block on them).
                tree.txn_commit();
                qa.wait();
                ra.wait();
                // Measured window.
                let mut stats = ThreadStats::default();
                while phase.load(Ordering::Acquire) == PHASE_MEASURE {
                    let op = stream.next_op();
                    let t0 = Instant::now();
                    apply(&tree, op);
                    if stream.at_commit_point() {
                        tree.txn_commit();
                    }
                    let elapsed = t0.elapsed();
                    stats
                        .latency
                        .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
                    let dt = elapsed.as_secs_f64();
                    match op {
                        Operation::Search(_) => stats.search.add(dt),
                        Operation::Insert(_) => stats.insert.add(dt),
                        Operation::Delete(_) => stats.delete.add(dt),
                    }
                    stats.completed += 1;
                }
                tree.txn_commit(); // same rule at the closing barrier
                qb.wait();
                rb.wait();
                stats
            }));
        }

        std::thread::sleep(cfg.warmup);
        phase.store(PHASE_MEASURE, Ordering::Release);
        quiesce_a.wait(); // all workers parked; tree quiescent
        let snap_a = level_snapshots(&tree);
        let ctr_a = tree.counters();
        // Discard prefill/warmup events so the trace covers exactly the
        // measured window (workers are parked, so nothing races this).
        let _ = cbtree_obs::trace::drain();
        resume_a.wait();
        // Start the clock only after the resume barrier has released the
        // workers: taking it earlier charged every worker's barrier
        // wake-up latency to the window, biasing throughput low as the
        // thread count grew.
        let t0 = Instant::now();
        std::thread::sleep(cfg.measure);
        phase.store(PHASE_DONE, Ordering::Release);
        quiesce_b.wait(); // quiescent again
        let elapsed = t0.elapsed();
        // Drain the measured-window trace while the workers are parked
        // (rings registered but quiescent) and *before* the snapshot
        // walk below — the walk itself takes read latches, which would
        // otherwise pollute the window's trace. Its events stay in the
        // coordinator's ring and are discarded by the next run's warmup
        // drain.
        let trace = cbtree_obs::trace::drain();
        let snap_b = level_snapshots(&tree);
        let ctr_b = tree.counters();
        resume_b.wait();

        let reports: Vec<ThreadStats> = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        (reports, snap_a, snap_b, ctr_b.since(&ctr_a), elapsed, trace)
    });

    // Final quiescent structural check: every live run ends with the tree
    // still satisfying its own invariants (key ordering, high keys, link
    // chains) — a measurement taken on a corrupted tree is worthless.
    tree.check()
        .unwrap_or_else(|e| panic!("post-run structural check failed: {e}"));

    let mut search = Welford::new();
    let mut insert = Welford::new();
    let mut delete = Welford::new();
    let mut latency = HistogramSnapshot::default();
    let mut completed = 0;
    for r in &reports {
        search.merge(&r.search);
        insert.merge(&r.insert);
        delete.merge(&r.delete);
        latency.merge(&r.latency.snapshot());
        completed += r.completed;
    }

    let elapsed_secs = elapsed.as_secs_f64();
    let elapsed_ns = elapsed.as_nanos() as u64;
    // The tree may have grown during the window: align per level, using
    // the end-of-window shape (new nodes have zero baseline counters).
    let mut levels = Vec::with_capacity(snap_b.len());
    for (i, (nodes, after)) in snap_b.iter().enumerate() {
        let window = match snap_a.get(i) {
            Some((_, before)) => after.since(before),
            None => *after,
        };
        levels.push(LevelLive {
            level: i + 1,
            nodes: *nodes,
            rho_w: window.writer_utilization(elapsed_ns, *nodes),
            stats: window,
        });
    }

    LiveReport {
        threads: cfg.threads,
        throughput: if elapsed_secs > 0.0 {
            completed as f64 / elapsed_secs
        } else {
            0.0
        },
        completed,
        measured_time: elapsed_secs,
        resp_search: Summary::from_welford(&search),
        resp_insert: Summary::from_welford(&insert),
        resp_delete: Summary::from_welford(&delete),
        wait_w_by_level: levels
            .iter()
            .map(|l| l.stats.mean_w_wait_ns() * 1e-9)
            .collect(),
        wait_r_by_level: levels
            .iter()
            .map(|l| l.stats.mean_r_wait_ns() * 1e-9)
            .collect(),
        root_writer_utilization: levels.last().map_or(0.0, |l| l.rho_w),
        counters,
        latency,
        final_height: levels.len(),
        final_len: tree.len(),
        levels,
        trace,
    }
}

/// The saturation-search schedule, separated from measurement so it is
/// unit-testable: visits thread counts 1, 2, 4, … doubling but clamped
/// to `max_threads` (so a non-power-of-two maximum is still measured
/// rather than overshot), stopping early once a point gains less than 5%
/// over the best seen so far — with the current point's throughput
/// folded into that best, so a flat curve stops at its first flat point.
/// Returns the thread counts measured, in order.
fn saturation_points(max_threads: usize, mut measure: impl FnMut(usize) -> f64) -> Vec<usize> {
    let max = max_threads.max(1);
    let mut visited = Vec::new();
    let mut best = 0.0f64;
    let mut threads = 1usize;
    loop {
        let tp = measure(threads);
        visited.push(threads);
        let improved = threads == 1 || tp >= best * 1.05;
        best = best.max(tp);
        if !improved || threads >= max {
            break;
        }
        threads = (threads * 2).min(max);
    }
    visited
}

/// Finds the maximum sustainable throughput by doubling the worker count
/// from 1 up to `max_threads` (always measuring `max_threads` itself,
/// even when it is not a power of two), stopping once extra threads gain
/// less than 5% over the best measurement so far. Returns every
/// `(threads, report)` pair tried, in order; the peak is the maximum of
/// `report.throughput`.
pub fn saturation_search(base: &LiveConfig, max_threads: usize) -> Vec<(usize, LiveReport)> {
    let mut out = Vec::new();
    saturation_points(max_threads, |threads| {
        let report = run(&LiveConfig {
            threads,
            ..base.clone()
        });
        let tp = report.throughput;
        out.push((threads, report));
        tp
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the old `seed ^ (0xA5A5 + t)` fork, under which
    /// e.g. `(seed=3, t=0)` and `(seed=0, t=1)` shared a workload
    /// stream: every nearby `(seed, thread)` pair must now produce a
    /// distinct operation prefix.
    #[test]
    fn nearby_seeds_fork_disjoint_streams() {
        let ops = OpsConfig::paper(1_000_000);
        let prefix = |seed: u64, t: u64| -> Vec<Operation> {
            let mut stream = OpStream::new(ops, fork_seed(seed, t));
            (0..32).map(|_| stream.next_op()).collect()
        };
        let mut seen = Vec::new();
        for seed in 0..4u64 {
            for t in 0..4u64 {
                let p = prefix(seed, t);
                assert!(
                    !seen
                        .iter()
                        .any(|(s0, t0, p0)| { *p0 == p && (*s0, *t0) != (seed, t) }),
                    "(seed={seed}, t={t}) collides with an earlier stream"
                );
                seen.push((seed, t, p));
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn saturation_schedule_reaches_non_power_of_two_max() {
        // Monotone curve: doubling must clamp to 6, not overshoot to 8
        // and exit without ever measuring max_threads.
        let visited = saturation_points(6, |t| t as f64);
        assert_eq!(visited, vec![1, 2, 4, 6]);
    }

    #[test]
    fn saturation_schedule_stops_on_flat_curve() {
        // Monotone then flat at 4 threads: the first flat point is
        // measured (its throughput folds into best-so-far) and the
        // search stops there.
        let visited = saturation_points(64, |t| t.min(4) as f64);
        assert_eq!(visited, vec![1, 2, 4, 8]);
    }

    #[test]
    fn saturation_schedule_degenerate_cases() {
        assert_eq!(saturation_points(1, |t| t as f64), vec![1]);
        assert_eq!(saturation_points(0, |t| t as f64), vec![1]);
        // A sub-5% gain at 2 threads ends the search immediately.
        let visited = saturation_points(16, |t| if t == 1 { 100.0 } else { 102.0 });
        assert_eq!(visited, vec![1, 2]);
    }

    #[test]
    fn level_snapshot_covers_whole_tree() {
        let tree = ConcurrentBTree::new(Protocol::BLink, 4);
        for k in 0..500u64 {
            tree.insert(k, k);
        }
        let snaps = level_snapshots(&tree);
        assert_eq!(snaps.len(), tree.height());
        // Leaves-first: many leaves, exactly one root.
        assert!(snaps[0].0 > 1);
        assert_eq!(snaps.last().unwrap().0, 1);
        // Every insert touched a leaf lock at least once.
        assert!(snaps[0].1.w_acquires >= 500);
    }

    #[test]
    fn single_thread_run_reports_consistent_counts() {
        let mut cfg = LiveConfig::quick(Protocol::LockCoupling, 1);
        cfg.measure = Duration::from_millis(60);
        let report = run(&cfg);
        assert_eq!(report.threads, 1);
        assert!(report.completed > 0, "no operations completed");
        let n = report.resp_search.n + report.resp_insert.n + report.resp_delete.n;
        assert_eq!(n, report.completed);
        assert!(report.throughput > 0.0);
        assert!(report.measured_time > 0.0);
        assert_eq!(report.levels.len(), report.final_height);
        for l in &report.levels {
            assert!(
                (0.0..=1.0).contains(&l.rho_w),
                "level {}: {}",
                l.level,
                l.rho_w
            );
        }
        // Window-scoped engine telemetry rides along.
        assert!(report.counters.ops > 0);
        assert!(report.counters.latches_per_op() >= 1.0);
        // Every completed op landed in the pooled latency histogram, and
        // the quantiles are ordered.
        assert_eq!(report.latency.total(), report.completed);
        assert!(report.latency.p50() <= report.latency.p99());
        assert!(report.latency.p99() <= report.latency.p999());
    }

    #[test]
    fn live_report_json_round_trips() {
        let mut cfg = LiveConfig::quick(Protocol::BLink, 2);
        cfg.measure = Duration::from_millis(50);
        let report = run(&cfg);
        let j = report.to_json();
        let parsed = Json::parse(&j.to_string().unwrap()).unwrap();
        assert_eq!(parsed, j, "serialize → parse must be the identity");
        assert_eq!(
            parsed.get("type").and_then(Json::as_str),
            Some("live_report")
        );
        assert_eq!(
            parsed.get("completed").and_then(Json::as_u64),
            Some(report.completed)
        );
        assert_eq!(
            parsed
                .get("levels")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(report.levels.len())
        );
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("ops"))
                .and_then(Json::as_u64),
            Some(report.counters.ops)
        );
    }

    /// With tracing compiled in, every live run's report carries the
    /// measured-window trace: events exist, grants pair with releases,
    /// and timestamps stay inside (a generous bound of) the window.
    #[cfg(feature = "trace")]
    #[test]
    fn live_run_attaches_measured_window_trace() {
        use cbtree_obs::EventKind;
        // The default 2^16-event rings drop under even a short window of
        // debug-build lock coupling (that is what the drop counter is
        // for); size them for a lossless window so pairing is exact.
        cbtree_obs::trace::set_default_ring_capacity(1 << 19);
        let mut cfg = LiveConfig::quick(Protocol::LockCoupling, 2);
        cfg.measure = Duration::from_millis(80);
        let report = run(&cfg);
        let t = &report.trace;
        assert!(!t.events.is_empty(), "traced run produced no events");
        assert_eq!(t.dropped, 0, "sized rings must hold the whole window");
        let count = |k: EventKind| t.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::LatchGrant), count(EventKind::LatchRelease));
        assert_eq!(count(EventKind::OpBegin), count(EventKind::OpEnd));
        assert!(count(EventKind::OpBegin) > 0);
        let span_ns = t.events.last().unwrap().ts_ns - t.events.first().unwrap().ts_ns;
        // The drain happens at quiesce B: nothing in the trace can span
        // much more than the measured window plus scheduling slop.
        assert!(
            (span_ns as f64) < (report.measured_time + 1.0) * 1e9,
            "trace spans {span_ns} ns, window was {} s",
            report.measured_time
        );
    }

    #[test]
    fn recovery_run_with_transactions_completes() {
        let mut cfg = LiveConfig::quick(Protocol::RecoveryNaive, 3);
        cfg.txn = 4;
        cfg.measure = Duration::from_millis(80);
        let report = run(&cfg);
        assert!(report.completed > 0);
        assert!(report.counters.txn_commits > 0, "commits must be counted");
    }
}
