//! Smoke tests for the live-execution harness: each protocol completes a
//! short 4-thread run with internally consistent counters, and measured
//! writer utilizations are proper fractions.

use cbtree_btree::Protocol;
use cbtree_harness::{run, LiveConfig};

/// The canonical protocol list; the recovery variants run with the
/// default transaction size 1, where commits follow every operation.
const PROTOCOLS: [Protocol; 7] = Protocol::ALL_WITH_RECOVERY;

fn smoke_cfg(protocol: Protocol) -> LiveConfig {
    LiveConfig::quick(protocol, 4)
}

#[test]
fn four_thread_run_completes_for_every_protocol() {
    for protocol in PROTOCOLS {
        let cfg = smoke_cfg(protocol);
        let report = run(&cfg);
        assert!(
            report.completed > 0,
            "{}: no operations completed",
            protocol.name()
        );
        assert!(report.throughput > 0.0, "{}", protocol.name());
        // The clock starts after the resume barrier and stops after the
        // end-of-window quiesce, so the measured window is the configured
        // length plus at most scheduling noise and one operation's tail
        // per worker — never shorter, and nowhere near double.
        let want = cfg.measure.as_secs_f64();
        assert!(
            report.measured_time >= 0.95 * want,
            "{}: window {}s shorter than configured {}s",
            protocol.name(),
            report.measured_time,
            want
        );
        assert!(
            report.measured_time <= 3.0 * want,
            "{}: window {}s far exceeds configured {}s",
            protocol.name(),
            report.measured_time,
            want
        );
        assert!(report.final_height >= 1, "{}", protocol.name());
        assert!(report.final_len > 0, "{}", protocol.name());
    }
}

#[test]
fn op_counts_are_consistent() {
    for protocol in PROTOCOLS {
        let report = run(&smoke_cfg(protocol));
        // Per-class counts sum to the total, and throughput is exactly
        // completed / window.
        let n = report.resp_search.n + report.resp_insert.n + report.resp_delete.n;
        assert_eq!(n, report.completed, "{}", protocol.name());
        let tp = report.completed as f64 / report.measured_time;
        assert!(
            (report.throughput - tp).abs() < 1e-6 * tp.max(1.0),
            "{}: throughput {} vs {}",
            protocol.name(),
            report.throughput,
            tp
        );
        // All three classes appear under the paper's .3/.5/.2 mix.
        assert!(report.resp_search.n > 0, "{}", protocol.name());
        assert!(report.resp_insert.n > 0, "{}", protocol.name());
        assert!(report.resp_delete.n > 0, "{}", protocol.name());
    }
}

#[test]
fn per_level_writer_utilization_is_a_fraction() {
    for protocol in PROTOCOLS {
        let report = run(&smoke_cfg(protocol));
        assert_eq!(
            report.levels.len(),
            report.final_height,
            "{}",
            protocol.name()
        );
        assert_eq!(
            report.levels.len(),
            report.wait_w_by_level.len(),
            "{}",
            protocol.name()
        );
        for l in &report.levels {
            assert!(
                (0.0..=1.0).contains(&l.rho_w),
                "{} level {}: rho_w = {}",
                protocol.name(),
                l.level,
                l.rho_w
            );
            assert!(l.nodes > 0, "{} level {}", protocol.name(), l.level);
        }
        // Leaves-first ordering: exactly one root, more leaves than roots.
        assert_eq!(
            report.levels.last().unwrap().nodes,
            1,
            "{}",
            protocol.name()
        );
        assert!(report.levels[0].nodes > 1, "{}", protocol.name());
        // The measured window saw real lock traffic on the leaves.
        let leaf = &report.levels[0].stats;
        assert!(
            leaf.r_acquires + leaf.w_acquires > 0,
            "{}: leaves saw no lock traffic",
            protocol.name()
        );
    }
}

#[test]
fn telemetry_shows_restarts_and_chases_under_contention() {
    // Small nodes + several threads force leaf splits, which is exactly
    // what produces optimistic restarts and b-link right-link chases.
    let mut cfg = LiveConfig::quick(Protocol::OptimisticDescent, 4);
    cfg.capacity = 4;
    let report = run(&cfg);
    assert!(
        report.counters.restarts > 0,
        "optimistic under contention must restart sometimes"
    );
    assert_eq!(report.counters.chases, 0, "crab descents never chase");

    let mut cfg = LiveConfig::quick(Protocol::BLink, 4);
    cfg.capacity = 4;
    let report = run(&cfg);
    assert!(
        report.counters.chases > 0,
        "b-link under contention must chase right links sometimes"
    );
    assert_eq!(report.counters.restarts, 0, "b-link never restarts");
}

#[test]
fn recovery_naive_at_txn1_matches_lock_coupling_throughput() {
    // With transaction size 1 a commit follows every operation, so
    // RecoveryNaive is LockCoupling plus commit bookkeeping: throughput
    // must agree within (generous, CI-proof) measurement noise.
    let coupling = run(&smoke_cfg(Protocol::LockCoupling));
    let recovery = run(&smoke_cfg(Protocol::RecoveryNaive));
    assert!(recovery.completed > 0 && coupling.completed > 0);
    let ratio = recovery.throughput / coupling.throughput;
    assert!(
        (0.33..=3.0).contains(&ratio),
        "recovery-naive/lock-coupling throughput ratio {ratio} out of range \
         ({} vs {} ops/s)",
        recovery.throughput,
        coupling.throughput
    );
    assert!(
        recovery.counters.txn_commits > 0,
        "every op ends a transaction at txn=1"
    );
}

#[test]
fn sampled_stats_run_keeps_counts_and_fractions_sane() {
    let mut cfg = smoke_cfg(Protocol::BLink);
    cfg.stats_sampling = cbtree_sync::SamplePeriod::every(8);
    let report = run(&cfg);
    assert!(report.completed > 0);
    // Acquisition counts are exact regardless of sampling.
    let leaf = &report.levels[0].stats;
    assert!(leaf.r_acquires + leaf.w_acquires > 0);
    // Scaled sums keep utilization a proper fraction.
    for l in &report.levels {
        assert!((0.0..=1.0).contains(&l.rho_w), "level {}", l.level);
    }
}

#[test]
fn read_only_mix_runs_and_scales_with_cores() {
    // A pure-search mix must still get a populated tree (prefill is
    // independent of the mix) and complete work on every thread count.
    let mut cfg = LiveConfig::quick(Protocol::BLink, 1);
    cfg.ops.q_search = 1.0;
    cfg.ops.q_insert = 0.0;
    cfg.ops.q_delete = 0.0;
    let one = run(&cfg);
    assert!(one.completed > 0);
    assert_eq!(one.resp_search.n, one.completed);
    cfg.threads = 4;
    let four = run(&cfg);
    assert!(four.completed > 0);
    // Scaling is only observable with real parallelism; single-core CI
    // boxes time-slice the four threads and gain nothing.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            four.completed as f64 > 1.2 * one.completed as f64,
            "1 thread: {}, 4 threads: {} on {} cores",
            one.completed,
            four.completed,
            cores
        );
    }
}
