//! Scalar root-finding used by the fixed-point and throughput solvers.
//!
//! Everything the framework solves numerically is a one-dimensional root of
//! a continuous function on a bounded interval: the writer-utilization fixed
//! point `ρ = λ_w·T_a(ρ)` on `[0, 1)` and the maximum-throughput search on
//! `[0, λ_hi]`. We deliberately use the most robust tools available —
//! a sign-change scan followed by bisection — rather than Newton iterations:
//! the service-time expressions contain `ln(1 + …)` terms whose derivatives
//! near saturation make Newton steps overshoot, and the solvers run at most
//! a few thousand times per experiment, so robustness wins over speed.

/// Default relative/absolute tolerance for bisection.
pub const DEFAULT_TOL: f64 = 1e-12;

/// Maximum bisection iterations (2^-90 < 1e-27, far below any tolerance we use).
const MAX_BISECT_ITERS: usize = 200;

/// Finds a root of `f` in `[lo, hi]` given `f(lo)` and `f(hi)` have opposite
/// signs, by bisection. Returns the midpoint of the final bracket.
///
/// # Panics
/// Panics if `lo > hi`. Callers must guarantee the sign change; this is an
/// internal building block, so the precondition is checked with
/// `debug_assert!` only.
pub fn bisect(mut lo: f64, mut hi: f64, tol: f64, mut f: impl FnMut(f64) -> f64) -> f64 {
    assert!(lo <= hi, "bisect: empty interval [{lo}, {hi}]");
    let mut flo = f(lo);
    if flo == 0.0 {
        return lo;
    }
    let fhi = f(hi);
    if fhi == 0.0 {
        return hi;
    }
    debug_assert!(
        flo.signum() != fhi.signum(),
        "bisect: no sign change on [{lo}, {hi}] (f(lo)={flo}, f(hi)={fhi})"
    );
    for _ in 0..MAX_BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= tol * (1.0 + mid.abs()) {
            return mid;
        }
        let fmid = f(mid);
        if fmid == 0.0 {
            return mid;
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Finds the *smallest* root of `f` in `[lo, hi]` by scanning `steps`
/// sub-intervals for the first sign change, then bisecting inside it.
///
/// Returns `None` when no sign change is found (within floating-point
/// evaluation of `f` at the grid points). The scan makes the solver robust
/// to the (theoretically possible, practically rare) case of multiple fixed
/// points: the smallest root of `λ_w·T_a(ρ) − ρ` is the physically
/// meaningful operating point reached from an empty queue.
pub fn first_root(
    lo: f64,
    hi: f64,
    steps: usize,
    tol: f64,
    mut f: impl FnMut(f64) -> f64,
) -> Option<f64> {
    assert!(steps >= 1);
    let mut x0 = lo;
    let mut f0 = f(x0);
    if f0 == 0.0 {
        return Some(x0);
    }
    let dx = (hi - lo) / steps as f64;
    for k in 1..=steps {
        let x1 = if k == steps { hi } else { lo + dx * k as f64 };
        let f1 = f(x1);
        if f1 == 0.0 {
            return Some(x1);
        }
        if f0.signum() != f1.signum() {
            return Some(bisect(x0, x1, tol, &mut f));
        }
        x0 = x1;
        f0 = f1;
    }
    None
}

/// Damped fixed-point iteration `x ← (1−α)·x + α·g(x)` clamped to `[lo, hi]`.
///
/// Used as a fast path before falling back to [`first_root`]; returns
/// `Some(x)` when `|g(x) − x|` drops below `tol`, `None` otherwise.
pub fn damped_fixed_point(
    mut x: f64,
    lo: f64,
    hi: f64,
    alpha: f64,
    tol: f64,
    max_iters: usize,
    mut g: impl FnMut(f64) -> f64,
) -> Option<f64> {
    for _ in 0..max_iters {
        let gx = g(x);
        if !gx.is_finite() {
            return None;
        }
        if (gx - x).abs() <= tol * (1.0 + x.abs()) {
            return Some(x);
        }
        x = ((1.0 - alpha) * x + alpha * gx).clamp(lo, hi);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(0.0, 2.0, 1e-14, |x| x * x - 2.0);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(0.0, 1.0, 1e-12, |x| x), 0.0);
        assert_eq!(bisect(-1.0, 0.0, 1e-12, |x| x), 0.0);
    }

    #[test]
    fn first_root_picks_smallest() {
        // roots at 0.2 and 0.8
        let f = |x: f64| (x - 0.2) * (x - 0.8);
        let r = first_root(0.0, 1.0, 100, 1e-13, f).unwrap();
        assert!((r - 0.2).abs() < 1e-10, "got {r}");
    }

    #[test]
    fn first_root_none_when_no_root() {
        assert!(first_root(0.0, 1.0, 50, 1e-12, |x| x + 1.0).is_none());
    }

    #[test]
    fn first_root_handles_root_at_grid_point() {
        let r = first_root(0.0, 1.0, 10, 1e-13, |x| x - 0.5).unwrap();
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn damped_fixed_point_converges_on_contraction() {
        // g(x) = cos(x) has fixed point ~0.739085
        let x = damped_fixed_point(0.5, 0.0, 1.0, 1.0, 1e-12, 500, |x| x.cos()).unwrap();
        assert!((x - 0.739_085_133_215).abs() < 1e-9);
    }

    #[test]
    fn damped_fixed_point_gives_up() {
        // divergent map
        assert!(damped_fixed_point(0.5, 0.0, 1e6, 1.0, 1e-12, 20, |x| 2.0 * x + 1.0).is_none());
    }
}
