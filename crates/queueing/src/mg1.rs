//! The M/G/1 queue via the Pollaczek–Khinchine mean-value formula.
//!
//! Theorem 3 of the paper computes the lock waiting time at a non-leaf level
//! as the M/G/1 waiting time of "aggregate customers" (a writer plus the
//! reader burst it must wait for) whose service distribution is the staged
//! server of Figure 2. The only facts needed from M/G/1 theory are the
//! first two moments of the service time:
//!
//! ```text
//! W_q = λ·E[X²] / (2·(1−ρ)),   ρ = λ·E[X].
//! ```

use crate::error::{check_nonneg, check_pos};
use crate::stages::StagedService;
use crate::{QueueError, Result};

/// First and second moments of a service-time distribution.
///
/// This is the minimal interface the Pollaczek–Khinchine formula needs;
/// [`StagedService`] converts into it, and models can also supply moments
/// directly (e.g. exponential: `E[X] = m`, `E[X²] = 2m²`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceMoments {
    /// `E[X]`, the mean service time.
    pub mean: f64,
    /// `E[X²]`, the second raw moment.
    pub second: f64,
}

impl ServiceMoments {
    /// Moments of an exponential service time with the given mean.
    pub fn exponential(mean: f64) -> Self {
        ServiceMoments {
            mean,
            second: 2.0 * mean * mean,
        }
    }

    /// Moments of a deterministic service time.
    pub fn deterministic(value: f64) -> Self {
        ServiceMoments {
            mean: value,
            second: value * value,
        }
    }

    /// Squared coefficient of variation `c² = Var[X]/E[X]²`.
    ///
    /// 0 for deterministic, 1 for exponential, > 1 for the hyperexponential
    /// aggregate servers the lock-coupling analysis produces ("lock coupling
    /// gives the service time distributions a large variance", §5).
    pub fn scv(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        (self.second - self.mean * self.mean) / (self.mean * self.mean)
    }
}

impl From<&StagedService> for ServiceMoments {
    fn from(s: &StagedService) -> Self {
        ServiceMoments {
            mean: s.mean(),
            second: s.second_moment(),
        }
    }
}

/// Expected waiting time in queue for an M/G/1 server,
/// `W_q = λ·E[X²]/(2(1−ρ))`.
///
/// Returns [`QueueError::Saturated`] when `ρ = λ·E[X] ≥ 1`.
pub fn waiting_time(lambda: f64, service: ServiceMoments) -> Result<f64> {
    check_nonneg("lambda", lambda)?;
    check_nonneg("service.mean", service.mean)?;
    check_nonneg("service.second", service.second)?;
    let rho = lambda * service.mean;
    if rho >= 1.0 {
        return Err(QueueError::Saturated {
            lambda_w: lambda,
            lambda_r: 0.0,
        });
    }
    Ok(lambda * service.second / (2.0 * (1.0 - rho)))
}

/// Expected sojourn time (waiting + service).
pub fn sojourn_time(lambda: f64, service: ServiceMoments) -> Result<f64> {
    Ok(waiting_time(lambda, service)? + service.mean)
}

/// Expected waiting time when the caller already knows the server
/// utilization `rho` (it may include work other than these arrivals).
///
/// This is the exact form used in the proof of Theorem 3: the paper plugs
/// the writer utilization `ρ_w(i)` — which includes reader bursts — into
/// `W = λ·x̄²/(2(1−ρ))` with `λ` the *writer* arrival rate.
pub fn waiting_time_with_rho(lambda: f64, second_moment: f64, rho: f64) -> Result<f64> {
    check_nonneg("lambda", lambda)?;
    check_nonneg("second_moment", second_moment)?;
    check_pos("1-rho", 1.0 - rho)?;
    Ok(lambda * second_moment / (2.0 * (1.0 - rho)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn reduces_to_mm1_for_exponential_service() {
        let (lambda, mu) = (0.6_f64, 1.3_f64);
        let pk = waiting_time(lambda, ServiceMoments::exponential(1.0 / mu)).unwrap();
        let mm1 = crate::mm1::waiting_time(lambda, mu).unwrap();
        assert!((pk - mm1).abs() < EPS, "pk={pk} mm1={mm1}");
    }

    #[test]
    fn deterministic_service_halves_mm1_wait() {
        // M/D/1 waits exactly half of M/M/1 at equal mean service.
        let (lambda, mean) = (0.5, 1.0);
        let md1 = waiting_time(lambda, ServiceMoments::deterministic(mean)).unwrap();
        let mm1 = waiting_time(lambda, ServiceMoments::exponential(mean)).unwrap();
        assert!((md1 - 0.5 * mm1).abs() < EPS);
    }

    #[test]
    fn scv_values() {
        assert_eq!(ServiceMoments::deterministic(3.0).scv(), 0.0);
        assert!((ServiceMoments::exponential(3.0).scv() - 1.0).abs() < EPS);
    }

    #[test]
    fn saturation_detected() {
        let s = ServiceMoments::exponential(1.0);
        assert!(matches!(
            waiting_time(1.0, s),
            Err(QueueError::Saturated { .. })
        ));
    }

    #[test]
    fn with_rho_matches_direct_form() {
        let lambda = 0.4;
        let s = ServiceMoments::exponential(1.2);
        let direct = waiting_time(lambda, s).unwrap();
        let via_rho = waiting_time_with_rho(lambda, s.second, lambda * s.mean).unwrap();
        assert!((direct - via_rho).abs() < EPS);
    }

    #[test]
    fn zero_load_waits_nothing() {
        assert_eq!(
            waiting_time(0.0, ServiceMoments::exponential(5.0)).unwrap(),
            0.0
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(waiting_time(-0.1, ServiceMoments::exponential(1.0)).is_err());
        assert!(waiting_time_with_rho(0.5, 1.0, 1.0).is_err());
    }
}
