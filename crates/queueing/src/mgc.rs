//! The M/G/c multi-server queue via the Lee–Longton approximation, plus
//! the batch-service moment transform the batched service layer needs.
//!
//! With `c` workers draining one shard queue, the exact M/G/c waiting
//! time has no closed form; the standard two-moment approximation
//! (Lee & Longton, 1959) scales the M/M/c (Erlang-C) wait by the
//! service distribution's variability:
//!
//! ```text
//! W_q(M/G/c) ≈ (1 + c²ᵥ)/2 · W_q(M/M/c),
//! ```
//!
//! where `c²ᵥ` is the squared coefficient of variation of service. At
//! `c = 1` the Erlang-C wait is `ρ·E[X]/(1−ρ)` and the scaling factor
//! recovers Pollaczek–Khinchine **exactly**, so a caller can use
//! [`waiting_time`] uniformly and get M/G/1 back for one worker — the
//! `analyze --serve` overlay relies on this reduction.
//!
//! A worker that drains a *batch* of `k` operations serves them in one
//! combined busy period. From per-batch-size measurements
//! `(n_k, ΣS_k, ΣS_k²)` — batches of size `k`, their total and squared
//! total service seconds — [`batch_service_moments`] recovers the
//! *per-operation* effective moments: each op in a size-`k` batch
//! experiences the whole batch as its service, but the batch serves `k`
//! ops per busy period, so the per-op mean is `Σ n_k·E[S_k] / Σ n_k·k`
//! and the per-op second moment weights each batch's `E[S_k²]` by its
//! operation share.

use crate::error::{check_nonneg, check_pos};
use crate::mg1::{self, ServiceMoments};
use crate::{QueueError, Result};

/// Erlang-C: the probability an arriving customer waits in an M/M/c
/// queue with offered load `a = λ/μ` spread over `c` servers.
///
/// Computed with the numerically stable iterative form (terms built by
/// recurrence, no explicit factorials), valid for hundreds of servers.
///
/// Returns [`QueueError::Saturated`] when `ρ = a/c ≥ 1`.
pub fn erlang_c(c: u32, offered_load: f64) -> Result<f64> {
    check_pos("c", f64::from(c))?;
    check_nonneg("offered_load", offered_load)?;
    let c_f = f64::from(c);
    let rho = offered_load / c_f;
    if rho >= 1.0 {
        return Err(QueueError::Saturated {
            lambda_w: offered_load,
            lambda_r: 0.0,
        });
    }
    if offered_load == 0.0 {
        return Ok(0.0);
    }
    // sum = Σ_{k=0}^{c-1} a^k/k!, term walks a^k/k!.
    let mut term = 1.0_f64;
    let mut sum = 1.0_f64;
    for k in 1..c {
        term *= offered_load / f64::from(k);
        sum += term;
    }
    // last term extended to the waiting tail: a^c/c! · 1/(1−ρ).
    let tail = term * (offered_load / c_f) / (1.0 - rho);
    Ok(tail / (sum + tail))
}

/// Expected waiting time in queue for an M/G/c queue (Lee–Longton):
/// `W_q ≈ (1 + c²ᵥ)/2 · C(c, λE[X]) / (c/E[X] − λ)`.
///
/// Exact for `c = 1` (reduces to Pollaczek–Khinchine) and for
/// exponential service at any `c` (reduces to M/M/c).
///
/// Returns [`QueueError::Saturated`] when `ρ = λ·E[X]/c ≥ 1`.
pub fn waiting_time(lambda: f64, c: u32, service: ServiceMoments) -> Result<f64> {
    check_nonneg("lambda", lambda)?;
    check_pos("c", f64::from(c))?;
    check_nonneg("service.mean", service.mean)?;
    check_nonneg("service.second", service.second)?;
    if lambda == 0.0 || service.mean == 0.0 {
        return Ok(0.0);
    }
    let offered = lambda * service.mean;
    let p_wait = erlang_c(c, offered)?;
    let mmc_wait = p_wait / (f64::from(c) / service.mean - lambda);
    Ok((1.0 + service.scv()) / 2.0 * mmc_wait)
}

/// Expected sojourn time (waiting + one service time).
pub fn sojourn_time(lambda: f64, c: u32, service: ServiceMoments) -> Result<f64> {
    Ok(waiting_time(lambda, c, service)? + service.mean)
}

/// One batch size's measured service accumulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSizeMoments {
    /// Batch size `k` (operations per batch).
    pub size: u32,
    /// Number of batches of this size observed.
    pub batches: u64,
    /// Total service seconds across those batches (`Σ S`).
    pub service_sum_s: f64,
    /// Total squared service seconds (`Σ S²`).
    pub service_sum_sq_s2: f64,
}

/// Effective **per-operation** service moments of a batch-serving
/// worker, from per-batch-size sums.
///
/// An operation landing in a size-`k` batch occupies the server for the
/// batch's full service time `S_k`, but the batch completes `k`
/// operations; the server's effective per-op service is therefore
/// `E[X] = Σ n_k·E[S_k] / N_ops` with `N_ops = Σ n_k·k` (total busy
/// seconds over total ops), and the per-op second moment weights each
/// batch size's `E[S_k²]` by its share of operations divided by `k`
/// (each of the `k` ops amortizes the squared busy period):
/// `E[X²] = Σ (n_k·k/N_ops) · E[S_k²]/k² = Σ n_k·E[S_k²]/k / N_ops`.
/// With every batch of size 1 this is the plain sample mean and second
/// moment, so singleton sweeps flow through unchanged.
///
/// Returns `None` when no operations were observed.
pub fn batch_service_moments(sizes: &[BatchSizeMoments]) -> Option<ServiceMoments> {
    let mut ops = 0.0_f64;
    let mut busy = 0.0_f64;
    let mut second = 0.0_f64;
    for m in sizes {
        if m.size == 0 || m.batches == 0 {
            continue;
        }
        let k = f64::from(m.size);
        ops += m.batches as f64 * k;
        busy += m.service_sum_s;
        second += m.service_sum_sq_s2 / k;
    }
    if ops == 0.0 {
        return None;
    }
    Some(ServiceMoments {
        mean: busy / ops,
        second: second / ops,
    })
}

/// Convenience: the M/G/1 moments viewed as the `c = 1` case, for
/// callers asserting the reduction in tests.
pub fn pk_waiting_time(lambda: f64, service: ServiceMoments) -> Result<f64> {
    mg1::waiting_time(lambda, service)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn erlang_c_known_values() {
        // M/M/1: C(1, ρ) = ρ.
        assert!((erlang_c(1, 0.6).unwrap() - 0.6).abs() < EPS);
        // M/M/2 at a=1 (ρ=0.5): C = a²/(a² + 2(1+a)·(1-ρ)·...) — the
        // textbook value is 1/3.
        assert!((erlang_c(2, 1.0).unwrap() - 1.0 / 3.0).abs() < EPS);
        // Zero load never waits.
        assert_eq!(erlang_c(4, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn reduces_to_pollaczek_khinchine_at_c_1() {
        for &(lambda, mean, scv) in &[(0.3, 1.0, 0.0), (0.7, 1.2, 1.0), (0.5, 0.8, 3.5)] {
            let second = (scv + 1.0) * mean * mean;
            let s = ServiceMoments { mean, second };
            let mgc = waiting_time(lambda, 1, s).unwrap();
            let pk = pk_waiting_time(lambda, s).unwrap();
            assert!((mgc - pk).abs() < 1e-9, "λ={lambda}: mgc={mgc} pk={pk}");
        }
    }

    #[test]
    fn reduces_to_mmc_for_exponential_service() {
        // M/M/2, λ=1.2, μ=1: W_q = C(2, 1.2)/(2−1.2).
        let s = ServiceMoments::exponential(1.0);
        let w = waiting_time(1.2, 2, s).unwrap();
        let want = erlang_c(2, 1.2).unwrap() / (2.0 - 1.2);
        assert!((w - want).abs() < EPS);
    }

    #[test]
    fn more_servers_wait_less() {
        let s = ServiceMoments::exponential(1.0);
        let w1 = waiting_time(0.9, 1, s).unwrap();
        let w2 = waiting_time(0.9, 2, s).unwrap();
        let w4 = waiting_time(0.9, 4, s).unwrap();
        assert!(w1 > w2 && w2 > w4, "w1={w1} w2={w2} w4={w4}");
    }

    #[test]
    fn saturation_per_server_count() {
        let s = ServiceMoments::exponential(1.0);
        assert!(matches!(
            waiting_time(1.5, 1, s),
            Err(QueueError::Saturated { .. })
        ));
        // The same load is stable with two servers.
        assert!(waiting_time(1.5, 2, s).is_ok());
        assert!(matches!(
            waiting_time(2.0, 2, s),
            Err(QueueError::Saturated { .. })
        ));
    }

    #[test]
    fn sojourn_adds_one_service() {
        let s = ServiceMoments::exponential(0.5);
        let w = waiting_time(1.0, 2, s).unwrap();
        assert!((sojourn_time(1.0, 2, s).unwrap() - (w + 0.5)).abs() < EPS);
    }

    #[test]
    fn batch_moments_singleton_is_plain_sample_moments() {
        // Three singleton batches with services 1, 2, 3 seconds.
        let m = batch_service_moments(&[BatchSizeMoments {
            size: 1,
            batches: 3,
            service_sum_s: 6.0,
            service_sum_sq_s2: 1.0 + 4.0 + 9.0,
        }])
        .unwrap();
        assert!((m.mean - 2.0).abs() < EPS);
        assert!((m.second - 14.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn batch_moments_amortize_across_sizes() {
        // 10 singletons of 1s each + 10 batches of size 4 taking 2s each:
        // N_ops = 10 + 40 = 50, busy = 10 + 20 = 30 → mean 0.6 s/op.
        // second = (10·1 + 10·4/4)/50 = 20/50 = 0.4 s²/op.
        let m = batch_service_moments(&[
            BatchSizeMoments {
                size: 1,
                batches: 10,
                service_sum_s: 10.0,
                service_sum_sq_s2: 10.0,
            },
            BatchSizeMoments {
                size: 4,
                batches: 10,
                service_sum_s: 20.0,
                service_sum_sq_s2: 40.0,
            },
        ])
        .unwrap();
        assert!((m.mean - 0.6).abs() < EPS);
        assert!((m.second - 0.4).abs() < EPS);
        // Batching 4 ops into a 2s batch beats 4 singleton seconds: the
        // per-op mean fell below the singleton 1s.
        assert!(m.mean < 1.0);
    }

    #[test]
    fn batch_moments_empty_and_degenerate() {
        assert_eq!(batch_service_moments(&[]), None);
        assert_eq!(
            batch_service_moments(&[BatchSizeMoments {
                size: 0,
                batches: 5,
                service_sum_s: 1.0,
                service_sum_sq_s2: 1.0,
            }]),
            None
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let s = ServiceMoments::exponential(1.0);
        assert!(waiting_time(-0.1, 2, s).is_err());
        assert!(waiting_time(0.5, 0, s).is_err());
        assert!(erlang_c(0, 0.5).is_err());
    }
}
