//! Error types for queueing computations.

use std::fmt;

/// Errors produced by the analytical queueing solvers.
///
/// Saturation is an *expected* outcome — the maximum-throughput search in
/// the analysis crate works by probing arrival rates until it observes
/// [`QueueError::Saturated`] — so it carries enough context to report which
/// load failed.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    /// The queue has no stable operating point: the offered load keeps the
    /// server busy with probability ≥ 1 and waiting times diverge.
    Saturated {
        /// Arrival rate of exclusive (writer) customers at the queue.
        lambda_w: f64,
        /// Arrival rate of shared (reader) customers at the queue.
        lambda_r: f64,
    },
    /// An input parameter was outside its domain (negative rate,
    /// non-positive service time, NaN, ...).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The fixed-point iteration failed to converge to the requested
    /// tolerance within the iteration budget. This indicates numerically
    /// pathological inputs rather than saturation.
    NoConvergence {
        /// Residual `|g(ρ)|` at the last iterate.
        residual: f64,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Saturated { lambda_w, lambda_r } => write!(
                f,
                "queue is saturated (no stable writer utilization in [0,1)) at \
                 lambda_w={lambda_w}, lambda_r={lambda_r}"
            ),
            QueueError::InvalidParameter { name, value } => {
                write!(f, "invalid queueing parameter {name}={value}")
            }
            QueueError::NoConvergence { residual } => {
                write!(f, "fixed point did not converge (residual {residual:e})")
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// Validates that `value` is finite and non-negative, returning it on success.
pub(crate) fn check_nonneg(name: &'static str, value: f64) -> crate::Result<f64> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(QueueError::InvalidParameter { name, value })
    }
}

/// Validates that `value` is finite and strictly positive, returning it on success.
pub(crate) fn check_pos(name: &'static str, value: f64) -> crate::Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(QueueError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_saturated() {
        let e = QueueError::Saturated {
            lambda_w: 1.0,
            lambda_r: 2.0,
        };
        assert!(e.to_string().contains("saturated"));
        assert!(e.to_string().contains("lambda_w=1"));
    }

    #[test]
    fn display_invalid() {
        let e = QueueError::InvalidParameter {
            name: "mu_r",
            value: -1.0,
        };
        assert!(e.to_string().contains("mu_r=-1"));
    }

    #[test]
    fn display_no_convergence() {
        let e = QueueError::NoConvergence { residual: 1e-3 };
        assert!(e.to_string().contains("converge"));
    }

    #[test]
    fn check_nonneg_accepts_zero() {
        assert_eq!(check_nonneg("x", 0.0).unwrap(), 0.0);
    }

    #[test]
    fn check_nonneg_rejects_nan_and_negative() {
        assert!(check_nonneg("x", f64::NAN).is_err());
        assert!(check_nonneg("x", -0.5).is_err());
    }

    #[test]
    fn check_pos_rejects_zero() {
        assert!(check_pos("x", 0.0).is_err());
        assert!(check_pos("x", 1.0).is_ok());
    }
}
