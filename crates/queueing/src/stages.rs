//! Staged (generalized hyperexponential) service distributions.
//!
//! Section 5 of the paper: "we cannot model the service time distribution
//! as being exponential; instead we model the distribution as a series of
//! exponential distributions". Figure 2's Naive Lock-coupling server is a
//! sum of three independent stages:
//!
//! 1. an exponential stage always taken (node search + wait for readers),
//! 2. with probability `p_f`, an exponential stage for holding the child's
//!    lock while it restructures,
//! 3. a two-branch mixture for acquiring the child's lock (busy-child
//!    branch with probability `ρ_o`, idle-child branch otherwise).
//!
//! A [`StagedService`] is a sum of independent [`Mixture`] stages, each a
//! probabilistic choice among exponential branches (with any leftover
//! probability contributing zero time). Exact first and second moments and
//! the Laplace transform `B*(s)` are available; the moments reproduce the
//! bracket of Theorem 3, and the transform lets tests verify the moments by
//! numerical differentiation exactly the way the paper's proof does
//! ("differentiating the Laplace transform twice and evaluating at zero").

use crate::mg1::ServiceMoments;

/// One branch of a mixture stage: taken with probability `prob`, and when
/// taken contributes an exponentially distributed time with mean `mean`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Branch {
    /// Probability this branch is taken.
    pub prob: f64,
    /// Mean of the exponential time contributed when taken.
    pub mean: f64,
}

/// A probabilistic mixture of exponential branches. Probabilities may sum
/// to less than 1; the remaining mass contributes zero time (a skipped
/// stage, like the restructuring stage when the child is safe).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mixture {
    branches: Vec<Branch>,
}

impl Mixture {
    /// A stage that is always taken, exponential with the given mean.
    pub fn always(mean: f64) -> Self {
        Mixture {
            branches: vec![Branch { prob: 1.0, mean }],
        }
    }

    /// A stage taken with probability `prob` (exponential with mean `mean`
    /// when taken, zero otherwise).
    pub fn optional(prob: f64, mean: f64) -> Self {
        Mixture {
            branches: vec![Branch { prob, mean }],
        }
    }

    /// A two-branch mixture: exponential `mean_a` with probability `prob_a`,
    /// exponential `mean_b` with the remaining probability.
    pub fn either(prob_a: f64, mean_a: f64, mean_b: f64) -> Self {
        Mixture {
            branches: vec![
                Branch {
                    prob: prob_a,
                    mean: mean_a,
                },
                Branch {
                    prob: 1.0 - prob_a,
                    mean: mean_b,
                },
            ],
        }
    }

    /// An arbitrary mixture from explicit branches.
    ///
    /// # Panics
    /// Panics if probabilities are negative or sum to more than 1 (+1e-9).
    pub fn from_branches(branches: Vec<Branch>) -> Self {
        let total: f64 = branches.iter().map(|b| b.prob).sum();
        assert!(
            branches.iter().all(|b| b.prob >= 0.0 && b.mean >= 0.0) && total <= 1.0 + 1e-9,
            "mixture probabilities must be non-negative and sum to at most 1 (got {total})"
        );
        Mixture { branches }
    }

    /// The branches of this mixture.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// `E[X]` for this stage.
    pub fn mean(&self) -> f64 {
        self.branches.iter().map(|b| b.prob * b.mean).sum()
    }

    /// `E[X²]` for this stage (exponential branch: `E[X²|taken] = 2·mean²`).
    pub fn second_moment(&self) -> f64 {
        self.branches
            .iter()
            .map(|b| b.prob * 2.0 * b.mean * b.mean)
            .sum()
    }

    /// Laplace–Stieltjes transform of this stage at `s`:
    /// `Σ p_b·μ_b/(s+μ_b) + (1 − Σ p_b)` with `μ_b = 1/mean_b`.
    /// A zero-mean branch contributes its probability directly (no delay).
    pub fn laplace(&self, s: f64) -> f64 {
        let mut taken = 0.0;
        let mut value = 0.0;
        for b in &self.branches {
            taken += b.prob;
            if b.mean == 0.0 {
                value += b.prob;
            } else {
                let mu = 1.0 / b.mean;
                value += b.prob * mu / (s + mu);
            }
        }
        value + (1.0 - taken)
    }
}

/// A service time distributed as the sum of independent mixture stages.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StagedService {
    stages: Vec<Mixture>,
}

impl StagedService {
    /// An empty (zero-time) service.
    pub fn new() -> Self {
        StagedService::default()
    }

    /// Appends a stage, builder style.
    pub fn with_stage(mut self, stage: Mixture) -> Self {
        self.stages.push(stage);
        self
    }

    /// Appends a stage in place.
    pub fn push(&mut self, stage: Mixture) {
        self.stages.push(stage);
    }

    /// The stages of this service.
    pub fn stages(&self) -> &[Mixture] {
        &self.stages
    }

    /// `E[X] = Σ E[X_i]` (stages are independent).
    pub fn mean(&self) -> f64 {
        self.stages.iter().map(Mixture::mean).sum()
    }

    /// `E[X²] = Σ E[X_i²] + 2·Σ_{i<j} E[X_i]·E[X_j]`.
    pub fn second_moment(&self) -> f64 {
        let mut own = 0.0;
        let mut cum_mean = 0.0;
        let mut cross = 0.0;
        for st in &self.stages {
            let m = st.mean();
            own += st.second_moment();
            cross += 2.0 * cum_mean * m;
            cum_mean += m;
        }
        own + cross
    }

    /// First and second moments, for the Pollaczek–Khinchine formula.
    pub fn moments(&self) -> ServiceMoments {
        self.into()
    }

    /// Laplace–Stieltjes transform `B*(s) = Π_i B_i*(s)`.
    pub fn laplace(&self, s: f64) -> f64 {
        self.stages.iter().map(|st| st.laplace(s)).product()
    }

    /// Numerical `(-1)^n·dⁿB*(s)/dsⁿ |_{s=0}` via central differences —
    /// the raw `n`-th moment (n = 1 or 2). Exposed for cross-validation of
    /// the closed-form moments; not meant for production use.
    pub fn numeric_moment(&self, n: u32) -> f64 {
        let h = 1e-4 / (1.0 + self.mean());
        match n {
            1 => -(self.laplace(h) - self.laplace(-h)) / (2.0 * h),
            2 => (self.laplace(h) - 2.0 * self.laplace(0.0) + self.laplace(-h)) / (h * h),
            _ => panic!("numeric_moment supports n=1,2 only"),
        }
    }

    /// The three-stage aggregate server of the paper's Figure 2 / Theorem 3.
    ///
    /// * `t_e` — mean of the always-taken stage (node search + wait for the
    ///   readers ahead of the writer),
    /// * `p_f`, `t_f` — probability and mean of the restructuring stage
    ///   (child is insert-unsafe),
    /// * `rho_o`, `t_busy`, `t_idle` — the child-lock acquisition stage:
    ///   with probability `ρ_o` the child queue holds a writer (mean wait
    ///   `t_busy = R(i−1)/ρ_w(i−1) + r_u(i−1)`), otherwise the wait is the
    ///   idle-queue reader burst `t_idle = r_e(i−1)`.
    pub fn theorem3_server(
        t_e: f64,
        p_f: f64,
        t_f: f64,
        rho_o: f64,
        t_busy: f64,
        t_idle: f64,
    ) -> Self {
        StagedService::new()
            .with_stage(Mixture::always(t_e))
            .with_stage(Mixture::optional(p_f, t_f))
            .with_stage(Mixture::either(rho_o, t_busy, t_idle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn single_exponential_moments() {
        let s = StagedService::new().with_stage(Mixture::always(2.0));
        assert!((s.mean() - 2.0).abs() < EPS);
        assert!((s.second_moment() - 8.0).abs() < EPS);
    }

    #[test]
    fn sum_of_two_exponentials() {
        // X = A + B, A~exp(mean 1), B~exp(mean 3):
        // E[X] = 4, E[X²] = 2·1 + 2·9 + 2·1·3 = 26
        let s = StagedService::new()
            .with_stage(Mixture::always(1.0))
            .with_stage(Mixture::always(3.0));
        assert!((s.mean() - 4.0).abs() < EPS);
        assert!((s.second_moment() - 26.0).abs() < EPS);
    }

    #[test]
    fn optional_stage_moments() {
        // taken w.p. 0.25, mean 4: E = 1, E[X²] = 0.25·32 = 8
        let m = Mixture::optional(0.25, 4.0);
        assert!((m.mean() - 1.0).abs() < EPS);
        assert!((m.second_moment() - 8.0).abs() < EPS);
    }

    #[test]
    fn either_stage_covers_both_branches() {
        let m = Mixture::either(0.3, 2.0, 5.0);
        assert!((m.mean() - (0.3 * 2.0 + 0.7 * 5.0)).abs() < EPS);
        assert!((m.second_moment() - (0.3 * 8.0 + 0.7 * 50.0)).abs() < EPS);
    }

    #[test]
    fn laplace_at_zero_is_one() {
        let s = StagedService::theorem3_server(1.0, 0.1, 5.0, 0.4, 3.0, 0.5);
        assert!((s.laplace(0.0) - 1.0).abs() < EPS);
    }

    #[test]
    fn closed_form_moments_match_laplace_derivatives() {
        let s = StagedService::theorem3_server(1.3, 0.07, 6.0, 0.35, 2.5, 0.4);
        let m1 = s.numeric_moment(1);
        let m2 = s.numeric_moment(2);
        assert!(
            (m1 - s.mean()).abs() < 1e-5 * s.mean(),
            "m1={m1} vs {}",
            s.mean()
        );
        assert!(
            (m2 - s.second_moment()).abs() < 1e-4 * s.second_moment(),
            "m2={m2} vs {}",
            s.second_moment()
        );
    }

    #[test]
    fn theorem3_bracket_matches_paper_expansion() {
        // The paper's Theorem 3 bracket is x̄²/2 for this exact server:
        // t_o·t_e + p_f·t_f·t_e + t_e² + p_f·t_o·t_f + ρ_o/μ_o² + p_f·t_f²
        //   + (1−ρ_o)·r_e²
        let (t_e, p_f, t_f, rho_o, t_busy, r_e) = (1.1, 0.08, 7.0, 0.3, 4.0, 0.6);
        let t_o = rho_o * t_busy + (1.0 - rho_o) * r_e;
        let bracket = t_o * t_e
            + p_f * t_f * t_e
            + t_e * t_e
            + p_f * t_o * t_f
            + rho_o * t_busy * t_busy
            + p_f * t_f * t_f
            + (1.0 - rho_o) * r_e * r_e;
        let s = StagedService::theorem3_server(t_e, p_f, t_f, rho_o, t_busy, r_e);
        assert!(
            (s.second_moment() / 2.0 - bracket).abs() < 1e-10,
            "staged={} bracket={}",
            s.second_moment() / 2.0,
            bracket
        );
    }

    #[test]
    fn zero_mean_branch_in_laplace() {
        let m = Mixture::from_branches(vec![Branch {
            prob: 0.5,
            mean: 0.0,
        }]);
        assert!((m.laplace(10.0) - 1.0).abs() < EPS); // 0.5 direct + 0.5 untaken
    }

    #[test]
    #[should_panic(expected = "mixture probabilities")]
    fn from_branches_rejects_overfull() {
        let _ = Mixture::from_branches(vec![
            Branch {
                prob: 0.7,
                mean: 1.0,
            },
            Branch {
                prob: 0.7,
                mean: 1.0,
            },
        ]);
    }

    #[test]
    fn empty_service_is_zero() {
        let s = StagedService::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.second_moment(), 0.0);
        assert_eq!(s.laplace(3.0), 1.0);
    }
}
