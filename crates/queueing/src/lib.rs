//! Queueing-theory substrate for the concurrent B-tree performance framework.
//!
//! Johnson & Shasha (PODS 1990) model a concurrent B-tree as an open network
//! of FCFS reader/writer lock queues, one per tree level. Every quantity the
//! framework computes reduces to a handful of classical results plus one
//! non-classical ingredient:
//!
//! * [`mm1`] — the M/M/1 queue (waiting time `ρ/((1−ρ)μ)`), used for the
//!   leaf level (paper Theorem 4).
//! * [`mg1`] — the M/G/1 queue via the Pollaczek–Khinchine formula
//!   `W = λ·E[X²]/(2(1−ρ))`, used for the upper levels (paper Theorem 3).
//! * [`stages`] — staged service distributions (sums of probabilistic
//!   exponential stages, i.e. generalized hyperexponential servers) with
//!   exact first and second moments and Laplace transforms. Theorem 3's
//!   aggregate server is a three-stage instance.
//! * [`rw`] — the FCFS reader/writer queue of Johnson (SIGMETRICS '90),
//!   reproduced in the paper's appendix as Theorem 6: shared readers,
//!   exclusive writers, FCFS grant order, with the writer utilization
//!   `ρ_w` defined by a fixed point.
//! * [`solve`] — the numerical machinery (sign-change scan + bisection)
//!   shared by the fixed-point and maximum-throughput computations.
//!
//! All times are dimensionless "time units" (the paper normalizes the time
//! to search the root to 1); rates are per time unit.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod mg1;
pub mod mgc;
pub mod mm1;
pub mod rw;
pub mod solve;
pub mod stages;

pub use error::QueueError;
pub use mgc::{batch_service_moments, BatchSizeMoments};
pub use rw::{RwQueue, RwSolution};
pub use stages::{Mixture, StagedService};

/// Convenience result alias for queueing computations.
pub type Result<T> = std::result::Result<T, QueueError>;
