//! The FCFS reader/writer queue of Johnson (SIGMETRICS '90) — the paper's
//! Appendix, Theorem 6.
//!
//! Readers hold shared locks, writers hold exclusive locks, and grants are
//! strictly first-come-first-served. The approximate analysis groups each
//! writer with the burst of readers immediately ahead of it into an
//! *aggregate customer*; because `n` concurrent readers finish in time that
//! grows only logarithmically in `n`, the expected reader-burst service is
//!
//! ```text
//! r_u = ln(1 + ρ_w·λ_r/λ_w) / μ_r            (another writer was queued)
//! r_e = ln(1 + (1+ρ_w)·λ_r/(μ_r+λ_w)) / μ_r  (queue had no writer)
//! ```
//!
//! and the writer utilization `ρ_w` is the root of the fixed point
//!
//! ```text
//! ρ_w = λ_w · ( b + ρ_w·r_u(ρ_w) + (1−ρ_w)·r_e(ρ_w) )
//! ```
//!
//! where `b` is the exclusive part of the aggregate service time (`1/μ_w`
//! for a plain queue; for lock-coupling levels the analysis crate passes
//! the larger staged mean of Theorem 3). The aggregate service time is
//! `T_a = b + ρ_w·r_u + (1−ρ_w)·r_e`.

use crate::error::{check_nonneg, check_pos};
use crate::solve;
use crate::{QueueError, Result};

/// Parameters of a FCFS R/W queue with exponential-ish service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwQueue {
    /// Reader (shared-lock) arrival rate `λ_r`.
    pub lambda_r: f64,
    /// Writer (exclusive-lock) arrival rate `λ_w`.
    pub lambda_w: f64,
    /// Reader service rate `μ_r` (readers finish at this rate once granted).
    pub mu_r: f64,
    /// Writer service rate `μ_w` (exclusive work only, excluding reader bursts).
    pub mu_w: f64,
}

/// Solution of the Theorem 6 fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwSolution {
    /// Probability a writer is present in the queue (writer utilization).
    pub rho_w: f64,
    /// Expected reader-burst wait when the writer found another writer queued.
    pub r_u: f64,
    /// Expected reader-burst wait when the writer found no writer queued.
    pub r_e: f64,
    /// Aggregate-customer service time `T_a = b + ρ_w·r_u + (1−ρ_w)·r_e`.
    pub t_agg: f64,
    /// The exclusive base service `b` used in the fixed point.
    pub base: f64,
}

impl RwSolution {
    /// Expected reader-burst wait for a newly arriving writer,
    /// `ρ_w·r_u + (1−ρ_w)·r_e` — the extra wait readers impose on writers
    /// beyond the M/G/1 queueing delay.
    pub fn reader_burst_wait(&self) -> f64 {
        self.rho_w * self.r_u + (1.0 - self.rho_w) * self.r_e
    }
}

impl RwQueue {
    /// Creates a queue description, validating parameter domains.
    pub fn new(lambda_r: f64, lambda_w: f64, mu_r: f64, mu_w: f64) -> Result<Self> {
        check_nonneg("lambda_r", lambda_r)?;
        check_nonneg("lambda_w", lambda_w)?;
        check_pos("mu_r", mu_r)?;
        check_pos("mu_w", mu_w)?;
        Ok(RwQueue {
            lambda_r,
            lambda_w,
            mu_r,
            mu_w,
        })
    }

    /// Reader-burst waits `(r_u, r_e)` at a given writer utilization.
    pub fn reader_bursts(&self, rho_w: f64) -> (f64, f64) {
        reader_bursts(self.lambda_r, self.lambda_w, self.mu_r, rho_w)
    }

    /// Solves the Theorem 6 fixed point with exclusive base service `1/μ_w`.
    pub fn solve(&self) -> Result<RwSolution> {
        solve_with_base(self.lambda_r, self.lambda_w, self.mu_r, |_| 1.0 / self.mu_w)
    }
}

/// Reader-burst waits `(r_u, r_e)` from the Theorem 6 closed forms.
///
/// When `λ_w = 0` the busy-queue case cannot arise; `r_u` is reported as 0
/// (its weight `ρ_w` is 0 anyway) and `r_e` keeps its closed form.
pub fn reader_bursts(lambda_r: f64, lambda_w: f64, mu_r: f64, rho_w: f64) -> (f64, f64) {
    let r_e = ((1.0 + rho_w) * lambda_r / (mu_r + lambda_w)).ln_1p() / mu_r;
    let r_u = if lambda_w > 0.0 {
        (rho_w * lambda_r / lambda_w).ln_1p() / mu_r
    } else {
        0.0
    };
    (r_u, r_e)
}

/// Solves the generalized fixed point
/// `ρ_w = λ_w·(base(ρ_w) + ρ_w·r_u(ρ_w) + (1−ρ_w)·r_e(ρ_w))` on `[0, 1)`.
///
/// `base` supplies the exclusive part of the aggregate service as a function
/// of `ρ_w`; for a plain Theorem 6 queue it is the constant `1/μ_w`, for the
/// lock-coupling levels of Theorem 3 it is `Se(i) + p_f·t_f + t_o` (constant
/// in `ρ_w(i)` since `t_o`, `t_f` only involve level `i−1`), and for queues
/// whose exclusive service itself depends on local congestion a genuine
/// function may be passed.
///
/// Returns [`QueueError::Saturated`] when no root exists below 1.
pub fn solve_with_base(
    lambda_r: f64,
    lambda_w: f64,
    mu_r: f64,
    base: impl Fn(f64) -> f64,
) -> Result<RwSolution> {
    check_nonneg("lambda_r", lambda_r)?;
    check_nonneg("lambda_w", lambda_w)?;
    check_pos("mu_r", mu_r)?;

    if lambda_w == 0.0 {
        let (r_u, r_e) = reader_bursts(lambda_r, 0.0, mu_r, 0.0);
        let b = base(0.0);
        return Ok(RwSolution {
            rho_w: 0.0,
            r_u,
            r_e,
            t_agg: b + r_e,
            base: b,
        });
    }

    let t_agg_at = |rho: f64| -> f64 {
        let (r_u, r_e) = reader_bursts(lambda_r, lambda_w, mu_r, rho);
        base(rho) + rho * r_u + (1.0 - rho) * r_e
    };
    // g(ρ) = λ_w·T_a(ρ) − ρ; g(0) > 0 whenever λ_w > 0, so the smallest
    // root in [0,1) is the stable operating point. Scan+bisect for
    // robustness (see crate::solve).
    let g = |rho: f64| lambda_w * t_agg_at(rho) - rho;
    const UPPER: f64 = 1.0 - 1e-9;
    match solve::first_root(0.0, UPPER, 512, solve::DEFAULT_TOL, g) {
        Some(rho_w) => {
            let (r_u, r_e) = reader_bursts(lambda_r, lambda_w, mu_r, rho_w);
            let b = base(rho_w);
            Ok(RwSolution {
                rho_w,
                r_u,
                r_e,
                t_agg: b + rho_w * r_u + (1.0 - rho_w) * r_e,
                base: b,
            })
        }
        None => Err(QueueError::Saturated { lambda_w, lambda_r }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With no readers the queue must behave exactly like M/M/1 on writers:
    /// ρ_w = λ_w/μ_w.
    #[test]
    fn reduces_to_mm1_without_readers() {
        let q = RwQueue::new(0.0, 0.4, 1.0, 0.8).unwrap();
        let s = q.solve().unwrap();
        assert!((s.rho_w - 0.5).abs() < 1e-9, "rho_w={}", s.rho_w);
        assert_eq!(s.r_u, 0.0);
        assert!((s.r_e - 0.0).abs() < 1e-12);
        assert!((s.t_agg - 1.25).abs() < 1e-9);
    }

    #[test]
    fn no_writers_is_trivially_stable() {
        let q = RwQueue::new(5.0, 0.0, 1.0, 1.0).unwrap();
        let s = q.solve().unwrap();
        assert_eq!(s.rho_w, 0.0);
        assert!(s.r_e > 0.0); // readers still burst
    }

    #[test]
    fn readers_inflate_writer_utilization() {
        let without = RwQueue::new(0.0, 0.3, 1.0, 1.0).unwrap().solve().unwrap();
        let with = RwQueue::new(2.0, 0.3, 1.0, 1.0).unwrap().solve().unwrap();
        assert!(
            with.rho_w > without.rho_w,
            "readers must increase rho_w: {} vs {}",
            with.rho_w,
            without.rho_w
        );
    }

    #[test]
    fn solution_satisfies_fixed_point() {
        let q = RwQueue::new(1.5, 0.25, 1.2, 0.9).unwrap();
        let s = q.solve().unwrap();
        let resid = q.lambda_w * s.t_agg - s.rho_w;
        assert!(resid.abs() < 1e-8, "residual {resid}");
    }

    #[test]
    fn r_u_less_than_r_e_at_low_load() {
        // An idle queue accumulates a bigger reader burst than a busy one
        // only when rho is large; at small rho, r_u (log of small x) is
        // smaller than r_e. Check the closed forms directly.
        let (r_u, r_e) = reader_bursts(1.0, 0.5, 1.0, 0.1);
        assert!(r_u < r_e, "r_u={r_u} r_e={r_e}");
    }

    #[test]
    fn saturation_when_writer_load_too_high() {
        let q = RwQueue::new(0.0, 2.0, 1.0, 1.0).unwrap();
        assert!(matches!(q.solve(), Err(QueueError::Saturated { .. })));
    }

    #[test]
    fn rho_monotone_in_lambda_w() {
        let mut last = 0.0;
        for i in 1..10 {
            let lw = 0.05 * i as f64;
            let s = RwQueue::new(1.0, lw, 1.0, 1.0).unwrap().solve().unwrap();
            assert!(s.rho_w > last, "rho_w must grow with lambda_w");
            last = s.rho_w;
        }
    }

    #[test]
    fn rho_monotone_in_lambda_r() {
        let mut last = 0.0;
        for i in 1..10 {
            let lr = 0.5 * i as f64;
            let s = RwQueue::new(lr, 0.2, 1.0, 1.0).unwrap().solve().unwrap();
            assert!(s.rho_w > last, "rho_w must grow with lambda_r");
            last = s.rho_w;
        }
    }

    #[test]
    fn generalized_base_function_is_used() {
        // base = constant 2.0 regardless of mu_w
        let s = solve_with_base(0.0, 0.25, 1.0, |_| 2.0).unwrap();
        assert!((s.rho_w - 0.5).abs() < 1e-9);
        assert_eq!(s.base, 2.0);
    }

    #[test]
    fn reader_burst_wait_combines_cases() {
        let q = RwQueue::new(1.0, 0.2, 1.0, 1.0).unwrap();
        let s = q.solve().unwrap();
        let expect = s.rho_w * s.r_u + (1.0 - s.rho_w) * s.r_e;
        assert!((s.reader_burst_wait() - expect).abs() < 1e-15);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(RwQueue::new(-1.0, 0.0, 1.0, 1.0).is_err());
        assert!(RwQueue::new(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(RwQueue::new(0.0, f64::INFINITY, 1.0, 1.0).is_err());
    }
}
