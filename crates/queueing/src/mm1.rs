//! The M/M/1 queue: Poisson arrivals, exponential service, one server.
//!
//! The paper uses M/M/1 results in two places: the leaf-level lock queue
//! (Theorem 4 — "model their service time by an exponential distribution")
//! and the textbook reference point for the hockey-stick response-time
//! curves in §5.3 ("the rapid increase in the response time can be
//! predicted from standard M/M/1 queueing theory").

use crate::error::{check_nonneg, check_pos};
use crate::{QueueError, Result};

/// Server utilization `ρ = λ/μ`.
pub fn utilization(lambda: f64, mu: f64) -> Result<f64> {
    check_nonneg("lambda", lambda)?;
    check_pos("mu", mu)?;
    Ok(lambda / mu)
}

/// Expected *waiting* time in queue (excluding service), `W_q = ρ/((1−ρ)·μ)`.
///
/// Returns [`QueueError::Saturated`] when `ρ ≥ 1`.
pub fn waiting_time(lambda: f64, mu: f64) -> Result<f64> {
    let rho = utilization(lambda, mu)?;
    if rho >= 1.0 {
        return Err(QueueError::Saturated {
            lambda_w: lambda,
            lambda_r: 0.0,
        });
    }
    Ok(rho / ((1.0 - rho) * mu))
}

/// Expected *sojourn* (response) time `T = 1/(μ−λ)`, i.e. waiting + service.
pub fn sojourn_time(lambda: f64, mu: f64) -> Result<f64> {
    Ok(waiting_time(lambda, mu)? + 1.0 / mu)
}

/// Expected number of customers in the *system*, `L = ρ/(1−ρ)`.
pub fn mean_number_in_system(lambda: f64, mu: f64) -> Result<f64> {
    let rho = utilization(lambda, mu)?;
    if rho >= 1.0 {
        return Err(QueueError::Saturated {
            lambda_w: lambda,
            lambda_r: 0.0,
        });
    }
    Ok(rho / (1.0 - rho))
}

/// Steady-state probability of exactly `n` customers, `(1−ρ)ρⁿ`.
pub fn prob_n_in_system(lambda: f64, mu: f64, n: u32) -> Result<f64> {
    let rho = utilization(lambda, mu)?;
    if rho >= 1.0 {
        return Err(QueueError::Saturated {
            lambda_w: lambda,
            lambda_r: 0.0,
        });
    }
    Ok((1.0 - rho) * rho.powi(n as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn waiting_matches_closed_form() {
        // λ=0.5, μ=1: ρ=0.5, Wq = 0.5/0.5 = 1.0
        assert!((waiting_time(0.5, 1.0).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn sojourn_is_one_over_mu_minus_lambda() {
        let t = sojourn_time(0.3, 1.0).unwrap();
        assert!((t - 1.0 / 0.7).abs() < EPS);
    }

    #[test]
    fn littles_law_holds() {
        // L = λ·T
        let (lambda, mu) = (0.7, 1.3);
        let l = mean_number_in_system(lambda, mu).unwrap();
        let t = sojourn_time(lambda, mu).unwrap();
        assert!((l - lambda * t).abs() < 1e-10);
    }

    #[test]
    fn saturation_detected() {
        assert!(matches!(
            waiting_time(1.0, 1.0),
            Err(QueueError::Saturated { .. })
        ));
        assert!(matches!(
            waiting_time(2.0, 1.0),
            Err(QueueError::Saturated { .. })
        ));
    }

    #[test]
    fn empty_queue_at_zero_load() {
        assert_eq!(waiting_time(0.0, 2.0).unwrap(), 0.0);
        assert!((prob_n_in_system(0.0, 2.0, 0).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (lambda, mu) = (0.6, 1.0);
        let total: f64 = (0..200)
            .map(|n| prob_n_in_system(lambda, mu, n).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(waiting_time(-1.0, 1.0).is_err());
        assert!(waiting_time(1.0, 0.0).is_err());
        assert!(waiting_time(f64::NAN, 1.0).is_err());
    }
}
