//! Property tests for the scalar solvers in `cbtree_queueing::solve`,
//! driven by the workspace's deterministic PRNG so every case reproduces
//! from the printed `(seed, case)` pair. Three properties matter to the
//! framework: solver output is a pure function of its inputs (bit-for-bit
//! reproducible), the Theorem 6 fixed point is monotone in the writer
//! arrival rate, and pushing past the stability bound yields a clean
//! `Saturated` error — never a NaN smuggled into downstream arithmetic.

use cbtree_queueing::rw::{solve_with_base, RwQueue};
use cbtree_queueing::solve::{bisect, damped_fixed_point, first_root, DEFAULT_TOL};
use cbtree_queueing::QueueError;
use cbtree_workload::Rng;

const SEED: u64 = 0x5EED_0007;
const CASES: usize = 256;

fn uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Every solver is a pure function of its inputs: calling it twice with
/// the same arguments yields the same f64 bit pattern, not merely values
/// within tolerance. This is what makes a reported operating point (and
/// any failure it triggers) replayable.
#[test]
fn solvers_are_bit_reproducible() {
    let mut rng = Rng::new(SEED);
    for case in 0..CASES {
        // bisect on a random monotone cubic with a root inside [lo, hi].
        let r = uniform(&mut rng, -1.0, 1.0);
        let f = |x: f64| (x - r) * ((x - r) * (x - r) + 1.0);
        let a = bisect(-2.0, 2.0, DEFAULT_TOL, f);
        let b = bisect(-2.0, 2.0, DEFAULT_TOL, f);
        assert_eq!(a.to_bits(), b.to_bits(), "case={case}: bisect diverged");

        // first_root on a two-root quadratic.
        let lo_root = uniform(&mut rng, 0.1, 0.4);
        let hi_root = uniform(&mut rng, 0.6, 0.9);
        let g = |x: f64| (x - lo_root) * (x - hi_root);
        let a = first_root(0.0, 1.0, 64, DEFAULT_TOL, g);
        let b = first_root(0.0, 1.0, 64, DEFAULT_TOL, g);
        assert_eq!(
            a.map(f64::to_bits),
            b.map(f64::to_bits),
            "case={case}: first_root diverged"
        );

        // damped_fixed_point on a random affine contraction.
        let slope = uniform(&mut rng, -0.8, 0.8);
        let off = uniform(&mut rng, 0.0, 0.2);
        let h = |x: f64| slope * x + off;
        let a = damped_fixed_point(0.5, 0.0, 1.0, 0.7, DEFAULT_TOL, 10_000, h);
        let b = damped_fixed_point(0.5, 0.0, 1.0, 0.7, DEFAULT_TOL, 10_000, h);
        assert_eq!(
            a.map(f64::to_bits),
            b.map(f64::to_bits),
            "case={case}: damped_fixed_point diverged"
        );
    }

    // The Theorem 6 fixed point inherits the same guarantee end to end.
    let q = RwQueue::new(0.8, 0.3, 2.0, 1.5).unwrap();
    let (a, b) = (q.solve().unwrap(), q.solve().unwrap());
    assert_eq!(a.rho_w.to_bits(), b.rho_w.to_bits());
    assert_eq!(a.t_agg.to_bits(), b.t_agg.to_bits());
}

/// The smallest root of `λ·T(ρ) − ρ` grows with λ for any increasing
/// service curve `T`. Verified against the closed form for affine
/// `T(ρ) = t0 + c·ρ`, where the fixed point is `λ·t0 / (1 − λ·c)`.
#[test]
fn fixed_point_is_monotone_in_lambda() {
    let mut rng = Rng::new(SEED ^ 1);
    for case in 0..CASES {
        let t0 = uniform(&mut rng, 0.05, 0.5);
        let c = uniform(&mut rng, 0.0, 0.5);
        let mut last = -1.0;
        for k in 1..=10 {
            let lambda = 0.05 * k as f64;
            let root = first_root(0.0, 1.0, 64, DEFAULT_TOL, |rho| {
                lambda * (t0 + c * rho) - rho
            });
            let Some(rho) = root else {
                // No root in [0, 1): the load saturated; it must stay
                // saturated for every larger λ, so stop scanning.
                assert!(
                    lambda * (t0 + c) >= 1.0 - 1e-9,
                    "case={case}: spurious None"
                );
                break;
            };
            let expect = lambda * t0 / (1.0 - lambda * c);
            assert!(
                (rho - expect).abs() <= 1e-9 * (1.0 + expect),
                "case={case}: root {rho} vs closed form {expect}"
            );
            assert!(
                rho >= last - 1e-12,
                "case={case}: fixed point must be monotone in lambda: {last} then {rho}"
            );
            last = rho;
        }
    }
}

/// Past the stability bound the solver reports `Saturated` with finite
/// payload fields — it never returns NaN or a clamped pseudo-solution
/// that downstream throughput math would silently absorb.
#[test]
fn saturation_is_an_error_not_a_nan() {
    let mut rng = Rng::new(SEED ^ 2);
    for case in 0..CASES {
        let lambda_r = uniform(&mut rng, 0.0, 3.0);
        let mu_r = uniform(&mut rng, 0.2, 5.0);
        let mu_w = uniform(&mut rng, 0.2, 5.0);
        // λ_w ≥ μ_w guarantees λ_w·T_a(ρ) ≥ λ_w/μ_w ≥ 1 > ρ on [0, 1):
        // unconditionally past the bound.
        let lambda_w = mu_w * uniform(&mut rng, 1.0, 3.0);
        match RwQueue::new(lambda_r, lambda_w, mu_r, mu_w)
            .unwrap()
            .solve()
        {
            Err(QueueError::Saturated {
                lambda_w: lw,
                lambda_r: lr,
            }) => {
                assert!(lw.is_finite() && lr.is_finite(), "case={case}");
                assert_eq!(lw, lambda_w, "case={case}: wrong reported load");
                assert_eq!(lr, lambda_r, "case={case}: wrong reported load");
            }
            other => panic!("case={case}: expected Saturated, got {other:?}"),
        }

        // Same via the general entry point with a random base-time curve.
        let b0 = 1.0 / mu_w;
        let slope = uniform(&mut rng, 0.0, 0.5);
        let s = solve_with_base(lambda_r, lambda_w, mu_r, |rho| b0 + slope * rho);
        match s {
            Err(QueueError::Saturated { lambda_w: lw, .. }) => {
                assert!(lw.is_finite() && !lw.is_nan(), "case={case}");
            }
            other => panic!("case={case}: expected Saturated, got {other:?}"),
        }
    }

    // The low-level iteration also fails cleanly: a map that leaves the
    // finite range makes damped_fixed_point return None, not NaN.
    assert_eq!(
        damped_fixed_point(0.5, 0.0, 1.0, 1.0, DEFAULT_TOL, 100, |_| f64::NAN),
        None
    );
    assert_eq!(
        damped_fixed_point(0.5, 0.0, 1.0, 1.0, DEFAULT_TOL, 100, |x| x + f64::INFINITY),
        None
    );
}

/// Bisection keeps its answer inside the bracket and actually near a
/// root, for random strictly monotone functions.
#[test]
fn bisect_stays_in_bracket_with_small_residual() {
    let mut rng = Rng::new(SEED ^ 3);
    for case in 0..CASES {
        let root = uniform(&mut rng, -5.0, 5.0);
        let scale = uniform(&mut rng, 0.1, 10.0);
        let f = |x: f64| scale * (x - root);
        let (lo, hi) = (
            root - uniform(&mut rng, 0.1, 4.0),
            root + uniform(&mut rng, 0.1, 4.0),
        );
        let x = bisect(lo, hi, DEFAULT_TOL, f);
        assert!(
            (lo..=hi).contains(&x),
            "case={case}: {x} outside [{lo}, {hi}]"
        );
        assert!(
            (x - root).abs() <= 1e-9 * (1.0 + root.abs()),
            "case={case}: residual too large: {x} vs {root}"
        );
    }
}
