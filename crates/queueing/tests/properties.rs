//! Property-based tests of the queueing substrate.

use cbtree_queueing::mg1::ServiceMoments;
use cbtree_queueing::rw::{solve_with_base, RwQueue};
use cbtree_queueing::stages::{Mixture, StagedService};
use cbtree_queueing::{mg1, mm1, QueueError};
use proptest::prelude::*;

proptest! {
    /// M/M/1 waiting time is non-negative, finite, and increasing in load
    /// below saturation.
    #[test]
    fn mm1_wait_monotone_in_lambda(mu in 0.1f64..10.0, frac in 0.01f64..0.98) {
        let lambda_lo = frac * mu * 0.5;
        let lambda_hi = frac * mu;
        let w_lo = mm1::waiting_time(lambda_lo, mu).unwrap();
        let w_hi = mm1::waiting_time(lambda_hi, mu).unwrap();
        prop_assert!(w_lo >= 0.0 && w_lo.is_finite());
        prop_assert!(w_hi >= w_lo);
    }

    /// Pollaczek–Khinchine with exponential moments equals M/M/1 for any
    /// stable load.
    #[test]
    fn pk_equals_mm1_for_exponential(mu in 0.1f64..10.0, frac in 0.01f64..0.95) {
        let lambda = frac * mu;
        let pk = mg1::waiting_time(lambda, ServiceMoments::exponential(1.0 / mu)).unwrap();
        let mm = mm1::waiting_time(lambda, mu).unwrap();
        prop_assert!((pk - mm).abs() <= 1e-9 * (1.0 + mm));
    }

    /// Staged-service closed-form moments agree with numeric Laplace
    /// differentiation for arbitrary 3-stage servers.
    #[test]
    fn staged_moments_match_laplace(
        t_e in 0.01f64..10.0,
        p_f in 0.0f64..1.0,
        t_f in 0.01f64..20.0,
        rho_o in 0.0f64..1.0,
        t_busy in 0.01f64..20.0,
        t_idle in 0.0f64..5.0,
    ) {
        let s = StagedService::theorem3_server(t_e, p_f, t_f, rho_o, t_busy, t_idle);
        let m1 = s.numeric_moment(1);
        let m2 = s.numeric_moment(2);
        prop_assert!((m1 - s.mean()).abs() <= 1e-3 * (1.0 + s.mean()));
        prop_assert!((m2 - s.second_moment()).abs() <= 1e-2 * (1.0 + s.second_moment()));
    }

    /// Staged second moment always at least the squared mean (variance ≥ 0).
    #[test]
    fn staged_variance_nonnegative(
        means in prop::collection::vec(0.0f64..10.0, 1..6),
    ) {
        let mut s = StagedService::new();
        for m in &means {
            s.push(Mixture::always(*m));
        }
        prop_assert!(s.second_moment() + 1e-12 >= s.mean() * s.mean());
    }

    /// The Theorem 6 solution always satisfies its own fixed point and lies
    /// in [0, 1); saturation is reported rather than silently clamped.
    #[test]
    fn rw_fixed_point_residual_small(
        lambda_r in 0.0f64..3.0,
        lambda_w in 0.0f64..1.5,
        mu_r in 0.2f64..5.0,
        mu_w in 0.2f64..5.0,
    ) {
        let q = RwQueue::new(lambda_r, lambda_w, mu_r, mu_w).unwrap();
        match q.solve() {
            Ok(s) => {
                prop_assert!((0.0..1.0).contains(&s.rho_w));
                let resid = lambda_w * s.t_agg - s.rho_w;
                prop_assert!(resid.abs() < 1e-6, "residual {resid}");
                prop_assert!(s.r_u >= 0.0 && s.r_e >= 0.0);
            }
            Err(QueueError::Saturated { .. }) => {
                // The fixed point g(ρ) = λ_w·T_a(ρ) − ρ has no root in
                // [0,1) only if g stays positive there; verify at ρ→1.
                let (r_u, _) = cbtree_queueing::rw::reader_bursts(
                    lambda_r, lambda_w, mu_r, 1.0);
                let t_a_at_one = 1.0 / mu_w + r_u;
                prop_assert!(lambda_w * t_a_at_one > 1.0 - 1e-6,
                    "reported saturation but g(1) = {} ≤ 0",
                    lambda_w * t_a_at_one - 1.0);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    /// Writer utilization grows monotonically with writer arrivals until
    /// saturation.
    #[test]
    fn rw_rho_monotone(lambda_r in 0.0f64..2.0, mu_r in 0.5f64..3.0) {
        let mut last = -1.0;
        for k in 1..12 {
            let lambda_w = 0.04 * k as f64;
            match RwQueue::new(lambda_r, lambda_w, mu_r, 1.0).unwrap().solve() {
                Ok(s) => {
                    prop_assert!(s.rho_w >= last - 1e-9,
                        "rho must be monotone: {} then {}", last, s.rho_w);
                    last = s.rho_w;
                }
                Err(_) => break, // once saturated, stays saturated
            }
        }
    }

    /// A larger exclusive base service can only raise the fixed point.
    #[test]
    fn rw_base_monotone(
        lambda_r in 0.0f64..2.0,
        lambda_w in 0.01f64..0.4,
        mu_r in 0.5f64..3.0,
        b1 in 0.05f64..1.0,
        extra in 0.0f64..1.0,
    ) {
        let s1 = solve_with_base(lambda_r, lambda_w, mu_r, |_| b1);
        let s2 = solve_with_base(lambda_r, lambda_w, mu_r, |_| b1 + extra);
        if let (Ok(a), Ok(b)) = (s1, s2) {
            prop_assert!(b.rho_w + 1e-9 >= a.rho_w);
        }
    }
}
