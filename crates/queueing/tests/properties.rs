//! Randomized tests of the queueing substrate, driven by the workspace's
//! deterministic PRNG (`cbtree_workload::Rng`) so every case reproduces
//! from the printed `(seed, case)` pair.

use cbtree_queueing::mg1::ServiceMoments;
use cbtree_queueing::rw::{solve_with_base, RwQueue};
use cbtree_queueing::stages::{Mixture, StagedService};
use cbtree_queueing::{mg1, mm1, QueueError};
use cbtree_workload::Rng;

const SEED: u64 = 0x5EED_0002;
const CASES: usize = 256;

fn uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// M/M/1 waiting time is non-negative, finite, and increasing in load
/// below saturation.
#[test]
fn mm1_wait_monotone_in_lambda() {
    let mut rng = Rng::new(SEED);
    for case in 0..CASES {
        let mu = uniform(&mut rng, 0.1, 10.0);
        let frac = uniform(&mut rng, 0.01, 0.98);
        let w_lo = mm1::waiting_time(frac * mu * 0.5, mu).unwrap();
        let w_hi = mm1::waiting_time(frac * mu, mu).unwrap();
        assert!(w_lo >= 0.0 && w_lo.is_finite(), "case={case}");
        assert!(w_hi >= w_lo, "case={case}: {w_hi} < {w_lo}");
    }
}

/// Pollaczek–Khinchine with exponential moments equals M/M/1 for any
/// stable load.
#[test]
fn pk_equals_mm1_for_exponential() {
    let mut rng = Rng::new(SEED ^ 1);
    for case in 0..CASES {
        let mu = uniform(&mut rng, 0.1, 10.0);
        let lambda = uniform(&mut rng, 0.01, 0.95) * mu;
        let pk = mg1::waiting_time(lambda, ServiceMoments::exponential(1.0 / mu)).unwrap();
        let mm = mm1::waiting_time(lambda, mu).unwrap();
        assert!((pk - mm).abs() <= 1e-9 * (1.0 + mm), "case={case}");
    }
}

/// Staged-service closed-form moments agree with numeric Laplace
/// differentiation for arbitrary 3-stage servers.
#[test]
fn staged_moments_match_laplace() {
    let mut rng = Rng::new(SEED ^ 2);
    for case in 0..CASES {
        let t_e = uniform(&mut rng, 0.01, 10.0);
        let p_f = rng.next_f64();
        let t_f = uniform(&mut rng, 0.01, 20.0);
        let rho_o = rng.next_f64();
        let t_busy = uniform(&mut rng, 0.01, 20.0);
        let t_idle = uniform(&mut rng, 0.0, 5.0);
        let s = StagedService::theorem3_server(t_e, p_f, t_f, rho_o, t_busy, t_idle);
        let m1 = s.numeric_moment(1);
        let m2 = s.numeric_moment(2);
        assert!(
            (m1 - s.mean()).abs() <= 1e-3 * (1.0 + s.mean()),
            "case={case}"
        );
        assert!(
            (m2 - s.second_moment()).abs() <= 1e-2 * (1.0 + s.second_moment()),
            "case={case}"
        );
    }
}

/// Staged second moment always at least the squared mean (variance ≥ 0).
#[test]
fn staged_variance_nonnegative() {
    let mut rng = Rng::new(SEED ^ 3);
    for case in 0..CASES {
        let mut s = StagedService::new();
        for _ in 0..1 + rng.next_below(5) {
            s.push(Mixture::always(uniform(&mut rng, 0.0, 10.0)));
        }
        assert!(
            s.second_moment() + 1e-12 >= s.mean() * s.mean(),
            "case={case}"
        );
    }
}

/// The Theorem 6 solution always satisfies its own fixed point and lies
/// in [0, 1); saturation is reported rather than silently clamped.
#[test]
fn rw_fixed_point_residual_small() {
    let mut rng = Rng::new(SEED ^ 4);
    for case in 0..CASES {
        let lambda_r = uniform(&mut rng, 0.0, 3.0);
        let lambda_w = uniform(&mut rng, 0.0, 1.5);
        let mu_r = uniform(&mut rng, 0.2, 5.0);
        let mu_w = uniform(&mut rng, 0.2, 5.0);
        let q = RwQueue::new(lambda_r, lambda_w, mu_r, mu_w).unwrap();
        match q.solve() {
            Ok(s) => {
                assert!((0.0..1.0).contains(&s.rho_w), "case={case}");
                let resid = lambda_w * s.t_agg - s.rho_w;
                assert!(resid.abs() < 1e-6, "case={case} residual {resid}");
                assert!(s.r_u >= 0.0 && s.r_e >= 0.0, "case={case}");
            }
            Err(QueueError::Saturated { .. }) => {
                // The fixed point g(ρ) = λ_w·T_a(ρ) − ρ has no root in
                // [0,1) only if g stays positive there; verify at ρ→1.
                let (r_u, _) = cbtree_queueing::rw::reader_bursts(lambda_r, lambda_w, mu_r, 1.0);
                let t_a_at_one = 1.0 / mu_w + r_u;
                assert!(
                    lambda_w * t_a_at_one > 1.0 - 1e-6,
                    "case={case}: reported saturation but g(1) = {} ≤ 0",
                    lambda_w * t_a_at_one - 1.0
                );
            }
            Err(e) => panic!("case={case}: unexpected error {e}"),
        }
    }
}

/// Writer utilization grows monotonically with writer arrivals until
/// saturation.
#[test]
fn rw_rho_monotone() {
    let mut rng = Rng::new(SEED ^ 5);
    for case in 0..CASES {
        let lambda_r = uniform(&mut rng, 0.0, 2.0);
        let mu_r = uniform(&mut rng, 0.5, 3.0);
        let mut last = -1.0;
        for k in 1..12 {
            let lambda_w = 0.04 * k as f64;
            match RwQueue::new(lambda_r, lambda_w, mu_r, 1.0).unwrap().solve() {
                Ok(s) => {
                    assert!(
                        s.rho_w >= last - 1e-9,
                        "case={case}: rho must be monotone: {last} then {}",
                        s.rho_w
                    );
                    last = s.rho_w;
                }
                Err(_) => break, // once saturated, stays saturated
            }
        }
    }
}

/// A larger exclusive base service can only raise the fixed point.
#[test]
fn rw_base_monotone() {
    let mut rng = Rng::new(SEED ^ 6);
    for case in 0..CASES {
        let lambda_r = uniform(&mut rng, 0.0, 2.0);
        let lambda_w = uniform(&mut rng, 0.01, 0.4);
        let mu_r = uniform(&mut rng, 0.5, 3.0);
        let b1 = uniform(&mut rng, 0.05, 1.0);
        let extra = rng.next_f64();
        let s1 = solve_with_base(lambda_r, lambda_w, mu_r, |_| b1);
        let s2 = solve_with_base(lambda_r, lambda_w, mu_r, |_| b1 + extra);
        if let (Ok(a), Ok(b)) = (s1, s2) {
            assert!(b.rho_w + 1e-9 >= a.rho_w, "case={case}");
        }
    }
}
