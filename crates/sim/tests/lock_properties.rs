//! Property tests of the FCFS reader/writer lock table — the simulator's
//! most safety-critical component (Theorem 6 models exactly this
//! discipline, so any deviation silently skews every validation).

use cbtree_sim::locks::{LockTable, Mode, NodeId, OpId};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Step {
    Request {
        op: OpId,
        node: NodeId,
        exclusive: bool,
    },
    /// Release the i-th currently-held (op, node) pair, modulo count.
    Release(usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..40, 0usize..3, any::<bool>()).prop_map(|(op, node, exclusive)| {
                Step::Request {
                    op,
                    node,
                    exclusive,
                }
            }),
            (0usize..64).prop_map(Step::Release),
        ],
        1..200,
    )
}

/// Mirror of the lock table's externally observable state.
#[derive(Default)]
struct Mirror {
    /// (node → ops currently holding it with mode).
    holders: HashMap<NodeId, Vec<(OpId, Mode)>>,
    /// (node → FCFS arrival order of ops still waiting).
    waiting: HashMap<NodeId, Vec<(OpId, Mode)>>,
}

impl Mirror {
    fn grant(&mut self, node: NodeId, op: OpId, mode: Mode) {
        self.holders.entry(node).or_default().push((op, mode));
    }

    fn check_exclusion(&self) -> Result<(), TestCaseError> {
        for (node, hs) in &self.holders {
            let writers = hs.iter().filter(|(_, m)| *m == Mode::Exclusive).count();
            prop_assert!(writers <= 1, "node {node}: {writers} concurrent writers");
            if writers == 1 {
                prop_assert_eq!(
                    hs.len(),
                    1,
                    "node {}: writer shares with {} holders",
                    node,
                    hs.len()
                );
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Mutual exclusion, FCFS prefix grants, and hold/queue bookkeeping
    /// hold on arbitrary request/release interleavings.
    #[test]
    fn lock_table_is_a_fcfs_rw_lock(script in steps()) {
        let mut table = LockTable::new();
        let mut mirror = Mirror::default();
        // Ops may hold several nodes; remember (op, node) pairs to release.
        let mut held_pairs: Vec<(OpId, NodeId)> = Vec::new();
        let mut now = 0.0;

        for step in script {
            now += 1.0;
            match step {
                Step::Request { op, node, exclusive } => {
                    // One op never requests the same node twice while
                    // holding/waiting (the simulator never does).
                    let already = held_pairs.iter().any(|&(o, n)| o == op && n == node)
                        || mirror
                            .waiting
                            .get(&node)
                            .is_some_and(|w| w.iter().any(|&(o, _)| o == op));
                    if already {
                        continue;
                    }
                    let mode = if exclusive { Mode::Exclusive } else { Mode::Shared };
                    let granted = table.request(node, op, mode, now);
                    let queue_empty =
                        mirror.waiting.get(&node).is_none_or(Vec::is_empty);
                    let holders = mirror.holders.get(&node);
                    let compatible = match mode {
                        Mode::Shared => holders
                            .is_none_or(|h| h.iter().all(|(_, m)| *m == Mode::Shared)),
                        Mode::Exclusive => holders.is_none_or(Vec::is_empty),
                    };
                    // Immediate grant iff FCFS-compatible.
                    prop_assert_eq!(granted, queue_empty && compatible,
                        "node {}: grant {} vs queue_empty {} compatible {}",
                        node, granted, queue_empty, compatible);
                    if granted {
                        mirror.grant(node, op, mode);
                        held_pairs.push((op, node));
                    } else {
                        mirror.waiting.entry(node).or_default().push((op, mode));
                    }
                }
                Step::Release(i) => {
                    if held_pairs.is_empty() {
                        continue;
                    }
                    let (op, node) = held_pairs.remove(i % held_pairs.len());
                    let hs = mirror.holders.get_mut(&node).expect("held");
                    let pos = hs.iter().position(|&(o, _)| o == op).expect("held");
                    hs.remove(pos);
                    let grants = table.release(node, op, now);
                    // Grants must be the maximal compatible FCFS prefix of
                    // the waiting queue.
                    let queue = mirror.waiting.entry(node).or_default();
                    let holders_empty =
                        mirror.holders.get(&node).is_none_or(Vec::is_empty);
                    let mut expect: Vec<(OpId, Mode)> = Vec::new();
                    let readers_only = !mirror
                        .holders
                        .get(&node)
                        .is_some_and(|h| h.iter().any(|(_, m)| *m == Mode::Exclusive));
                    let mut can_take_writer = holders_empty;
                    for &(wop, wmode) in queue.iter() {
                        match wmode {
                            Mode::Shared if readers_only => {
                                expect.push((wop, wmode));
                                can_take_writer = false;
                            }
                            Mode::Exclusive if can_take_writer && expect.is_empty() => {
                                expect.push((wop, wmode));
                                break;
                            }
                            _ => break,
                        }
                    }
                    let got: Vec<(OpId, Mode)> =
                        grants.iter().map(|g| (g.op, g.mode)).collect();
                    prop_assert_eq!(&got, &expect, "node {} grant prefix", node);
                    for g in &grants {
                        prop_assert!(g.waited >= 0.0);
                        prop_assert!(g.node == node);
                    }
                    // Apply to the mirror.
                    queue.drain(..expect.len());
                    for (gop, gmode) in expect {
                        mirror.grant(node, gop, gmode);
                        held_pairs.push((gop, node));
                    }
                }
            }
            mirror.check_exclusion()?;
            // writer_present must agree with the mirror.
            for node in 0..3usize {
                let expect = mirror
                    .holders
                    .get(&node)
                    .is_some_and(|h| h.iter().any(|(_, m)| *m == Mode::Exclusive))
                    || mirror
                        .waiting
                        .get(&node)
                        .is_some_and(|w| w.iter().any(|(_, m)| *m == Mode::Exclusive));
                prop_assert_eq!(table.writer_present(node), expect, "node {}", node);
            }
        }
    }
}
