//! Replay determinism: a simulation is a pure function of its
//! configuration (seed included). Two runs of the same config must agree
//! byte-for-byte on every reported statistic — this is what makes a
//! failing setting reportable and debuggable, and it pins down that no
//! hidden state (host RNG, time, iteration-order hashing) leaks into the
//! simulation.

use cbtree_sim::{run, SimAlgorithm as Algorithm, SimConfig};

fn report_bytes(cfg: &SimConfig) -> String {
    // Debug-format the full report: f64 shortest-round-trip printing is
    // injective on bit patterns (modulo NaN payloads, which a sane run
    // never produces), so equal strings ⇔ byte-identical statistics.
    format!(
        "{:?}",
        run(cfg).expect("run must be stable at this setting")
    )
}

#[test]
fn same_seed_same_config_is_byte_identical() {
    for alg in [
        Algorithm::NaiveLockCoupling,
        Algorithm::OptimisticDescent,
        Algorithm::LinkType,
    ] {
        let cfg = SimConfig::paper(alg, 0.3, 0xD5EED).scaled_down(20);
        let a = report_bytes(&cfg);
        let b = report_bytes(&cfg);
        assert_eq!(a, b, "{alg:?}: two runs of one config diverged");
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the degenerate way to pass the test above: a
    // simulator that ignores its seed would be deterministic too.
    let a = report_bytes(&SimConfig::paper(Algorithm::LinkType, 0.3, 1).scaled_down(20));
    let b = report_bytes(&SimConfig::paper(Algorithm::LinkType, 0.3, 2).scaled_down(20));
    assert_ne!(a, b, "distinct seeds should produce distinct statistics");
}
