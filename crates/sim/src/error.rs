//! Simulator error type.

use std::fmt;

/// Errors raised by a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The number of concurrent in-flight operations exceeded the
    /// configured bound — the simulator's signal that the arrival rate is
    /// not sustainable (the paper's simulator "crashes" in this case).
    Exploded {
        /// The bound that was exceeded.
        max_concurrent: usize,
        /// Simulated time at which the bound was hit.
        at_time: f64,
        /// Operations completed before the explosion.
        completed: usize,
    },
    /// A configuration parameter was outside its domain.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exploded {
                max_concurrent,
                at_time,
                completed,
            } => write!(
                f,
                "simulation exceeded {max_concurrent} concurrent operations at t={at_time:.1} \
                 ({completed} ops completed) — arrival rate unsustainable"
            ),
            SimError::InvalidConfig { name, constraint } => {
                write!(f, "invalid simulator config `{name}`: {constraint}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    /// Whether this error indicates an unsustainable arrival rate.
    pub fn is_overload(&self) -> bool {
        matches!(self, SimError::Exploded { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_predicates() {
        let e = SimError::Exploded {
            max_concurrent: 100,
            at_time: 5.0,
            completed: 42,
        };
        assert!(e.is_overload());
        assert!(e.to_string().contains("100"));
        let c = SimError::InvalidConfig {
            name: "rate",
            constraint: "positive",
        };
        assert!(!c.is_overload());
        assert!(c.to_string().contains("rate"));
    }
}
