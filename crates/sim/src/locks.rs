//! Per-node FCFS reader/writer lock table.
//!
//! Semantics match the paper's assumptions exactly (§3.2, "Lock types"):
//! R locks may be shared, W locks are exclusive, and grants are strictly
//! first-come-first-served — a reader arriving behind a queued writer
//! waits even though it would be compatible with the current holders.
//! This FCFS discipline is what the analytical aggregate-customer
//! approximation (Appendix, Theorem 6) models.

use std::collections::HashMap;

/// Identifier of a simulated tree node.
pub type NodeId = usize;
/// Identifier of an in-flight operation.
pub type OpId = usize;

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Shared (reader) lock.
    Shared,
    /// Exclusive (writer) lock.
    Exclusive,
}

#[derive(Debug, Clone)]
struct Waiting {
    op: OpId,
    mode: Mode,
    since: f64,
}

#[derive(Debug, Clone, Default)]
struct NodeLock {
    /// Current shared holders.
    readers: Vec<OpId>,
    /// Current exclusive holder.
    writer: Option<OpId>,
    /// FCFS wait queue.
    queue: Vec<Waiting>,
}

impl NodeLock {
    fn is_free(&self) -> bool {
        self.readers.is_empty() && self.writer.is_none()
    }

    fn compatible(&self, mode: Mode) -> bool {
        match mode {
            Mode::Shared => self.writer.is_none(),
            Mode::Exclusive => self.is_free(),
        }
    }
}

/// A grant produced by [`LockTable::release`]: the operation now holds the
/// node, after waiting `waited` time units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// The operation granted the lock.
    pub op: OpId,
    /// The node granted.
    pub node: NodeId,
    /// Mode granted.
    pub mode: Mode,
    /// How long the operation waited in the queue.
    pub waited: f64,
}

/// The per-node FCFS R/W lock table.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: HashMap<NodeId, NodeLock>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Requests `mode` on `node` for `op` at time `now`.
    ///
    /// Returns `true` when granted immediately (the queue was empty and
    /// the request is compatible with the holders); otherwise the request
    /// is parked FCFS and a later [`LockTable::release`] will surface it
    /// as a [`Grant`].
    pub fn request(&mut self, node: NodeId, op: OpId, mode: Mode, now: f64) -> bool {
        let lock = self.locks.entry(node).or_default();
        if lock.queue.is_empty() && lock.compatible(mode) {
            match mode {
                Mode::Shared => lock.readers.push(op),
                Mode::Exclusive => lock.writer = Some(op),
            }
            true
        } else {
            lock.queue.push(Waiting {
                op,
                mode,
                since: now,
            });
            false
        }
    }

    /// Releases `op`'s hold on `node` at time `now`, returning the queue
    /// prefix that becomes grantable (possibly several readers, or one
    /// writer).
    ///
    /// # Panics
    /// Panics if `op` does not hold `node` — a protocol bug in the caller
    /// that must not be silently ignored.
    pub fn release(&mut self, node: NodeId, op: OpId, now: f64) -> Vec<Grant> {
        let lock = self
            .locks
            .get_mut(&node)
            .unwrap_or_else(|| panic!("release of unlocked node {node}"));
        if lock.writer == Some(op) {
            lock.writer = None;
        } else if let Some(idx) = lock.readers.iter().position(|&r| r == op) {
            lock.readers.swap_remove(idx);
        } else {
            panic!("operation {op} does not hold node {node}");
        }
        let mut grants = Vec::new();
        while let Some(front) = lock.queue.first() {
            if !lock.compatible(front.mode) {
                break;
            }
            let w = lock.queue.remove(0);
            match w.mode {
                Mode::Shared => lock.readers.push(w.op),
                Mode::Exclusive => lock.writer = Some(w.op),
            }
            grants.push(Grant {
                op: w.op,
                node,
                mode: w.mode,
                waited: now - w.since,
            });
            if w.mode == Mode::Exclusive {
                break;
            }
        }
        if lock.is_free() && lock.queue.is_empty() {
            self.locks.remove(&node);
        }
        grants
    }

    /// Whether a writer currently holds or waits for `node` — the
    /// simulated counterpart of the analysis's `ρ_w` indicator.
    pub fn writer_present(&self, node: NodeId) -> bool {
        self.locks.get(&node).is_some_and(|l| {
            l.writer.is_some() || l.queue.iter().any(|w| w.mode == Mode::Exclusive)
        })
    }

    /// Whether `op` currently holds `node` (in either mode).
    pub fn holds(&self, node: NodeId, op: OpId) -> bool {
        self.locks
            .get(&node)
            .is_some_and(|l| l.writer == Some(op) || l.readers.contains(&op))
    }

    /// Number of nodes with any lock state (holders or waiters).
    pub fn active_nodes(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_share() {
        let mut t = LockTable::new();
        assert!(t.request(1, 10, Mode::Shared, 0.0));
        assert!(t.request(1, 11, Mode::Shared, 0.0));
        assert!(t.holds(1, 10) && t.holds(1, 11));
    }

    #[test]
    fn exclusive_excludes() {
        let mut t = LockTable::new();
        assert!(t.request(1, 10, Mode::Exclusive, 0.0));
        assert!(!t.request(1, 11, Mode::Shared, 1.0));
        assert!(!t.request(1, 12, Mode::Exclusive, 2.0));
        let grants = t.release(1, 10, 5.0);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].op, 11);
        assert!((grants[0].waited - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fcfs_reader_does_not_jump_queued_writer() {
        let mut t = LockTable::new();
        assert!(t.request(1, 1, Mode::Shared, 0.0)); // reader holds
        assert!(!t.request(1, 2, Mode::Exclusive, 0.0)); // writer queues
                                                         // A new reader is compatible with the *holder* but must queue
                                                         // behind the writer (FCFS).
        assert!(!t.request(1, 3, Mode::Shared, 0.0));
        let g = t.release(1, 1, 1.0);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].op, 2, "writer first");
        let g = t.release(1, 2, 2.0);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].op, 3);
    }

    #[test]
    fn release_grants_reader_batch() {
        let mut t = LockTable::new();
        assert!(t.request(1, 1, Mode::Exclusive, 0.0));
        assert!(!t.request(1, 2, Mode::Shared, 0.0));
        assert!(!t.request(1, 3, Mode::Shared, 0.0));
        assert!(!t.request(1, 4, Mode::Exclusive, 0.0));
        assert!(!t.request(1, 5, Mode::Shared, 0.0));
        let g = t.release(1, 1, 1.0);
        // Readers 2 and 3 granted together; writer 4 blocks reader 5.
        assert_eq!(g.iter().map(|g| g.op).collect::<Vec<_>>(), vec![2, 3]);
        let g = t.release(1, 2, 2.0);
        assert!(g.is_empty(), "reader 3 still holds");
        let g = t.release(1, 3, 3.0);
        assert_eq!(g.iter().map(|g| g.op).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn writer_present_tracks_holders_and_waiters() {
        let mut t = LockTable::new();
        assert!(!t.writer_present(1));
        t.request(1, 1, Mode::Shared, 0.0);
        assert!(!t.writer_present(1));
        t.request(1, 2, Mode::Exclusive, 0.0);
        assert!(t.writer_present(1), "queued writer counts");
        let g = t.release(1, 1, 1.0);
        assert_eq!(g[0].op, 2);
        assert!(t.writer_present(1), "holding writer counts");
        t.release(1, 2, 2.0);
        assert!(!t.writer_present(1));
    }

    #[test]
    fn independent_nodes_do_not_interfere() {
        let mut t = LockTable::new();
        assert!(t.request(1, 1, Mode::Exclusive, 0.0));
        assert!(t.request(2, 2, Mode::Exclusive, 0.0));
        assert!(t.holds(1, 1) && t.holds(2, 2));
    }

    #[test]
    fn lock_state_cleaned_up_when_idle() {
        let mut t = LockTable::new();
        t.request(1, 1, Mode::Shared, 0.0);
        t.release(1, 1, 1.0);
        assert_eq!(t.active_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn releasing_unheld_lock_panics() {
        let mut t = LockTable::new();
        t.request(1, 1, Mode::Shared, 0.0);
        t.release(1, 99, 1.0);
    }
}
