//! Simulation configuration, reports, and multi-seed orchestration —
//! the paper's experimental protocol (§4, §5.3): build a ~40 000-item
//! tree with the concurrent mix's insert:delete ratio, run 10 000
//! concurrent operations arriving in a Poisson stream, and repeat with 5
//! seeds.

use crate::costs::SimCosts;
use crate::driver::{OpKind, SimAlgorithm, SimRecovery, Simulator};
use crate::stats::{Summary, Welford};
use crate::tree::SimTree;
use crate::{Result, SimError};
use cbtree_workload::{OpStream, Operation, OpsConfig, PoissonArrivals};

pub use crate::driver::SimAlgorithm as Algorithm;

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Algorithm to simulate.
    pub algorithm: SimAlgorithm,
    /// Maximum keys per node (`N`).
    pub node_capacity: usize,
    /// Items in the tree when the concurrent phase starts.
    pub initial_items: usize,
    /// Operation mix and key distribution.
    pub ops: OpsConfig,
    /// Poisson arrival rate of concurrent operations.
    pub arrival_rate: f64,
    /// Operations to measure (after warmup).
    pub measured_ops: u64,
    /// Operations to complete before measurement starts.
    pub warmup_ops: u64,
    /// Service-cost model.
    pub costs: SimCosts,
    /// Abort threshold on concurrent in-flight operations.
    pub max_concurrent: usize,
    /// §7 transactional lock retention (default: none).
    pub recovery: SimRecovery,
    /// Random seed (construction, arrivals, services all derive from it).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's base setup (§5.3) at a given algorithm and rate:
    /// `N = 13`, 40 000 items, mix .3/.5/.2, `D = 5`, 2 in-memory levels,
    /// 10 000 measured operations.
    pub fn paper(algorithm: SimAlgorithm, arrival_rate: f64, seed: u64) -> Self {
        SimConfig {
            algorithm,
            node_capacity: 13,
            initial_items: 40_000,
            ops: OpsConfig::paper(100_000_000),
            arrival_rate,
            measured_ops: 10_000,
            warmup_ops: 500,
            costs: SimCosts::paper(),
            max_concurrent: 20_000,
            recovery: SimRecovery::default(),
            seed,
        }
    }

    /// Shrinks the run (items and measured ops) by `factor` — used by
    /// tests and quick experiment modes to keep wall-clock time sane while
    /// preserving the configuration's shape.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        let f = factor.max(1);
        self.initial_items = (self.initial_items / f).max(500);
        self.measured_ops = (self.measured_ops / f as u64).max(200);
        self.warmup_ops = (self.warmup_ops / f as u64).max(50);
        self
    }

    /// Raises the warmup and measured operation counts so the simulated
    /// windows cover at least the given *time* spans. At high arrival
    /// rates a fixed operation count spans almost no simulated time —
    /// shorter than the system's own relaxation time (a few response
    /// times) — and the measurement would sample the ramp-up transient
    /// rather than steady state.
    pub fn with_min_window(mut self, warmup_time: f64, measured_time: f64) -> Self {
        self.warmup_ops = self
            .warmup_ops
            .max((self.arrival_rate * warmup_time) as u64);
        self.measured_ops = self
            .measured_ops
            .max((self.arrival_rate * measured_time) as u64);
        self
    }

    fn validate(&self) -> Result<()> {
        if !(self.arrival_rate.is_finite() && self.arrival_rate > 0.0) {
            return Err(SimError::InvalidConfig {
                name: "arrival_rate",
                constraint: "must be finite and positive",
            });
        }
        if self.node_capacity < 3 {
            return Err(SimError::InvalidConfig {
                name: "node_capacity",
                constraint: "must be at least 3",
            });
        }
        if self.measured_ops == 0 {
            return Err(SimError::InvalidConfig {
                name: "measured_ops",
                constraint: "must be positive",
            });
        }
        if !self.ops.is_valid() {
            return Err(SimError::InvalidConfig {
                name: "ops",
                constraint: "mix must sum to 1",
            });
        }
        Ok(())
    }
}

/// Report of one simulation run (measured window only).
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Arrival rate simulated.
    pub arrival_rate: f64,
    /// Mean/CI of search response times.
    pub resp_search: Summary,
    /// Mean/CI of insert response times.
    pub resp_insert: Summary,
    /// Mean/CI of delete response times.
    pub resp_delete: Summary,
    /// Time-weighted root writer utilization (simulated `ρ_w(h)`).
    pub root_writer_utilization: f64,
    /// Time-weighted mean number of in-flight operations.
    pub avg_concurrency: f64,
    /// Completions per time unit over the measured window.
    pub throughput: f64,
    /// Link crossings per completed operation (Link-type only; 0 else).
    pub crossings_per_op: f64,
    /// Redo descents per completed update (Optimistic only; 0 else).
    pub redo_rate: f64,
    /// Mean exclusive-lock wait per level (leaves first).
    pub wait_w_by_level: Vec<f64>,
    /// Mean shared-lock wait per level (leaves first).
    pub wait_r_by_level: Vec<f64>,
    /// Simulated per-level writer utilization ρ_w (leaves first): the
    /// per-node fraction of the measured window during which a writer
    /// held *or waited for* the node's lock, averaged over the level's
    /// nodes — `writer_present` semantics, directly comparable to the
    /// analysis's per-level ρ_w (the root entry generalizes
    /// `root_writer_utilization` to every level).
    pub rho_w_by_level: Vec<f64>,
    /// Tree height at the end of the run.
    pub final_height: usize,
    /// Leaf space utilization at the end of the run.
    pub leaf_utilization: f64,
    /// Peak in-flight operations.
    pub max_in_flight: usize,
    /// Operations completed in the measured window.
    pub completed: u64,
    /// Duration of the measured window.
    pub measured_time: f64,
}

impl SimReport {
    /// JSON record of the whole report (`type: "sim_report"`).
    pub fn to_json(&self) -> cbtree_obs::Json {
        use cbtree_obs::Json;
        let farr = |v: &[f64]| Json::arr(v.iter().map(|&x| Json::f64_or_null(x)));
        Json::obj(vec![
            ("type", "sim_report".into()),
            ("arrival_rate", Json::f64_or_null(self.arrival_rate)),
            ("resp_search", self.resp_search.to_json()),
            ("resp_insert", self.resp_insert.to_json()),
            ("resp_delete", self.resp_delete.to_json()),
            (
                "root_writer_utilization",
                Json::f64_or_null(self.root_writer_utilization),
            ),
            ("avg_concurrency", Json::f64_or_null(self.avg_concurrency)),
            ("throughput", Json::f64_or_null(self.throughput)),
            ("crossings_per_op", Json::f64_or_null(self.crossings_per_op)),
            ("redo_rate", Json::f64_or_null(self.redo_rate)),
            ("wait_w_by_level", farr(&self.wait_w_by_level)),
            ("wait_r_by_level", farr(&self.wait_r_by_level)),
            ("rho_w_by_level", farr(&self.rho_w_by_level)),
            ("final_height", self.final_height.into()),
            ("leaf_utilization", Json::f64_or_null(self.leaf_utilization)),
            ("max_in_flight", self.max_in_flight.into()),
            ("completed", self.completed.into()),
            ("measured_time", Json::f64_or_null(self.measured_time)),
        ])
    }
}

/// Runs the construction phase, returning the tree the concurrent phase
/// starts from *and* the workload stream positioned right after
/// construction. Using one continuous stream across both phases is
/// important: a fresh stream would start with an empty delete pool, and
/// the resulting shift in delete locality sends the tree's fill
/// distribution through a long transient that suppresses splits for the
/// whole measurement window.
pub fn construction_phase(cfg: &SimConfig) -> Result<(SimTree, OpStream)> {
    cfg.validate()?;
    let mut stream = OpStream::new(cfg.ops, cfg.seed.wrapping_mul(0x9E37_79B9) ^ 0xB17D);
    let seq = stream.construction_sequence(cfg.initial_items);
    Ok((SimTree::build(cfg.node_capacity, &seq), stream))
}

/// The construction-phase tree only (shape inspection).
pub fn construction_tree(cfg: &SimConfig) -> Result<SimTree> {
    Ok(construction_phase(cfg)?.0)
}

/// Measures the constructed tree's shape for the analytical framework:
/// exact per-level node counts and fanouts of the tree `run` would
/// simulate on (same seed, same construction stream).
pub fn matched_tree_shape(cfg: &SimConfig) -> Result<cbtree_btree_model::TreeShape> {
    let tree = construction_tree(cfg)?;
    let counts: Vec<f64> = tree.level_node_counts().iter().map(|&c| c as f64).collect();
    let node = cbtree_btree_model::NodeParams::with_max_size(cfg.node_capacity).map_err(|_| {
        SimError::InvalidConfig {
            name: "node_capacity",
            constraint: "must be at least 3",
        }
    })?;
    cbtree_btree_model::TreeShape::from_node_counts(&counts, tree.item_count, node).map_err(|_| {
        SimError::InvalidConfig {
            name: "initial_items",
            constraint: "constructed tree has a degenerate shape",
        }
    })
}

/// Runs one simulation.
pub fn run(cfg: &SimConfig) -> Result<SimReport> {
    cfg.validate()?;
    // The concurrent phase continues the construction stream (warm
    // delete pool, identical statistics in both phases — §4).
    let (tree, mut stream) = construction_phase(cfg)?;

    let mut sim = Simulator::new(
        tree,
        cfg.costs.clone(),
        cfg.algorithm,
        cfg.warmup_ops,
        cfg.seed,
    );
    sim.set_recovery(cfg.recovery);
    // ~20 batches over the measured window for autocorrelation-robust CIs.
    sim.set_batch_size((cfg.measured_ops / 20).max(10));
    let mut arrivals = PoissonArrivals::new(cfg.arrival_rate, cfg.seed ^ 0xA221_44EE);

    sim.schedule_arrival(arrivals.next_arrival());
    let target = cfg.warmup_ops + cfg.measured_ops;
    let outcome = sim.run_until(target, cfg.max_concurrent, move || {
        let op = stream.next_op();
        let (kind, key) = match op {
            Operation::Search(k) => (OpKind::Search, k),
            Operation::Insert(k) => (OpKind::Insert, k),
            Operation::Delete(k) => (OpKind::Delete, k),
        };
        (kind, key, arrivals.next_arrival())
    });
    if let Err((at_time, completed)) = outcome {
        return Err(SimError::Exploded {
            max_concurrent: cfg.max_concurrent,
            at_time,
            completed: completed as usize,
        });
    }

    // Close out writer-presence intervals still open at the end of the
    // event loop so the per-level totals cover the whole measured window.
    sim.finalize_w_present();
    let level_nodes = sim.tree.level_node_counts();
    let stats = &sim.stats;
    let measured_time = (sim.now() - stats.measured_start).max(f64::MIN_POSITIVE);
    let rho_w_by_level: Vec<f64> = (0..sim.tree.height())
        .map(|i| {
            let present = stats.w_present_by_level.get(i).copied().unwrap_or(0.0);
            let nodes = level_nodes.get(i).copied().unwrap_or(0).max(1) as f64;
            (present / (nodes * measured_time)).clamp(0.0, 1.0)
        })
        .collect();
    let to_means = |ws: &Vec<Welford>| ws.iter().map(Welford::mean).collect::<Vec<f64>>();
    // Single-run CIs use batch means (per-sample CIs understate variance
    // because successive response times share queue backlogs).
    let with_batch_ci = |w: &Welford, b: Option<&crate::stats::BatchMeans>| {
        let mut s = Summary::from_welford(w);
        if let Some(b) = b.filter(|b| b.batch_count() >= 2) {
            s.ci95 = b.ci95_half_width();
        }
        s
    };
    let b = stats.batches.as_ref();
    Ok(SimReport {
        arrival_rate: cfg.arrival_rate,
        resp_search: with_batch_ci(&stats.resp_search, b.map(|(s, _, _)| s)),
        resp_insert: with_batch_ci(&stats.resp_insert, b.map(|(_, i, _)| i)),
        resp_delete: with_batch_ci(&stats.resp_delete, b.map(|(_, _, d)| d)),
        root_writer_utilization: stats.root_writer.mean(),
        avg_concurrency: stats.concurrency.mean(),
        throughput: stats.completed as f64 / measured_time,
        crossings_per_op: stats.crossings as f64 / stats.completed.max(1) as f64,
        redo_rate: stats.redos as f64 / stats.updates_completed.max(1) as f64,
        wait_w_by_level: to_means(&stats.wait_w),
        wait_r_by_level: to_means(&stats.wait_r),
        rho_w_by_level,
        final_height: sim.tree.height(),
        leaf_utilization: sim.tree.leaf_utilization(),
        max_in_flight: stats.max_in_flight,
        completed: stats.completed,
        measured_time,
    })
}

/// Cross-seed summary of the headline metrics.
#[derive(Debug, Clone)]
pub struct SeedSummary {
    /// Arrival rate simulated.
    pub arrival_rate: f64,
    /// Search response time across seeds.
    pub resp_search: Summary,
    /// Insert response time across seeds.
    pub resp_insert: Summary,
    /// Delete response time across seeds.
    pub resp_delete: Summary,
    /// Root writer utilization across seeds.
    pub root_writer_utilization: Summary,
    /// Link crossings per op across seeds.
    pub crossings_per_op: Summary,
    /// Redo rate across seeds.
    pub redo_rate: Summary,
    /// Throughput across seeds.
    pub throughput: Summary,
    /// The individual reports.
    pub runs: Vec<SimReport>,
}

/// Runs the configuration once per seed and summarizes across seeds, the
/// paper's 5-seed protocol. Fails if **any** seed's run is unstable
/// (the paper reports nothing when the simulator crashes at a setting).
pub fn run_seeds(cfg: &SimConfig, seeds: &[u64]) -> Result<SeedSummary> {
    if seeds.is_empty() {
        return Err(SimError::InvalidConfig {
            name: "seeds",
            constraint: "must be non-empty",
        });
    }
    let mut runs = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let mut one = cfg.clone();
        one.seed = seed;
        runs.push(run(&one)?);
    }
    let collect = |f: &dyn Fn(&SimReport) -> f64| {
        Summary::from_values(&runs.iter().map(f).collect::<Vec<_>>())
    };
    Ok(SeedSummary {
        arrival_rate: cfg.arrival_rate,
        resp_search: collect(&|r| r.resp_search.mean),
        resp_insert: collect(&|r| r.resp_insert.mean),
        resp_delete: collect(&|r| r.resp_delete.mean),
        root_writer_utilization: collect(&|r| r.root_writer_utilization),
        crossings_per_op: collect(&|r| r.crossings_per_op),
        redo_rate: collect(&|r| r.redo_rate),
        throughput: collect(&|r| r.throughput),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(alg: SimAlgorithm, rate: f64) -> SimConfig {
        SimConfig::paper(alg, rate, 11).scaled_down(20)
    }

    #[test]
    fn run_produces_sane_report() {
        let r = run(&quick(SimAlgorithm::NaiveLockCoupling, 0.05)).unwrap();
        assert!(r.resp_search.mean > 0.0);
        assert!(r.resp_insert.mean > 0.0);
        assert!(r.completed >= 490);
        assert!(r.throughput > 0.0);
        assert!((0.0..=1.0).contains(&r.root_writer_utilization));
        assert!(r.final_height >= 4);
    }

    #[test]
    fn per_level_rho_w_is_sane_and_matches_root_tracker() {
        // Heavier load so writer holds are visible at every level.
        let r = run(&quick(SimAlgorithm::NaiveLockCoupling, 0.4)).unwrap();
        assert_eq!(r.rho_w_by_level.len(), r.final_height);
        for (i, &rho) in r.rho_w_by_level.iter().enumerate() {
            assert!((0.0..=1.0).contains(&rho), "level {}: {rho}", i + 1);
        }
        // Leaves see writers under an update-heavy mix.
        assert!(r.rho_w_by_level[0] > 0.0, "no leaf writer utilization");
        // The root's per-level value and the time-weighted root tracker
        // measure the same writer-present signal two ways; they must
        // agree up to event-boundary rounding.
        let root = *r.rho_w_by_level.last().unwrap();
        assert!(
            (root - r.root_writer_utilization).abs() < 1e-6,
            "root rho_w {} vs tracker {}",
            root,
            r.root_writer_utilization
        );
    }

    #[test]
    fn sim_report_json_round_trips() {
        use cbtree_obs::Json;
        let r = run(&quick(SimAlgorithm::LinkType, 0.2)).unwrap();
        let j = r.to_json();
        let parsed = Json::parse(&j.to_string().unwrap()).unwrap();
        assert_eq!(parsed, j);
        assert_eq!(
            parsed.get("type").and_then(Json::as_str),
            Some("sim_report")
        );
        assert_eq!(
            parsed.get("completed").and_then(Json::as_u64),
            Some(r.completed)
        );
        assert_eq!(
            parsed
                .get("rho_w_by_level")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(r.final_height)
        );
    }

    #[test]
    fn littles_law_roughly_holds() {
        // L = λ·W over the measured window.
        let r = run(&quick(SimAlgorithm::LinkType, 0.5)).unwrap();
        let mean_rt =
            (0.3 * r.resp_search.mean + 0.5 * r.resp_insert.mean + 0.2 * r.resp_delete.mean)
                .max(1e-9);
        let implied_l = r.throughput * mean_rt;
        let ratio = r.avg_concurrency / implied_l;
        assert!(
            (0.7..1.4).contains(&ratio),
            "Little's law violated: L={} λW={} ratio {ratio}",
            r.avg_concurrency,
            implied_l
        );
    }

    #[test]
    fn throughput_tracks_arrival_rate_when_stable() {
        let r = run(&quick(SimAlgorithm::OptimisticDescent, 0.3)).unwrap();
        assert!(
            (r.throughput - 0.3).abs() < 0.1,
            "open system: throughput ≈ arrival rate, got {}",
            r.throughput
        );
    }

    #[test]
    fn overload_is_reported_not_hung() {
        let mut cfg = quick(SimAlgorithm::NaiveLockCoupling, 30.0);
        cfg.max_concurrent = 300;
        let err = run(&cfg).unwrap_err();
        assert!(err.is_overload());
    }

    #[test]
    fn seeds_averaged() {
        let s = run_seeds(&quick(SimAlgorithm::LinkType, 0.3), &[1, 2, 3]).unwrap();
        assert_eq!(s.runs.len(), 3);
        assert_eq!(s.resp_insert.n, 3);
        assert!(s.resp_insert.mean > 0.0);
    }

    #[test]
    fn link_records_crossings_naive_does_not() {
        let link = run(&quick(SimAlgorithm::LinkType, 1.0)).unwrap();
        let naive = run(&quick(SimAlgorithm::NaiveLockCoupling, 0.05)).unwrap();
        assert_eq!(naive.crossings_per_op, 0.0);
        // Crossings are *rare* but the machinery must be wired: accept 0
        // at small scale, but the rate must be tiny either way (Fig 9).
        assert!(
            link.crossings_per_op < 0.2,
            "crossings {}",
            link.crossings_per_op
        );
    }

    #[test]
    fn od_redo_rate_near_pr_full() {
        let r = run(&quick(SimAlgorithm::OptimisticDescent, 0.3)).unwrap();
        // Pr[F(1)] ≈ 0.068 for N=13 and the paper mix; inserts redo at
        // that rate, deletes almost never. Expect redo per update in
        // the broad vicinity of q_i/(q_i+q_d)·Pr[F(1)] ≈ 0.05.
        assert!(
            (0.005..0.2).contains(&r.redo_rate),
            "redo rate {} out of plausible band",
            r.redo_rate
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = quick(SimAlgorithm::LinkType, 0.0);
        assert!(run(&c).is_err());
        c.arrival_rate = 1.0;
        c.node_capacity = 2;
        assert!(run(&c).is_err());
        assert!(run_seeds(&quick(SimAlgorithm::LinkType, 0.1), &[]).is_err());
    }
}
