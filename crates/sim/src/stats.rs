//! Statistics accumulators: Welford online mean/variance, time-weighted
//! averages for utilizations, and cross-seed summaries with confidence
//! intervals.

/// Online mean/variance accumulator (Welford's algorithm, numerically
//  stable for long runs).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds an observation.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of an approximate 95% confidence interval
    /// (normal-approximation, 1.96·SE).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }
}

/// Time-weighted average of a piecewise-constant signal (utilizations,
/// queue lengths). Call [`TimeWeighted::advance`] at every event with the
/// *current* value of the signal since the previous event.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeWeighted {
    area: f64,
    last_t: f64,
    started: bool,
    start_t: f64,
}

impl TimeWeighted {
    /// A fresh accumulator starting at time `t0`.
    pub fn starting_at(t0: f64) -> Self {
        TimeWeighted {
            area: 0.0,
            last_t: t0,
            started: true,
            start_t: t0,
        }
    }

    /// Accumulates `value` over the interval since the previous call.
    pub fn advance(&mut self, now: f64, value: f64) {
        if !self.started {
            *self = TimeWeighted::starting_at(now);
            return;
        }
        debug_assert!(now + 1e-9 >= self.last_t, "time must not go backwards");
        self.area += (now - self.last_t).max(0.0) * value;
        self.last_t = now;
    }

    /// The time-weighted mean over the observed span (0 before any span).
    pub fn mean(&self) -> f64 {
        let span = self.last_t - self.start_t;
        if span <= 0.0 {
            0.0
        } else {
            self.area / span
        }
    }

    /// Total observed time span.
    pub fn span(&self) -> f64 {
        if self.started {
            self.last_t - self.start_t
        } else {
            0.0
        }
    }
}

/// Batch-means accumulator: consecutive observations are grouped into
/// fixed-size batches and the confidence interval is computed over the
/// batch means. Within a simulation run successive response times are
/// positively autocorrelated (they share queue backlogs), so a raw
/// per-sample CI badly understates the variance; batching is the
/// standard remedy (and why the paper reruns with independent seeds).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batches: Welford,
}

impl BatchMeans {
    /// A fresh accumulator with the given batch size (≥ 1).
    pub fn new(batch_size: u64) -> Self {
        BatchMeans {
            batch_size: batch_size.max(1),
            current: Welford::new(),
            batches: Welford::new(),
        }
    }

    /// Adds an observation; completes a batch every `batch_size` adds.
    pub fn add(&mut self, x: f64) {
        self.current.add(x);
        if self.current.count() >= self.batch_size {
            self.batches.add(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Number of completed batches.
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Mean over completed batches (equal-sized, so also the sample mean
    /// over the observations they cover).
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// 95% CI half-width over batch means (0 until two batches complete).
    pub fn ci95_half_width(&self) -> f64 {
        self.batches.ci95_half_width()
    }
}

/// A point estimate with spread, as reported across seeds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Mean across observations.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
    /// Number of observations.
    pub n: u64,
}

impl Summary {
    /// Builds a summary from a Welford accumulator.
    pub fn from_welford(w: &Welford) -> Self {
        Summary {
            mean: w.mean(),
            ci95: w.ci95_half_width(),
            n: w.count(),
        }
    }

    /// Builds a summary from raw values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut w = Welford::new();
        for &v in values {
            w.add(v);
        }
        Summary::from_welford(&w)
    }

    /// JSON object `{mean, ci95, n}` (non-finite values become `null`).
    pub fn to_json(&self) -> cbtree_obs::Json {
        use cbtree_obs::Json;
        Json::obj(vec![
            ("mean", Json::f64_or_null(self.mean)),
            ("ci95", Json::f64_or_null(self.ci95)),
            ("n", self.n.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // population variance is 4, sample variance = 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.add(1.0);
        a.add(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::starting_at(0.0);
        tw.advance(1.0, 1.0); // value 1 over [0,1)
        tw.advance(3.0, 0.0); // value 0 over [1,3)
        tw.advance(4.0, 1.0); // value 1 over [3,4)
        assert!((tw.mean() - 0.5).abs() < 1e-12);
        assert_eq!(tw.span(), 4.0);
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        let tw = TimeWeighted::starting_at(5.0);
        assert_eq!(tw.mean(), 0.0);
        assert_eq!(tw.span(), 0.0);
    }

    #[test]
    fn batch_means_basic() {
        let mut b = BatchMeans::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            b.add(x);
        }
        // Two completed batches: means 2 and 5; the trailing 7 is pending.
        assert_eq!(b.batch_count(), 2);
        assert!((b.mean() - 3.5).abs() < 1e-12);
        assert!(b.ci95_half_width() > 0.0);
    }

    #[test]
    fn batch_means_single_batch_has_no_ci() {
        let mut b = BatchMeans::new(10);
        for _ in 0..10 {
            b.add(1.0);
        }
        assert_eq!(b.batch_count(), 1);
        assert_eq!(b.ci95_half_width(), 0.0);
    }

    #[test]
    fn batch_means_tighter_than_raw_for_correlated_data() {
        // A slowly wandering series: raw per-sample CI treats the drift
        // as independent noise and understates it; batch means see it.
        let mut raw = Welford::new();
        let mut batched = BatchMeans::new(50);
        let mut level = 0.0;
        let mut state = 1u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            level = 0.99 * level + noise;
            let x = 10.0 + level;
            raw.add(x);
            batched.add(x);
        }
        assert!(
            batched.ci95_half_width() > raw.ci95_half_width(),
            "batch CI {} must exceed the optimistic raw CI {}",
            batched.ci95_half_width(),
            raw.ci95_half_width()
        );
    }

    #[test]
    fn summary_from_values() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
        assert!(s.ci95 > 0.0);
    }
}
