//! The simulated B+-tree: real keys, real occupancies, right links and
//! high keys (for the Link-type algorithm), merge-at-empty semantics.
//!
//! Nodes live in a slab indexed by [`NodeId`]; operations navigate by key
//! and perform structural mutations *instantaneously* at the simulated
//! moment their protocol holds the required locks (the time cost of the
//! mutation is modeled by the service delays the driver schedules).
//!
//! Merge-at-empty with lazy reclamation: a node that loses its last key
//! stays in place (empty but linked) rather than being unlinked. With the
//! paper's insert-dominated mixes, empties are rare and never propagate —
//! the same regime in which the paper's analysis drops merge terms — and
//! lazy reclamation keeps concurrent right-link traversals safe without
//! modeling left-neighbor locking the algorithms don't perform.

use crate::locks::NodeId;

/// One B+-tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Height of this node: 1 = leaf (paper convention).
    pub level: usize,
    /// Sorted separators (internal) or keys (leaf).
    pub keys: Vec<u64>,
    /// Children (empty for leaves). `kids.len() == keys.len() + 1` for
    /// internal nodes.
    pub kids: Vec<NodeId>,
    /// Right sibling on the same level, `None` for the rightmost node.
    pub right: Option<NodeId>,
    /// Upper bound (exclusive) of this node's key range; `None` = +∞.
    /// This is Lehman–Yao's high key, maintained on every split.
    pub high: Option<u64>,
}

impl Node {
    fn new_leaf() -> Self {
        Node {
            level: 1,
            keys: Vec::new(),
            kids: Vec::new(),
            right: None,
            high: None,
        }
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.level == 1
    }

    /// Whether `key` falls inside this node's key range (Lehman–Yao's
    /// range test; a `false` during a descent means a concurrent split
    /// moved the key right).
    pub fn covers(&self, key: u64) -> bool {
        self.high.is_none_or(|h| key < h)
    }
}

/// The simulated B+-tree.
#[derive(Debug, Clone)]
pub struct SimTree {
    nodes: Vec<Node>,
    root: NodeId,
    height: usize,
    /// Maximum number of keys per node (`N`).
    pub capacity: usize,
    /// Number of splits performed (all levels).
    pub splits: u64,
    /// Number of keys currently stored in leaves.
    pub item_count: u64,
}

impl SimTree {
    /// An empty tree with the given node capacity.
    ///
    /// # Panics
    /// Panics when `capacity < 3` (splits need room for two non-empty
    /// halves plus a separator).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 3, "node capacity must be at least 3");
        SimTree {
            nodes: vec![Node::new_leaf()],
            root: 0,
            height: 1,
            capacity,
            splits: 0,
            item_count: 0,
        }
    }

    /// Builds a tree by applying a construction sequence sequentially.
    pub fn build(capacity: usize, ops: &[cbtree_workload::Operation]) -> Self {
        let mut t = SimTree::new(capacity);
        for op in ops {
            match *op {
                cbtree_workload::Operation::Insert(k) => {
                    t.insert_sequential(k);
                }
                cbtree_workload::Operation::Delete(k) => {
                    t.delete_sequential(k);
                }
                cbtree_workload::Operation::Search(_) => {}
            }
        }
        t
    }

    /// Current root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Tree height (levels; 1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Level of a node (1 = leaf).
    pub fn level(&self, id: NodeId) -> usize {
        self.nodes[id].level
    }

    /// Number of allocated nodes (including lazily retained empties).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The child an internal node routes `key` to.
    ///
    /// # Panics
    /// Panics on leaves.
    pub fn child_for(&self, id: NodeId, key: u64) -> NodeId {
        let n = &self.nodes[id];
        assert!(!n.is_leaf(), "child_for on leaf {id}");
        let idx = n.keys.partition_point(|&k| k <= key);
        n.kids[idx]
    }

    /// Whether a leaf contains `key`.
    pub fn leaf_contains(&self, id: NodeId, key: u64) -> bool {
        let n = &self.nodes[id];
        debug_assert!(n.is_leaf());
        n.keys.binary_search(&key).is_ok()
    }

    /// Inserts `key` into a leaf (no split). Returns `false` when the key
    /// was already present.
    pub fn leaf_insert(&mut self, id: NodeId, key: u64) -> bool {
        let n = &mut self.nodes[id];
        debug_assert!(n.is_leaf());
        match n.keys.binary_search(&key) {
            Ok(_) => false,
            Err(pos) => {
                n.keys.insert(pos, key);
                self.item_count += 1;
                true
            }
        }
    }

    /// Removes `key` from a leaf. Returns `false` when absent.
    pub fn leaf_remove(&mut self, id: NodeId, key: u64) -> bool {
        let n = &mut self.nodes[id];
        debug_assert!(n.is_leaf());
        match n.keys.binary_search(&key) {
            Ok(pos) => {
                n.keys.remove(pos);
                self.item_count -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the node is over capacity and must split.
    pub fn overfull(&self, id: NodeId) -> bool {
        self.nodes[id].keys.len() > self.capacity
    }

    /// Whether an insert into this node could force a split (the node is
    /// full) — the lock-coupling "insert-unsafe" test.
    pub fn insert_unsafe(&self, id: NodeId) -> bool {
        self.nodes[id].keys.len() >= self.capacity
    }

    /// Whether a delete could empty this node — the "delete-unsafe" test.
    pub fn delete_unsafe(&self, id: NodeId) -> bool {
        self.nodes[id].keys.len() <= 1
    }

    /// Half-splits node `id`: moves the upper half of its keys (and kids)
    /// into a fresh right sibling, linking it in and maintaining high
    /// keys. Returns `(new_sibling, separator)`; the separator must be
    /// inserted into the parent (or a new root made if `id` was the
    /// root — see [`SimTree::split_root_if_needed`]).
    pub fn half_split(&mut self, id: NodeId) -> (NodeId, u64) {
        self.splits += 1;
        let new_id = self.nodes.len();
        let node = &mut self.nodes[id];
        let len = node.keys.len();
        debug_assert!(len >= 2, "splitting a node with {len} keys");
        let mid = len / 2;
        let (sep, right_keys, right_kids) = if node.is_leaf() {
            // B+-tree leaf split: separator is copied up, stays in right.
            let right_keys = node.keys.split_off(mid);
            (right_keys[0], right_keys, Vec::new())
        } else {
            // Internal split: separator moves up.
            let right_keys = node.keys.split_off(mid + 1);
            let sep = node.keys.pop().expect("mid >= 1");
            let right_kids = node.kids.split_off(mid + 1);
            (sep, right_keys, right_kids)
        };
        let new_node = Node {
            level: node.level,
            keys: right_keys,
            kids: right_kids,
            right: node.right,
            high: node.high,
        };
        node.right = Some(new_id);
        node.high = Some(sep);
        self.nodes.push(new_node);
        (new_id, sep)
    }

    /// Inserts a separator/child pair into an internal node (no split).
    pub fn insert_separator(&mut self, parent: NodeId, sep: u64, child: NodeId) {
        let n = &mut self.nodes[parent];
        debug_assert!(!n.is_leaf());
        let pos = n.keys.partition_point(|&k| k < sep);
        n.keys.insert(pos, sep);
        n.kids.insert(pos + 1, child);
    }

    /// If `old_root` (which the caller just split into `new_sibling` with
    /// `separator`) is still the root, grows the tree with a fresh root.
    /// Returns the new root id when growth happened.
    pub fn split_root_if_needed(
        &mut self,
        old_root: NodeId,
        separator: u64,
        new_sibling: NodeId,
    ) -> Option<NodeId> {
        if old_root != self.root {
            return None;
        }
        let level = self.nodes[old_root].level + 1;
        let new_root = self.nodes.len();
        self.nodes.push(Node {
            level,
            keys: vec![separator],
            kids: vec![old_root, new_sibling],
            right: None,
            high: None,
        });
        self.root = new_root;
        self.height = level;
        Some(new_root)
    }

    /// Sequential (single-threaded) insert used by the construction phase.
    pub fn insert_sequential(&mut self, key: u64) -> bool {
        // Descend, recording the path.
        let mut path = Vec::with_capacity(self.height);
        let mut cur = self.root;
        while !self.nodes[cur].is_leaf() {
            path.push(cur);
            cur = self.child_for(cur, key);
        }
        if !self.leaf_insert(cur, key) {
            return false;
        }
        // Split upward while over capacity.
        let mut node = cur;
        while self.overfull(node) {
            let (sib, sep) = self.half_split(node);
            match path.pop() {
                Some(parent) => {
                    self.insert_separator(parent, sep, sib);
                    node = parent;
                }
                None => {
                    self.split_root_if_needed(node, sep, sib);
                    break;
                }
            }
        }
        true
    }

    /// Sequential delete (merge-at-empty with lazy reclamation: empties
    /// persist).
    pub fn delete_sequential(&mut self, key: u64) -> bool {
        let mut cur = self.root;
        while !self.nodes[cur].is_leaf() {
            cur = self.child_for(cur, key);
        }
        self.leaf_remove(cur, key)
    }

    /// Sequential point lookup.
    pub fn contains(&self, key: u64) -> bool {
        let mut cur = self.root;
        while !self.nodes[cur].is_leaf() {
            cur = self.child_for(cur, key);
        }
        self.leaf_contains(cur, key)
    }

    /// Number of nodes on each level, leaves first (index 0 = level 1).
    pub fn level_node_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.height];
        for n in &self.nodes {
            if n.level <= self.height {
                counts[n.level - 1] += 1;
            }
        }
        counts
    }

    /// Average fill of leaf nodes (keys / capacity), ignoring empties'
    /// denominator contribution is *not* done — empties count, matching
    /// how space utilization is defined.
    pub fn leaf_utilization(&self) -> f64 {
        let mut used = 0usize;
        let mut slots = 0usize;
        for n in &self.nodes {
            if n.is_leaf() {
                used += n.keys.len();
                slots += self.capacity;
            }
        }
        if slots == 0 {
            0.0
        } else {
            used as f64 / slots as f64
        }
    }

    /// Walks every level's right-link chain and checks structural
    /// invariants (sortedness, key-range containment, link/high-key
    /// consistency). Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (id, n) in self.nodes.iter().enumerate() {
            if !n.keys.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("node {id}: keys not strictly sorted"));
            }
            if let Some(h) = n.high {
                if n.keys.iter().any(|&k| k >= h) {
                    return Err(format!("node {id}: key above high key"));
                }
            }
            if !n.is_leaf() {
                if n.kids.len() != n.keys.len() + 1 {
                    return Err(format!(
                        "node {id}: {} kids for {} keys",
                        n.kids.len(),
                        n.keys.len()
                    ));
                }
                for &kid in &n.kids {
                    if self.nodes[kid].level + 1 != n.level {
                        return Err(format!("node {id}: child {kid} at wrong level"));
                    }
                }
            }
            if let Some(r) = n.right {
                if self.nodes[r].level != n.level {
                    return Err(format!("node {id}: right link crosses levels"));
                }
                match (n.high, self.nodes[r].keys.first()) {
                    (Some(h), Some(&first)) if first < h => {
                        return Err(format!("node {id}: right sibling starts below high key"));
                    }
                    (None, _) => {
                        return Err(format!("node {id}: right link but infinite high key"));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtree_workload::{OpStream, OpsConfig};

    #[test]
    fn inserts_and_lookups() {
        let mut t = SimTree::new(4);
        for k in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            assert!(t.insert_sequential(k));
        }
        for k in 0..10u64 {
            assert!(t.contains(k), "missing {k}");
        }
        assert!(!t.contains(100));
        assert_eq!(t.item_count, 10);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = SimTree::new(4);
        assert!(t.insert_sequential(1));
        assert!(!t.insert_sequential(1));
        assert_eq!(t.item_count, 1);
    }

    #[test]
    fn delete_then_lookup() {
        let mut t = SimTree::new(4);
        for k in 0..50u64 {
            t.insert_sequential(k);
        }
        assert!(t.delete_sequential(25));
        assert!(!t.contains(25));
        assert!(!t.delete_sequential(25));
        assert_eq!(t.item_count, 49);
        t.check_invariants().unwrap();
    }

    #[test]
    fn grows_in_height() {
        let mut t = SimTree::new(4);
        assert_eq!(t.height(), 1);
        for k in 0..1000u64 {
            t.insert_sequential(k);
        }
        assert!(t.height() >= 4, "height {}", t.height());
        t.check_invariants().unwrap();
        for k in 0..1000u64 {
            assert!(t.contains(k));
        }
    }

    #[test]
    fn paper_scale_build_matches_reported_shape() {
        // N = 13, ~40 000 items (paper §5.3): 5 levels, root ~6 children.
        let mut stream = OpStream::new(OpsConfig::paper(10_000_000), 1);
        let seq = stream.construction_sequence(40_000);
        let t = SimTree::build(13, &seq);
        assert_eq!(t.height(), 5, "paper: the B-tree had 5 levels");
        let rf = t.node(t.root()).kids.len();
        assert!((3..=13).contains(&rf), "root children {rf}");
        t.check_invariants().unwrap();
        let util = t.leaf_utilization();
        assert!(
            (0.55..0.8).contains(&util),
            "leaf utilization should sit near ln 2: {util}"
        );
    }

    #[test]
    fn high_keys_and_right_links_cover_the_level() {
        let mut t = SimTree::new(4);
        for k in 0..500u64 {
            t.insert_sequential(k * 2);
        }
        // Walk the leaf chain from the leftmost leaf: it must visit every
        // key in order.
        let mut cur = t.root();
        while !t.node(cur).is_leaf() {
            cur = t.node(cur).kids[0];
        }
        let mut seen = Vec::new();
        let mut leaf = Some(cur);
        while let Some(id) = leaf {
            seen.extend_from_slice(&t.node(id).keys);
            leaf = t.node(id).right;
        }
        assert_eq!(seen, (0..500u64).map(|k| k * 2).collect::<Vec<_>>());
    }

    #[test]
    fn covers_respects_high_key() {
        let mut t = SimTree::new(4);
        for k in 0..100u64 {
            t.insert_sequential(k);
        }
        let mut cur = t.root();
        while !t.node(cur).is_leaf() {
            cur = t.node(cur).kids[0];
        }
        let n = t.node(cur);
        let h = n.high.expect("leftmost leaf must have split");
        assert!(n.covers(h - 1) || n.keys.is_empty());
        assert!(!n.covers(h));
    }

    #[test]
    fn empty_nodes_persist_after_deletes() {
        let mut t = SimTree::new(3);
        for k in 0..30u64 {
            t.insert_sequential(k);
        }
        let nodes_before = t.node_count();
        for k in 0..30u64 {
            t.delete_sequential(k);
        }
        assert_eq!(t.item_count, 0);
        assert_eq!(
            t.node_count(),
            nodes_before,
            "merge-at-empty: lazy reclamation"
        );
        // The tree still accepts inserts and finds them.
        for k in 0..30u64 {
            assert!(t.insert_sequential(k));
        }
        for k in 0..30u64 {
            assert!(t.contains(k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn split_statistics_track() {
        let mut t = SimTree::new(4);
        for k in 0..100u64 {
            t.insert_sequential(k);
        }
        assert!(t.splits > 10, "splits {}", t.splits);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_rejected() {
        let _ = SimTree::new(2);
    }
}
