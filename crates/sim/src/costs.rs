//! Exponential service-time sampling per node level, mirroring the
//! analysis's cost model (§5.3): in-memory levels cost `base`, on-disk
//! levels cost `base·D`; modify = 2× search, split/merge = 3× search.
//!
//! Levels are counted from the leaves (level 1) and the *top*
//! `memory_levels` levels of the current tree are in memory. If the
//! simulated tree grows during the run, the new root is in memory and the
//! memory boundary shifts with it, exactly as a buffer pool pinning the
//! top of the tree would behave.

use cbtree_workload::{Exponential, Rng};

/// Service-time model for the simulator.
#[derive(Debug, Clone)]
pub struct SimCosts {
    /// In-memory search time for one node.
    pub base: f64,
    /// Disk-access cost multiplier `D`.
    pub disk_cost: f64,
    /// Number of tree levels (from the root down) held in memory.
    pub memory_levels: usize,
}

impl SimCosts {
    /// The paper's base model: unit search, `D = 5`, two in-memory levels.
    pub fn paper() -> Self {
        SimCosts {
            base: 1.0,
            disk_cost: 5.0,
            memory_levels: 2,
        }
    }

    /// Mean search time of a node at `level` in a tree of height `height`.
    pub fn se(&self, level: usize, height: usize) -> f64 {
        if level + self.memory_levels > height {
            self.base
        } else {
            self.base * self.disk_cost
        }
    }

    /// Mean leaf-modify time (`M = 2·Se(1)`).
    pub fn m(&self, height: usize) -> f64 {
        2.0 * self.se(1, height)
    }

    /// Mean time to modify an internal node at `level`.
    pub fn modify(&self, level: usize, height: usize) -> f64 {
        2.0 * self.se(level, height)
    }

    /// Mean split time at `level` (`Sp = 3·Se`).
    pub fn sp(&self, level: usize, height: usize) -> f64 {
        3.0 * self.se(level, height)
    }

    /// Samples an exponential service time with the given mean.
    pub fn sample(&self, mean: f64, rng: &mut Rng) -> f64 {
        Exponential::with_mean(mean).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs() {
        let c = SimCosts::paper();
        // height 5, top two levels (5, 4) in memory
        assert_eq!(c.se(5, 5), 1.0);
        assert_eq!(c.se(4, 5), 1.0);
        assert_eq!(c.se(3, 5), 5.0);
        assert_eq!(c.se(1, 5), 5.0);
        assert_eq!(c.m(5), 10.0);
        assert_eq!(c.sp(1, 5), 15.0);
        assert_eq!(c.modify(4, 5), 2.0);
    }

    #[test]
    fn growth_shifts_memory_boundary() {
        let c = SimCosts::paper();
        // At height 5, level 4 is in memory; if the tree grows to 6
        // levels, level 4 drops to disk.
        assert_eq!(c.se(4, 5), 1.0);
        assert_eq!(c.se(4, 6), 5.0);
        assert_eq!(c.se(6, 6), 1.0);
    }

    #[test]
    fn all_in_memory_when_levels_cover_height() {
        let c = SimCosts {
            base: 1.0,
            disk_cost: 10.0,
            memory_levels: 8,
        };
        for level in 1..=5 {
            assert_eq!(c.se(level, 5), 1.0);
        }
    }

    #[test]
    fn sampling_matches_mean() {
        let c = SimCosts::paper();
        let mut rng = Rng::new(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| c.sample(5.0, &mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }
}
