//! The simulation core: operation state machines for the three concurrent
//! B-tree algorithms, driven by a future-event list over the per-node FCFS
//! R/W lock table and the simulated B+-tree.
//!
//! Every operation is a little state machine. Lock *requests* either grant
//! immediately or park the operation in the node's FCFS queue; lock
//! *releases* surface queued grants, which the driver dispatches back into
//! the state machines. Node work (searching, modifying, splitting) is an
//! exponentially distributed service delay scheduled on the event list;
//! structural mutations apply at the instant the corresponding service
//! completes, while the responsible locks are held.
//!
//! Protocol-fidelity notes (each mirrors the published algorithms):
//!
//! * **Naive Lock-coupling** (Bayer–Schkolnick): R/W crabbing; an update
//!   releases *all* retained ancestors as soon as a newly granted child is
//!   safe for the operation. Restructuring walks the retained chain upward
//!   after the leaf modification.
//! * **Optimistic Descent**: first pass descends like a search and
//!   W-locks only the leaf; if the leaf is unsafe it pays an inspection,
//!   releases, and redescends exactly like a Naive Lock-coupling update
//!   (the *redo*; counted in the statistics).
//! * **Link-type** (Lehman–Yao): at most one lock held at a time; descents
//!   release a node *before* requesting the next; any node reached whose
//!   key range no longer covers the target chases right links (each hop
//!   pays a search service and increments the crossing counter); splits
//!   are half-splits followed by a separate W-locked parent update using
//!   the remembered descent stack.

use crate::costs::SimCosts;
use crate::events::EventQueue;
use crate::locks::{Grant, LockTable, Mode, NodeId, OpId};
use crate::stats::{BatchMeans, TimeWeighted, Welford};
use crate::tree::SimTree;
use cbtree_workload::Exponential;
use cbtree_workload::Rng;

/// Which algorithm the simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimAlgorithm {
    /// Naive Lock-coupling.
    NaiveLockCoupling,
    /// Optimistic Descent.
    OptimisticDescent,
    /// Link-type (Lehman–Yao).
    LinkType,
    /// Strict Two-Phase Locking: every lock (shared and exclusive) is
    /// retained until the operation completes — the baseline showing why
    /// dedicated B-tree algorithms exist.
    TwoPhaseLocking,
    /// Optimistic Lock Coupling: searches are latch-free — each node
    /// visit is a plain search service with **no lock request**, and on
    /// completion the version window is validated against
    /// `writer_present` (a writer holding or queued means the window
    /// failed: the visit restarts, counted in `redos`). Stale routing is
    /// repaired by chasing right links. Updates run exactly the Naive
    /// Lock-coupling machine.
    Olc,
}

/// Transactional lock retention (paper §7): which of an update's
/// exclusive locks are held until the enclosing transaction commits,
/// an exponentially distributed time after the operation completes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SimRecovery {
    /// No retention: locks release when the operation completes.
    #[default]
    None,
    /// Naive recovery: every W lock still held at completion is retained
    /// until commit.
    Naive {
        /// Mean remaining transaction time.
        t_trans: f64,
    },
    /// Leaf-only recovery: only leaf-level W locks are retained.
    LeafOnly {
        /// Mean remaining transaction time.
        t_trans: f64,
    },
}

/// Operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Key lookup.
    Search,
    /// Key insertion.
    Insert,
    /// Key deletion.
    Delete,
}

/// What an operation is currently doing (the service that is running or
/// about to run at `cur`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Searching node `cur` (service `Se(level)`).
    Search,
    /// Optimistic first pass inspecting an unsafe leaf before restarting
    /// (service `Se(1)`).
    Inspect,
    /// Modifying the leaf (service `M`).
    ModifyLeaf,
    /// Half-splitting `cur` (service `Sp(level)`).
    Split,
    /// Link-type ascent: modifying an internal node (service `modify`).
    AscendModify,
}

#[derive(Debug, Clone)]
struct OpState {
    kind: OpKind,
    key: u64,
    arrived: f64,
    phase: Phase,
    /// Node of current interest (being waited for, serviced, or split).
    cur: NodeId,
    /// Locks currently held, in acquisition (root→leaf) order.
    held: Vec<NodeId>,
    /// Link-type: internal nodes visited on the way down (ascent hints).
    path: Vec<NodeId>,
    /// Link-type ascent state: separator/sibling awaiting insertion.
    pending: Option<(u64, NodeId)>,
    /// Optimistic: true during the W-locked redo descent.
    redo: bool,
    /// Link crossings performed by this operation.
    crossings: u32,
    /// Completion sequence number (None while in flight).
    finished: Option<u64>,
}

/// Events on the future-event list.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A new operation enters the system.
    Arrival,
    /// The service `op` was running has completed.
    Done(OpId),
    /// The transaction enclosing `op` commits; retained locks release.
    Commit(OpId),
}

/// Aggregate statistics of one simulation run (measured window only).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Response times by kind.
    pub resp_search: Welford,
    /// Response times of inserts.
    pub resp_insert: Welford,
    /// Response times of deletes.
    pub resp_delete: Welford,
    /// Batch-means accumulators (autocorrelation-robust CIs within one
    /// run) for search/insert/delete response times.
    pub batches: Option<(BatchMeans, BatchMeans, BatchMeans)>,
    /// Lock waits for shared locks, indexed by level−1.
    pub wait_r: Vec<Welford>,
    /// Lock waits for exclusive locks, indexed by level−1.
    pub wait_w: Vec<Welford>,
    /// Total *writer-present* time per level, indexed by level−1: for
    /// each node, the union of intervals during which at least one
    /// writer held **or waited for** its lock (the `ρ_w` indicator of
    /// the analysis — `writer_present` semantics — generalized from the
    /// root to every level), summed over the level's nodes and clipped
    /// to the measured window. Divided by `nodes(level) · measured_time`
    /// this is the simulated per-level ρ_w.
    pub w_present_by_level: Vec<f64>,
    /// Time-weighted root writer-present indicator (the simulated ρ_w(h)).
    pub root_writer: TimeWeighted,
    /// Time-weighted number of in-flight operations.
    pub concurrency: TimeWeighted,
    /// Total link crossings.
    pub crossings: u64,
    /// Optimistic redo descents.
    pub redos: u64,
    /// Updates completed (for redo-rate normalization).
    pub updates_completed: u64,
    /// All operations completed in the measured window.
    pub completed: u64,
    /// Wall-clock span of the measured window.
    pub measured_start: f64,
    /// Peak number of in-flight operations.
    pub max_in_flight: usize,
}

impl RunStats {
    fn record_wait(&mut self, level: usize, mode: Mode, waited: f64) {
        let slot = match mode {
            Mode::Shared => &mut self.wait_r,
            Mode::Exclusive => &mut self.wait_w,
        };
        if slot.len() < level {
            slot.resize(level, Welford::new());
        }
        slot[level - 1].add(waited);
    }

    fn record_w_present(&mut self, level: usize, present: f64) {
        if self.w_present_by_level.len() < level {
            self.w_present_by_level.resize(level, 0.0);
        }
        self.w_present_by_level[level - 1] += present;
    }
}

/// The simulator: tree + locks + events + operation table.
pub struct Simulator {
    /// The simulated B+-tree.
    pub tree: SimTree,
    /// The per-node lock table.
    pub locks: LockTable,
    /// Service-cost model.
    pub costs: SimCosts,
    /// Which algorithm's protocol to run.
    pub algorithm: SimAlgorithm,
    events: EventQueue<Event>,
    ops: Vec<OpState>,
    now: f64,
    rng: Rng,
    in_flight: usize,
    completions: u64,
    warmup: u64,
    recovery: SimRecovery,
    /// Exclusive requests currently live (from request to release),
    /// used to tell exclusive releases apart from shared ones.
    w_live: std::collections::BTreeSet<(OpId, NodeId)>,
    /// Per-node writer-present state: `(writer count, presence start)`.
    /// The count covers holders *and* queued writers; presence starts
    /// when it becomes 1 and is charged to the level when it returns to
    /// 0. A `BTreeMap` keeps the end-of-run finalization order
    /// deterministic (float sums depend on addition order).
    w_present: std::collections::BTreeMap<NodeId, (u32, f64)>,
    /// Statistics (reset at the end of warmup).
    pub stats: RunStats,
}

impl Simulator {
    /// Creates a simulator over a prebuilt tree.
    pub fn new(
        tree: SimTree,
        costs: SimCosts,
        algorithm: SimAlgorithm,
        warmup: u64,
        seed: u64,
    ) -> Self {
        Simulator {
            tree,
            locks: LockTable::new(),
            costs,
            algorithm,
            events: EventQueue::new(),
            ops: Vec::new(),
            now: 0.0,
            rng: Rng::new(seed ^ 0xD1FF_EE75_0000_0001),
            in_flight: 0,
            completions: 0,
            warmup,
            recovery: SimRecovery::None,
            w_live: std::collections::BTreeSet::new(),
            w_present: std::collections::BTreeMap::new(),
            stats: RunStats::default(),
        }
    }

    /// Enables §7 transactional lock retention.
    pub fn set_recovery(&mut self, recovery: SimRecovery) {
        self.recovery = recovery;
    }

    /// Enables batch-means response-time accumulation with the given
    /// batch size (also survives the warmup reset).
    pub fn set_batch_size(&mut self, batch_size: u64) {
        self.stats.batches = Some((
            BatchMeans::new(batch_size),
            BatchMeans::new(batch_size),
            BatchMeans::new(batch_size),
        ));
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Completions so far (including warmup).
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Operations currently in the system.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Schedules the arrival-event at `time` (the runner drives arrivals).
    pub fn schedule_arrival(&mut self, time: f64) {
        self.events.schedule(time, Event::Arrival);
    }

    /// Runs until `target_completions` operations have finished or the
    /// event list drains. `spawn` is called at each arrival event to
    /// produce the next operation (kind, key) and the next arrival time.
    /// Returns `Err(max_seen)` via the runner when `max_concurrent` is
    /// exceeded — here surfaced as a bool.
    pub fn run_until(
        &mut self,
        target_completions: u64,
        max_concurrent: usize,
        mut spawn: impl FnMut() -> (OpKind, u64, f64),
    ) -> std::result::Result<(), (f64, u64)> {
        while self.completions < target_completions {
            let Some((t, ev)) = self.events.pop() else {
                break;
            };
            // Advance time-weighted signals over [now, t) *before*
            // applying the event (lock/occupancy state is constant on the
            // interval).
            let writer = if self.locks.writer_present(self.tree.root()) {
                1.0
            } else {
                0.0
            };
            self.stats.root_writer.advance(t, writer);
            self.stats.concurrency.advance(t, self.in_flight as f64);
            self.now = t;

            match ev {
                Event::Arrival => {
                    let (kind, key, next_at) = spawn();
                    self.events.schedule(next_at, Event::Arrival);
                    self.admit(kind, key);
                    if self.in_flight > max_concurrent {
                        return Err((self.now, self.completions));
                    }
                }
                Event::Done(op) => self.service_done(op),
                Event::Commit(op) => self.release_all(op),
            }
        }
        Ok(())
    }

    fn admit(&mut self, kind: OpKind, key: u64) {
        let id = self.ops.len();
        self.ops.push(OpState {
            kind,
            key,
            arrived: self.now,
            phase: Phase::Search,
            cur: self.tree.root(),
            held: Vec::new(),
            path: Vec::new(),
            pending: None,
            redo: false,
            crossings: 0,
            finished: None,
        });
        self.in_flight += 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.in_flight);
        self.start_descent(id);
    }

    /// (Re)starts an operation's descent from the current root.
    fn start_descent(&mut self, op: OpId) {
        let root = self.tree.root();
        self.ops[op].cur = root;
        self.ops[op].path.clear();
        if self.algorithm == SimAlgorithm::Olc && self.ops[op].kind == OpKind::Search {
            // Latch-free read: no lock request at any level.
            self.olc_visit(op, root);
            return;
        }
        let mode = self.descent_mode(op, root);
        self.acquire(op, root, mode);
    }

    /// Lock mode an operation uses on `node` during its descent.
    fn descent_mode(&self, op: OpId, node: NodeId) -> Mode {
        let o = &self.ops[op];
        let is_update = o.kind != OpKind::Search;
        match self.algorithm {
            SimAlgorithm::NaiveLockCoupling | SimAlgorithm::TwoPhaseLocking => {
                if is_update {
                    Mode::Exclusive
                } else {
                    Mode::Shared
                }
            }
            SimAlgorithm::OptimisticDescent => {
                let exclusive = is_update && (o.redo || self.tree.node(node).is_leaf());
                if exclusive {
                    Mode::Exclusive
                } else {
                    Mode::Shared
                }
            }
            SimAlgorithm::LinkType => {
                if is_update && self.tree.node(node).is_leaf() {
                    Mode::Exclusive
                } else {
                    Mode::Shared
                }
            }
            SimAlgorithm::Olc => {
                debug_assert!(is_update, "OLC searches never request locks");
                Mode::Exclusive
            }
        }
    }

    /// Requests a lock; dispatches the grant immediately when uncontended.
    fn acquire(&mut self, op: OpId, node: NodeId, mode: Mode) {
        if mode == Mode::Exclusive && self.w_live.insert((op, node)) {
            // A writer is now present at `node` (queued or holding —
            // both count toward ρ_w) from this instant until its count
            // returns to zero.
            let entry = self.w_present.entry(node).or_insert((0, self.now));
            if entry.0 == 0 {
                entry.1 = self.now;
            }
            entry.0 += 1;
        }
        if self.locks.request(node, op, mode, self.now) {
            let level = self.tree.level(node);
            self.stats.record_wait(level, mode, 0.0);
            self.granted(op, node);
        }
        // else: parked; a future release will surface the grant.
    }

    /// Releases one node and dispatches any surfaced grants.
    fn release(&mut self, op: OpId, node: NodeId) {
        if self.w_live.remove(&(op, node)) {
            let entry = self
                .w_present
                .get_mut(&node)
                .expect("live exclusive request without presence state");
            entry.0 -= 1;
            if entry.0 == 0 {
                let present = self.now - entry.1.max(self.stats.measured_start);
                self.w_present.remove(&node);
                if present > 0.0 {
                    self.stats.record_w_present(self.tree.level(node), present);
                }
            }
        }
        let grants = self.locks.release(node, op, self.now);
        self.dispatch_grants(grants);
    }

    /// Releases every lock `op` holds (used at completion and restarts).
    fn release_all(&mut self, op: OpId) {
        let held = std::mem::take(&mut self.ops[op].held);
        for node in held {
            self.release(op, node);
        }
    }

    fn dispatch_grants(&mut self, grants: Vec<Grant>) {
        for g in grants {
            let level = self.tree.level(g.node);
            self.stats.record_wait(level, g.mode, g.waited);
            // A granted writer was already counted present at request
            // time; nothing changes here.
            self.granted(g.op, g.node);
        }
    }

    /// Closes out writer-presence intervals still open at the end of the
    /// run, charging each with its time up to `now` (clipped to the
    /// measured window). Call once, after the event loop, before reading
    /// [`RunStats::w_present_by_level`].
    pub fn finalize_w_present(&mut self) {
        let open = std::mem::take(&mut self.w_present);
        self.w_live.clear();
        for (node, (_, since)) in open {
            let present = self.now - since.max(self.stats.measured_start);
            if present > 0.0 {
                self.stats.record_w_present(self.tree.level(node), present);
            }
        }
    }

    /// Schedules the completion of a service with the given mean.
    fn schedule_service(&mut self, op: OpId, mean: f64) {
        let dt = self.costs.sample(mean, &mut self.rng);
        self.events.schedule(self.now + dt, Event::Done(op));
    }

    /// An operation finished; record stats and retire it. Under §7
    /// recovery, the update's retained exclusive locks stay held until
    /// the enclosing transaction commits (an exponential time later);
    /// the operation's own response time ends now regardless.
    fn complete(&mut self, op: OpId) {
        let is_update = self.ops[op].kind != OpKind::Search;
        let (retain_leaf, retain_upper, t_trans) = match self.recovery {
            SimRecovery::None => (false, false, 0.0),
            SimRecovery::Naive { t_trans } => (is_update, is_update, t_trans),
            SimRecovery::LeafOnly { t_trans } => (is_update, false, t_trans),
        };
        if retain_leaf || retain_upper {
            let held = std::mem::take(&mut self.ops[op].held);
            let mut retained = Vec::new();
            for node in held {
                let keep = if self.tree.level(node) == 1 {
                    retain_leaf
                } else {
                    retain_upper
                };
                if keep {
                    retained.push(node);
                } else {
                    self.release(op, node);
                }
            }
            if !retained.is_empty() {
                self.ops[op].held = retained;
                let dt = Exponential::with_mean(t_trans).sample(&mut self.rng);
                self.events.schedule(self.now + dt, Event::Commit(op));
            }
        } else {
            self.release_all(op);
        }
        debug_assert!(self.ops[op].finished.is_none());
        self.ops[op].finished = Some(self.completions);
        self.completions += 1;
        self.in_flight -= 1;
        let o = &self.ops[op];
        let rt = self.now - o.arrived;
        if self.completions == self.warmup {
            // Warmup boundary: restart the measured window (fresh batch
            // accumulators with the same batch size).
            let batches = self.stats.batches.as_ref().map(|(s, _, _)| {
                let size = s.batch_size();
                (
                    BatchMeans::new(size),
                    BatchMeans::new(size),
                    BatchMeans::new(size),
                )
            });
            self.stats = RunStats {
                max_in_flight: self.stats.max_in_flight,
                root_writer: TimeWeighted::starting_at(self.now),
                concurrency: TimeWeighted::starting_at(self.now),
                measured_start: self.now,
                batches,
                ..Default::default()
            };
            return;
        }
        if self.completions < self.warmup {
            return;
        }
        self.stats.completed += 1;
        self.stats.crossings += o.crossings as u64;
        match o.kind {
            OpKind::Search => {
                self.stats.resp_search.add(rt);
                if let Some((s, _, _)) = &mut self.stats.batches {
                    s.add(rt);
                }
            }
            OpKind::Insert => {
                self.stats.resp_insert.add(rt);
                if let Some((_, i, _)) = &mut self.stats.batches {
                    i.add(rt);
                }
                self.stats.updates_completed += 1;
            }
            OpKind::Delete => {
                self.stats.resp_delete.add(rt);
                if let Some((_, _, d)) = &mut self.stats.batches {
                    d.add(rt);
                }
                self.stats.updates_completed += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Grant dispatch
    // ------------------------------------------------------------------

    fn granted(&mut self, op: OpId, node: NodeId) {
        match self.algorithm {
            SimAlgorithm::NaiveLockCoupling | SimAlgorithm::TwoPhaseLocking => {
                self.naive_granted(op, node)
            }
            SimAlgorithm::OptimisticDescent => self.optimistic_granted(op, node),
            SimAlgorithm::LinkType => self.link_granted(op, node),
            // Only OLC updates ever request locks, and they run the
            // naive lock-coupling machine verbatim.
            SimAlgorithm::Olc => self.naive_granted(op, node),
        }
    }

    fn service_done(&mut self, op: OpId) {
        match self.algorithm {
            SimAlgorithm::NaiveLockCoupling | SimAlgorithm::TwoPhaseLocking => self.naive_done(op),
            SimAlgorithm::OptimisticDescent => self.optimistic_done(op),
            SimAlgorithm::LinkType => self.link_done(op),
            SimAlgorithm::Olc => {
                if self.ops[op].kind == OpKind::Search {
                    self.olc_search_done(op)
                } else {
                    self.naive_done(op)
                }
            }
        }
    }

    /// Whether the protocol retains every lock until the operation
    /// completes (strict 2PL).
    fn retains_everything(&self) -> bool {
        self.algorithm == SimAlgorithm::TwoPhaseLocking
    }

    // ------------------------------------------------------------------
    // Naive Lock-coupling (also the Optimistic redo pass)
    // ------------------------------------------------------------------

    /// Whether `node` is safe for `op` (lock-coupling release rule).
    fn safe_for(&self, op: OpId, node: NodeId) -> bool {
        match self.ops[op].kind {
            OpKind::Search => true,
            OpKind::Insert => !self.tree.insert_unsafe(node),
            OpKind::Delete => !self.tree.delete_unsafe(node),
        }
    }

    fn naive_granted(&mut self, op: OpId, node: NodeId) {
        let is_update = self.ops[op].kind != OpKind::Search;
        // Coupling release rule: searches drop the single retained parent;
        // updates drop the whole retained chain iff the child is safe.
        // Strict 2PL releases nothing until completion.
        if !self.ops[op].held.is_empty() && !self.retains_everything() {
            if !is_update {
                debug_assert_eq!(self.ops[op].held.len(), 1);
                let parent = self.ops[op].held[0];
                self.ops[op].held.clear();
                self.release(op, parent);
            } else if self.safe_for(op, node) {
                self.release_all(op);
            }
        }
        self.ops[op].held.push(node);
        self.ops[op].cur = node;
        debug_assert!(self.tree.node(node).is_leaf() || !self.tree.node(node).kids.is_empty());
        if self.tree.node(node).is_leaf() {
            if is_update {
                self.ops[op].phase = Phase::ModifyLeaf;
                let m = self.costs.m(self.tree.height());
                self.schedule_service(op, m);
            } else {
                self.ops[op].phase = Phase::Search;
                let se = self.costs.se(1, self.tree.height());
                self.schedule_service(op, se);
            }
        } else {
            self.ops[op].phase = Phase::Search;
            let se = self.costs.se(self.tree.level(node), self.tree.height());
            self.schedule_service(op, se);
        }
    }

    fn naive_done(&mut self, op: OpId) {
        match self.ops[op].phase {
            Phase::Search => {
                let cur = self.ops[op].cur;
                if self.tree.node(cur).is_leaf() {
                    // A completed leaf search.
                    self.complete(op);
                    return;
                }
                let child = self.tree.child_for(cur, self.ops[op].key);
                let mode = self.descent_mode(op, child);
                // Lock-coupling: request the child while holding `cur`.
                self.acquire(op, child, mode);
            }
            Phase::ModifyLeaf => {
                let leaf = self.ops[op].cur;
                debug_assert!(self.tree.node(leaf).covers(self.ops[op].key));
                match self.ops[op].kind {
                    OpKind::Insert => {
                        self.tree.leaf_insert(leaf, self.ops[op].key);
                        if self.tree.overfull(leaf) {
                            self.ops[op].phase = Phase::Split;
                            let sp = self.costs.sp(1, self.tree.height());
                            self.schedule_service(op, sp);
                            return;
                        }
                    }
                    OpKind::Delete => {
                        // Merge-at-empty with lazy reclamation: the key is
                        // removed; an emptied node persists.
                        self.tree.leaf_remove(leaf, self.ops[op].key);
                    }
                    OpKind::Search => unreachable!("searches never modify"),
                }
                self.complete(op);
            }
            Phase::Split => {
                let node = self.ops[op].cur;
                let (sib, sep) = self.tree.half_split(node);
                // The retained chain holds the parent just above `node`.
                let idx = self.ops[op]
                    .held
                    .iter()
                    .position(|&n| n == node)
                    .expect("splitting a held node");
                if idx == 0 {
                    // `node` headed the retained chain: it was the root
                    // (or the chain's top, which safe-release guarantees
                    // had room — only the true root can overflow here).
                    let grew = self.tree.split_root_if_needed(node, sep, sib);
                    debug_assert!(grew.is_some(), "chain top overflowed but was not root");
                    self.complete(op);
                    return;
                }
                let parent = self.ops[op].held[idx - 1];
                self.tree.insert_separator(parent, sep, sib);
                if self.tree.overfull(parent) {
                    self.ops[op].cur = parent;
                    let sp = self.costs.sp(self.tree.level(parent), self.tree.height());
                    self.schedule_service(op, sp);
                } else {
                    self.complete(op);
                }
            }
            phase => unreachable!("naive lock-coupling has no phase {phase:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Optimistic Descent
    // ------------------------------------------------------------------

    fn optimistic_granted(&mut self, op: OpId, node: NodeId) {
        if self.ops[op].redo {
            // The redo pass IS a naive lock-coupling update.
            self.naive_granted(op, node);
            return;
        }
        let is_update = self.ops[op].kind != OpKind::Search;
        // First pass couples like a search: release the one retained
        // parent after the child grant.
        if !self.ops[op].held.is_empty() {
            debug_assert_eq!(self.ops[op].held.len(), 1);
            let parent = self.ops[op].held[0];
            self.ops[op].held.clear();
            self.release(op, parent);
        }
        self.ops[op].held.push(node);
        self.ops[op].cur = node;
        if self.tree.node(node).is_leaf() && is_update {
            debug_assert!(self.tree.node(node).covers(self.ops[op].key));
            if self.safe_for(op, node) {
                self.ops[op].phase = Phase::ModifyLeaf;
                let m = self.costs.m(self.tree.height());
                self.schedule_service(op, m);
            } else {
                // Unsafe: inspect, then restart with W locks.
                self.ops[op].phase = Phase::Inspect;
                let se = self.costs.se(1, self.tree.height());
                self.schedule_service(op, se);
            }
        } else {
            self.ops[op].phase = Phase::Search;
            let se = self.costs.se(self.tree.level(node), self.tree.height());
            self.schedule_service(op, se);
        }
    }

    fn optimistic_done(&mut self, op: OpId) {
        if self.ops[op].redo {
            self.naive_done(op);
            return;
        }
        match self.ops[op].phase {
            Phase::Search => {
                let cur = self.ops[op].cur;
                if self.tree.node(cur).is_leaf() {
                    // First-pass search (or an update that found a leaf
                    // root) completes here; updates on leaves never take
                    // this path (they go via ModifyLeaf/Inspect).
                    self.complete(op);
                    return;
                }
                let child = self.tree.child_for(cur, self.ops[op].key);
                let mode = self.descent_mode(op, child);
                self.acquire(op, child, mode);
            }
            Phase::ModifyLeaf => {
                let leaf = self.ops[op].cur;
                match self.ops[op].kind {
                    OpKind::Insert => {
                        self.tree.leaf_insert(leaf, self.ops[op].key);
                        debug_assert!(
                            !self.tree.overfull(leaf),
                            "first pass modifies only safe leaves"
                        );
                    }
                    OpKind::Delete => {
                        self.tree.leaf_remove(leaf, self.ops[op].key);
                    }
                    OpKind::Search => unreachable!(),
                }
                self.complete(op);
            }
            Phase::Inspect => {
                // Leaf was unsafe: release everything and redo with W
                // locks (counted even during warmup-free stats via redos).
                self.stats.redos += 1;
                self.release_all(op);
                self.ops[op].redo = true;
                self.start_descent(op);
            }
            phase => unreachable!("optimistic first pass has no phase {phase:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Link-type (Lehman–Yao)
    // ------------------------------------------------------------------

    fn link_granted(&mut self, op: OpId, node: NodeId) {
        // At most one lock at a time: previous node was already released
        // before this request was issued.
        debug_assert!(self.ops[op].held.is_empty());
        self.ops[op].held.push(node);
        self.ops[op].cur = node;
        let o = &self.ops[op];
        let n = self.tree.node(node);
        let chase_key = match o.pending {
            Some((sep, _)) => sep, // ascending: route by the separator
            None => o.key,
        };
        if !n.covers(chase_key) {
            // Reached a node whose range moved left of our key: pay a
            // search to discover that, then chase the right link.
            self.ops[op].phase = Phase::Search;
            let se = self.costs.se(n.level, self.tree.height());
            self.schedule_service(op, se);
            return;
        }
        if o.pending.is_some() {
            // Ascent: this node will receive the separator.
            self.ops[op].phase = Phase::AscendModify;
            let m = self.costs.modify(n.level, self.tree.height());
            self.schedule_service(op, m);
        } else if n.is_leaf() && o.kind != OpKind::Search {
            self.ops[op].phase = Phase::ModifyLeaf;
            let m = self.costs.m(self.tree.height());
            self.schedule_service(op, m);
        } else {
            self.ops[op].phase = Phase::Search;
            let se = self.costs.se(n.level, self.tree.height());
            self.schedule_service(op, se);
        }
    }

    fn link_done(&mut self, op: OpId) {
        match self.ops[op].phase {
            Phase::Search => {
                let cur = self.ops[op].cur;
                let o = &self.ops[op];
                let chase_key = o.pending.map_or(o.key, |(sep, _)| sep);
                let n = self.tree.node(cur);
                if !n.covers(chase_key) {
                    // Chase right (the hop's search was just paid).
                    let next = n.right.expect("finite high key implies a right link");
                    let mode = if self.ops[op].pending.is_some()
                        || (n.is_leaf() && self.ops[op].kind != OpKind::Search)
                    {
                        Mode::Exclusive
                    } else {
                        Mode::Shared
                    };
                    self.ops[op].crossings += 1;
                    self.ops[op].held.clear();
                    self.release(op, cur);
                    self.acquire(op, next, mode);
                    return;
                }
                if n.is_leaf() {
                    // Searches complete at the leaf. (Update leaves are
                    // handled in ModifyLeaf; a leaf root for an update is
                    // W-locked at descent start so never lands here.)
                    debug_assert_eq!(self.ops[op].kind, OpKind::Search);
                    self.complete(op);
                    return;
                }
                let child = self.tree.child_for(cur, self.ops[op].key);
                let next_is_leaf = self.tree.node(child).is_leaf();
                let mode = if next_is_leaf && self.ops[op].kind != OpKind::Search {
                    Mode::Exclusive
                } else {
                    Mode::Shared
                };
                self.ops[op].path.push(cur);
                // Lehman–Yao: release before acquiring — no coupling.
                self.ops[op].held.clear();
                self.release(op, cur);
                self.acquire(op, child, mode);
            }
            Phase::ModifyLeaf => {
                let leaf = self.ops[op].cur;
                match self.ops[op].kind {
                    OpKind::Insert => {
                        self.tree.leaf_insert(leaf, self.ops[op].key);
                        if self.tree.overfull(leaf) {
                            self.ops[op].phase = Phase::Split;
                            let sp = self.costs.sp(1, self.tree.height());
                            self.schedule_service(op, sp);
                            return;
                        }
                    }
                    OpKind::Delete => {
                        self.tree.leaf_remove(leaf, self.ops[op].key);
                    }
                    OpKind::Search => unreachable!(),
                }
                self.complete(op);
            }
            Phase::Split => {
                let node = self.ops[op].cur;
                let (sib, sep) = self.tree.half_split(node);
                // Release the split node, then W-lock the parent to post
                // the separator.
                self.ops[op].held.clear();
                self.release(op, node);
                match self.ops[op].path.pop() {
                    Some(parent_hint) => {
                        self.ops[op].pending = Some((sep, sib));
                        self.acquire(op, parent_hint, Mode::Exclusive);
                    }
                    None => {
                        // No ancestor was recorded: `node` was the root
                        // when this descent started.
                        if self.tree.split_root_if_needed(node, sep, sib).is_none() {
                            // The tree grew in the meantime; find today's
                            // ancestor at the right level and ascend.
                            let target = self.find_ascend_target(self.tree.level(node) + 1, sep);
                            self.ops[op].pending = Some((sep, sib));
                            self.acquire(op, target, Mode::Exclusive);
                            return;
                        }
                        self.complete(op);
                    }
                }
            }
            Phase::AscendModify => {
                let parent = self.ops[op].cur;
                let (sep, sib) = self.ops[op].pending.take().expect("ascending");
                self.tree.insert_separator(parent, sep, sib);
                if self.tree.overfull(parent) {
                    self.ops[op].phase = Phase::Split;
                    let sp = self.costs.sp(self.tree.level(parent), self.tree.height());
                    self.schedule_service(op, sp);
                } else {
                    self.complete(op);
                }
            }
            phase => unreachable!("link-type has no phase {phase:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Optimistic Lock Coupling (latch-free read path; updates are naive)
    // ------------------------------------------------------------------

    /// One latch-free OLC node visit: pay the node's search service with
    /// no lock request — the version snapshot opens here and is
    /// validated when the service completes.
    fn olc_visit(&mut self, op: OpId, node: NodeId) {
        self.ops[op].cur = node;
        self.ops[op].phase = Phase::Search;
        let se = self.costs.se(self.tree.level(node), self.tree.height());
        self.schedule_service(op, se);
    }

    /// An OLC read window closed. `writer_present` (a writer holding or
    /// queued on the node) is the discrete-event surrogate for "the
    /// version moved or is moving": the visit restarts, counted as a
    /// redo — the OLC analogue of Optimistic Descent's re-descents.
    /// Validated visits route like a link-type reader: chase right when
    /// the range moved, complete at the leaf, descend otherwise.
    fn olc_search_done(&mut self, op: OpId) {
        debug_assert_eq!(self.ops[op].phase, Phase::Search);
        let cur = self.ops[op].cur;
        if self.locks.writer_present(cur) {
            self.stats.redos += 1;
            self.olc_visit(op, cur);
            return;
        }
        let key = self.ops[op].key;
        let n = self.tree.node(cur);
        let (covers, right, is_leaf) = (n.covers(key), n.right, n.is_leaf());
        if !covers {
            self.ops[op].crossings += 1;
            let next = right.expect("finite high key implies a right link");
            self.olc_visit(op, next);
            return;
        }
        if is_leaf {
            self.complete(op);
            return;
        }
        let child = self.tree.child_for(cur, key);
        self.olc_visit(op, child);
    }

    /// Finds a current ancestor node at `level` routing `key` — used only
    /// in the rare corner where a split's node was the descent-time root
    /// but the tree has since grown. Navigation cost is omitted
    /// (document: the event is vanishingly rare at steady state).
    fn find_ascend_target(&self, level: usize, key: u64) -> NodeId {
        let mut cur = self.tree.root();
        while self.tree.level(cur) > level {
            cur = self.tree.child_for(cur, key);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtree_workload::{OpStream, OpsConfig, PoissonArrivals};

    fn small_tree(seed: u64) -> SimTree {
        let mut stream = OpStream::new(OpsConfig::paper(1_000_000), seed);
        let seq = stream.construction_sequence(2000);
        SimTree::build(13, &seq)
    }

    fn drive(alg: SimAlgorithm, rate: f64, n: u64) -> Simulator {
        let tree = small_tree(7);
        let costs = SimCosts::paper();
        let mut sim = Simulator::new(tree, costs, alg, 100, 42);
        let mut arr = PoissonArrivals::new(rate, 1);
        let mut stream = OpStream::new(OpsConfig::paper(1_000_000), 2);
        sim.schedule_arrival(arr.next_arrival());
        sim.run_until(n, 100_000, move || {
            let op = stream.next_op();
            let (kind, key) = match op {
                cbtree_workload::Operation::Search(k) => (OpKind::Search, k),
                cbtree_workload::Operation::Insert(k) => (OpKind::Insert, k),
                cbtree_workload::Operation::Delete(k) => (OpKind::Delete, k),
            };
            (kind, key, arr.next_arrival())
        })
        .expect("stable at this rate");
        sim
    }

    #[test]
    fn naive_completes_and_keeps_tree_valid() {
        let sim = drive(SimAlgorithm::NaiveLockCoupling, 0.05, 1200);
        assert!(sim.completions() >= 1200);
        sim.tree.check_invariants().unwrap();
        assert!(sim.stats.resp_search.count() > 0);
        assert!(sim.stats.resp_insert.count() > 0);
    }

    #[test]
    fn optimistic_completes_and_counts_redos() {
        let sim = drive(SimAlgorithm::OptimisticDescent, 0.2, 2000);
        sim.tree.check_invariants().unwrap();
        // With N=13 and the paper mix, some redos must occur over 2000
        // operations (Pr[F(1)] ≈ 7%).
        assert!(sim.stats.redos > 0, "expected some redo descents");
    }

    #[test]
    fn link_completes_under_high_load() {
        let sim = drive(SimAlgorithm::LinkType, 1.0, 3000);
        sim.tree.check_invariants().unwrap();
        assert!(sim.completions() >= 3000);
    }

    #[test]
    fn response_times_reasonable_at_low_load() {
        // At nearly zero load a search should take ~ΣSe = serial time.
        let sim = drive(SimAlgorithm::NaiveLockCoupling, 0.01, 600);
        let mean = sim.stats.resp_search.mean();
        let h = sim.tree.height();
        let serial: f64 = (1..=h).map(|l| sim.costs.se(l, h)).sum();
        assert!(
            (mean - serial).abs() < 0.35 * serial,
            "search RT {mean} vs serial {serial}"
        );
    }

    #[test]
    fn naive_slower_than_link_at_same_load() {
        let naive = drive(SimAlgorithm::NaiveLockCoupling, 0.18, 1500);
        let link = drive(SimAlgorithm::LinkType, 0.18, 1500);
        let rt_n = naive.stats.resp_insert.mean();
        let rt_l = link.stats.resp_insert.mean();
        assert!(
            rt_l < rt_n,
            "link insert RT ({rt_l}) must beat naive ({rt_n}) at moderate load"
        );
    }

    #[test]
    fn olc_completes_with_latch_free_reads() {
        let sim = drive(SimAlgorithm::Olc, 0.2, 2000);
        sim.tree.check_invariants().unwrap();
        assert!(sim.completions() >= 2000);
        assert!(sim.stats.resp_search.count() > 0);
        // Readers never request locks: no shared-lock wait is ever
        // recorded at any level.
        assert!(
            sim.stats.wait_r.iter().all(|w| w.count() == 0),
            "OLC must place zero shared-lock demand"
        );
        // Writers do latch (exclusively).
        assert!(sim.stats.wait_w.iter().any(|w| w.count() > 0));
    }

    #[test]
    fn olc_reads_restart_under_writer_pressure() {
        let sim = drive(SimAlgorithm::Olc, 0.35, 3000);
        assert!(
            sim.stats.redos > 0,
            "version-validation failures must occur under write load"
        );
    }

    #[test]
    fn olc_insert_no_slower_than_naive_at_same_load() {
        // Removing the reader class from every lock queue can only help
        // the writers.
        let naive = drive(SimAlgorithm::NaiveLockCoupling, 0.18, 1500);
        let olc = drive(SimAlgorithm::Olc, 0.18, 1500);
        let rt_n = naive.stats.resp_insert.mean();
        let rt_o = olc.stats.resp_insert.mean();
        assert!(
            rt_o < 1.05 * rt_n,
            "olc insert RT ({rt_o}) must not exceed naive ({rt_n})"
        );
    }

    #[test]
    fn root_writer_utilization_grows_with_load() {
        let lo = drive(SimAlgorithm::NaiveLockCoupling, 0.02, 1000);
        let hi = drive(SimAlgorithm::NaiveLockCoupling, 0.15, 1000);
        assert!(
            hi.stats.root_writer.mean() > lo.stats.root_writer.mean(),
            "rho_w: {} vs {}",
            hi.stats.root_writer.mean(),
            lo.stats.root_writer.mean()
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = drive(SimAlgorithm::OptimisticDescent, 0.1, 800);
        let b = drive(SimAlgorithm::OptimisticDescent, 0.1, 800);
        assert_eq!(a.stats.resp_insert.mean(), b.stats.resp_insert.mean());
        assert_eq!(a.stats.redos, b.stats.redos);
    }

    #[test]
    fn explosion_reported_at_absurd_rate() {
        let tree = small_tree(7);
        let mut sim = Simulator::new(
            tree,
            SimCosts::paper(),
            SimAlgorithm::NaiveLockCoupling,
            0,
            42,
        );
        let mut arr = PoissonArrivals::new(50.0, 1);
        let mut stream = OpStream::new(OpsConfig::paper(1_000_000), 2);
        sim.schedule_arrival(arr.next_arrival());
        let res = sim.run_until(100_000, 200, move || {
            let op = stream.next_op();
            let (kind, key) = match op {
                cbtree_workload::Operation::Search(k) => (OpKind::Search, k),
                cbtree_workload::Operation::Insert(k) => (OpKind::Insert, k),
                cbtree_workload::Operation::Delete(k) => (OpKind::Delete, k),
            };
            (kind, key, arr.next_arrival())
        });
        assert!(res.is_err(), "rate 50 must explode naive lock-coupling");
    }
}
