//! The future-event list: a min-heap of timestamped events with
//! deterministic FIFO tie-breaking, so equal-time events replay
//! identically across runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: the payload `E` fires at `time`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // Ties break by insertion order (lower seq first).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics when `time` is NaN (a corrupted schedule would silently
    /// deadlock the simulation otherwise).
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "cannot schedule an event at NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Removes and returns the earliest event `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        assert_eq!(q.pop(), Some((1.0, 'a')));
        assert_eq!(q.pop(), Some((2.0, 'b')));
        assert_eq!(q.pop(), Some((3.0, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((1.0, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(5.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        EventQueue::new().schedule(f64::NAN, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(4.0, 4);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.schedule(2.0, 2);
        q.schedule(3.0, 3);
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((4.0, 4)));
    }
}
