//! Discrete-event simulator of concurrent B-tree algorithms — the
//! validation half of Johnson & Shasha (PODS 1990), §4.
//!
//! The simulator runs the *actual* algorithms on an *actual* B+-tree:
//!
//! 1. a construction phase builds the tree from a sequence of inserts and
//!    deletes in the same ratio as the concurrent mix;
//! 2. concurrent operations arrive in a Poisson stream, traverse the tree
//!    acquiring per-node FCFS reader/writer locks exactly as their
//!    algorithm prescribes, and spend exponentially distributed service
//!    times on every node access;
//! 3. statistics are collected: per-kind response times, per-level lock
//!    waits, the root's writer utilization, link-crossing counts, and the
//!    concurrency level.
//!
//! The number of in-flight operations is bounded by configuration; like
//! the paper's simulator (which "crashes" when it runs out of space for
//! concurrent operations), exceeding the bound aborts the run — that is
//! the simulator's way of reporting an unstable arrival rate.
//!
//! Module map:
//!
//! * [`stats`] — Welford accumulators, time-weighted averages, summaries;
//! * [`events`] — the future-event list (deterministic tie-breaking);
//! * [`locks`] — the per-node FCFS shared/exclusive lock table;
//! * [`tree`] — the simulated B+-tree (merge-at-empty, right links, high
//!   keys);
//! * [`costs`] — exponential service-time sampling per node level;
//! * [`driver`] — the simulation core and per-algorithm state machines;
//! * [`runner`] — configuration, reports, multi-seed orchestration.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod costs;
pub mod driver;
pub mod error;
pub mod events;
pub mod locks;
pub mod runner;
pub mod stats;
pub mod tree;

pub use driver::{SimAlgorithm, SimRecovery, Simulator};
pub use error::SimError;
pub use runner::{run, run_seeds, SeedSummary, SimConfig, SimReport};

/// Convenience result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;
