//! Error type for model-parameter derivation.

use std::fmt;

/// Errors raised while deriving B-tree model parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter was outside its domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The operation mix probabilities do not describe a distribution.
    InvalidMix {
        /// Sum of the supplied probabilities.
        sum: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter { name, constraint } => {
                write!(f, "invalid model parameter `{name}`: {constraint}")
            }
            ModelError::InvalidMix { sum } => {
                write!(f, "operation mix must sum to 1 (got {sum})")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ModelError::InvalidParameter {
            name: "N",
            constraint: "must be ≥ 3",
        };
        assert!(e.to_string().contains('N'));
        let m = ModelError::InvalidMix { sum: 0.9 };
        assert!(m.to_string().contains("0.9"));
    }
}
