//! Operation mixes: the proportions of search, insert and delete operations.

use crate::{ModelError, Result};

/// Proportions of concurrent search/insert/delete operations,
/// `q_s + q_i + q_d = 1` (paper §5, "Parameters").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Probability an operation is a search, `q_s`.
    pub q_search: f64,
    /// Probability an operation is an insert, `q_i`.
    pub q_insert: f64,
    /// Probability an operation is a delete, `q_d`.
    pub q_delete: f64,
}

impl OpMix {
    /// Creates a mix, checking that the proportions are a distribution.
    pub fn new(q_search: f64, q_insert: f64, q_delete: f64) -> Result<Self> {
        for (name, v) in [
            ("q_search", q_search),
            ("q_insert", q_insert),
            ("q_delete", q_delete),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(ModelError::InvalidParameter {
                    name,
                    constraint: "must be in [0,1]",
                });
            }
        }
        let sum = q_search + q_insert + q_delete;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(ModelError::InvalidMix { sum });
        }
        Ok(OpMix {
            q_search,
            q_insert,
            q_delete,
        })
    }

    /// The paper's experimental mix: `q_s = .3, q_i = .5, q_d = .2` (§5.3).
    pub fn paper() -> Self {
        OpMix {
            q_search: 0.3,
            q_insert: 0.5,
            q_delete: 0.2,
        }
    }

    /// A pure-search mix (useful for degenerate-case tests).
    pub fn searches_only() -> Self {
        OpMix {
            q_search: 1.0,
            q_insert: 0.0,
            q_delete: 0.0,
        }
    }

    /// Fraction of operations that update the tree, `q_i + q_d`.
    pub fn update_fraction(&self) -> f64 {
        self.q_insert + self.q_delete
    }

    /// The delete share of update operations, `q = q_d/(q_i + q_d)` —
    /// Corollary 1's `q`. Zero when there are no updates.
    pub fn delete_share_of_updates(&self) -> f64 {
        let u = self.update_fraction();
        if u == 0.0 {
            0.0
        } else {
            self.q_delete / u
        }
    }

    /// The insert share of update operations, `q_i/(q_i + q_d)` — the
    /// weight of `T(I,i)` in the writer service rate (Proposition 1).
    pub fn insert_share_of_updates(&self) -> f64 {
        let u = self.update_fraction();
        if u == 0.0 {
            0.0
        } else {
            self.q_insert / u
        }
    }

    /// Whether inserts outnumber deletes by at least 5 percentage points of
    /// the update mix — the precondition of Corollary 1 under which leaf
    /// merges (and a fortiori propagating merges) are negligible.
    pub fn inserts_dominate(&self) -> bool {
        self.q_insert >= self.q_delete + 0.05 * self.update_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_is_valid() {
        let m = OpMix::paper();
        assert_eq!(OpMix::new(0.3, 0.5, 0.2).unwrap(), m);
        assert!((m.update_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn delete_share_matches_hand_computation() {
        let m = OpMix::paper();
        assert!((m.delete_share_of_updates() - 0.2 / 0.7).abs() < 1e-12);
        assert!((m.insert_share_of_updates() - 0.5 / 0.7).abs() < 1e-12);
    }

    #[test]
    fn shares_sum_to_one_when_updates_present() {
        let m = OpMix::new(0.6, 0.25, 0.15).unwrap();
        assert!((m.delete_share_of_updates() + m.insert_share_of_updates() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pure_search_has_zero_update_shares() {
        let m = OpMix::searches_only();
        assert_eq!(m.update_fraction(), 0.0);
        assert_eq!(m.delete_share_of_updates(), 0.0);
        assert_eq!(m.insert_share_of_updates(), 0.0);
    }

    #[test]
    fn rejects_bad_mixes() {
        assert!(OpMix::new(0.5, 0.5, 0.5).is_err());
        assert!(OpMix::new(-0.1, 0.6, 0.5).is_err());
        assert!(OpMix::new(f64::NAN, 0.5, 0.5).is_err());
    }

    #[test]
    fn inserts_dominate_matches_corollary_precondition() {
        assert!(OpMix::paper().inserts_dominate());
        assert!(!OpMix::new(0.3, 0.35, 0.35).unwrap().inserts_dominate());
        // exactly 5% more inserts than deletes among updates
        let m = OpMix::new(0.0, 0.525, 0.475).unwrap();
        assert!(m.inserts_dominate());
    }
}
