//! Access-cost model: `Se(i)`, `M`, `Sp(i)`, `Mg(i)` with the memory/disk
//! split and the resource-contention dilation factor.
//!
//! The paper's experiments (§5.3) measure time in units of "search the
//! root": the top `m` levels live in memory (cost 1 per node access) and
//! the rest on disk (cost `D`, e.g. 5 or 10). Modifying a leaf costs twice
//! its search, and splitting a node costs three times its search (the
//! split cost includes modifying the parent). §5.2 folds resource
//! contention into a single service-time dilation factor applied to every
//! cost.
//!
//! For the rules-of-thumb figures the search time may instead grow with
//! the node size (`a + b·log₂N`, a binary search), which is what makes
//! "small nodes for Naive Lock-coupling, large nodes for Optimistic
//! Descent" a real design trade-off (§6).

use crate::{ModelError, NodeParams, Result};

/// How the in-memory search time of a node scales with its maximum size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchCost {
    /// Unit search cost regardless of node size (the paper's base
    /// experiments, where time is normalized to the root search).
    Unit,
    /// Binary-search cost `a + b·log₂(N)` (paper §6: "the time to search
    /// the root is of the form a + b·log N").
    BinarySearch {
        /// Fixed per-access overhead `a`.
        a: f64,
        /// Per-comparison cost `b`.
        b: f64,
    },
}

impl SearchCost {
    /// In-memory search time for a node of maximum size `n`.
    pub fn time(&self, n: usize) -> f64 {
        match *self {
            SearchCost::Unit => 1.0,
            SearchCost::BinarySearch { a, b } => a + b * (n.max(2) as f64).log2(),
        }
    }
}

/// Per-level access costs for a tree of a given height.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// `Se(i)`: expected time to search a level-`i` node (index: level−1).
    search: Vec<f64>,
    /// `M`: expected time to modify a leaf.
    modify_leaf: f64,
    /// `Sp(i)`: expected time to split a level-`i` node, including the
    /// parent modification (index: level−1).
    split: Vec<f64>,
    /// `Mg(i)`: expected time to merge a level-`i` node (index: level−1).
    merge: Vec<f64>,
    /// Number of levels held in memory (counted from the root down).
    pub memory_levels: usize,
    /// Cost multiplier for on-disk node accesses (`D`).
    pub disk_cost: f64,
}

impl CostModel {
    /// Builds the paper's cost model for a tree of height `height`:
    /// `memory_levels` top levels cost `base` per access, the rest cost
    /// `base·disk_cost`; `M = 2·Se(1)`, `Sp(i) = Mg(i) = 3·Se(i)`.
    ///
    /// `base` is the in-memory search time (1.0 in the base experiments;
    /// `SearchCost::BinarySearch` values in the node-size sweeps).
    pub fn paper_style(
        height: usize,
        memory_levels: usize,
        disk_cost: f64,
        base: f64,
    ) -> Result<Self> {
        if height == 0 {
            return Err(ModelError::InvalidParameter {
                name: "height",
                constraint: "must be at least 1",
            });
        }
        if !(disk_cost.is_finite() && disk_cost >= 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "disk_cost",
                constraint: "must be finite and ≥ 1",
            });
        }
        if !(base.is_finite() && base > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "base",
                constraint: "must be finite and positive",
            });
        }
        let mem = memory_levels.min(height);
        // Levels 1..=height; a level is in memory when it is within `mem`
        // of the root, i.e. level > height - mem.
        let search: Vec<f64> = (1..=height)
            .map(|level| {
                if level > height - mem {
                    base
                } else {
                    base * disk_cost
                }
            })
            .collect();
        let split = search.iter().map(|s| 3.0 * s).collect();
        let merge = search.iter().map(|s| 3.0 * s).collect();
        let modify_leaf = 2.0 * search[0];
        Ok(CostModel {
            search,
            modify_leaf,
            split,
            merge,
            memory_levels: mem,
            disk_cost,
        })
    }

    /// The paper's base cost model (§5.3): height 5, 2 in-memory levels,
    /// disk cost 5, unit root search.
    pub fn paper() -> Self {
        CostModel::paper_style(5, 2, 5.0, 1.0).expect("paper parameters are valid")
    }

    /// Builds a cost model whose in-memory search time follows `search_cost`
    /// for nodes of size `node.max_node_size` (rules-of-thumb sweeps).
    pub fn with_search_cost(
        height: usize,
        memory_levels: usize,
        disk_cost: f64,
        search_cost: SearchCost,
        node: &NodeParams,
    ) -> Result<Self> {
        CostModel::paper_style(
            height,
            memory_levels,
            disk_cost,
            search_cost.time(node.max_node_size),
        )
    }

    /// Applies a resource-contention dilation factor to every cost (§5.2).
    ///
    /// The framework separates data contention (lock queueing, computed by
    /// the analysis) from resource contention (CPU/disk interference),
    /// which appears only as this uniform service-time stretch.
    pub fn dilated(&self, factor: f64) -> Result<Self> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "factor",
                constraint: "must be finite and positive",
            });
        }
        Ok(CostModel {
            search: self.search.iter().map(|s| s * factor).collect(),
            modify_leaf: self.modify_leaf * factor,
            split: self.split.iter().map(|s| s * factor).collect(),
            merge: self.merge.iter().map(|s| s * factor).collect(),
            memory_levels: self.memory_levels,
            disk_cost: self.disk_cost,
        })
    }

    /// Number of levels the model covers.
    pub fn height(&self) -> usize {
        self.search.len()
    }

    /// `Se(i)`: expected time to search a level-`i` node.
    pub fn se(&self, level: usize) -> f64 {
        assert!((1..=self.height()).contains(&level), "level {level}");
        self.search[level - 1]
    }

    /// `M`: expected time to modify a leaf.
    pub fn m(&self) -> f64 {
        self.modify_leaf
    }

    /// `Sp(i)`: expected time to split a level-`i` node (incl. parent
    /// modification).
    pub fn sp(&self, level: usize) -> f64 {
        assert!((1..=self.height()).contains(&level));
        self.split[level - 1]
    }

    /// `Mg(i)`: expected time to merge a level-`i` node.
    pub fn mg(&self, level: usize) -> f64 {
        assert!((1..=self.height()).contains(&level));
        self.merge[level - 1]
    }

    /// Whether a level's nodes reside in memory.
    pub fn level_in_memory(&self, level: usize) -> bool {
        level > self.height() - self.memory_levels
    }

    /// Overrides the leaf-modify cost (used in sensitivity experiments).
    pub fn set_modify_leaf(&mut self, m: f64) {
        self.modify_leaf = m;
    }

    /// Replaces the per-level access costs with `base·factors[l−1]`,
    /// keeping the paper's ratios (`M = 2·Se(1)`, `Sp = Mg = 3·Se`).
    /// Used by the LRU extension, where each level has a fractional
    /// buffer-hit rate instead of a binary memory/disk placement.
    ///
    /// # Panics
    /// Panics when `factors.len()` differs from the model's height.
    pub fn apply_per_level_access(&mut self, factors: &[f64], base: f64) {
        assert_eq!(factors.len(), self.height(), "one factor per level");
        self.search = factors.iter().map(|f| base * f).collect();
        self.split = self.search.iter().map(|s| 3.0 * s).collect();
        self.merge = self.search.iter().map(|s| 3.0 * s).collect();
        self.modify_leaf = 2.0 * self.search[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs_match_section_5_3() {
        let c = CostModel::paper();
        assert_eq!(c.se(5), 1.0, "root search is the time unit");
        assert_eq!(c.se(4), 1.0, "two in-memory levels");
        assert_eq!(c.se(3), 5.0, "level 3 on disk at cost 5");
        assert_eq!(c.se(1), 5.0);
        assert_eq!(c.m(), 10.0, "modify = 2x leaf search");
        assert_eq!(c.sp(1), 15.0, "split = 3x search");
        assert_eq!(c.sp(5), 3.0);
    }

    #[test]
    fn memory_levels_counted_from_root() {
        let c = CostModel::paper();
        assert!(c.level_in_memory(5) && c.level_in_memory(4));
        assert!(!c.level_in_memory(3) && !c.level_in_memory(1));
    }

    #[test]
    fn all_memory_when_disk_cost_irrelevant() {
        let c = CostModel::paper_style(4, 10, 7.0, 1.0).unwrap();
        for level in 1..=4 {
            assert_eq!(c.se(level), 1.0);
        }
    }

    #[test]
    fn binary_search_cost_grows_with_node_size() {
        let sc = SearchCost::BinarySearch { a: 0.5, b: 0.125 };
        assert!(sc.time(64) > sc.time(8));
        assert!((sc.time(64) - (0.5 + 0.125 * 6.0)).abs() < 1e-12);
    }

    #[test]
    fn unit_search_cost_is_constant() {
        assert_eq!(SearchCost::Unit.time(3), 1.0);
        assert_eq!(SearchCost::Unit.time(1000), 1.0);
    }

    #[test]
    fn with_search_cost_scales_everything() {
        let node = NodeParams::with_max_size(64).unwrap();
        let sc = SearchCost::BinarySearch { a: 0.0, b: 1.0 };
        let c = CostModel::with_search_cost(3, 1, 2.0, sc, &node).unwrap();
        assert!((c.se(3) - 6.0).abs() < 1e-12);
        assert!((c.se(1) - 12.0).abs() < 1e-12);
        assert!((c.m() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn dilation_scales_uniformly() {
        let c = CostModel::paper().dilated(1.5).unwrap();
        assert_eq!(c.se(5), 1.5);
        assert_eq!(c.m(), 15.0);
        assert_eq!(c.sp(1), 22.5);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(CostModel::paper_style(0, 1, 5.0, 1.0).is_err());
        assert!(CostModel::paper_style(3, 1, 0.5, 1.0).is_err());
        assert!(CostModel::paper_style(3, 1, 5.0, 0.0).is_err());
        assert!(CostModel::paper().dilated(0.0).is_err());
    }
}
