//! LRU buffer-pool modeling — the §8 "full version" extension.
//!
//! The paper's base experiments pin whole levels in memory (top `m`
//! levels cost 1, the rest cost `D`). A real database buffers *nodes*
//! with LRU, so each level has a hit *probability* instead. Because every
//! operation touches exactly one node per level and keys are uniform, a
//! level-`l` node is referenced at rate proportional to `1/count(l)` —
//! the classical independent-reference model — and LRU hit rates follow
//! from **Che's approximation**: with cache capacity `B` nodes and
//! per-item reference rates `r_i`, the characteristic time `T` solves
//!
//! ```text
//! Σ_i (1 − exp(−r_i·T)) = B,        hit(i) = 1 − exp(−r_i·T).
//! ```
//!
//! The expected node-access cost at level `l` becomes
//! `Se(l) = base·(hit(l) + (1−hit(l))·D)`, which plugs straight into the
//! analytical framework. With `B` ≈ the size of the top levels this
//! reproduces the paper's binary split; in between it interpolates
//! smoothly, and the `extension-lru` experiment sweeps it.

use crate::{CostModel, ModelError, Result, TreeShape};

/// Per-level LRU hit probabilities for a tree shape and buffer size.
#[derive(Debug, Clone, PartialEq)]
pub struct LruHits {
    /// `hit[l−1]`: probability a level-`l` node access hits the buffer.
    hits: Vec<f64>,
    /// The characteristic time of Che's approximation (in units of one
    /// tree traversal).
    pub characteristic_time: f64,
    /// Buffer capacity in nodes.
    pub buffer_nodes: f64,
}

impl LruHits {
    /// Computes per-level hit probabilities for a buffer of
    /// `buffer_nodes` nodes under uniform key traffic.
    ///
    /// Reference rates are per operation: one access to a uniformly
    /// chosen node on each level, i.e. rate `1/count(l)` for a level-`l`
    /// node.
    pub fn compute(shape: &TreeShape, buffer_nodes: f64) -> Result<Self> {
        if !(buffer_nodes.is_finite() && buffer_nodes >= 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "buffer_nodes",
                constraint: "must be finite and non-negative",
            });
        }
        let total_nodes: f64 = (1..=shape.height).map(|l| shape.node_count(l)).sum();
        if buffer_nodes >= total_nodes {
            return Ok(LruHits {
                hits: vec![1.0; shape.height],
                characteristic_time: f64::INFINITY,
                buffer_nodes,
            });
        }
        if buffer_nodes == 0.0 {
            return Ok(LruHits {
                hits: vec![0.0; shape.height],
                characteristic_time: 0.0,
                buffer_nodes,
            });
        }
        // Occupancy(T) = Σ_l count(l)·(1 − exp(−T/count(l))) is strictly
        // increasing in T; bisect for occupancy = buffer_nodes.
        let occupancy = |t: f64| -> f64 {
            (1..=shape.height)
                .map(|l| {
                    let c = shape.node_count(l);
                    c * (1.0 - (-(t / c)).exp())
                })
                .sum()
        };
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        while occupancy(hi) < buffer_nodes {
            hi *= 2.0;
            if hi > 1e18 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if occupancy(mid) < buffer_nodes {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = 0.5 * (lo + hi);
        let hits = (1..=shape.height)
            .map(|l| 1.0 - (-(t / shape.node_count(l))).exp())
            .collect();
        Ok(LruHits {
            hits,
            characteristic_time: t,
            buffer_nodes,
        })
    }

    /// Hit probability at a 1-based level.
    pub fn hit(&self, level: usize) -> f64 {
        assert!((1..=self.hits.len()).contains(&level));
        self.hits[level - 1]
    }

    /// Expected buffer occupancy devoted to each level.
    pub fn occupancy_by_level(&self, shape: &TreeShape) -> Vec<f64> {
        (1..=shape.height)
            .map(|l| shape.node_count(l) * self.hit(l))
            .collect()
    }
}

/// Builds a cost model whose per-level search times reflect LRU hit
/// rates: `Se(l) = base·(hit(l) + (1−hit(l))·disk_cost)`, with the usual
/// `M = 2·Se(1)`, `Sp = Mg = 3·Se` ratios.
pub fn lru_cost_model(
    shape: &TreeShape,
    buffer_nodes: f64,
    disk_cost: f64,
    base: f64,
) -> Result<CostModel> {
    let hits = LruHits::compute(shape, buffer_nodes)?;
    let mut cost = CostModel::paper_style(shape.height, 0, disk_cost, base)?;
    // Rebuild with per-level effective costs via dilation of each level:
    // CostModel has uniform-ratio structure, so construct directly.
    let factors: Vec<f64> = (1..=shape.height)
        .map(|l| hits.hit(l) + (1.0 - hits.hit(l)) * disk_cost)
        .collect();
    cost.apply_per_level_access(&factors, base);
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeParams;

    fn shape() -> TreeShape {
        TreeShape::paper()
    }

    #[test]
    fn zero_buffer_misses_everywhere() {
        let h = LruHits::compute(&shape(), 0.0).unwrap();
        for l in 1..=5 {
            assert_eq!(h.hit(l), 0.0);
        }
    }

    #[test]
    fn huge_buffer_hits_everywhere() {
        let h = LruHits::compute(&shape(), 1e9).unwrap();
        for l in 1..=5 {
            assert_eq!(h.hit(l), 1.0);
        }
    }

    #[test]
    fn hotter_levels_hit_more() {
        let h = LruHits::compute(&shape(), 100.0).unwrap();
        for l in 1..5 {
            assert!(
                h.hit(l + 1) >= h.hit(l),
                "higher levels are hotter: hit({})={} vs hit({})={}",
                l + 1,
                h.hit(l + 1),
                l,
                h.hit(l)
            );
        }
        assert!(h.hit(5) > 0.99, "the root is essentially always resident");
    }

    #[test]
    fn occupancy_matches_buffer_size() {
        let s = shape();
        for b in [10.0, 100.0, 1000.0] {
            let h = LruHits::compute(&s, b).unwrap();
            let occ: f64 = h.occupancy_by_level(&s).iter().sum();
            assert!((occ - b).abs() < 1e-6 * b, "occupancy {occ} vs buffer {b}");
        }
    }

    #[test]
    fn hit_rates_increase_with_buffer() {
        let s = shape();
        let small = LruHits::compute(&s, 20.0).unwrap();
        let large = LruHits::compute(&s, 500.0).unwrap();
        for l in 1..=5 {
            assert!(large.hit(l) >= small.hit(l));
        }
    }

    #[test]
    fn cost_model_interpolates_between_memory_and_disk() {
        let s = shape();
        let tiny = lru_cost_model(&s, 2.0, 5.0, 1.0).unwrap();
        let huge = lru_cost_model(&s, 1e9, 5.0, 1.0).unwrap();
        // With nearly no buffer, even the root costs close to disk... but
        // the root is 1 node and extremely hot, so it still hits once the
        // buffer holds a couple of nodes.
        assert!(tiny.se(1) > 4.0, "cold leaves cost ~disk: {}", tiny.se(1));
        assert!(huge.se(1) < 1.0 + 1e-9, "warm leaves cost ~memory");
        assert_eq!(huge.m(), 2.0 * huge.se(1));
        assert_eq!(huge.sp(3), 3.0 * huge.se(3));
    }

    #[test]
    fn pinning_needs_more_buffer_than_the_level_sizes() {
        // A real LRU buffer leaks capacity to the cold levels' miss
        // traffic: sizing the buffer to exactly the top-two-level node
        // count does NOT pin those levels (the paper's binary split is an
        // idealization). With a few times that budget, level 4 becomes
        // effectively resident while leaves stay cold.
        let s = shape();
        let top_two = s.node_count(5) + s.node_count(4);
        let exact = lru_cost_model(&s, top_two, 5.0, 1.0).unwrap();
        assert!(
            exact.se(5) > 1.3,
            "a buffer of only {top_two:.1} nodes cannot even pin the root \
             against leaf-miss churn: {}",
            exact.se(5)
        );
        assert!(
            exact.se(5) < exact.se(4),
            "but the root is the most resident level"
        );
        let generous = lru_cost_model(&s, 8.0 * top_two, 5.0, 1.0).unwrap();
        assert!(
            generous.se(5) < 1.05,
            "8x budget pins the root: {}",
            generous.se(5)
        );
        assert!(
            generous.se(4) < 1.6,
            "8x budget mostly pins level 4: {}",
            generous.se(4)
        );
        assert!(
            generous.se(1) > 4.0,
            "leaves still mostly on disk: {}",
            generous.se(1)
        );
    }

    #[test]
    fn small_trees_fully_cached() {
        let s = TreeShape::derive(100, NodeParams::paper()).unwrap();
        let h = LruHits::compute(&s, 1e4).unwrap();
        assert_eq!(h.hit(1), 1.0);
    }

    #[test]
    fn rejects_bad_buffer() {
        assert!(LruHits::compute(&shape(), -1.0).is_err());
        assert!(LruHits::compute(&shape(), f64::NAN).is_err());
    }
}
