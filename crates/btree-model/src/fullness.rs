//! Node-fullness probabilities: `Pr[F(i)]` (insert-unsafe) and `Pr[Em(i)]`
//! (delete-unsafe).
//!
//! Corollary 1 of the paper, citing *Utilization of B-trees with inserts,
//! deletes and modifies* (PODS '89): if there are at least 5% more inserts
//! than deletes in the update mix, a merge-at-empty B-tree almost never
//! merges, and
//!
//! ```text
//! Pr[F(1)] = (1 − 2q) / ((1 − q)·0.68·N),    q = q_d/(q_i + q_d)
//! Pr[F(j)] = 1/(0.69·N)                      for 1 < j ≤ h
//! ```
//!
//! Intuition: each insert that lands on a full leaf causes a split, and in
//! steady state splits must balance net growth. A leaf split occurs once
//! per `0.68·N` *net* new items; the `(1−2q)/(1−q)` factor converts the
//! per-update probability to account for deletes cancelling inserts. Above
//! the leaves the tree behaves like a pure-insert tree with fill `0.69`.

use crate::{OpMix, Result, TreeShape};

/// Per-level node-fullness probabilities for a given tree and mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Fullness {
    /// `Pr[F(i)]`, indexed by level−1 (leaves first).
    pr_full: Vec<f64>,
    /// `Pr[Em(i)]`, indexed by level−1.
    pr_empty: Vec<f64>,
}

impl Fullness {
    /// Derives fullness probabilities by Corollary 1.
    ///
    /// The root (level `h`) is never "unsafe" in the framework's sense —
    /// when it splits, the tree grows a level, which the steady-state
    /// analysis excludes — but the probability is still reported for use
    /// in `∏ Pr[F(k)]` products, which naturally truncate before the root.
    ///
    /// When inserts do *not* dominate deletes, the merge-at-empty
    /// simplification is not available; we still return Corollary 1's
    /// insert-side probabilities (clamped at ≥ 0) and a small non-zero
    /// delete-unsafe probability at the leaves so callers can observe the
    /// degradation, but the paper's analysis is only claimed accurate in
    /// the insert-dominated regime.
    pub fn corollary1(shape: &TreeShape, mix: &OpMix) -> Result<Self> {
        // Conservation form of Corollary 1: in steady state, the rate of
        // splits on a level equals that level's node-count growth, so the
        // probability a node is full when an insert/separator arrives is
        // the reciprocal of the level's occupancy. With the steady-state
        // shape (`E(1) = 0.68·N`, `E(j) = 0.69·N`) this reproduces the
        // paper's printed constants exactly; with a *measured* shape the
        // probabilities stay consistent with the tree at hand.
        let q = mix.delete_share_of_updates();
        let leaf_full = if mix.update_fraction() == 0.0 {
            0.0
        } else {
            ((1.0 - 2.0 * q) / ((1.0 - q) * shape.fanout(1))).max(0.0)
        };

        let mut pr_full = vec![0.0; shape.height];
        pr_full[0] = leaf_full;
        for level in 2..=shape.height {
            // Non-root internal level l: Pr[F(l)] = 1/E(l) (one split per
            // E(l) separators absorbed). The root's own fanout says
            // nothing about its fullness (a 6-child root is far from
            // full), so the root uses the generic internal occupancy —
            // the level below's fanout, or the steady-state 0.69·N for
            // very short trees — reproducing the paper's 1/(0.69·N).
            let occ = if level == shape.height {
                if shape.height >= 3 {
                    shape.fanout(level - 1)
                } else {
                    shape.node.upper_occupancy()
                }
            } else {
                shape.fanout(level)
            };
            pr_full[level - 1] = 1.0 / occ.max(2.0);
        }

        // Merge-at-empty: a node merges only when it empties entirely;
        // with inserts dominating this is "almost zero, and the probability
        // that a merge propagates is infinitely smaller" (paper §5).
        let leaf_empty = if mix.inserts_dominate() {
            0.0
        } else {
            // Symmetric estimate in the delete-dominated regime.
            ((2.0 * q - 1.0) / (q * shape.fanout(1))).max(0.0)
        };
        let mut pr_empty = vec![0.0; shape.height];
        pr_empty[0] = leaf_empty;

        Ok(Fullness { pr_full, pr_empty })
    }

    /// Builds fullness tables from explicit probabilities (for experiments
    /// that override the model, and for simulator cross-checks).
    pub fn explicit(pr_full: Vec<f64>, pr_empty: Vec<f64>) -> Self {
        assert_eq!(pr_full.len(), pr_empty.len());
        Fullness { pr_full, pr_empty }
    }

    /// `Pr[F(i)]`: probability a level-`i` node is insert-unsafe (full).
    pub fn pr_full(&self, level: usize) -> f64 {
        assert!((1..=self.pr_full.len()).contains(&level));
        self.pr_full[level - 1]
    }

    /// `Pr[Em(i)]`: probability a level-`i` node is delete-unsafe (empty).
    pub fn pr_empty(&self, level: usize) -> f64 {
        assert!((1..=self.pr_empty.len()).contains(&level));
        self.pr_empty[level - 1]
    }

    /// `∏_{k=1}^{j} Pr[F(k)]` — the probability an insert splits all nodes
    /// up to and including level `j` (Theorem 1's split-propagation terms).
    pub fn split_chain_prob(&self, j: usize) -> f64 {
        (1..=j).map(|k| self.pr_full(k)).product()
    }

    /// `∏_{k=1}^{j} Pr[Em(k)]` — merge-propagation probability.
    pub fn merge_chain_prob(&self, j: usize) -> f64 {
        (1..=j).map(|k| self.pr_empty(k)).product()
    }

    /// Number of levels covered.
    pub fn height(&self) -> usize {
        self.pr_full.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeParams;

    fn paper_fullness() -> Fullness {
        Fullness::corollary1(&TreeShape::paper(), &OpMix::paper()).unwrap()
    }

    #[test]
    fn leaf_probability_matches_corollary_formula() {
        // q = .2/.7 = 2/7; (1−2q)/(1−q) = (3/7)/(5/7) = 0.6
        // Pr[F(1)] = 0.6/(0.68·13) ≈ 0.06787
        let f = paper_fullness();
        assert!((f.pr_full(1) - 0.6 / (0.68 * 13.0)).abs() < 1e-12);
    }

    #[test]
    fn upper_probability_is_one_over_069n() {
        let f = paper_fullness();
        for level in 2..=5 {
            assert!((f.pr_full(level) - 1.0 / (0.69 * 13.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn merges_negligible_when_inserts_dominate() {
        let f = paper_fullness();
        for level in 1..=5 {
            assert_eq!(f.pr_empty(level), 0.0);
        }
    }

    #[test]
    fn split_chain_decays_geometrically() {
        let f = paper_fullness();
        let p1 = f.split_chain_prob(1);
        let p2 = f.split_chain_prob(2);
        let p3 = f.split_chain_prob(3);
        assert!(p2 < p1 && p3 < p2);
        assert!((p2 - p1 * f.pr_full(2)).abs() < 1e-15);
    }

    #[test]
    fn empty_product_is_one() {
        let f = paper_fullness();
        assert_eq!(f.split_chain_prob(0), 1.0);
        assert_eq!(f.merge_chain_prob(0), 1.0);
    }

    #[test]
    fn pure_search_mix_never_splits() {
        let shape = TreeShape::paper();
        let f = Fullness::corollary1(&shape, &OpMix::searches_only()).unwrap();
        assert_eq!(f.pr_full(1), 0.0);
    }

    #[test]
    fn pure_insert_mix_gives_one_over_068n() {
        let shape = TreeShape::paper();
        let mix = OpMix::new(0.0, 1.0, 0.0).unwrap();
        let f = Fullness::corollary1(&shape, &mix).unwrap();
        assert!((f.pr_full(1) - 1.0 / (0.68 * 13.0)).abs() < 1e-12);
    }

    #[test]
    fn delete_heavy_mix_reports_nonzero_leaf_merges() {
        let shape = TreeShape::paper();
        let mix = OpMix::new(0.2, 0.3, 0.5).unwrap();
        let f = Fullness::corollary1(&shape, &mix).unwrap();
        assert!(f.pr_empty(1) > 0.0);
    }

    #[test]
    fn balanced_mix_clamps_leaf_split_probability_at_zero() {
        // q = 1/2 makes (1−2q) = 0; more deletes would make it negative,
        // which must clamp to 0.
        let shape = TreeShape::paper();
        let mix = OpMix::new(0.2, 0.3, 0.5).unwrap();
        let f = Fullness::corollary1(&shape, &mix).unwrap();
        assert_eq!(f.pr_full(1), 0.0);
    }

    #[test]
    fn larger_nodes_split_less() {
        let mix = OpMix::paper();
        let small = Fullness::corollary1(
            &TreeShape::derive(40_000, NodeParams::with_max_size(13).unwrap()).unwrap(),
            &mix,
        )
        .unwrap();
        let large = Fullness::corollary1(
            &TreeShape::derive(40_000, NodeParams::with_max_size(59).unwrap()).unwrap(),
            &mix,
        )
        .unwrap();
        assert!(large.pr_full(1) < small.pr_full(1));
    }
}
