//! Stochastic shape and cost model of B+-trees under insert/delete mixes.
//!
//! The analytical framework of Johnson & Shasha (PODS 1990) consumes a
//! handful of structural parameters about the B-tree being analyzed — all
//! of which this crate derives from first principles, following the
//! companion papers the analysis cites:
//!
//! * node-fullness probabilities `Pr[F(i)]` (insert-unsafe) and
//!   `Pr[Em(i)]` (delete-unsafe), from *Utilization of B-trees with
//!   inserts, deletes and modifies* (PODS '89) — Corollary 1's rule of
//!   thumb `Pr[F(1)] = (1−2q)/((1−q)·0.68N)`;
//! * per-level expected fanouts `E(i)` and the tree height, from *Random
//!   B-trees with inserts and deletes* (steady-state space utilization
//!   ≈ ln 2 ≈ 0.69);
//! * access-cost parameters `Se(i)`, `M`, `Sp(i)`, `Mg(i)` with the
//!   memory/disk split and disk-cost multiplier `D` of §5.3, plus the
//!   resource-contention dilation factor of §5.2;
//! * the merge-at-empty vs merge-at-half restructuring comparison that
//!   justifies the paper's "deletes almost never merge" simplification.
//!
//! Levels are numbered as in the paper: leaves are level 1, the root is
//! level `h`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cost;
pub mod error;
pub mod fullness;
pub mod lru;
pub mod mix;
pub mod restructure;
pub mod shape;

pub use cost::{CostModel, SearchCost};
pub use error::ModelError;
pub use fullness::Fullness;
pub use lru::{lru_cost_model, LruHits};
pub use mix::OpMix;
pub use restructure::MergePolicy;
pub use shape::{NodeParams, TreeShape};

/// Convenience result alias for model computations.
pub type Result<T> = std::result::Result<T, ModelError>;
