//! Merge policies and restructuring-rate estimates.
//!
//! §3.2 of the paper: "Most B-trees implemented in practice never
//! restructure nodes due to underflow conditions. We call this strategy
//! merge-at-empty. [...] merge-at-empty B-trees have a significantly lower
//! restructuring rate and a slightly lower space utilization, if there are
//! more inserts than deletes in the instruction mix. Merge-at-empty is more
//! appropriate than merge-at-half for concurrent B-tree algorithms."
//!
//! This module provides coarse analytic estimates of per-update
//! restructuring rates under both policies (the ablation benchmark compares
//! them and the simulator measures them exactly).

use crate::{NodeParams, OpMix};

/// Underflow handling strategy of a B+-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergePolicy {
    /// Merge a node only when it becomes completely empty (the policy all
    /// algorithms in the paper use).
    AtEmpty,
    /// Merge (or redistribute) when a node drops below half full — the
    /// classical Bayer–McCreight/Wedekind policy.
    AtHalf,
}

impl MergePolicy {
    /// Estimated splits per *insert* at the leaf level for node size `N`.
    ///
    /// Under merge-at-empty with net growth, each leaf split absorbs about
    /// `fill·N` net new items; with deletes cancelling inserts the
    /// effective rate carries Corollary 1's `(1−2q)/(1−q)` factor. Under
    /// merge-at-half utilization is a bit higher (~0.70), so splits are
    /// marginally rarer per insert — but merges are far more common.
    pub fn leaf_split_rate(&self, node: &NodeParams, mix: &OpMix) -> f64 {
        let n = node.max_node_size as f64;
        let q = mix.delete_share_of_updates();
        if mix.update_fraction() == 0.0 {
            return 0.0;
        }
        let growth_factor = ((1.0 - 2.0 * q) / (1.0 - q)).max(0.0);
        match self {
            MergePolicy::AtEmpty => growth_factor / (node.leaf_fill * n),
            MergePolicy::AtHalf => growth_factor / (0.70 * n),
        }
    }

    /// Estimated merges (or redistributions) per *delete* at the leaf level.
    ///
    /// Merge-at-empty: a leaf must lose every key before merging; when
    /// inserts dominate this "almost never" happens (we report 0, matching
    /// the paper's simplification). Merge-at-half: a delete that brings a
    /// node from `N/2` to `N/2 − 1` restructures; in steady state nodes sit
    /// near the boundary often enough that roughly one in `0.35·N` deletes
    /// restructures (ref \[9\]'s headline comparison: significantly more
    /// restructuring).
    pub fn leaf_merge_rate(&self, node: &NodeParams, mix: &OpMix) -> f64 {
        let n = node.max_node_size as f64;
        match self {
            MergePolicy::AtEmpty => {
                if mix.inserts_dominate() || mix.q_delete == 0.0 {
                    0.0
                } else {
                    let q = mix.delete_share_of_updates();
                    ((2.0 * q - 1.0) / q).max(0.0) / (node.leaf_fill * n)
                }
            }
            MergePolicy::AtHalf => {
                if mix.q_delete == 0.0 {
                    0.0
                } else {
                    1.0 / (0.35 * n)
                }
            }
        }
    }

    /// Estimated total leaf restructurings per *update* operation.
    pub fn leaf_restructure_rate(&self, node: &NodeParams, mix: &OpMix) -> f64 {
        let ins = mix.insert_share_of_updates();
        let del = mix.delete_share_of_updates();
        ins * self.leaf_split_rate(node, mix) + del * self.leaf_merge_rate(node, mix)
    }

    /// Expected steady-state space utilization under this policy.
    pub fn utilization(&self, node: &NodeParams) -> f64 {
        match self {
            MergePolicy::AtEmpty => node.leaf_fill,
            MergePolicy::AtHalf => 0.70,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeParams {
        NodeParams::paper()
    }

    #[test]
    fn merge_at_empty_restructures_less_when_inserts_dominate() {
        let mix = OpMix::paper();
        let at_empty = MergePolicy::AtEmpty.leaf_restructure_rate(&node(), &mix);
        let at_half = MergePolicy::AtHalf.leaf_restructure_rate(&node(), &mix);
        assert!(
            at_empty < at_half,
            "paper [9]: merge-at-empty must restructure less ({at_empty} vs {at_half})"
        );
    }

    #[test]
    fn merge_at_empty_has_zero_merges_in_paper_mix() {
        assert_eq!(
            MergePolicy::AtEmpty.leaf_merge_rate(&node(), &OpMix::paper()),
            0.0
        );
    }

    #[test]
    fn merge_at_half_merges_even_with_few_deletes() {
        let mix = OpMix::new(0.3, 0.65, 0.05).unwrap();
        assert!(MergePolicy::AtHalf.leaf_merge_rate(&node(), &mix) > 0.0);
    }

    #[test]
    fn split_rate_decreases_with_node_size() {
        let mix = OpMix::paper();
        let small = MergePolicy::AtEmpty.leaf_split_rate(&node(), &mix);
        let big_node = NodeParams::with_max_size(101).unwrap();
        let large = MergePolicy::AtEmpty.leaf_split_rate(&big_node, &mix);
        assert!(large < small);
    }

    #[test]
    fn pure_search_mix_never_restructures() {
        let mix = OpMix::searches_only();
        for p in [MergePolicy::AtEmpty, MergePolicy::AtHalf] {
            assert_eq!(p.leaf_restructure_rate(&node(), &mix), 0.0);
        }
    }

    #[test]
    fn utilization_ordering_matches_paper() {
        // merge-at-half gains slightly in space utilization...
        assert!(
            MergePolicy::AtHalf.utilization(&node()) > MergePolicy::AtEmpty.utilization(&node())
        );
    }

    #[test]
    fn no_deletes_no_merges_either_policy() {
        let mix = OpMix::new(0.5, 0.5, 0.0).unwrap();
        assert_eq!(MergePolicy::AtEmpty.leaf_merge_rate(&node(), &mix), 0.0);
        assert_eq!(MergePolicy::AtHalf.leaf_merge_rate(&node(), &mix), 0.0);
    }
}
