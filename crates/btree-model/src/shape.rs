//! Steady-state shape of a random B+-tree: height, per-level node counts,
//! and expected fanouts `E(i)`.
//!
//! From *Random B-trees with inserts and deletes* (Johnson & Shasha, 1989):
//! a B-tree grown by random inserts (with merge-at-empty deletes mixed in)
//! reaches a steady-state space utilization of about `ln 2 ≈ 0.69`, so a
//! node of maximum size `N` holds about `0.69·N` entries. The paper's
//! analysis uses `0.68·N` for the leaves (the insert/delete mix lowers leaf
//! utilization slightly) and `0.69·N` above them, and treats the root
//! separately: its fanout is whatever the item count forces it to be.

use crate::{ModelError, Result};

/// Structural parameters of a B-tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Maximum number of entries in a node (`N` in the paper).
    pub max_node_size: usize,
    /// Steady-state fill factor of leaf nodes (paper: 0.68).
    pub leaf_fill: f64,
    /// Steady-state fill factor of non-leaf nodes (paper: 0.69 ≈ ln 2).
    pub upper_fill: f64,
}

impl NodeParams {
    /// Node parameters with the paper's fill constants.
    pub fn with_max_size(max_node_size: usize) -> Result<Self> {
        if max_node_size < 3 {
            return Err(ModelError::InvalidParameter {
                name: "max_node_size",
                constraint: "must be at least 3",
            });
        }
        Ok(NodeParams {
            max_node_size,
            leaf_fill: 0.68,
            upper_fill: 0.69,
        })
    }

    /// The paper's base node size, `N = 13` (§5.3).
    pub fn paper() -> Self {
        NodeParams::with_max_size(13).expect("13 ≥ 3")
    }

    /// Expected entries per leaf, `0.68·N`.
    pub fn leaf_occupancy(&self) -> f64 {
        self.leaf_fill * self.max_node_size as f64
    }

    /// Expected entries (fanout) per non-root internal node, `0.69·N`.
    pub fn upper_occupancy(&self) -> f64 {
        self.upper_fill * self.max_node_size as f64
    }
}

/// Derived steady-state shape of a B-tree holding a given number of items.
///
/// Levels follow the paper's convention: leaves are level 1, the root is
/// level `height`.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeShape {
    /// Number of levels `h` (≥ 1).
    pub height: usize,
    /// Expected number of nodes on each level; `node_counts[0]` is the leaf
    /// level, `node_counts[height-1] == 1.0` is the root.
    pub node_counts: Vec<f64>,
    /// `E(i)`: expected number of children (entries, at the leaves) of a
    /// level-`i` node; `fanouts[0]` is leaf occupancy.
    pub fanouts: Vec<f64>,
    /// The node parameters the shape was derived from.
    pub node: NodeParams,
    /// Number of items the tree holds.
    pub n_items: u64,
}

impl TreeShape {
    /// Derives the steady-state shape of a tree holding `n_items` items.
    ///
    /// Builds levels bottom-up: `n/leaf_occupancy` leaves, then each upper
    /// level divides by `upper_occupancy`, until one node remains — that
    /// node is the root and its fanout is the (possibly small) number of
    /// children the item count forces, matching the paper's setup where a
    /// 40 000-item tree with `N = 13` has 5 levels and a root of ~6
    /// children.
    pub fn derive(n_items: u64, node: NodeParams) -> Result<Self> {
        if n_items == 0 {
            return Err(ModelError::InvalidParameter {
                name: "n_items",
                constraint: "must be positive",
            });
        }
        let mut node_counts = Vec::new();
        let mut fanouts = Vec::new();

        let leaves = (n_items as f64 / node.leaf_occupancy()).max(1.0);
        node_counts.push(leaves);
        fanouts.push(node.leaf_occupancy().min(n_items as f64));

        // Upper levels until a single (root) node covers everything.
        let mut count = leaves;
        while count > 1.0 {
            let parent_count = count / node.upper_occupancy();
            if parent_count <= 1.0 {
                // The next level is the root; its fanout is the child
                // count, clamped to 2 — a real root has at least two
                // children (a fractional expectation below 2 would model
                // absurd root contention).
                node_counts.push(1.0);
                fanouts.push(count.max(2.0));
                break;
            }
            node_counts.push(parent_count);
            fanouts.push(node.upper_occupancy());
            count = parent_count;
        }

        Ok(TreeShape {
            height: node_counts.len(),
            node_counts,
            fanouts,
            node,
            n_items,
        })
    }

    /// A shape fixed by hand: explicit height and root fanout, with all
    /// intermediate fanouts at steady state. Useful for reproducing the
    /// paper's figures, which pin `h` and the root fanout.
    pub fn explicit(height: usize, root_fanout: f64, node: NodeParams) -> Result<Self> {
        if height == 0 {
            return Err(ModelError::InvalidParameter {
                name: "height",
                constraint: "must be at least 1",
            });
        }
        if root_fanout < 1.0 {
            return Err(ModelError::InvalidParameter {
                name: "root_fanout",
                constraint: "must be at least 1",
            });
        }
        let mut fanouts = vec![node.leaf_occupancy(); height];
        for f in fanouts.iter_mut().take(height - 1).skip(1) {
            *f = node.upper_occupancy();
        }
        if height > 1 {
            fanouts[height - 1] = root_fanout;
        } else {
            fanouts[0] = root_fanout;
        }
        let mut node_counts = vec![1.0; height];
        for i in (0..height - 1).rev() {
            node_counts[i] = node_counts[i + 1] * fanouts[i + 1];
        }
        let n_items = (node_counts[0] * fanouts[0]).round() as u64;
        Ok(TreeShape {
            height,
            node_counts,
            fanouts,
            node,
            n_items,
        })
    }

    /// A shape taken from *measured* per-level node counts (e.g. of a
    /// tree a simulator actually built), leaves first, root last. The
    /// fanouts are the measured ratios, so an analysis built on this
    /// shape models exactly the tree at hand rather than the
    /// steady-state expectation — useful near height boundaries, where
    /// expected-value shapes misestimate the root fanout badly.
    pub fn from_node_counts(counts: &[f64], n_items: u64, node: NodeParams) -> Result<Self> {
        if counts.is_empty() || counts[counts.len() - 1] != 1.0 {
            return Err(ModelError::InvalidParameter {
                name: "counts",
                constraint: "must end with a single root node",
            });
        }
        if counts.windows(2).any(|w| w[1] > w[0]) || counts.iter().any(|&c| c < 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "counts",
                constraint: "must be positive and non-increasing toward the root",
            });
        }
        let mut fanouts = Vec::with_capacity(counts.len());
        fanouts.push(n_items as f64 / counts[0]);
        for i in 1..counts.len() {
            fanouts.push(counts[i - 1] / counts[i]);
        }
        Ok(TreeShape {
            height: counts.len(),
            node_counts: counts.to_vec(),
            fanouts,
            node,
            n_items,
        })
    }

    /// The paper's base tree (§5.3): `N = 13`, ~40 000 items, 5 levels,
    /// root with ~6 children.
    pub fn paper() -> Self {
        TreeShape::derive(40_000, NodeParams::paper()).expect("paper parameters are valid")
    }

    /// `E(i)`: expected children of a level-`i` node (1-based level).
    ///
    /// # Panics
    /// Panics when `level` is outside `1..=height`.
    pub fn fanout(&self, level: usize) -> f64 {
        assert!(
            (1..=self.height).contains(&level),
            "level {level} out of range 1..={}",
            self.height
        );
        self.fanouts[level - 1]
    }

    /// The root's expected fanout, `E(h)`.
    pub fn root_fanout(&self) -> f64 {
        self.fanouts[self.height - 1]
    }

    /// Expected number of nodes on a level (1-based).
    pub fn node_count(&self, level: usize) -> f64 {
        assert!((1..=self.height).contains(&level));
        self.node_counts[level - 1]
    }

    /// Divides a root-level arrival rate down to `level` through the fanout
    /// chain: `λ_i = λ_{i+1}/E(i+1)` (Proposition 2).
    pub fn arrival_at_level(&self, lambda_root: f64, level: usize) -> f64 {
        assert!((1..=self.height).contains(&level));
        let mut lambda = lambda_root;
        for l in (level..self.height).rev() {
            lambda /= self.fanout(l + 1);
        }
        lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tree_matches_reported_shape() {
        let t = TreeShape::paper();
        assert_eq!(t.height, 5, "paper: the B-tree had 5 levels");
        let rf = t.root_fanout();
        assert!(
            (4.0..=9.0).contains(&rf),
            "paper: root held about 6 children, got {rf}"
        );
    }

    #[test]
    fn leaf_occupancy_values() {
        let n = NodeParams::paper();
        assert!((n.leaf_occupancy() - 8.84).abs() < 1e-9);
        assert!((n.upper_occupancy() - 8.97).abs() < 1e-9);
    }

    #[test]
    fn node_counts_consistent_with_fanouts() {
        let t = TreeShape::derive(100_000, NodeParams::with_max_size(20).unwrap()).unwrap();
        for i in 1..t.height {
            let implied = t.node_count(i + 1) * t.fanout(i + 1);
            let actual = t.node_count(i);
            assert!(
                (implied - actual).abs() < 1e-6 * actual.max(1.0),
                "level {i}: implied {implied} vs {actual}"
            );
        }
        assert_eq!(t.node_count(t.height), 1.0);
    }

    #[test]
    fn tiny_tree_is_single_level() {
        let t = TreeShape::derive(5, NodeParams::paper()).unwrap();
        assert_eq!(t.height, 1);
        assert!(t.fanout(1) <= 5.0 + 1e-12);
    }

    #[test]
    fn arrival_rate_divides_down_the_fanout_chain() {
        let t = TreeShape::paper();
        let lambda = 10.0;
        assert_eq!(t.arrival_at_level(lambda, t.height), lambda);
        let product: f64 = (2..=t.height).map(|l| t.fanout(l)).product();
        let at_leaf = t.arrival_at_level(lambda, 1);
        assert!((at_leaf - lambda / product).abs() < 1e-12);
        assert!(
            at_leaf < lambda / 1000.0,
            "leaf arrivals are tiny: {at_leaf}"
        );
    }

    #[test]
    fn explicit_shape_pins_height_and_root() {
        let t = TreeShape::explicit(5, 6.0, NodeParams::paper()).unwrap();
        assert_eq!(t.height, 5);
        assert_eq!(t.root_fanout(), 6.0);
        assert!((t.fanout(3) - NodeParams::paper().upper_occupancy()).abs() < 1e-12);
        assert!((t.fanout(1) - NodeParams::paper().leaf_occupancy()).abs() < 1e-12);
    }

    #[test]
    fn explicit_single_level() {
        let t = TreeShape::explicit(1, 4.0, NodeParams::paper()).unwrap();
        assert_eq!(t.height, 1);
        assert_eq!(t.root_fanout(), 4.0);
    }

    #[test]
    fn larger_nodes_give_shorter_trees() {
        let small = TreeShape::derive(40_000, NodeParams::with_max_size(13).unwrap()).unwrap();
        let large = TreeShape::derive(40_000, NodeParams::with_max_size(59).unwrap()).unwrap();
        assert!(
            large.height < small.height,
            "{} !< {}",
            large.height,
            small.height
        );
        // Steady-state occupancy gives 3 levels; the paper's Figure 16 pins
        // N=59 at 4 levels (a younger/sparser tree), which experiments
        // reproduce via `TreeShape::explicit`.
        assert_eq!(large.height, 3);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(TreeShape::derive(0, NodeParams::paper()).is_err());
        assert!(NodeParams::with_max_size(2).is_err());
        assert!(TreeShape::explicit(0, 5.0, NodeParams::paper()).is_err());
        assert!(TreeShape::explicit(3, 0.5, NodeParams::paper()).is_err());
    }
}
