//! End-to-end correctness-pillar tests: the three real protocols survive
//! perturbed stress with a linearizable verdict and clean audits, and a
//! deliberately broken reader is convicted — with the convicting seed
//! replayable.

use cbtree_btree::Protocol;
use cbtree_check::buggy::SkipRightLink;
use cbtree_check::stress::{run_stress, run_stress_on, StressConfig};
use cbtree_check::Verdict;

/// A shape small enough for debug-build CI but hot enough (tiny nodes,
/// narrow key space, injection on) to exercise splits constantly.
fn shape(protocol: Protocol, seed: u64) -> StressConfig {
    StressConfig {
        threads: 8,
        ops_per_thread: 150,
        ..StressConfig::quick(protocol, seed)
    }
}

#[test]
fn real_protocols_are_linearizable_under_perturbed_stress() {
    for protocol in Protocol::ALL {
        for seed in [2, 41] {
            let out = run_stress(&shape(protocol, seed));
            assert!(
                out.passed(),
                "{protocol:?} seed {seed}: {}",
                out.failure().unwrap_or_default()
            );
            assert!(
                matches!(out.verdict, Verdict::Linearizable { .. }),
                "{protocol:?} seed {seed}: expected full linearizability, got {:?}",
                out.verdict
            );
            let audit = out.audit.expect("real trees are auditable");
            let report = audit.unwrap_or_else(|e| panic!("{protocol:?} seed {seed}: {e}"));
            assert!(
                report.nodes_per_level.len() >= 2,
                "{protocol:?}: stress should grow a multi-level tree"
            );
        }
    }
}

#[test]
fn buggy_reader_is_caught_and_its_seed_replays() {
    // Scan seeds until the checker convicts the stale reader. The bug's
    // race window is wide (the wrapper spins between leaf choice and
    // read), so conviction comes within a few seeds.
    let mut convicted = None;
    for seed in 1..=12u64 {
        let map = SkipRightLink::new(4);
        let out = run_stress_on(&map, &shape(Protocol::BLink, seed));
        if let Verdict::Violation(w) = &out.verdict {
            // Witness must be about the stale read: a Get whose key
            // history cannot justify its response.
            assert!(
                !w.render().is_empty() && !w.key_trace.is_empty(),
                "witness should carry the per-key trace"
            );
            // The tree itself stays structurally sound — only the
            // checker can convict a read-path bug.
            out.audit
                .expect("auditable")
                .unwrap_or_else(|e| panic!("audit should stay clean: {e}"));
            convicted = Some(seed);
            break;
        }
    }
    let seed = convicted.expect("stale-read bug escaped all 12 seeds");

    // Replay: the perturbation decision stream and the workload are pure
    // functions of the seed, so re-running it re-applies identical
    // schedule pressure. OS timing retains some slack, so allow a few
    // attempts — conviction must recur almost immediately.
    let replayed = (0..3).any(|_| {
        let map = SkipRightLink::new(4);
        let out = run_stress_on(&map, &shape(Protocol::BLink, seed));
        matches!(out.verdict, Verdict::Violation(_))
    });
    assert!(
        replayed,
        "seed {seed} convicted once but never again in 3 replays"
    );
}
