//! End-to-end correctness-pillar tests: the real protocols (the paper's
//! three plus OLC) survive perturbed stress with a linearizable verdict
//! and clean audits, and the deliberately broken readers — latched and
//! optimistic — are each convicted, with the convicting seed replayable.

use cbtree_btree::Protocol;
use cbtree_check::buggy::{run_recycle_conviction, SkipParentRevalidation, SkipRightLink};
use cbtree_check::stress::{run_stress, run_stress_on, StressConfig};
use cbtree_check::{ConcurrentMap, Verdict};
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests in this binary. Each stress run spawns 8 worker
/// threads and the convictions are timing-sensitive (the planted bugs
/// race a split against a reader's descent window); running the tests
/// concurrently triples the thread pressure and starves those windows
/// of the interleavings they need.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A shape small enough for debug-build CI but hot enough (tiny nodes,
/// narrow key space, injection on) to exercise splits constantly.
fn shape(protocol: Protocol, seed: u64) -> StressConfig {
    StressConfig {
        threads: 8,
        ops_per_thread: 150,
        ..StressConfig::quick(protocol, seed)
    }
}

#[test]
fn real_protocols_are_linearizable_under_perturbed_stress() {
    let _serial = serial();
    for protocol in Protocol::ALL.into_iter().chain([Protocol::Olc]) {
        for seed in [2, 41] {
            let out = run_stress(&shape(protocol, seed));
            assert!(
                out.passed(),
                "{protocol:?} seed {seed}: {}",
                out.failure().unwrap_or_default()
            );
            assert!(
                matches!(out.verdict, Verdict::Linearizable { .. }),
                "{protocol:?} seed {seed}: expected full linearizability, got {:?}",
                out.verdict
            );
            let audit = out.audit.expect("real trees are auditable");
            let report = audit.unwrap_or_else(|e| panic!("{protocol:?} seed {seed}: {e}"));
            assert!(
                report.nodes_per_level.len() >= 2,
                "{protocol:?}: stress should grow a multi-level tree"
            );
        }
    }
}

/// Scans `seeds` for one whose conviction of the planted bug *replays*:
/// after the checker convicts, the same seed must convict again within
/// `replays` re-runs. The perturbation decision stream and the workload
/// are pure functions of the seed, so a re-run re-applies identical
/// schedule pressure — but OS timing retains some slack (especially on
/// loaded or single-core hosts), so a conviction can land once through
/// scheduler luck on a seed whose pressure is only marginal. Such a
/// seed is disqualified and the scan moves on: the property under test
/// is the existence of a *replayable* convicting seed, which is what
/// makes the planted bug a usable regression target.
fn find_replayable_conviction<M: ConcurrentMap<u64>>(
    make_map: impl Fn() -> M,
    protocol: Protocol,
    seeds: std::ops::RangeInclusive<u64>,
    replays: usize,
) -> u64 {
    let mut convictions = 0u32;
    for seed in seeds.clone() {
        let out = run_stress_on(&make_map(), &shape(protocol, seed));
        let Verdict::Violation(w) = &out.verdict else {
            continue;
        };
        // Witness must be about the stale read: a Get whose key history
        // cannot justify its response.
        assert!(
            !w.render().is_empty() && !w.key_trace.is_empty(),
            "witness should carry the per-key trace"
        );
        // Writes delegate to the sound tree, so structure stays clean —
        // only the linearizability checker can see a read-path bug.
        out.audit
            .expect("auditable")
            .unwrap_or_else(|e| panic!("audit should stay clean: {e}"));
        convictions += 1;
        let replayed = (0..replays).any(|_| {
            let out = run_stress_on(&make_map(), &shape(protocol, seed));
            matches!(out.verdict, Verdict::Violation(_))
        });
        if replayed {
            return seed;
        }
        // Marginal conviction: keep scanning rather than betting the
        // test on a fluke.
    }
    panic!(
        "no replayable conviction in seeds {seeds:?} \
         ({convictions} marginal conviction(s) that never replayed)"
    );
}

#[test]
fn buggy_reader_is_caught_and_its_seed_replays() {
    let _serial = serial();
    // The bug's race window is wide (the wrapper spins between leaf
    // choice and read), so a replayable conviction comes within a few
    // seeds.
    let seed = find_replayable_conviction(|| SkipRightLink::new(4), Protocol::BLink, 1..=12, 3);
    assert!(seed >= 1);
}

#[test]
fn buggy_olc_reader_is_caught_and_its_seed_replays() {
    let _serial = serial();
    // Same conviction discipline for the optimistic planted bug: the
    // wrapper's link-free descent spins between the parent's routing
    // decision and the child read, so a split landing in that window
    // moves the key sideways and only the skipped parent re-validation
    // could have caught it. The OLC window is narrower than the b-link
    // one (the split must land between routing and the child read, not
    // merely before a latched read), so OS timing slack gets more
    // replay attempts here.
    let seed =
        find_replayable_conviction(|| SkipParentRevalidation::new(4), Protocol::Olc, 1..=16, 6);
    assert!(seed >= 1);
}

#[test]
fn recycling_blind_reader_is_caught_by_directed_scenario() {
    let _serial = serial();
    // The slot-recycling bug needs its directed scenario (random stress
    // can't convict it: by the time a leaf drains naturally, the read
    // key drained with it, and the buggy `None` is linearizable). The
    // scenario is near-deterministic — the reader parks in its window
    // before the writer starts — but it races real threads, so allow a
    // few attempts before declaring the pillar toothless.
    let caught = (0..5).any(|_| {
        let out = run_recycle_conviction();
        if let Verdict::Violation(w) = &out.verdict {
            assert!(
                !w.key_trace.is_empty(),
                "witness should carry the per-key trace"
            );
            // Writes delegate to the sound tree: structure stays clean.
            out.audit
                .expect("auditable")
                .unwrap_or_else(|e| panic!("audit should stay clean: {e}"));
            true
        } else {
            false
        }
    });
    assert!(
        caught,
        "directed recycle scenario never convicted the generation-skipping reader"
    );
}
