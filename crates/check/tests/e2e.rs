//! End-to-end correctness-pillar tests: the real protocols (the paper's
//! three plus OLC) survive perturbed stress with a linearizable verdict
//! and clean audits, and the deliberately broken readers — latched and
//! optimistic — are each convicted, with the convicting seed replayable.

use cbtree_btree::Protocol;
use cbtree_check::buggy::{SkipParentRevalidation, SkipRightLink};
use cbtree_check::stress::{run_stress, run_stress_on, StressConfig};
use cbtree_check::Verdict;
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests in this binary. Each stress run spawns 8 worker
/// threads and the convictions are timing-sensitive (the planted bugs
/// race a split against a reader's descent window); running the tests
/// concurrently triples the thread pressure and starves those windows
/// of the interleavings they need.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A shape small enough for debug-build CI but hot enough (tiny nodes,
/// narrow key space, injection on) to exercise splits constantly.
fn shape(protocol: Protocol, seed: u64) -> StressConfig {
    StressConfig {
        threads: 8,
        ops_per_thread: 150,
        ..StressConfig::quick(protocol, seed)
    }
}

#[test]
fn real_protocols_are_linearizable_under_perturbed_stress() {
    let _serial = serial();
    for protocol in Protocol::ALL.into_iter().chain([Protocol::Olc]) {
        for seed in [2, 41] {
            let out = run_stress(&shape(protocol, seed));
            assert!(
                out.passed(),
                "{protocol:?} seed {seed}: {}",
                out.failure().unwrap_or_default()
            );
            assert!(
                matches!(out.verdict, Verdict::Linearizable { .. }),
                "{protocol:?} seed {seed}: expected full linearizability, got {:?}",
                out.verdict
            );
            let audit = out.audit.expect("real trees are auditable");
            let report = audit.unwrap_or_else(|e| panic!("{protocol:?} seed {seed}: {e}"));
            assert!(
                report.nodes_per_level.len() >= 2,
                "{protocol:?}: stress should grow a multi-level tree"
            );
        }
    }
}

#[test]
fn buggy_reader_is_caught_and_its_seed_replays() {
    let _serial = serial();
    // Scan seeds until the checker convicts the stale reader. The bug's
    // race window is wide (the wrapper spins between leaf choice and
    // read), so conviction comes within a few seeds.
    let mut convicted = None;
    for seed in 1..=12u64 {
        let map = SkipRightLink::new(4);
        let out = run_stress_on(&map, &shape(Protocol::BLink, seed));
        if let Verdict::Violation(w) = &out.verdict {
            // Witness must be about the stale read: a Get whose key
            // history cannot justify its response.
            assert!(
                !w.render().is_empty() && !w.key_trace.is_empty(),
                "witness should carry the per-key trace"
            );
            // The tree itself stays structurally sound — only the
            // checker can convict a read-path bug.
            out.audit
                .expect("auditable")
                .unwrap_or_else(|e| panic!("audit should stay clean: {e}"));
            convicted = Some(seed);
            break;
        }
    }
    let seed = convicted.expect("stale-read bug escaped all 12 seeds");

    // Replay: the perturbation decision stream and the workload are pure
    // functions of the seed, so re-running it re-applies identical
    // schedule pressure. OS timing retains some slack, so allow a few
    // attempts — conviction must recur almost immediately.
    let replayed = (0..3).any(|_| {
        let map = SkipRightLink::new(4);
        let out = run_stress_on(&map, &shape(Protocol::BLink, seed));
        matches!(out.verdict, Verdict::Violation(_))
    });
    assert!(
        replayed,
        "seed {seed} convicted once but never again in 3 replays"
    );
}

#[test]
fn buggy_olc_reader_is_caught_and_its_seed_replays() {
    let _serial = serial();
    // Same conviction discipline for the optimistic planted bug: the
    // wrapper's link-free descent spins between the parent's routing
    // decision and the child read, so a split landing in that window
    // moves the key sideways and only the skipped parent re-validation
    // could have caught it.
    let mut convicted = None;
    for seed in 1..=16u64 {
        let map = SkipParentRevalidation::new(4);
        let out = run_stress_on(&map, &shape(Protocol::Olc, seed));
        if let Verdict::Violation(w) = &out.verdict {
            assert!(
                !w.render().is_empty() && !w.key_trace.is_empty(),
                "witness should carry the per-key trace"
            );
            // Writes delegate to the sound OLC tree, so structure stays
            // clean — only the linearizability checker sees the bug.
            out.audit
                .expect("auditable")
                .unwrap_or_else(|e| panic!("audit should stay clean: {e}"));
            convicted = Some(seed);
            break;
        }
    }
    let seed = convicted.expect("stale OLC read escaped all 16 seeds");

    // The OLC window is narrower than the b-link one (the split must
    // land between routing and the child read, not merely before a
    // latched read), so OS timing slack gets more attempts here.
    let replayed = (0..6).any(|_| {
        let map = SkipParentRevalidation::new(4);
        let out = run_stress_on(&map, &shape(Protocol::Olc, seed));
        matches!(out.verdict, Verdict::Violation(_))
    });
    assert!(
        replayed,
        "seed {seed} convicted once but never again in 6 replays"
    );
}
