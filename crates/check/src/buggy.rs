//! Deliberately broken map implementations that the checker must catch.
//!
//! The correctness pillar is only trustworthy if it demonstrably rejects
//! wrong implementations, so this module keeps known-bad readers around
//! as permanent regression targets:
//!
//! * [`SkipRightLink`] re-creates the classic Lehman–Yao reader bug of
//!   trusting a stale leaf choice — reading the leaf it descended to
//!   *without* re-checking `covers()` and chasing right links after
//!   latching. When a concurrent half-split moves the key right in the
//!   window between descent and read, the read misses a present key.
//! * [`SkipParentRevalidation`] re-creates the classic OLC reader bug:
//!   an optimistic descent that validates each node's own version
//!   window but **skips the parent re-validation after the child
//!   read** — the hand-over-hand step. It models the link-free OLC
//!   readers of the literature (no `covers()`/right-link safety net),
//!   where that re-validation alone carries the proof that the routing
//!   decision was still current; without it, a split that moves the key
//!   sideways inside the window turns into a miss of a present key.
//! * [`SkipGenerationCheck`] re-creates the slot-recycling reader bug
//!   the arena's generation protocol exists to prevent: a reader that
//!   holds a node *handle* across an unlatched window and then trusts
//!   it **without re-checking the slot generation**. When a concurrent
//!   `vacuum` recycles the slot in that window, the reader latches a
//!   placeholder (or an unrelated re-allocated node), whose infinite
//!   high key happily `covers()` every key — so a present key reads as
//!   absent. Version validation cannot catch this: the recycled slot's
//!   *fresh* version validates fine.
//!
//! All three are linearizability violations (stale reads) that no
//! quiescent structural audit can see, because the trees themselves
//! stay perfectly well-formed.

use crate::history::ConcurrentMap;
use cbtree_btree::node::{Children, NodeId, NodeRef};
use cbtree_btree::{ConcurrentBTree, OpCountersSnapshot, Protocol};

/// A B-link tree whose `get` skips the post-latch `covers()` re-check
/// and right-link chase at the leaf level. Writes delegate to the
/// correct tree, so all structure stays valid — only reads race.
#[derive(Debug)]
pub struct SkipRightLink {
    inner: ConcurrentBTree<u64>,
    /// Spin iterations between choosing the leaf and reading it, modeling
    /// a reader that holds its (unprotected) leaf choice across a delay.
    /// Widens the race so stress runs expose the bug reliably.
    window_spin: u32,
}

impl SkipRightLink {
    /// A buggy reader over a fresh B-link tree of the given capacity.
    pub fn new(capacity: usize) -> Self {
        SkipRightLink {
            inner: ConcurrentBTree::new(Protocol::BLink, capacity),
            window_spin: 400_000,
        }
    }
}

// Everything except `get` delegates to the sound inner tree, so the
// structural auditors pass — only the linearizability checker can
// convict this implementation.
impl ConcurrentMap<u64> for SkipRightLink {
    fn get(&self, key: &u64) -> Option<u64> {
        let key = *key;
        // Correct descent: chase right links on the way down.
        let mut cur = self.inner.root_handle();
        loop {
            let next = {
                let g = cur.read();
                if !g.covers(key) {
                    Some(g.right.expect("finite high key implies right"))
                } else {
                    match &g.children {
                        Children::Leaf(_) => None,
                        Children::Internal(_) => Some(g.child_for(key)),
                    }
                }
            };
            match next {
                Some(n) => cur = cur.at(n),
                None => break,
            }
        }
        // The window a correct reader closes by re-checking coverage
        // under the latch; a split landing here moves `key` right.
        for _ in 0..self.window_spin {
            std::hint::spin_loop();
        }
        std::thread::yield_now();
        let g = cur.read();
        // BUG: no `covers()` re-check, no right-link chase.
        g.leaf_get(key).copied()
    }

    fn protocol_name(&self) -> &'static str {
        "skip-right-link"
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn height(&self) -> usize {
        self.inner.height()
    }

    fn insert(&self, key: u64, val: u64) -> Option<u64> {
        self.inner.insert(key, val)
    }

    fn remove(&self, key: &u64) -> Option<u64> {
        ConcurrentBTree::remove(&self.inner, key)
    }

    fn contains_key(&self, key: &u64) -> bool {
        self.get(key).is_some() // routed through the buggy reader
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner.range(lo, hi)
    }

    fn check(&self) -> Result<(), String> {
        self.inner.check()
    }

    fn root_handle(&self) -> NodeRef<u64> {
        self.inner.root_handle()
    }

    fn counters(&self) -> OpCountersSnapshot {
        self.inner.counters()
    }
}

/// An OLC tree whose `get` validates each node's own version window but
/// never re-validates the parent after reading the child — the
/// hand-over-hand step of optimistic lock coupling. It models the
/// link-free OLC readers of the literature: routing is trusted from the
/// parent's window alone, with no `covers()` re-check or right-link
/// chase to fall back on, so the skipped re-validation is load-bearing.
/// Writes delegate to the correct tree, so all structure stays valid —
/// only reads race.
#[derive(Debug)]
pub struct SkipParentRevalidation {
    inner: ConcurrentBTree<u64>,
    /// Spin iterations between the parent's routing decision and the
    /// child read, modeling a reader descheduled mid-descent. Widens the
    /// race so stress runs expose the bug reliably.
    window_spin: u32,
}

impl SkipParentRevalidation {
    /// A buggy optimistic reader over a fresh OLC tree of the given
    /// capacity.
    pub fn new(capacity: usize) -> Self {
        SkipParentRevalidation {
            inner: ConcurrentBTree::new(Protocol::Olc, capacity),
            window_spin: 400_000,
        }
    }
}

// Everything except `get` delegates to the sound inner tree, so the
// structural auditors pass — only the linearizability checker can
// convict this implementation.
impl ConcurrentMap<u64> for SkipParentRevalidation {
    #[allow(unsafe_code)]
    fn get(&self, key: &u64) -> Option<u64> {
        enum Step {
            Down(NodeId),
            Done(Option<u64>),
        }
        let key = *key;
        'restart: loop {
            let mut cur = self.inner.root_handle();
            let mut routed = false;
            loop {
                // The window a correct reader closes by re-validating the
                // parent's recorded version after this node's own window;
                // a split landing here moves `key` sideways, out of reach
                // of a link-free descent. (No window before the root
                // visit — there is no routing decision to go stale yet.)
                // The spin is sliced up with yields: a pure spin would
                // starve the very writers whose split must land in the
                // window on a loaded or single-core host, while on an
                // idle multicore host the slices still hold the window
                // open.
                if routed && self.window_spin > 0 {
                    for _ in 0..16 {
                        for _ in 0..self.window_spin / 16 {
                            std::hint::spin_loop();
                        }
                        std::thread::yield_now();
                    }
                }
                routed = true;
                // Each node's own window is still validated (no torn
                // reads) — the bug is purely about stale routing.
                // SAFETY: the closure copies POD `u64`s through checked
                // accesses and copies `Copy` node ids; slab slots are
                // never deallocated, so even a torn id resolves to
                // initialized memory, and a torn result is discarded on
                // failed validation. The planted bug skips the *parent*
                // re-validation — a linearizability violation, not a
                // memory-safety one. (This tree never vacuums, so slot
                // generations never move.)
                let attempt = unsafe {
                    cur.read_optimistic(|n| match &n.children {
                        Children::Leaf(vals) => Some(Step::Done(
                            n.keys
                                .binary_search(&key)
                                .ok()
                                .and_then(|i| vals.get(i))
                                .copied(),
                        )),
                        Children::Internal(kids) => {
                            kids.get(n.child_index(key)).copied().map(Step::Down)
                        }
                    })
                };
                match attempt {
                    // BUG: the parent's version is never recorded, so the
                    // routing that led here is trusted unconditionally.
                    Some((_ver, Some(Step::Done(v)))) => return v,
                    Some((_ver, Some(Step::Down(child)))) => cur = cur.at(child),
                    _ => continue 'restart,
                }
            }
        }
    }

    fn protocol_name(&self) -> &'static str {
        "skip-parent-revalidation"
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn height(&self) -> usize {
        self.inner.height()
    }

    fn insert(&self, key: u64, val: u64) -> Option<u64> {
        self.inner.insert(key, val)
    }

    fn remove(&self, key: &u64) -> Option<u64> {
        ConcurrentBTree::remove(&self.inner, key)
    }

    fn contains_key(&self, key: &u64) -> bool {
        self.get(key).is_some() // routed through the buggy reader
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner.range(lo, hi)
    }

    fn check(&self) -> Result<(), String> {
        self.inner.check()
    }

    fn root_handle(&self) -> NodeRef<u64> {
        self.inner.root_handle()
    }

    fn counters(&self) -> OpCountersSnapshot {
        self.inner.counters()
    }
}

/// An OLC tree whose latched reader holds a leaf *handle* across an
/// unlatched window and then trusts it without re-checking the slot
/// generation — while its own `remove` runs `vacuum` passes that
/// recycle emptied leaves under that very window. Everything else is
/// honest: the descent chases right links both before and after the
/// latch, so the only way to lose a key is through a recycled slot.
/// Writes delegate to the correct tree, so all structure stays valid —
/// only reads race.
#[derive(Debug)]
pub struct SkipGenerationCheck {
    inner: ConcurrentBTree<u64>,
    /// Spin iterations between resolving the leaf handle and latching
    /// it — the unlatched window a correct reader closes with
    /// `NodeRef::stale()`. Much wider than the other two bugs' windows:
    /// conviction needs a *compound* event inside it (a split moves the
    /// key right out of the held leaf, the leaf's remaining keys are
    /// removed, and a vacuum recycles the emptied slot — all while the
    /// key itself stays present), so the window must span many writer
    /// operations.
    window_spin: u32,
}

impl SkipGenerationCheck {
    /// A buggy latched reader over a fresh OLC tree of the given
    /// capacity.
    pub fn new(capacity: usize) -> Self {
        SkipGenerationCheck {
            inner: ConcurrentBTree::new(Protocol::Olc, capacity),
            window_spin: 4_000_000,
        }
    }
}

// Everything except `get` (and the vacuum-churning `remove`) delegates
// to the sound inner tree, so the structural auditors pass — only the
// linearizability checker can convict this implementation.
impl ConcurrentMap<u64> for SkipGenerationCheck {
    fn get(&self, key: &u64) -> Option<u64> {
        let key = *key;
        // Honest one-latch-at-a-time descent to the covering leaf.
        let mut cur = self.inner.root_handle();
        loop {
            let next = {
                let g = cur.read();
                if !g.covers(key) {
                    Some(g.right.expect("finite high key implies right"))
                } else {
                    match &g.children {
                        Children::Leaf(_) => None,
                        Children::Internal(_) => Some(g.child_for(key)),
                    }
                }
            };
            match next {
                Some(n) => cur = cur.at(n),
                None => break,
            }
        }
        // The unlatched window: the handle is held with no latch and no
        // version recorded. A concurrent vacuum recycling `cur`'s slot
        // here is exactly what `NodeRef::stale()` exists to catch. The
        // spin is sliced up with yields so the writers whose vacuum must
        // land in the window are not starved on a loaded host, and each
        // slice polls the slot so the read below lands at the worst
        // possible moment — right as the slot is recycled. The poll is
        // race-widening instrumentation (schedule steering, like
        // `window_spin` itself); the read path below is the BUG: it
        // still never consults `stale()` before trusting the handle.
        for _ in 0..64 {
            for _ in 0..self.window_spin / 64 {
                std::hint::spin_loop();
            }
            if cur.stale() {
                break;
            }
            std::thread::yield_now();
        }
        // Honest latched read — covers() re-checked, right links chased —
        // except for the BUG: `g.stale()` is never consulted, so a
        // recycled slot's placeholder (infinite high key, no keys) or an
        // unrelated re-allocated node is read as if it were our leaf.
        loop {
            let g = cur.read();
            if g.covers(key) {
                return g.leaf_get(key).copied();
            }
            let next = g.right.expect("finite high key implies right");
            drop(g);
            cur = cur.at(next);
        }
    }

    fn remove(&self, key: &u64) -> Option<u64> {
        let out = ConcurrentBTree::remove(&self.inner, key);
        // Recycle promptly: a leaf emptied inside some reader's window
        // must be reclaimed while that window is still open, so every
        // remove runs a vacuum pass (it serializes internally and the
        // trees here are tiny, so this stays cheap).
        self.inner.vacuum();
        out
    }

    fn protocol_name(&self) -> &'static str {
        "skip-generation-check"
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn height(&self) -> usize {
        self.inner.height()
    }

    fn insert(&self, key: u64, val: u64) -> Option<u64> {
        self.inner.insert(key, val)
    }

    fn contains_key(&self, key: &u64) -> bool {
        self.get(key).is_some() // routed through the buggy reader
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner.range(lo, hi)
    }

    fn check(&self) -> Result<(), String> {
        self.inner.check()
    }

    fn root_handle(&self) -> NodeRef<u64> {
        self.inner.root_handle()
    }

    fn counters(&self) -> OpCountersSnapshot {
        self.inner.counters()
    }

    fn vacuum(&self) -> usize {
        self.inner.vacuum()
    }
}

/// Drives [`SkipGenerationCheck`] through the one interleaving its
/// missing `stale()` check exists to prevent, records the execution as
/// a real concurrent history, and hands it to the linearizability
/// checker. Returns the checker's outcome; a working checker must
/// return a violation.
///
/// The random stress sweep essentially never convicts this bug, and for
/// an instructive reason: a leaf only recycles once it *drains*, and by
/// then the drained keys — the one being read included — are absent, so
/// the buggy `None` is linearizable. The only convicting sequence is
/// compound: a split first moves the read key *right*, out of the held
/// leaf, then the leaf's remnant empties and is vacuumed, all inside a
/// single reader's unlatched window, while the key itself is never
/// touched. Two further subtleties shape the setup:
///
/// * a split moves `K` rightward only when `K` sits in the *upper* half
///   of the overflowing leaf, so `K` must not be its leaf's minimum —
///   and once any split picks `K` as a separator, `K` *becomes* a leaf
///   minimum for good (splits keep minima in the left node), killing
///   every later chance. Hence `K` is placed *between* prefill keys,
///   never a separator initially, and the scenario is one-shot per map
///   (the driver retries with a fresh map instead of a fresh round);
/// * the vacuum pass never reclaims a parent's first child, so `K`'s
///   leaf must not be one of those immortal slots — the deterministic
///   ascending prefill pins the layout, making the choice stable.
///
/// The harness runs the sequence with two real racing threads:
///
/// * the **reader** descends to `K`'s covering leaf and parks in its
///   unlatched window (which polls the slot, so the buggy read lands
///   right after the recycle);
/// * the **writer** waits a beat for the reader to park, force-splits
///   `K`'s leaf by filling it from below (`K` ends in the new right
///   sibling; the held slot keeps the left remnant), then drains every
///   key but `K` — each remove runs a vacuum, so the emptied remnant
///   recycles under the reader, and nothing allocates afterwards, so
///   the slot stays a placeholder for the unchecked read to latch.
///
/// `K` is present from prefill to teardown and no write ever targets
/// it, so any `Get(K) → None` is unjustifiable under any linearization.
pub fn run_recycle_conviction() -> crate::stress::StressOutcome {
    use crate::audit::{audit, audit_with_contents};
    use crate::history::{record, Clock, History, Op};
    use crate::linearize::{check_history, CheckConfig, Verdict};
    use std::sync::atomic::{AtomicBool, Ordering};

    // Prefill 0, 8, …, 120 deterministically builds (capacity 3) leaves
    // on multiple-of-8 separators; 84 enters the reclaimable leaf
    // covering [80, 96) as a non-minimum, non-separator tenant, so the
    // fillers 81..84 land beside it and the first overflow sends it
    // right.
    const K: u64 = 84;
    let map = SkipGenerationCheck {
        // Far wider window than the stress default: it ends early (the
        // poll breaks it the moment the slot recycles), and a timeout
        // merely costs one attempt.
        window_spin: 40_000_000,
        ..SkipGenerationCheck::new(3)
    };
    let mut init: Vec<(u64, u64)> = (0..16u64).map(|i| (i * 8, i * 8)).collect();
    init.push((K, K));
    for &(k, v) in &init {
        map.insert(k, v);
    }

    let clock = Clock::new();
    let done = AtomicBool::new(false);
    let batches = std::thread::scope(|s| {
        let reader = s.spawn(|| {
            let mut out = Vec::new();
            for _ in 0..3 {
                let r = record(&map, &clock, 0, Op::Get(K));
                let missed = r.ret.is_none();
                out.push(r);
                if missed {
                    break; // the stale read happened; one miss convicts
                }
            }
            done.store(true, Ordering::Release);
            out
        });
        let writer = s.spawn(|| {
            let mut out = Vec::new();
            // Let the reader reach K's leaf and park: its descent takes
            // microseconds, this pause a millisecond.
            std::thread::sleep(std::time::Duration::from_millis(1));
            // Overflow K's leaf from below: the first filler splits
            // {80, K, 88} into {80, 81} — the slot the reader holds —
            // and a fresh right sibling {K, 88}.
            for f in [K - 3, K - 2, K - 1] {
                out.push(record(&map, &clock, 1, Op::Insert(f, f)));
            }
            // Drain everything but K. Every remove vacuums, so the held
            // remnant is recycled the moment it empties — and nothing
            // allocates afterwards, so the slot stays a placeholder for
            // the reader's unchecked read to latch.
            for f in [K - 3, K - 2, K - 1] {
                out.push(record(&map, &clock, 1, Op::Remove(f)));
            }
            for &(k, _) in &init {
                if k != K {
                    out.push(record(&map, &clock, 1, Op::Remove(k)));
                }
            }
            // Hold still until the reader has taken its bite (or its
            // last window timed out).
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            out
        });
        vec![reader.join().unwrap(), writer.join().unwrap()]
    });

    let history = History::from_threads(init, batches);
    let ops = history.ops.len();
    let verdict = check_history(&history, CheckConfig::default());
    let audit_result = Some(match &verdict {
        Verdict::Linearizable { final_state } => audit_with_contents(&map, final_state),
        _ => audit(&map),
    });
    crate::stress::StressOutcome {
        verdict,
        audit: audit_result,
        ops,
        inject_stats: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_use_is_correct() {
        // Without concurrency the skipped re-check never matters.
        let m = SkipRightLink::new(4);
        for k in 0..200u64 {
            assert_eq!(m.insert(k, k * 7), None);
        }
        for k in 0..200u64 {
            assert_eq!(m.get(&k), Some(k * 7));
        }
        assert_eq!(m.remove(&13), Some(91));
        assert_eq!(m.get(&13), None);
    }

    #[test]
    fn sequential_olc_use_is_correct() {
        // Without concurrency the skipped parent re-validation never
        // matters either: every window validates on the first try.
        let m = SkipParentRevalidation {
            window_spin: 0, // no race to widen sequentially
            ..SkipParentRevalidation::new(4)
        };
        for k in 0..200u64 {
            assert_eq!(m.insert(k, k * 3), None);
        }
        for k in 0..200u64 {
            assert_eq!(m.get(&k), Some(k * 3));
        }
        assert_eq!(m.remove(&13), Some(39));
        assert_eq!(m.get(&13), None);
        assert!(m.contains_key(&14));
    }

    #[test]
    fn sequential_generation_skipping_use_is_correct() {
        // Without concurrency a slot is never recycled mid-read, so the
        // skipped stale() check never matters — even though removes run
        // real vacuum passes.
        let m = SkipGenerationCheck {
            window_spin: 0, // no race to widen sequentially
            ..SkipGenerationCheck::new(4)
        };
        for k in 0..200u64 {
            assert_eq!(m.insert(k, k * 5), None);
        }
        for k in 0..200u64 {
            assert_eq!(m.get(&k), Some(k * 5));
        }
        for k in 50..150u64 {
            assert_eq!(m.remove(&k), Some(k * 5));
        }
        m.check().expect("vacuumed tree stays well-formed");
        for k in 0..200u64 {
            assert_eq!(m.get(&k).is_some(), !(50..150).contains(&k), "key {k}");
        }
    }
}
