//! Deliberately broken map implementations that the checker must catch.
//!
//! The correctness pillar is only trustworthy if it demonstrably rejects
//! wrong implementations, so this module keeps known-bad readers around
//! as permanent regression targets:
//!
//! * [`SkipRightLink`] re-creates the classic Lehman–Yao reader bug of
//!   trusting a stale leaf choice — reading the leaf it descended to
//!   *without* re-checking `covers()` and chasing right links after
//!   latching. When a concurrent half-split moves the key right in the
//!   window between descent and read, the read misses a present key.
//! * [`SkipParentRevalidation`] re-creates the classic OLC reader bug:
//!   an optimistic descent that validates each node's own version
//!   window but **skips the parent re-validation after the child
//!   read** — the hand-over-hand step. It models the link-free OLC
//!   readers of the literature (no `covers()`/right-link safety net),
//!   where that re-validation alone carries the proof that the routing
//!   decision was still current; without it, a split that moves the key
//!   sideways inside the window turns into a miss of a present key.
//!
//! Both are linearizability violations (stale reads) that no quiescent
//! structural audit can see, because the trees themselves stay
//! perfectly well-formed.

use crate::history::ConcurrentMap;
use cbtree_btree::node::{Children, NodeRef};
use cbtree_btree::{ConcurrentBTree, OpCountersSnapshot, Protocol};
use std::sync::Arc;

/// A B-link tree whose `get` skips the post-latch `covers()` re-check
/// and right-link chase at the leaf level. Writes delegate to the
/// correct tree, so all structure stays valid — only reads race.
#[derive(Debug)]
pub struct SkipRightLink {
    inner: ConcurrentBTree<u64>,
    /// Spin iterations between choosing the leaf and reading it, modeling
    /// a reader that holds its (unprotected) leaf choice across a delay.
    /// Widens the race so stress runs expose the bug reliably.
    window_spin: u32,
}

impl SkipRightLink {
    /// A buggy reader over a fresh B-link tree of the given capacity.
    pub fn new(capacity: usize) -> Self {
        SkipRightLink {
            inner: ConcurrentBTree::new(Protocol::BLink, capacity),
            window_spin: 400_000,
        }
    }
}

// Everything except `get` delegates to the sound inner tree, so the
// structural auditors pass — only the linearizability checker can
// convict this implementation.
impl ConcurrentMap<u64> for SkipRightLink {
    fn get(&self, key: &u64) -> Option<u64> {
        let key = *key;
        // Correct descent: chase right links on the way down.
        let mut cur = self.inner.root_handle();
        loop {
            let next = {
                let g = cur.read();
                if !g.covers(key) {
                    Some(Arc::clone(
                        g.right.as_ref().expect("finite high key implies right"),
                    ))
                } else {
                    match &g.children {
                        Children::Leaf(_) => None,
                        Children::Internal(_) => Some(g.child_for(key)),
                    }
                }
            };
            match next {
                Some(n) => cur = n,
                None => break,
            }
        }
        // The window a correct reader closes by re-checking coverage
        // under the latch; a split landing here moves `key` right.
        for _ in 0..self.window_spin {
            std::hint::spin_loop();
        }
        std::thread::yield_now();
        let g = cur.read();
        // BUG: no `covers()` re-check, no right-link chase.
        g.leaf_get(key).copied()
    }

    fn protocol_name(&self) -> &'static str {
        "skip-right-link"
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn height(&self) -> usize {
        self.inner.height()
    }

    fn insert(&self, key: u64, val: u64) -> Option<u64> {
        self.inner.insert(key, val)
    }

    fn remove(&self, key: &u64) -> Option<u64> {
        ConcurrentBTree::remove(&self.inner, key)
    }

    fn contains_key(&self, key: &u64) -> bool {
        self.get(key).is_some() // routed through the buggy reader
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner.range(lo, hi)
    }

    fn check(&self) -> Result<(), String> {
        self.inner.check()
    }

    fn root_handle(&self) -> NodeRef<u64> {
        self.inner.root_handle()
    }

    fn counters(&self) -> OpCountersSnapshot {
        self.inner.counters()
    }
}

/// An OLC tree whose `get` validates each node's own version window but
/// never re-validates the parent after reading the child — the
/// hand-over-hand step of optimistic lock coupling. It models the
/// link-free OLC readers of the literature: routing is trusted from the
/// parent's window alone, with no `covers()` re-check or right-link
/// chase to fall back on, so the skipped re-validation is load-bearing.
/// Writes delegate to the correct tree, so all structure stays valid —
/// only reads race.
#[derive(Debug)]
pub struct SkipParentRevalidation {
    inner: ConcurrentBTree<u64>,
    /// Spin iterations between the parent's routing decision and the
    /// child read, modeling a reader descheduled mid-descent. Widens the
    /// race so stress runs expose the bug reliably.
    window_spin: u32,
}

impl SkipParentRevalidation {
    /// A buggy optimistic reader over a fresh OLC tree of the given
    /// capacity.
    pub fn new(capacity: usize) -> Self {
        SkipParentRevalidation {
            inner: ConcurrentBTree::new(Protocol::Olc, capacity),
            window_spin: 400_000,
        }
    }
}

// Everything except `get` delegates to the sound inner tree, so the
// structural auditors pass — only the linearizability checker can
// convict this implementation.
impl ConcurrentMap<u64> for SkipParentRevalidation {
    #[allow(unsafe_code)]
    fn get(&self, key: &u64) -> Option<u64> {
        enum Step {
            Down(NodeRef<u64>),
            Done(Option<u64>),
        }
        let key = *key;
        'restart: loop {
            let mut cur = self.inner.root_handle();
            let mut routed = false;
            loop {
                // The window a correct reader closes by re-validating the
                // parent's recorded version after this node's own window;
                // a split landing here moves `key` sideways, out of reach
                // of a link-free descent. (No window before the root
                // visit — there is no routing decision to go stale yet.)
                // The spin is sliced up with yields: a pure spin would
                // starve the very writers whose split must land in the
                // window on a loaded or single-core host, while on an
                // idle multicore host the slices still hold the window
                // open.
                if routed && self.window_spin > 0 {
                    for _ in 0..16 {
                        for _ in 0..self.window_spin / 16 {
                            std::hint::spin_loop();
                        }
                        std::thread::yield_now();
                    }
                }
                routed = true;
                // Each node's own window is still validated (no torn
                // reads) — the bug is purely about stale routing.
                // SAFETY: the closure copies POD `u64`s through checked
                // accesses and clones node `Arc`s, which stay alive for
                // the tree's lifetime (nodes are never unlinked); a
                // torn result is discarded on failed validation. The
                // planted bug skips the *parent* re-validation — a
                // linearizability violation, not a memory-safety one.
                let attempt = unsafe {
                    cur.read_optimistic(|n| match &n.children {
                        Children::Leaf(vals) => Some(Step::Done(
                            n.keys
                                .binary_search(&key)
                                .ok()
                                .and_then(|i| vals.get(i))
                                .copied(),
                        )),
                        Children::Internal(kids) => kids
                            .get(n.child_index(key))
                            .map(|c| Step::Down(Arc::clone(c))),
                    })
                };
                match attempt {
                    // BUG: the parent's version is never recorded, so the
                    // routing that led here is trusted unconditionally.
                    Some((_ver, Some(Step::Done(v)))) => return v,
                    Some((_ver, Some(Step::Down(child)))) => cur = child,
                    _ => continue 'restart,
                }
            }
        }
    }

    fn protocol_name(&self) -> &'static str {
        "skip-parent-revalidation"
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn height(&self) -> usize {
        self.inner.height()
    }

    fn insert(&self, key: u64, val: u64) -> Option<u64> {
        self.inner.insert(key, val)
    }

    fn remove(&self, key: &u64) -> Option<u64> {
        ConcurrentBTree::remove(&self.inner, key)
    }

    fn contains_key(&self, key: &u64) -> bool {
        self.get(key).is_some() // routed through the buggy reader
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner.range(lo, hi)
    }

    fn check(&self) -> Result<(), String> {
        self.inner.check()
    }

    fn root_handle(&self) -> NodeRef<u64> {
        self.inner.root_handle()
    }

    fn counters(&self) -> OpCountersSnapshot {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_use_is_correct() {
        // Without concurrency the skipped re-check never matters.
        let m = SkipRightLink::new(4);
        for k in 0..200u64 {
            assert_eq!(m.insert(k, k * 7), None);
        }
        for k in 0..200u64 {
            assert_eq!(m.get(&k), Some(k * 7));
        }
        assert_eq!(m.remove(&13), Some(91));
        assert_eq!(m.get(&13), None);
    }

    #[test]
    fn sequential_olc_use_is_correct() {
        // Without concurrency the skipped parent re-validation never
        // matters either: every window validates on the first try.
        let m = SkipParentRevalidation {
            window_spin: 0, // no race to widen sequentially
            ..SkipParentRevalidation::new(4)
        };
        for k in 0..200u64 {
            assert_eq!(m.insert(k, k * 3), None);
        }
        for k in 0..200u64 {
            assert_eq!(m.get(&k), Some(k * 3));
        }
        assert_eq!(m.remove(&13), Some(39));
        assert_eq!(m.get(&13), None);
        assert!(m.contains_key(&14));
    }
}
