//! The stress harness: drive N recording threads over a shared map with
//! a reproducible workload (optionally under schedule-perturbation
//! injection), then check linearizability and run the structural
//! auditors on the quiesced tree.
//!
//! Everything is a pure function of [`StressConfig`], so a failing
//! `(protocol, seed)` pair replays the identical operation streams and
//! perturbation decisions: `stress --replay SEED` in the binary.

use crate::audit::{audit, audit_with_contents, AuditReport};
use crate::history::{record, record_batch, Clock, ConcurrentMap, History, Op};
use crate::linearize::{check_history, CheckConfig, Verdict};
use cbtree_btree::{ConcurrentBTree, Protocol};
use cbtree_sync::inject;
use cbtree_sync::InjectConfig;
use cbtree_workload::{OpStream, Operation, OpsConfig};
use std::sync::{Barrier, Mutex};

/// Serializes stress runs within a process: the injector is global, so
/// two concurrent runs would clobber each other's seed/epoch and break
/// replay determinism. Parallelism lives *inside* a run.
static RUN_GATE: Mutex<()> = Mutex::new(());

/// One stress run, fully determined by this value.
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// Latching protocol under test.
    pub protocol: Protocol,
    /// Worker thread count.
    pub threads: usize,
    /// Operations each worker performs.
    pub ops_per_thread: usize,
    /// Node capacity (small values force frequent splits).
    pub capacity: usize,
    /// Keys are drawn from `[0, key_space)` (small values force
    /// contention on shared nodes).
    pub key_space: u64,
    /// Keys pre-inserted before recording starts (the history's initial
    /// state).
    pub prefill: usize,
    /// Master seed; per-thread streams derive from it.
    pub seed: u64,
    /// Schedule-perturbation settings; `None` runs un-perturbed.
    pub inject: Option<InjectConfig>,
    /// Linearizability-search tuning.
    pub check: CheckConfig,
    /// Operations each worker groups into one `execute_batch` call
    /// (`1` = classic singleton recording). Batched runs exercise the
    /// sorted-batch descent path the service layer uses, and every op
    /// of a batch shares the batch's invocation/response interval.
    pub batch_max: usize,
}

impl StressConfig {
    /// The CI quick-mode shape: few hundred ops per thread, tiny nodes,
    /// hot key space, injection on.
    pub fn quick(protocol: Protocol, seed: u64) -> Self {
        StressConfig {
            protocol,
            threads: 8,
            ops_per_thread: 400,
            capacity: 4,
            key_space: 512,
            prefill: 128,
            seed,
            inject: Some(InjectConfig::default()),
            check: CheckConfig::default(),
            batch_max: 1,
        }
    }

    /// A heavier shape for the manual full sweep.
    pub fn full(protocol: Protocol, seed: u64) -> Self {
        StressConfig {
            threads: 16,
            ops_per_thread: 2_000,
            key_space: 2_048,
            prefill: 512,
            ..StressConfig::quick(protocol, seed)
        }
    }
}

/// Result of one stress run.
#[derive(Debug)]
pub struct StressOutcome {
    /// The linearizability verdict.
    pub verdict: Verdict,
    /// Structural-audit result (`Err` = invariant violation).
    pub audit: Option<Result<AuditReport, String>>,
    /// Total recorded operations.
    pub ops: usize,
    /// Perturbations performed (zeros when injection was off or compiled
    /// out).
    pub inject_stats: inject::InjectStats,
}

impl StressOutcome {
    /// Whether the run found no problem.
    pub fn passed(&self) -> bool {
        self.verdict.passed() && !matches!(&self.audit, Some(Err(_)))
    }

    /// Human-readable failure description, if any.
    pub fn failure(&self) -> Option<String> {
        match &self.verdict {
            Verdict::Violation(w) => {
                return Some(format!("linearizability violation\n{}", w.render()))
            }
            Verdict::Inconclusive => return Some("checker ran out of budget".into()),
            _ => {}
        }
        if let Some(Err(e)) = &self.audit {
            return Some(format!("structural audit failed: {e}"));
        }
        None
    }
}

fn mix(stream_seed: u64, t: u64) -> u64 {
    // splitmix64-style avalanche so nearby seeds give unrelated streams.
    let mut z = stream_seed
        .wrapping_add(t.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the stress protocol against the canonical tree for
/// `cfg.protocol`.
pub fn run_stress(cfg: &StressConfig) -> StressOutcome {
    let tree = ConcurrentBTree::new(cfg.protocol, cfg.capacity);
    run_stress_on(&tree, cfg)
}

/// Runs the stress protocol against an arbitrary [`ConcurrentMap`] —
/// used by tests to prove deliberately buggy implementations are caught.
pub fn run_stress_on<M: ConcurrentMap<u64>>(map: &M, cfg: &StressConfig) -> StressOutcome {
    let _serial = RUN_GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Deterministic prefill: evenly spread keys, value = key.
    let mut init: Vec<(u64, u64)> = Vec::with_capacity(cfg.prefill);
    if cfg.prefill > 0 {
        let stride = (cfg.key_space / cfg.prefill as u64).max(1);
        for i in 0..cfg.prefill as u64 {
            let k = (i * stride) % cfg.key_space.max(1);
            if map.insert(k, k).is_none() {
                init.push((k, k));
            }
        }
    }
    // Release latches a recovery protocol retained during prefill.
    map.txn_commit();

    if let Some(icfg) = cfg.inject {
        inject::enable(cfg.seed, icfg);
    } else {
        inject::disable();
    }

    let clock = Clock::new();
    let barrier = Barrier::new(cfg.threads);
    let ops_cfg = OpsConfig::paper(cfg.key_space.max(1));
    let batches: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let clock = &clock;
                let barrier = &barrier;
                s.spawn(move || {
                    inject::register_thread(t as u64);
                    let mut stream = OpStream::new(ops_cfg, mix(cfg.seed, t as u64));
                    let mut out = Vec::with_capacity(cfg.ops_per_thread);
                    let mut pending: Vec<Op> = Vec::with_capacity(cfg.batch_max.max(1));
                    barrier.wait();
                    for i in 0..cfg.ops_per_thread {
                        let op = match stream.next_op() {
                            Operation::Search(k) => Op::Get(k),
                            // Unique insert values let the checker tell
                            // which insert a later read observed.
                            Operation::Insert(k) => {
                                Op::Insert(k, ((t as u64 + 1) << 32) | i as u64)
                            }
                            Operation::Delete(k) => Op::Remove(k),
                        };
                        if cfg.batch_max <= 1 {
                            out.push(record(map, clock, t, op));
                        } else {
                            pending.push(op);
                            if pending.len() == cfg.batch_max {
                                record_batch(map, clock, t, &pending, &mut out);
                                pending.clear();
                            }
                        }
                    }
                    if !pending.is_empty() {
                        record_batch(map, clock, t, &pending, &mut out);
                    }
                    // Release any transaction-retained latches before
                    // exiting: the post-join audit would otherwise block
                    // on latches no live thread can ever release.
                    map.txn_commit();
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Counters reset on `enable`, so only meaningful when we enabled.
    let inject_stats = if cfg.inject.is_some() {
        inject::stats()
    } else {
        inject::InjectStats::default()
    };
    inject::disable();

    let history = History::from_threads(init, batches);
    let ops = history.ops.len();
    let verdict = check_history(&history, cfg.check);

    // Workers are joined, so the tree is quiescent: audit structure, and
    // when the verdict pinned down a final state, contents too. Every
    // map speaks the full `ConcurrentMap` interface now (buggy wrappers
    // included — their *structure* is sound, only their reads race), so
    // the audit always runs.
    let audit_result = Some(match &verdict {
        Verdict::Linearizable { final_state } => audit_with_contents(map, final_state),
        _ => audit(map),
    });

    StressOutcome {
        verdict,
        audit: audit_result,
        ops,
        inject_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_for_all_protocols() {
        for p in Protocol::ALL {
            let cfg = StressConfig {
                threads: 4,
                ops_per_thread: 120,
                ..StressConfig::quick(p, 7)
            };
            let out = run_stress(&cfg);
            assert!(out.passed(), "{p:?}: {}", out.failure().unwrap_or_default());
            assert_eq!(out.ops, cfg.threads * cfg.ops_per_thread);
        }
    }

    #[test]
    fn batched_quick_run_passes_for_all_protocols() {
        // Same sweep as the singleton quick run, but every worker
        // groups its ops into sorted batches of 4 through
        // `execute_batch` — linearizability and the structural audit
        // must hold over the amortized-descent path too.
        for p in Protocol::ALL {
            let cfg = StressConfig {
                threads: 4,
                ops_per_thread: 120,
                batch_max: 4,
                ..StressConfig::quick(p, 7)
            };
            let out = run_stress(&cfg);
            assert!(out.passed(), "{p:?}: {}", out.failure().unwrap_or_default());
            assert_eq!(out.ops, cfg.threads * cfg.ops_per_thread);
        }
    }

    #[test]
    fn injection_actually_perturbs() {
        let cfg = StressConfig {
            threads: 4,
            ops_per_thread: 100,
            ..StressConfig::quick(Protocol::BLink, 11)
        };
        let out = run_stress(&cfg);
        assert!(out.passed(), "{}", out.failure().unwrap_or_default());
        assert!(
            out.inject_stats.visits > 0,
            "injection sites should be visited under the inject feature"
        );
    }

    #[test]
    fn unperturbed_run_records_no_injections() {
        let cfg = StressConfig {
            threads: 2,
            ops_per_thread: 50,
            inject: None,
            ..StressConfig::quick(Protocol::LockCoupling, 3)
        };
        let out = run_stress(&cfg);
        assert!(out.passed(), "{}", out.failure().unwrap_or_default());
        assert_eq!(out.inject_stats, inject::InjectStats::default());
    }
}
