//! Concurrent-history recording over the `ConcurrentMap` facade.
//!
//! N worker threads apply operations to a shared map; every operation is
//! bracketed by two ticks of one global atomic clock, yielding an
//! invocation/response event pair with a total order on events. Two
//! operations are *concurrent* exactly when their `[invoked, returned]`
//! tick intervals overlap; `A` really-precedes `B` when
//! `A.returned < B.invoked`. The linearizability checker consumes the
//! resulting [`History`].
//!
//! The clock is a single `fetch_add` per event — a deliberate, tiny
//! serialization that orders events without excluding overlap (operations
//! still run concurrently between their ticks). The schedule-perturbation
//! injector compensates for any race-masking the extra fence introduces.

use cbtree_btree::BatchOp;
pub use cbtree_btree::ConcurrentMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One map operation (the checker's alphabet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Look `key` up.
    Get(u64),
    /// Insert `key → value`.
    Insert(u64, u64),
    /// Remove `key`.
    Remove(u64),
}

impl Op {
    /// The key the operation targets.
    pub fn key(&self) -> u64 {
        match *self {
            Op::Get(k) | Op::Insert(k, _) | Op::Remove(k) => k,
        }
    }
}

/// One completed operation with its bracketing ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Issuing worker thread.
    pub thread: usize,
    /// The operation invoked.
    pub op: Op,
    /// The response observed (`get`: the value; `insert`/`remove`: the
    /// previous/removed value).
    pub ret: Option<u64>,
    /// Global tick taken immediately before invoking the map.
    pub invoked: u64,
    /// Global tick taken immediately after the map returned.
    pub returned: u64,
}

/// The global event clock shared by all recording threads.
#[derive(Debug, Default)]
pub struct Clock(AtomicU64);

impl Clock {
    /// A fresh clock at tick 0.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Takes the next tick.
    pub fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst)
    }
}

/// Applies `op` to `map` (anything speaking the `cbtree-btree`
/// [`ConcurrentMap`] interface — the real protocol trees, the facade, or
/// a deliberately buggy wrapper), bracketing it with clock ticks.
pub fn record<M: ConcurrentMap<u64> + ?Sized>(
    map: &M,
    clock: &Clock,
    thread: usize,
    op: Op,
) -> OpRecord {
    let invoked = clock.tick();
    let ret = match op {
        Op::Get(k) => map.get(&k),
        Op::Insert(k, v) => map.insert(k, v),
        Op::Remove(k) => map.remove(&k),
    };
    let returned = clock.tick();
    OpRecord {
        thread,
        op,
        ret,
        invoked,
        returned,
    }
}

/// Applies `ops` to `map` as **one sorted batch** through
/// [`ConcurrentMap::execute_batch`], bracketing the whole batch with a
/// single tick pair and appending one [`OpRecord`] per operation (in
/// submission order, with per-op results) to `out`.
///
/// Every op in the batch shares the batch's `[invoked, returned]`
/// interval: each one really did take effect at some instant inside the
/// batch's busy period, which is exactly the claim the linearizability
/// checker verifies. The interval sharing widens the search window (the
/// checker may consider intra-batch reorderings), so a batched history
/// checks the *results* the tree reported — a batch that applied
/// same-key ops out of submission order returns previous-values no
/// sequential witness can explain, and the checker convicts it.
pub fn record_batch<M: ConcurrentMap<u64> + ?Sized>(
    map: &M,
    clock: &Clock,
    thread: usize,
    ops: &[Op],
    out: &mut Vec<OpRecord>,
) {
    let batch: Vec<BatchOp<u64>> = ops
        .iter()
        .map(|&op| match op {
            Op::Get(k) => BatchOp::Get(k),
            Op::Insert(k, v) => BatchOp::Insert(k, v),
            Op::Remove(k) => BatchOp::Remove(k),
        })
        .collect();
    let invoked = clock.tick();
    let outcome = map.execute_batch(batch);
    let returned = clock.tick();
    debug_assert_eq!(outcome.results.len(), ops.len());
    for (&op, &ret) in ops.iter().zip(outcome.results.iter()) {
        out.push(OpRecord {
            thread,
            op,
            ret,
            invoked,
            returned,
        });
    }
}

/// A complete recorded history: the map's initial contents plus every
/// completed operation, sorted by invocation tick.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Key/value pairs present before the first recorded operation.
    pub init: Vec<(u64, u64)>,
    /// Completed operations, sorted by `invoked`.
    pub ops: Vec<OpRecord>,
}

impl History {
    /// Assembles a history from per-thread record batches.
    pub fn from_threads(init: Vec<(u64, u64)>, batches: Vec<Vec<OpRecord>>) -> Self {
        let mut ops: Vec<OpRecord> = batches.into_iter().flatten().collect();
        ops.sort_by_key(|r| r.invoked);
        History { init, ops }
    }

    /// Maximum number of operations whose tick intervals overlap at any
    /// instant — the "window" the linearizability search must consider.
    pub fn max_concurrency(&self) -> usize {
        // Sweep over invoke (+1) and return (−1) ticks.
        let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(self.ops.len() * 2);
        for r in &self.ops {
            deltas.push((r.invoked, 1));
            deltas.push((r.returned, -1));
        }
        deltas.sort_unstable();
        let mut open = 0i64;
        let mut peak = 0i64;
        for (_, d) in deltas {
            open += d;
            peak = peak.max(open);
        }
        peak.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtree_btree::{ConcurrentBTree, Protocol};

    #[test]
    fn record_brackets_and_returns() {
        let tree = ConcurrentBTree::new(Protocol::BLink, 4);
        let clock = Clock::new();
        let a = record(&tree, &clock, 0, Op::Insert(5, 50));
        let b = record(&tree, &clock, 0, Op::Get(5));
        let c = record(&tree, &clock, 0, Op::Remove(5));
        assert_eq!(a.ret, None);
        assert_eq!(b.ret, Some(50));
        assert_eq!(c.ret, Some(50));
        assert!(a.invoked < a.returned);
        assert!(a.returned < b.invoked, "sequential ops must not overlap");
    }

    #[test]
    fn max_concurrency_counts_overlap() {
        let rec = |invoked, returned| OpRecord {
            thread: 0,
            op: Op::Get(0),
            ret: None,
            invoked,
            returned,
        };
        // Two overlapping, one disjoint.
        let h = History::from_threads(Vec::new(), vec![vec![rec(0, 3), rec(1, 2), rec(4, 5)]]);
        assert_eq!(h.max_concurrency(), 2);
        let h2 = History::from_threads(Vec::new(), vec![vec![rec(0, 1), rec(2, 3)]]);
        assert_eq!(h2.max_concurrency(), 1);
        assert_eq!(History::default().max_concurrency(), 0);
    }
}
