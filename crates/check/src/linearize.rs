//! Linearizability checking against a sequential `BTreeMap` oracle.
//!
//! Implements the Wing–Gong search (with Lowe's entry-list formulation):
//! repeatedly try to *lift* a minimal operation — one whose invocation
//! precedes every un-linearized response — apply it to the sequential
//! model, and recurse; on a dead end, undo and try the next candidate.
//! Because map operations on distinct keys commute, the search prunes
//! heavily in practice, but its worst case is exponential, so the search
//! carries a step budget and a concurrency-window bound. When either is
//! exceeded the checker falls back to a *sequential-consistency* check
//! (respecting only per-thread program order), which is weaker but still
//! catches lost updates and phantom reads.

use crate::history::{History, Op, OpRecord};
use std::collections::BTreeMap;

/// Search-tuning knobs for [`check_history`].
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Maximum concurrent-operation window the full linearizability
    /// search will attempt; histories wider than this go straight to the
    /// sequential-consistency fallback.
    pub max_window: usize,
    /// Backtracking-step budget for either search before giving up and
    /// (for the full search) falling back to sequential consistency.
    pub step_budget: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_window: 64,
            step_budget: 20_000_000,
        }
    }
}

/// Outcome of checking one history.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A valid linearization exists; `final_state` is the oracle contents
    /// after it (useful for a post-run content audit of the real tree).
    Linearizable {
        /// Oracle contents after the witnessing linearization.
        final_state: BTreeMap<u64, u64>,
    },
    /// The full search was skipped or exhausted, but the history is at
    /// least sequentially consistent.
    SequentiallyConsistent {
        /// Oracle contents after the witnessing serialization.
        final_state: BTreeMap<u64, u64>,
    },
    /// No valid ordering exists — a real correctness violation.
    Violation(ViolationWitness),
    /// Both searches ran out of budget without a decision.
    Inconclusive,
}

impl Verdict {
    /// Whether the history passed (linearizable or at least SC).
    pub fn passed(&self) -> bool {
        matches!(
            self,
            Verdict::Linearizable { .. } | Verdict::SequentiallyConsistent { .. }
        )
    }

    /// The witnessed final oracle state, when the history passed.
    pub fn final_state(&self) -> Option<&BTreeMap<u64, u64>> {
        match self {
            Verdict::Linearizable { final_state }
            | Verdict::SequentiallyConsistent { final_state } => Some(final_state),
            _ => None,
        }
    }
}

/// Evidence for a violation, minimized for human consumption.
#[derive(Debug, Clone)]
pub struct ViolationWitness {
    /// The operation no linearization could accommodate (the first
    /// response the search could never justify).
    pub stuck: OpRecord,
    /// Operations concurrent with `stuck` (candidate interleavings the
    /// search exhausted).
    pub concurrent: Vec<OpRecord>,
    /// All operations touching `stuck`'s key, in invocation order — the
    /// minimal per-key trace that exhibits the contradiction.
    pub key_trace: Vec<OpRecord>,
}

impl ViolationWitness {
    /// Renders the witness as a compact multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fmt = |r: &OpRecord| {
            format!(
                "  t{:<2} [{:>6},{:>6}] {:?} -> {:?}",
                r.thread, r.invoked, r.returned, r.op, r.ret
            )
        };
        out.push_str("unjustifiable response:\n");
        out.push_str(&fmt(&self.stuck));
        out.push('\n');
        if !self.concurrent.is_empty() {
            out.push_str("concurrent operations:\n");
            for r in &self.concurrent {
                out.push_str(&fmt(r));
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "history of key {} (invocation order):\n",
            self.stuck.op.key()
        ));
        for r in &self.key_trace {
            out.push_str(&fmt(r));
            out.push('\n');
        }
        out
    }
}

/// What a sequential map does with `op`: `(new_value_for_key, response)`.
/// Applying means storing `new_value_for_key` under the key (None =
/// absent); the previous binding is the undo record.
fn apply(model: &mut BTreeMap<u64, u64>, op: Op) -> (Option<u64>, Option<u64>) {
    match op {
        Op::Get(k) => {
            let cur = model.get(&k).copied();
            (cur, cur)
        }
        Op::Insert(k, v) => {
            let prev = model.insert(k, v);
            (prev, prev)
        }
        Op::Remove(k) => {
            let prev = model.remove(&k);
            (prev, prev)
        }
    }
}

fn undo(model: &mut BTreeMap<u64, u64>, op: Op, prev: Option<u64>) {
    let k = op.key();
    match (op, prev) {
        (Op::Get(..), _) => {}
        (_, Some(v)) => {
            model.insert(k, v);
        }
        (_, None) => {
            model.remove(&k);
        }
    }
}

/// Checks `history` for linearizability (falling back to sequential
/// consistency when the search is infeasible).
///
/// Exploits the map structure: every operation touches exactly one key
/// and its response depends only on that key's state, so operations on
/// distinct keys commute and the history is linearizable iff every
/// per-key subhistory is. The search therefore partitions by key first —
/// without this, the un-memoized backtracking search re-explores
/// factorially many equivalent interleavings of independent keys and a
/// violation proof (which must exhaust the space) never terminates in
/// practice. Per-key results combine as: all linearizable ⇒
/// linearizable; any violation ⇒ violation; otherwise degrade to the
/// weakest verdict reached.
pub fn check_history(history: &History, cfg: CheckConfig) -> Verdict {
    let init: BTreeMap<u64, u64> = history.init.iter().copied().collect();
    if history.ops.is_empty() {
        return Verdict::Linearizable { final_state: init };
    }
    // Partition ops by key, preserving invocation order.
    let mut by_key: BTreeMap<u64, Vec<OpRecord>> = BTreeMap::new();
    for r in &history.ops {
        by_key.entry(r.op.key()).or_default().push(*r);
    }
    let mut final_state = init.clone();
    let mut degraded = false;
    for (key, ops) in by_key {
        let sub = History {
            init: init.get(&key).map(|&v| vec![(key, v)]).unwrap_or_default(),
            ops,
        };
        match check_single_key(&sub, cfg) {
            Verdict::Linearizable { final_state: fs } => {
                sync_key(&mut final_state, key, &fs);
            }
            Verdict::SequentiallyConsistent { final_state: fs } => {
                degraded = true;
                sync_key(&mut final_state, key, &fs);
            }
            v @ (Verdict::Violation(_) | Verdict::Inconclusive) => return v,
        }
    }
    if degraded {
        Verdict::SequentiallyConsistent { final_state }
    } else {
        Verdict::Linearizable { final_state }
    }
}

/// Copies `key`'s binding from a per-key result into the merged state.
fn sync_key(state: &mut BTreeMap<u64, u64>, key: u64, sub: &BTreeMap<u64, u64>) {
    match sub.get(&key) {
        Some(&v) => {
            state.insert(key, v);
        }
        None => {
            state.remove(&key);
        }
    }
}

/// The raw (non-partitioned) check over one subhistory: full Wing–Gong
/// search when the concurrency window permits, sequential-consistency
/// fallback otherwise.
fn check_single_key(history: &History, cfg: CheckConfig) -> Verdict {
    let init: BTreeMap<u64, u64> = history.init.iter().copied().collect();
    if history.ops.is_empty() {
        return Verdict::Linearizable { final_state: init };
    }
    if history.max_concurrency() <= cfg.max_window {
        match wgl_search(history, &init, cfg.step_budget) {
            SearchResult::Ok(final_state) => return Verdict::Linearizable { final_state },
            SearchResult::Violation(w) => return Verdict::Violation(w),
            SearchResult::OutOfBudget => {}
        }
    }
    match sc_search(history, &init, cfg.step_budget) {
        SearchResult::Ok(final_state) => Verdict::SequentiallyConsistent { final_state },
        SearchResult::Violation(w) => Verdict::Violation(w),
        SearchResult::OutOfBudget => Verdict::Inconclusive,
    }
}

enum SearchResult {
    Ok(BTreeMap<u64, u64>),
    Violation(ViolationWitness),
    OutOfBudget,
}

const NIL: usize = usize::MAX;

/// Doubly-linked list over op indices, ordered by invocation tick.
/// `lift` unlinks an entry; `unlift` restores it (valid in LIFO order,
/// which is exactly how the backtracking stack uses it).
struct EntryList {
    next: Vec<usize>,
    prev: Vec<usize>,
    head: usize,
}

impl EntryList {
    fn new(n: usize) -> Self {
        // Entry i links to i±1; head sentinel is implicit via `head`.
        let next: Vec<usize> = (0..n)
            .map(|i| if i + 1 < n { i + 1 } else { NIL })
            .collect();
        let prev: Vec<usize> = (0..n).map(|i| if i == 0 { NIL } else { i - 1 }).collect();
        EntryList {
            next,
            prev,
            head: if n == 0 { NIL } else { 0 },
        }
    }

    fn lift(&mut self, i: usize) {
        let (p, n) = (self.prev[i], self.next[i]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n != NIL {
            self.prev[n] = p;
        }
    }

    fn unlift(&mut self, i: usize) {
        let (p, n) = (self.prev[i], self.next[i]);
        if p == NIL {
            self.head = i;
        } else {
            self.next[p] = i;
        }
        if n != NIL {
            self.prev[n] = i;
        }
    }
}

/// Wing–Gong/Lowe search: ops are pre-sorted by invocation tick. At each
/// step the candidates are the ops from the head of the remaining list
/// whose invocation precedes the first un-linearized response; an op can
/// be linearized now iff the model reproduces its recorded response.
fn wgl_search(history: &History, init: &BTreeMap<u64, u64>, budget: u64) -> SearchResult {
    let ops = &history.ops;
    let n = ops.len();
    let mut list = EntryList::new(n);
    let mut model = init.clone();
    // Backtracking stack: (op index, undo record).
    let mut stack: Vec<(usize, Option<u64>)> = Vec::with_capacity(n);
    // Next candidate to try at the current depth; NIL = start from head.
    let mut cursor = list.head;
    let mut steps = 0u64;

    loop {
        // First response tick among un-linearized ops bounds the
        // candidate window: an op invoked after some pending op has
        // already returned cannot be linearized before it.
        let min_ret = {
            let mut m = u64::MAX;
            let mut i = list.head;
            while i != NIL {
                m = m.min(ops[i].returned);
                i = list.next[i];
            }
            m
        };
        let mut advanced = false;
        let mut i = cursor;
        while i != NIL && ops[i].invoked < min_ret {
            steps += 1;
            if steps > budget {
                return SearchResult::OutOfBudget;
            }
            let (prev, resp) = apply(&mut model, ops[i].op);
            if resp == ops[i].ret {
                stack.push((i, prev));
                list.lift(i);
                cursor = list.head;
                advanced = true;
                break;
            }
            undo(&mut model, ops[i].op, prev);
            i = list.next[i];
        }
        if advanced {
            if list.head == NIL {
                return SearchResult::Ok(model);
            }
            continue;
        }
        // Dead end: backtrack.
        match stack.pop() {
            Some((j, prev)) => {
                list.unlift(j);
                undo(&mut model, ops[j].op, prev);
                cursor = list.next[j];
            }
            None => {
                return SearchResult::Violation(build_witness(history, list.head));
            }
        }
    }
}

/// Sequential-consistency fallback: only per-thread program order is
/// preserved, so the candidates at each step are simply each thread's
/// next un-linearized op. DFS with memoization-free backtracking (the
/// budget bounds it).
fn sc_search(history: &History, init: &BTreeMap<u64, u64>, budget: u64) -> SearchResult {
    let ops = &history.ops;
    let n = ops.len();
    let nthreads = ops.iter().map(|r| r.thread + 1).max().unwrap_or(0);
    // Per-thread op index sequences, in program (invocation) order.
    let mut by_thread: Vec<Vec<usize>> = vec![Vec::new(); nthreads];
    for (i, r) in ops.iter().enumerate() {
        by_thread[r.thread].push(i);
    }
    let mut pos = vec![0usize; nthreads];
    let mut model = init.clone();
    // Stack of (thread chosen, undo record); cursor = next thread to try.
    let mut stack: Vec<(usize, Option<u64>)> = Vec::with_capacity(n);
    let mut cursor = 0usize;
    let mut done = 0usize;
    let mut steps = 0u64;

    loop {
        let mut advanced = false;
        let mut t = cursor;
        while t < nthreads {
            if pos[t] < by_thread[t].len() {
                steps += 1;
                if steps > budget {
                    return SearchResult::OutOfBudget;
                }
                let i = by_thread[t][pos[t]];
                let (prev, resp) = apply(&mut model, ops[i].op);
                if resp == ops[i].ret {
                    stack.push((t, prev));
                    pos[t] += 1;
                    done += 1;
                    cursor = 0;
                    advanced = true;
                    break;
                }
                undo(&mut model, ops[i].op, prev);
            }
            t += 1;
        }
        if advanced {
            if done == n {
                return SearchResult::Ok(model);
            }
            continue;
        }
        match stack.pop() {
            Some((t, prev)) => {
                pos[t] -= 1;
                done -= 1;
                undo(&mut model, ops[t_index(&by_thread, t, pos[t])].op, prev);
                cursor = t + 1;
            }
            None => {
                // The stuck op: the earliest-invoked op still pending.
                let stuck = (0..nthreads)
                    .filter(|&t| pos[t] < by_thread[t].len())
                    .map(|t| by_thread[t][pos[t]])
                    .min_by_key(|&i| ops[i].invoked)
                    .unwrap_or(0);
                return SearchResult::Violation(build_witness_at(history, stuck));
            }
        }
    }
}

fn t_index(by_thread: &[Vec<usize>], t: usize, p: usize) -> usize {
    by_thread[t][p]
}

/// Builds a witness around the head of the un-linearized list (the
/// earliest-invoked op the exhausted search could never place).
fn build_witness(history: &History, head: usize) -> ViolationWitness {
    build_witness_at(history, if head == NIL { 0 } else { head })
}

fn build_witness_at(history: &History, stuck_idx: usize) -> ViolationWitness {
    let ops = &history.ops;
    let stuck = ops[stuck_idx];
    let concurrent: Vec<OpRecord> = ops
        .iter()
        .enumerate()
        .filter(|&(i, r)| {
            i != stuck_idx && r.invoked < stuck.returned && stuck.invoked < r.returned
        })
        .map(|(_, r)| *r)
        .collect();
    let key = stuck.op.key();
    let key_trace: Vec<OpRecord> = ops.iter().filter(|r| r.op.key() == key).copied().collect();
    ViolationWitness {
        stuck,
        concurrent,
        key_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;

    fn rec(thread: usize, op: Op, ret: Option<u64>, invoked: u64, returned: u64) -> OpRecord {
        OpRecord {
            thread,
            op,
            ret,
            invoked,
            returned,
        }
    }

    fn check(init: Vec<(u64, u64)>, ops: Vec<OpRecord>) -> Verdict {
        let h = History::from_threads(init, vec![ops]);
        check_history(&h, CheckConfig::default())
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check(vec![(1, 10)], Vec::new()).passed());
    }

    #[test]
    fn sequential_correct_history_passes() {
        let v = check(
            Vec::new(),
            vec![
                rec(0, Op::Insert(1, 10), None, 0, 1),
                rec(0, Op::Get(1), Some(10), 2, 3),
                rec(0, Op::Remove(1), Some(10), 4, 5),
                rec(0, Op::Get(1), None, 6, 7),
            ],
        );
        assert!(matches!(v, Verdict::Linearizable { .. }), "{v:?}");
        assert!(v.final_state().unwrap().is_empty());
    }

    #[test]
    fn stale_read_after_insert_is_violation() {
        // Insert completes strictly before the get, yet the get misses.
        let v = check(
            Vec::new(),
            vec![
                rec(0, Op::Insert(7, 70), None, 0, 1),
                rec(1, Op::Get(7), None, 2, 3),
            ],
        );
        assert!(matches!(v, Verdict::Violation(_)), "{v:?}");
        if let Verdict::Violation(w) = v {
            assert_eq!(w.key_trace.len(), 2);
            assert!(!w.render().is_empty());
        }
    }

    #[test]
    fn concurrent_read_may_see_either_state() {
        // Get overlaps the insert: both None and Some(70) are valid.
        for ret in [None, Some(70)] {
            let v = check(
                Vec::new(),
                vec![
                    rec(0, Op::Insert(7, 70), None, 0, 3),
                    rec(1, Op::Get(7), ret, 1, 2),
                ],
            );
            assert!(matches!(v, Verdict::Linearizable { .. }), "{ret:?} {v:?}");
        }
    }

    #[test]
    fn double_remove_success_is_violation() {
        // Two removes of one key both claim to have removed it.
        let v = check(
            vec![(3, 30)],
            vec![
                rec(0, Op::Remove(3), Some(30), 0, 3),
                rec(1, Op::Remove(3), Some(30), 1, 2),
            ],
        );
        assert!(matches!(v, Verdict::Violation(_)), "{v:?}");
    }

    #[test]
    fn lost_update_is_violation() {
        // Both inserts on an existing key claim prev = initial value,
        // then a later read sees one of them: the other update was lost.
        let v = check(
            vec![(5, 1)],
            vec![
                rec(0, Op::Insert(5, 2), Some(1), 0, 3),
                rec(1, Op::Insert(5, 3), Some(1), 1, 2),
                rec(0, Op::Get(5), Some(2), 4, 5),
            ],
        );
        assert!(matches!(v, Verdict::Violation(_)), "{v:?}");
    }

    #[test]
    fn init_state_is_respected() {
        let v = check(vec![(9, 90)], vec![rec(0, Op::Get(9), Some(90), 0, 1)]);
        assert!(matches!(v, Verdict::Linearizable { .. }), "{v:?}");
    }

    #[test]
    fn reordering_needed_across_threads() {
        // t1's get(1)=None must linearize BEFORE t0's insert even though
        // t0's insert was invoked first — requires real backtracking.
        let v = check(
            Vec::new(),
            vec![
                rec(0, Op::Insert(1, 11), None, 0, 5),
                rec(1, Op::Get(1), None, 1, 2),
                rec(1, Op::Get(1), Some(11), 3, 4),
            ],
        );
        assert!(matches!(v, Verdict::Linearizable { .. }), "{v:?}");
    }

    #[test]
    fn sc_fallback_accepts_thread_local_reorder() {
        // Non-overlapping cross-thread ops that contradict real-time
        // order: NOT linearizable, but sequentially consistent.
        let v = check(
            Vec::new(),
            vec![
                rec(0, Op::Insert(2, 20), None, 0, 1),
                rec(1, Op::Get(2), None, 2, 3),
            ],
        );
        // Under the default window the full search correctly flags it...
        assert!(matches!(v, Verdict::Violation(_)), "{v:?}");
        // ...but with window 0 we skip straight to the SC fallback,
        // which accepts (get serialized before the insert).
        let h = History::from_threads(
            Vec::new(),
            vec![vec![
                rec(0, Op::Insert(2, 20), None, 0, 1),
                rec(1, Op::Get(2), None, 2, 3),
            ]],
        );
        let v = check_history(
            &h,
            CheckConfig {
                max_window: 0,
                step_budget: 1_000,
            },
        );
        assert!(matches!(v, Verdict::SequentiallyConsistent { .. }), "{v:?}");
    }

    #[test]
    fn sc_fallback_still_catches_per_thread_violations() {
        let h = History::from_threads(
            Vec::new(),
            vec![vec![
                rec(0, Op::Insert(4, 40), None, 0, 1),
                rec(0, Op::Get(4), None, 2, 3),
            ]],
        );
        let v = check_history(
            &h,
            CheckConfig {
                max_window: 0,
                step_budget: 1_000,
            },
        );
        assert!(matches!(v, Verdict::Violation(_)), "{v:?}");
    }

    #[test]
    fn tiny_budget_is_inconclusive() {
        let h = History::from_threads(
            Vec::new(),
            vec![vec![
                rec(0, Op::Insert(1, 1), None, 0, 3),
                rec(1, Op::Insert(2, 2), None, 1, 2),
            ]],
        );
        let v = check_history(
            &h,
            CheckConfig {
                max_window: 64,
                step_budget: 0,
            },
        );
        assert!(matches!(v, Verdict::Inconclusive), "{v:?}");
    }
}
