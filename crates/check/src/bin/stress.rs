//! Concurrency stress sweep: protocol × seed, with linearizability
//! checking, structural audits, and seeded schedule perturbation.
//!
//! ```text
//! stress --quick                 CI mode: 4 protocols x 16 seeds, ~seconds
//! stress --quick --batch 4       same sweep over sorted-batch execution
//!                                (workers group ops into execute_batch calls)
//! stress --full                  manual deep sweep (more seeds, ops, threads)
//! stress --replay 7 --protocol b-link
//!                                re-run one failing (protocol, seed) pair;
//!                                the perturbation decision stream is a pure
//!                                function of the seed, so the run replays
//!                                the same schedule pressure
//! stress --demo-bug              run all three known-bad readers (latched,
//!                                optimistic, and recycling-blind); exits 0
//!                                iff the checker convicts each of them
//! ```
//!
//! Exits non-zero on any failure so CI can gate on it.

use cbtree_btree::Protocol;
use cbtree_check::history::ConcurrentMap;
use cbtree_check::stress::{run_stress, run_stress_on, StressConfig, StressOutcome};
use cbtree_check::{
    buggy::{run_recycle_conviction, SkipParentRevalidation, SkipRightLink},
    Verdict,
};

#[derive(Debug, Clone)]
struct Args {
    quick: bool,
    full: bool,
    demo_bug: bool,
    replay: Option<u64>,
    protocol: Option<Protocol>,
    threads: Option<usize>,
    ops: Option<usize>,
    batch: Option<usize>,
    seeds: usize,
    seed_base: u64,
    no_inject: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        full: false,
        demo_bug: false,
        replay: None,
        protocol: None,
        threads: None,
        ops: None,
        batch: None,
        seeds: 16,
        seed_base: 1,
        no_inject: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--full" => args.full = true,
            "--demo-bug" => args.demo_bug = true,
            "--no-inject" => args.no_inject = true,
            "--replay" => {
                args.replay = Some(
                    value("--replay")?
                        .parse()
                        .map_err(|e| format!("--replay: {e}"))?,
                )
            }
            "--protocol" => args.protocol = Some(value("--protocol")?.parse()?),
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--ops" => args.ops = Some(value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?),
            "--batch" => {
                let n: usize = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                if n == 0 {
                    return Err("--batch must be at least 1".into());
                }
                args.batch = Some(n);
            }
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--seed-base" => {
                args.seed_base = value("--seed-base")?
                    .parse()
                    .map_err(|e| format!("--seed-base: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: stress [--quick|--full] [--protocol NAME] [--threads N] \
                     [--ops N] [--batch N] [--seeds N] [--seed-base N] [--no-inject] \
                     [--replay SEED] [--demo-bug]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !(args.quick || args.full || args.demo_bug || args.replay.is_some()) {
        args.quick = true;
    }
    Ok(args)
}

fn shape(args: &Args, protocol: Protocol, seed: u64) -> StressConfig {
    let mut cfg = if args.full {
        StressConfig::full(protocol, seed)
    } else {
        StressConfig::quick(protocol, seed)
    };
    if let Some(t) = args.threads {
        cfg.threads = t;
    }
    if let Some(o) = args.ops {
        cfg.ops_per_thread = o;
    }
    if let Some(b) = args.batch {
        cfg.batch_max = b;
    }
    if args.no_inject {
        cfg.inject = None;
    }
    cfg
}

fn verdict_name(v: &Verdict) -> &'static str {
    match v {
        Verdict::Linearizable { .. } => "linearizable",
        Verdict::SequentiallyConsistent { .. } => "seq-consistent",
        Verdict::Violation(_) => "VIOLATION",
        Verdict::Inconclusive => "inconclusive",
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stress: {e}");
            std::process::exit(2);
        }
    };

    if args.demo_bug {
        std::process::exit(demo_bug(&args));
    }

    let protocols: Vec<Protocol> = match args.protocol {
        Some(p) => vec![p],
        None => Protocol::ALL
            .iter()
            .copied()
            .chain([Protocol::Olc])
            .collect(),
    };
    let seeds: Vec<u64> = match args.replay {
        Some(s) => vec![s],
        None => (0..args.seeds as u64).map(|i| args.seed_base + i).collect(),
    };

    let mut failures = 0usize;
    println!(
        "{:<14} {:>6} {:>8} {:>15} {:>9} {:>8}  outcome",
        "protocol", "seed", "ops", "verdict", "perturbs", "ms"
    );
    for &protocol in &protocols {
        for &seed in &seeds {
            let cfg = shape(&args, protocol, seed);
            let t0 = std::time::Instant::now();
            let out = run_stress(&cfg);
            let ms = t0.elapsed().as_millis();
            let perturbs = out.inject_stats.yields + out.inject_stats.spins;
            let ok = out.passed();
            println!(
                "{:<14} {:>6} {:>8} {:>15} {:>9} {:>8}  {}",
                protocol.name(),
                seed,
                out.ops,
                verdict_name(&out.verdict),
                perturbs,
                ms,
                if ok { "ok" } else { "FAIL" }
            );
            if !ok {
                failures += 1;
                if let Some(why) = out.failure() {
                    eprintln!("\n--- {} seed {} ---\n{}", protocol.name(), seed, why);
                    eprintln!(
                        "replay with: stress --replay {} --protocol {}{}{}\n",
                        seed,
                        protocol.name(),
                        if args.full { " --full" } else { "" },
                        match args.batch {
                            Some(b) if b > 1 => format!(" --batch {b}"),
                            _ => String::new(),
                        }
                    );
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("stress: {failures} failing run(s)");
        std::process::exit(1);
    }
    println!(
        "stress: {} runs passed ({} protocols x {} seeds)",
        protocols.len() * seeds.len(),
        protocols.len(),
        seeds.len()
    );
}

/// Runs all three known-bad readers until the checker convicts each.
/// Exit 0 = the pillar has teeth; exit 1 = some bug escaped every seed.
fn demo_bug(args: &Args) -> i32 {
    let mut status = 0;
    status |= drive_bug(
        args,
        Protocol::BLink,
        "SkipRightLink (B-link reader that skips the post-latch covers() re-check)",
        SkipRightLink::new,
    );
    status |= drive_bug(
        args,
        Protocol::Olc,
        "SkipParentRevalidation (OLC reader that skips the parent re-validation)",
        SkipParentRevalidation::new,
    );
    // The recycling-blind reader needs a *directed* scenario: the
    // convicting interleaving (split moves the key right, the held
    // leaf's remnant drains and is vacuumed, the key itself untouched)
    // is vanishingly rare under the random sweep — by the time a leaf
    // drains naturally, the read key is gone with it, and the buggy
    // `None` is linearizable.
    status |= drive_scenario(
        args,
        "SkipGenerationCheck (reader that trusts a handle across a vacuum window)",
        run_recycle_conviction,
    );
    status
}

/// Runs a directed conviction scenario up to `--seeds` times (each run
/// records a real two-thread race; scheduling can let one slip).
fn drive_scenario(args: &Args, what: &str, run: impl Fn() -> StressOutcome) -> i32 {
    println!("driving {what}");
    for attempt in 1..=args.seeds.max(1) {
        let out = run();
        println!(
            "  attempt {:>2}: {:>15} {}",
            attempt,
            verdict_name(&out.verdict),
            if out.passed() { "(escaped)" } else { "CAUGHT" }
        );
        if !out.passed() {
            if let Some(why) = out.failure() {
                println!("\n{why}");
            }
            println!("bug caught at attempt {attempt}; the checker has teeth.");
            return 0;
        }
    }
    eprintln!("demo-bug: {what} escaped every attempt");
    1
}

fn drive_bug<M: ConcurrentMap<u64>>(
    args: &Args,
    protocol: Protocol,
    what: &str,
    make: impl Fn(usize) -> M,
) -> i32 {
    println!("driving {what}");
    for seed in 0..args.seeds as u64 {
        let seed = args.seed_base + seed;
        let cfg = shape(args, protocol, seed);
        let map = make(cfg.capacity);
        let out = run_stress_on(&map, &cfg);
        println!(
            "  seed {:>4}: {:>15} {}",
            seed,
            verdict_name(&out.verdict),
            if out.passed() { "(escaped)" } else { "CAUGHT" }
        );
        if !out.passed() {
            if let Some(why) = out.failure() {
                println!("\n{why}");
            }
            println!("bug caught at seed {seed}; the checker has teeth.");
            return 0;
        }
    }
    eprintln!("demo-bug: {what} escaped all seeds");
    1
}
