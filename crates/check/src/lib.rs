//! Concurrency-correctness pillar for the concurrent B-tree study.
//!
//! The performance pillars (simulator, queueing model, live measurement)
//! are only meaningful if the trees they measure are *correct under
//! concurrency* — a protocol that loses keys is arbitrarily fast. This
//! crate supplies the evidence, three layers deep:
//!
//! 1. **History recording + linearizability** ([`history`],
//!    [`linearize`]): N threads drive a tree through the
//!    [`ConcurrentMap`] facade while every invocation/response is
//!    timestamped by a global atomic clock; the recorded history is then
//!    checked against a sequential `BTreeMap` oracle with a Wing–Gong
//!    style search (bounded window and step budget, falling back to a
//!    sequential-consistency check, with a minimized violation witness
//!    on failure).
//! 2. **Structural auditors** ([`audit`]): at quiesce points, every
//!    level's right-link chain is replayed against the parent level's
//!    child pointers — catching lost separators and rewired links that
//!    pure child-pointer invariant checks cannot see — plus key
//!    ordering, fullness bounds, and tree/oracle content equality.
//! 3. **Schedule perturbation** (`cbtree-sync`'s `inject` feature): the
//!    stress harness ([`stress`]) seeds deterministic yield/spin-delay
//!    decisions at latch acquire/release and inside the B-link
//!    half-split window, so rare interleavings are explored on purpose
//!    and a failing seed replays its decision stream exactly.
//!
//! The [`buggy`] module keeps deliberately broken readers around as
//! permanent regression targets proving the checker has teeth — one
//! latched (a B-link reader that skips the post-latch right-link
//! chase), one optimistic (an OLC reader that skips the parent
//! re-validation after the child read). The
//! `stress` binary sweeps protocol × seed × thread-count; CI runs its
//! quick mode on every push.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod audit;
pub mod buggy;
pub mod history;
pub mod linearize;
pub mod stress;

pub use audit::{audit, audit_with_contents, AuditReport};
pub use history::{record, Clock, ConcurrentMap, History, Op, OpRecord};
pub use linearize::{check_history, CheckConfig, Verdict, ViolationWitness};
pub use stress::{run_stress, run_stress_on, StressConfig, StressOutcome};
