//! Quiescent structural auditors for the concurrent B+-trees.
//!
//! These go beyond `check_invariants` (which walks child pointers only):
//! the b-link chain audit walks each level's right-link chain *and* the
//! parent level's child pointers independently and demands they reach the
//! same node set in the same key order. That catches lost separators —
//! a half-split whose sibling is reachable via the right link but was
//! never posted to the parent stays latently wrong under pure
//! child-pointer checking, and a rewired right link that skips a sibling
//! is invisible to a child-pointer walk.
//!
//! All auditors require a quiescent tree (no concurrent mutators); the
//! stress harness runs them after joining its workers.

use cbtree_btree::node::{self, Children, NodeId, NodeRef};
use cbtree_btree::ConcurrentMap;
use std::collections::BTreeMap;

/// Summary of a passing audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Nodes per level, top level first.
    pub nodes_per_level: Vec<usize>,
    /// Total keys counted at the leaf level.
    pub keys: usize,
}

/// Runs every structural audit on a quiescent tree:
///
/// 1. the tree's own recursive invariant checker (`check_invariants`);
/// 2. per-level chain integrity — consecutive high-key/low-key agreement,
///    strict key ordering *across* nodes, finite high key ⇔ right link;
/// 3. separator completeness — child-pointer reachability equals
///    right-link reachability on every level, in the same order;
/// 4. fullness — no node exceeds capacity and (root apart) no reachable
///    node is empty.
pub fn audit<M: ConcurrentMap<u64> + ?Sized>(tree: &M) -> Result<AuditReport, String> {
    tree.check()?;
    let root = tree.root_handle();
    audit_root(&root, tree.capacity())
}

/// Like [`audit`] but additionally demands the leaf contents equal
/// `expected` (e.g. the linearization oracle's final state) and that the
/// tree's maintained length agrees.
pub fn audit_with_contents<M: ConcurrentMap<u64> + ?Sized>(
    tree: &M,
    expected: &BTreeMap<u64, u64>,
) -> Result<AuditReport, String> {
    let report = audit(tree)?;
    let actual = contents(&tree.root_handle());
    if &actual != expected {
        let missing: Vec<u64> = expected
            .keys()
            .filter(|k| !actual.contains_key(k))
            .copied()
            .take(8)
            .collect();
        let extra: Vec<u64> = actual
            .keys()
            .filter(|k| !expected.contains_key(k))
            .copied()
            .take(8)
            .collect();
        return Err(format!(
            "tree contents diverge from oracle: {} vs {} keys; missing {missing:?}, extra {extra:?}",
            actual.len(),
            expected.len()
        ));
    }
    if tree.len() != expected.len() {
        return Err(format!(
            "maintained len {} disagrees with contents {}",
            tree.len(),
            expected.len()
        ));
    }
    Ok(report)
}

/// Leaf contents by right-link chain walk (quiescent use).
pub fn contents(root: &NodeRef<u64>) -> BTreeMap<u64, u64> {
    let heads = node::level_heads(root);
    let mut out = BTreeMap::new();
    if let Some(leaf_head) = heads.last() {
        for n in node::level_chain(leaf_head) {
            let g = n.read();
            if let Children::Leaf(vals) = &g.children {
                for (i, &k) in g.keys.iter().enumerate() {
                    out.insert(k, vals[i]);
                }
            }
        }
    }
    out
}

/// Chain + separator audits on a raw root handle (exposed so tests can
/// audit hand-corrupted trees without a facade).
pub fn audit_root(root: &NodeRef<u64>, cap: usize) -> Result<AuditReport, String> {
    let heads = node::level_heads(root);
    let mut nodes_per_level = Vec::with_capacity(heads.len());
    let mut keys = 0usize;
    let mut parent_chain: Option<Vec<NodeRef<u64>>> = None;
    for (depth, head) in heads.iter().enumerate() {
        let chain = node::level_chain(head);
        audit_chain(&chain, depth, cap)?;
        if let Some(parents) = &parent_chain {
            audit_separators(parents, &chain, depth)?;
        }
        nodes_per_level.push(chain.len());
        if depth + 1 == heads.len() {
            keys = chain.iter().map(|n| n.read().keys.len()).sum();
        }
        parent_chain = Some(chain);
    }
    Ok(AuditReport {
        nodes_per_level,
        keys,
    })
}

/// One level's right-link chain: ordering, high keys, fullness.
fn audit_chain(chain: &[NodeRef<u64>], depth: usize, cap: usize) -> Result<(), String> {
    let mut prev_high: Option<u64> = None;
    for (i, n) in chain.iter().enumerate() {
        let g = n.read();
        let last = i + 1 == chain.len();
        if g.keys.len() > cap {
            return Err(format!(
                "level-{depth} node {i} overfull: {} keys > cap {cap}",
                g.keys.len()
            ));
        }
        // NB: empty nodes are legal — all trees are merge-at-empty with
        // lazy reclamation, so a drained leaf stays linked.
        if !g.keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("level-{depth} node {i} keys unsorted"));
        }
        if last {
            if g.high.is_some() {
                return Err(format!(
                    "level-{depth} chain tail has finite high key {:?}",
                    g.high
                ));
            }
        } else {
            let h = g.high.ok_or_else(|| {
                format!("level-{depth} node {i} has a right link but high = +inf")
            })?;
            if let Some(p) = prev_high {
                if g.keys.first().is_some_and(|&k| k < p) {
                    return Err(format!(
                        "level-{depth} node {i} starts below its left sibling's high key {p}"
                    ));
                }
            }
            if g.keys.iter().any(|&k| k >= h) {
                return Err(format!(
                    "level-{depth} node {i} holds a key >= its high key {h}"
                ));
            }
            prev_high = Some(h);
        }
        if !last && g.right.is_none() {
            return Err(format!("level-{depth} chain broke early at node {i}"));
        }
    }
    Ok(())
}

/// Separator completeness: concatenating every parent's child pointers
/// (left to right) must reproduce the child level's right-link chain
/// exactly — same nodes, same order, nothing skipped, nothing lost.
fn audit_separators(
    parents: &[NodeRef<u64>],
    children_chain: &[NodeRef<u64>],
    child_depth: usize,
) -> Result<(), String> {
    let mut via_parents: Vec<NodeId> = Vec::new();
    for p in parents {
        let g = p.read();
        if let Children::Internal(kids) = &g.children {
            via_parents.extend(kids.iter().copied());
        } else {
            return Err(format!(
                "level-{} node is a leaf but has a child level below",
                child_depth - 1
            ));
        }
    }
    let via_chain: Vec<NodeId> = children_chain.iter().map(|n| n.id()).collect();
    if via_parents != via_chain {
        return Err(format!(
            "level-{child_depth} separator audit: parents reach {} children, right-link chain has {} — a split sibling was lost or the chain was rewired",
            via_parents.len(),
            via_chain.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtree_btree::{ConcurrentBTree, Protocol};

    fn build(protocol: Protocol) -> ConcurrentBTree<u64> {
        let t = ConcurrentBTree::new(protocol, 4);
        for k in 0..200u64 {
            t.insert(k.wrapping_mul(2_654_435_761) % 1000, k);
        }
        t
    }

    #[test]
    fn audit_accepts_all_protocols() {
        for p in Protocol::ALL_WITH_BASELINE {
            let t = build(p);
            let report = audit(&t).unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert_eq!(report.keys, t.len(), "{p:?}");
            assert!(report.nodes_per_level.len() >= 2, "{p:?}");
        }
    }

    #[test]
    fn audit_with_contents_matches_oracle() {
        let t = ConcurrentBTree::new(Protocol::BLink, 4);
        let mut oracle = BTreeMap::new();
        for k in 0..300u64 {
            t.insert(k * 3, k);
            oracle.insert(k * 3, k);
        }
        for k in (0..300u64).step_by(7) {
            t.remove(&(k * 3));
            oracle.remove(&(k * 3));
        }
        audit_with_contents(&t, &oracle).unwrap();
        oracle.insert(999_999, 1);
        assert!(audit_with_contents(&t, &oracle).is_err());
    }

    #[test]
    fn audit_catches_rewired_right_link() {
        // Corrupt a healthy tree: make the leftmost leaf's right link
        // skip its sibling. check_invariants (child-pointer walk) cannot
        // see this; the separator audit must.
        let t = build(Protocol::BLink);
        let root = t.root_handle();
        let heads = node::level_heads(&root);
        let leaf_head = heads.last().unwrap();
        let chain = node::level_chain(leaf_head);
        assert!(chain.len() >= 3, "need >= 3 leaves to skip one");
        let skip_to = chain[2].id();
        let skip_low = chain[2].read().keys[0];
        {
            let mut g = chain[0].write();
            g.right = Some(skip_to);
            // Keep right/high pairing legal so only the skip is wrong.
            g.high = Some(skip_low);
        }
        let err = audit_root(&root, t.capacity()).unwrap_err();
        assert!(
            err.contains("separator audit") || err.contains("high key"),
            "{err}"
        );
    }

    #[test]
    fn audit_catches_lost_separator() {
        // Simulate an un-posted half-split: split a leaf via the node
        // API but never tell the parent.
        let t = build(Protocol::BLink);
        let root = t.root_handle();
        let heads = node::level_heads(&root);
        let chain = node::level_chain(heads.last().unwrap());
        let victim = chain
            .iter()
            .find(|n| n.read().keys.len() >= 2)
            .expect("some leaf has >= 2 keys");
        // `split_node` allocates the sibling and links it into the leaf
        // chain but — unlike a real insert — never posts the separator.
        node::split_node(victim.arena(), &mut victim.write(), t.capacity());
        let err = audit_root(&root, t.capacity()).unwrap_err();
        assert!(err.contains("separator audit"), "{err}");
    }

    #[test]
    fn singleton_root_audits_clean() {
        let t = ConcurrentBTree::new(Protocol::LockCoupling, 4);
        t.insert(1, 1);
        let report = audit(&t).unwrap();
        assert_eq!(report.nodes_per_level, vec![1]);
        assert_eq!(report.keys, 1);
    }
}
