//! Model configuration: tree shape, operation mix, costs, fullness
//! probabilities, and recovery policy.

use crate::{AnalysisError, Result};
use cbtree_btree_model::{CostModel, Fullness, NodeParams, OpMix, TreeShape};

/// How W locks interact with transaction recovery (paper §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecoveryMode {
    /// The index is not covered by transactional recovery: W locks are
    /// released as soon as the structural operation completes.
    #[default]
    None,
    /// Naive recovery: *every* W lock an operation places is held until
    /// the surrounding transaction commits.
    Naive,
    /// Leaf-only recovery (Shasha '85): only leaf-level W locks are held
    /// until commit; non-leaf W locks are released as soon as possible.
    LeafOnly,
}

/// Recovery configuration: mode plus the expected remaining transaction
/// time `T_trans` after the B-tree operation finishes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Lock-retention policy.
    pub mode: RecoveryMode,
    /// Expected time until the enclosing transaction commits (the paper's
    /// comparison uses `T_trans = 100`, "a conservative estimate").
    pub t_trans: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            mode: RecoveryMode::None,
            t_trans: 0.0,
        }
    }
}

impl RecoveryConfig {
    /// Extra W-lock hold time at the *leaf* level: `T_trans` under either
    /// recovery mode, 0 with no recovery.
    pub fn leaf_extra(&self) -> f64 {
        match self.mode {
            RecoveryMode::None => 0.0,
            RecoveryMode::Naive | RecoveryMode::LeafOnly => self.t_trans,
        }
    }

    /// Extra expected W-lock hold time above the leaves, given the
    /// probability `pr_full` that the node's level makes the lock's node
    /// part of the modified scope: `Pr[F(i)]·T_trans` under Naive
    /// recovery, 0 otherwise (paper §7's `T'(OP,i)` definition).
    pub fn upper_extra(&self, pr_full: f64) -> f64 {
        match self.mode {
            RecoveryMode::Naive => pr_full * self.t_trans,
            RecoveryMode::None | RecoveryMode::LeafOnly => 0.0,
        }
    }
}

/// Everything an algorithm model needs to know about the B-tree and the
/// workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Steady-state tree shape (height, fanouts).
    pub shape: TreeShape,
    /// Operation mix (`q_s`, `q_i`, `q_d`).
    pub mix: OpMix,
    /// Per-level access costs.
    pub cost: CostModel,
    /// Node-fullness probabilities.
    pub fullness: Fullness,
    /// Recovery policy (paper §7); defaults to no recovery.
    pub recovery: RecoveryConfig,
}

impl ModelConfig {
    /// Builds a configuration, deriving fullness probabilities from
    /// Corollary 1 and checking that all components agree on the height.
    pub fn new(shape: TreeShape, mix: OpMix, cost: CostModel) -> Result<Self> {
        if cost.height() != shape.height {
            return Err(AnalysisError::InvalidParameter {
                name: "cost",
                constraint: "cost model height must equal tree height",
            });
        }
        let fullness = Fullness::corollary1(&shape, &mix)?;
        Ok(ModelConfig {
            shape,
            mix,
            cost,
            fullness,
            recovery: RecoveryConfig::default(),
        })
    }

    /// The paper's base configuration (§5.3): `N = 13`, ~40 000 items,
    /// 5 levels with the top 2 in memory, disk cost 5, unit root search,
    /// mix `.3/.5/.2`.
    pub fn paper_base() -> Self {
        let shape = TreeShape::paper();
        let cost =
            CostModel::paper_style(shape.height, 2, 5.0, 1.0).expect("paper parameters are valid");
        ModelConfig::new(shape, OpMix::paper(), cost).expect("paper parameters are valid")
    }

    /// The paper's base configuration with a different disk cost `D`
    /// (Figures 9, 11, 15 use `D = 10`).
    pub fn paper_with_disk_cost(disk_cost: f64) -> Result<Self> {
        let shape = TreeShape::paper();
        let cost = CostModel::paper_style(shape.height, 2, disk_cost, 1.0)?;
        ModelConfig::new(shape, OpMix::paper(), cost)
    }

    /// A configuration pinned to explicit height/root-fanout/node-size —
    /// how the figure sweeps vary `N` while keeping the tree comparable.
    pub fn pinned(
        max_node_size: usize,
        height: usize,
        root_fanout: f64,
        memory_levels: usize,
        disk_cost: f64,
        base_search: f64,
        mix: OpMix,
    ) -> Result<Self> {
        let node = NodeParams::with_max_size(max_node_size)?;
        let shape = TreeShape::explicit(height, root_fanout, node)?;
        let cost = CostModel::paper_style(height, memory_levels, disk_cost, base_search)?;
        ModelConfig::new(shape, mix, cost)
    }

    /// Returns a copy with the given recovery configuration.
    pub fn with_recovery(mut self, mode: RecoveryMode, t_trans: f64) -> Self {
        self.recovery = RecoveryConfig { mode, t_trans };
        self
    }

    /// Tree height `h`.
    pub fn height(&self) -> usize {
        self.shape.height
    }

    /// Validates an arrival rate argument.
    pub(crate) fn check_lambda(&self, lambda: f64) -> Result<()> {
        if lambda.is_finite() && lambda >= 0.0 {
            Ok(())
        } else {
            Err(AnalysisError::InvalidParameter {
                name: "lambda",
                constraint: "must be finite and non-negative",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_is_consistent() {
        let cfg = ModelConfig::paper_base();
        assert_eq!(cfg.height(), 5);
        assert_eq!(cfg.cost.height(), 5);
        assert_eq!(cfg.fullness.height(), 5);
        assert_eq!(cfg.recovery.mode, RecoveryMode::None);
    }

    #[test]
    fn height_mismatch_rejected() {
        let shape = TreeShape::paper();
        let cost = CostModel::paper_style(3, 2, 5.0, 1.0).unwrap();
        assert!(ModelConfig::new(shape, OpMix::paper(), cost).is_err());
    }

    #[test]
    fn recovery_extras() {
        let none = RecoveryConfig::default();
        assert_eq!(none.leaf_extra(), 0.0);
        assert_eq!(none.upper_extra(0.1), 0.0);

        let naive = RecoveryConfig {
            mode: RecoveryMode::Naive,
            t_trans: 100.0,
        };
        assert_eq!(naive.leaf_extra(), 100.0);
        assert!((naive.upper_extra(0.1) - 10.0).abs() < 1e-12);

        let leaf = RecoveryConfig {
            mode: RecoveryMode::LeafOnly,
            t_trans: 100.0,
        };
        assert_eq!(leaf.leaf_extra(), 100.0);
        assert_eq!(leaf.upper_extra(0.1), 0.0);
    }

    #[test]
    fn with_recovery_builder() {
        let cfg = ModelConfig::paper_base().with_recovery(RecoveryMode::LeafOnly, 50.0);
        assert_eq!(cfg.recovery.mode, RecoveryMode::LeafOnly);
        assert_eq!(cfg.recovery.t_trans, 50.0);
    }

    #[test]
    fn pinned_configuration() {
        let cfg = ModelConfig::pinned(59, 4, 6.0, 2, 10.0, 1.0, OpMix::paper()).unwrap();
        assert_eq!(cfg.height(), 4);
        assert_eq!(cfg.shape.root_fanout(), 6.0);
        assert_eq!(cfg.cost.se(1), 10.0);
        assert_eq!(cfg.cost.se(4), 1.0);
    }

    #[test]
    fn lambda_validation() {
        let cfg = ModelConfig::paper_base();
        assert!(cfg.check_lambda(0.0).is_ok());
        assert!(cfg.check_lambda(-1.0).is_err());
        assert!(cfg.check_lambda(f64::NAN).is_err());
    }
}
