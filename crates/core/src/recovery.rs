//! Database-recovery extension (paper §7).
//!
//! A transactional database retains the exclusive locks a transaction
//! acquires until commit, so an aborting transaction can restore old
//! values without interfering with others. Applied naively to a B-tree
//! index, *every* W lock an operation places — including non-leaf locks
//! taken purely for structural safety — is held for the remaining
//! transaction time `T_trans` ("Naive recovery"). Shasha ('85) observed
//! that correctness only requires retaining the **leaf** W locks
//! ("Leaf-only recovery"); this module quantifies how much that buys.
//!
//! The model change is exactly the paper's: add `T_trans` to every
//! leaf-level W-lock hold time under either policy, and add
//! `Pr[F(i)]·T_trans` to non-leaf W-lock hold times under Naive recovery
//! only. The machinery lives in [`crate::config::RecoveryConfig`] and is
//! consumed by all three algorithm models; this module packages the §7
//! three-way comparison.

use crate::config::{ModelConfig, RecoveryMode};
use crate::{Algorithm, Performance, PerformanceModel, Result};

/// The §7 three-way comparison: the same algorithm under no recovery,
/// Leaf-only recovery, and Naive recovery.
pub struct RecoveryComparison {
    /// Model without recovery locking.
    pub none: Box<dyn PerformanceModel>,
    /// Model under Leaf-only recovery.
    pub leaf_only: Box<dyn PerformanceModel>,
    /// Model under Naive recovery.
    pub naive: Box<dyn PerformanceModel>,
}

/// One row of the comparison at a single arrival rate.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRow {
    /// Arrival rate evaluated.
    pub lambda: f64,
    /// Insert response time without recovery.
    pub insert_rt_none: f64,
    /// Insert response time under Leaf-only recovery.
    pub insert_rt_leaf_only: f64,
    /// Insert response time under Naive recovery.
    pub insert_rt_naive: f64,
}

impl RecoveryComparison {
    /// Builds the comparison for `algorithm` on `cfg` (the paper uses
    /// Optimistic Descent) with remaining transaction time `t_trans`.
    pub fn new(algorithm: Algorithm, cfg: &ModelConfig, t_trans: f64) -> Self {
        RecoveryComparison {
            none: algorithm.model(&cfg.clone().with_recovery(RecoveryMode::None, 0.0)),
            leaf_only: algorithm.model(&cfg.clone().with_recovery(RecoveryMode::LeafOnly, t_trans)),
            naive: algorithm.model(&cfg.clone().with_recovery(RecoveryMode::Naive, t_trans)),
        }
    }

    /// Evaluates all three variants at one arrival rate.
    pub fn evaluate(&self, lambda: f64) -> Result<(Performance, Performance, Performance)> {
        Ok((
            self.none.evaluate(lambda)?,
            self.leaf_only.evaluate(lambda)?,
            self.naive.evaluate(lambda)?,
        ))
    }

    /// Insert-response-time row at one arrival rate (Figures 15–16).
    pub fn insert_row(&self, lambda: f64) -> Result<RecoveryRow> {
        let (none, leaf, naive) = self.evaluate(lambda)?;
        Ok(RecoveryRow {
            lambda,
            insert_rt_none: none.response_time_insert,
            insert_rt_leaf_only: leaf.response_time_insert,
            insert_rt_naive: naive.response_time_insert,
        })
    }

    /// Maximum throughputs of the three variants `(none, leaf_only, naive)`.
    pub fn max_throughputs(&self) -> Result<(f64, f64, f64)> {
        Ok((
            self.none.max_throughput()?,
            self.leaf_only.max_throughput()?,
            self.naive.max_throughput()?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fig15_comparison() -> RecoveryComparison {
        // Figure 15: OD insert response times, N = 13, h = 5, D = 10,
        // T_trans = 100.
        let cfg = ModelConfig::paper_with_disk_cost(10.0).unwrap();
        RecoveryComparison::new(Algorithm::OptimisticDescent, &cfg, 100.0)
    }

    #[test]
    fn ranking_none_leq_leaf_leq_naive() {
        let cmp = paper_fig15_comparison();
        let row = cmp.insert_row(0.2).unwrap();
        assert!(row.insert_rt_none <= row.insert_rt_leaf_only + 1e-9);
        assert!(row.insert_rt_leaf_only < row.insert_rt_naive);
    }

    #[test]
    fn leaf_only_close_to_none_naive_far() {
        // §7's conclusion: Leaf-only is only *slightly* worse than no
        // recovery, Naive is *significantly* worse.
        let cmp = paper_fig15_comparison();
        let (max_none, max_leaf, max_naive) = cmp.max_throughputs().unwrap();
        assert!(
            max_leaf > 0.8 * max_none,
            "leaf-only ≈ none: {max_leaf} vs {max_none}"
        );
        assert!(
            max_naive < 0.8 * max_leaf,
            "naive ≪ leaf-only: {max_naive} vs {max_leaf}"
        );
    }

    #[test]
    fn gap_grows_with_load() {
        let cmp = paper_fig15_comparison();
        let (_, _, max_naive) = cmp.max_throughputs().unwrap();
        let low = cmp.insert_row(0.2 * max_naive).unwrap();
        let high = cmp.insert_row(0.9 * max_naive).unwrap();
        let gap_low = low.insert_rt_naive - low.insert_rt_leaf_only;
        let gap_high = high.insert_rt_naive - high.insert_rt_leaf_only;
        assert!(gap_high > gap_low);
    }

    #[test]
    fn works_for_larger_nodes_fig16() {
        // Figure 16's setup: N = 59, 4 levels.
        let cfg = ModelConfig::pinned(59, 4, 6.0, 2, 10.0, 1.0, cbtree_btree_model::OpMix::paper())
            .unwrap();
        let cmp = RecoveryComparison::new(Algorithm::OptimisticDescent, &cfg, 100.0);
        let row = cmp.insert_row(0.3).unwrap();
        assert!(row.insert_rt_leaf_only < row.insert_rt_naive);
    }

    #[test]
    fn applies_to_other_algorithms_too() {
        let cfg = ModelConfig::paper_base();
        let cmp = RecoveryComparison::new(Algorithm::LinkType, &cfg, 100.0);
        let row = cmp.insert_row(0.5).unwrap();
        // Link-type W-locks only what it modifies, so naive recovery still
        // costs more than leaf-only (upper-level locks retained on split
        // paths), but everything remains stable.
        assert!(row.insert_rt_naive >= row.insert_rt_leaf_only - 1e-9);
    }
}
