//! The Naive Lock-coupling model (paper §5, Theorems 1–5).
//!
//! Searches descend with shared locks, updates with exclusive locks, and a
//! parent's lock is released only after the child's lock is granted — and
//! retained entirely while the child is unsafe for the operation. The
//! consequence for the model is that the time a level-`i` lock is *held*
//! embeds the waiting time at level `i−1` (Theorem 1), so the levels are
//! solved bottom-up:
//!
//! 1. leaves: plain Theorem 6 fixed point + M/M/1 waits (Theorem 4);
//! 2. level `i ≥ 2`: the writer's aggregate service is the staged server
//!    of Figure 2 — search the node and absorb the reader burst
//!    (`t_e`), hold the child's lock while it restructures with
//!    probability `p_f` (`t_f`), and wait to acquire the child's lock
//!    (busy branch `ρ_o`/`t_busy`, idle branch `t_idle`) — solved with the
//!    generalized fixed point and Pollaczek–Khinchine (Theorem 3);
//! 3. response times from Theorem 5.

use crate::config::ModelConfig;
use crate::level::{solve_level, LevelSolution, Performance};
use crate::{Algorithm, PerformanceModel, Result};
use cbtree_queueing::stages::{Mixture, StagedService};

/// Analytical model of the Naive Lock-coupling algorithm.
#[derive(Debug, Clone)]
pub struct NaiveLockCoupling {
    cfg: ModelConfig,
    /// Ablation switch: model upper-level aggregate service as a plain
    /// exponential with the same mean instead of Theorem 3's staged
    /// hyperexponential server (underestimates the variance, hence the
    /// waits — quantified by the `ablation-hyperexp` experiment).
    exponential_approx: bool,
}

/// Per-level lock-hold times `T(o, i)` (Theorem 1), exposed for tests and
/// for the Optimistic Descent model, which reuses the insert recursion for
/// its redo descents.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldTimes {
    /// `T(S, i)`, indexed by level−1.
    pub search: Vec<f64>,
    /// `T(I, i)`, indexed by level−1.
    pub insert: Vec<f64>,
    /// `T(D, i)`, indexed by level−1.
    pub delete: Vec<f64>,
}

impl NaiveLockCoupling {
    /// Builds the model for a configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        NaiveLockCoupling {
            cfg,
            exponential_approx: false,
        }
    }

    /// Builds the ablation variant that replaces Theorem 3's staged
    /// (hyperexponential) upper-level server with a plain exponential of
    /// equal mean. "Lock coupling gives the service time distributions a
    /// large variance" (§5) — this variant shows how much of the waiting
    /// the naive exponential assumption misses.
    pub fn new_exponential_approx(cfg: ModelConfig) -> Self {
        NaiveLockCoupling {
            cfg,
            exponential_approx: true,
        }
    }

    /// Evaluates the model, returning both the performance report and the
    /// Theorem 1 hold times (the plain [`PerformanceModel::evaluate`]
    /// discards the latter).
    pub fn evaluate_detailed(&self, lambda: f64) -> Result<(Performance, HoldTimes)> {
        self.cfg.check_lambda(lambda)?;
        let cfg = &self.cfg;
        let h = cfg.height();
        let mix = &cfg.mix;
        let f = &cfg.fullness;
        let c = &cfg.cost;
        let rec = &cfg.recovery;
        let ins_share = mix.insert_share_of_updates();
        let del_share = mix.delete_share_of_updates();

        let mut t_s = vec![0.0; h];
        let mut t_i = vec![0.0; h];
        let mut t_d = vec![0.0; h];
        let mut sols: Vec<LevelSolution> = Vec::with_capacity(h);

        for level in 1..=h {
            let lambda_lvl = cfg.shape.arrival_at_level(lambda, level);
            let lambda_r = mix.q_search * lambda_lvl;
            let lambda_w = mix.update_fraction() * lambda_lvl;

            let sol = if level == 1 {
                // Theorem 4: the leaf's aggregate service is one
                // exponential stage. §7: waiters see T' = T + T_trans at
                // the leaf under either recovery mode, but the Theorem 1
                // recursion stays unprimed (the parent releases its lock
                // when the structural work completes, not at commit).
                t_s[0] = c.se(1);
                t_i[0] = c.m();
                t_d[0] = c.m();
                let w_mean = ins_share * t_i[0] + del_share * t_d[0] + rec.leaf_extra();
                let mu_r = 1.0 / t_s[0];
                solve_level(1, lambda_r, lambda_w, mu_r, lambda, |burst| {
                    StagedService::new().with_stage(Mixture::always(w_mean + burst))
                })?
            } else {
                let prev = &sols[level - 2];
                let i = level; // paper's level index

                // Theorem 1 hold times (unprimed; recovery enters only
                // the queue service times below, per §7).
                t_s[i - 1] = c.se(i) + prev.r_wait;
                t_i[i - 1] = c.se(i)
                    + prev.w_wait
                    + f.pr_full(i - 1) * t_i[i - 2]
                    + c.sp(i - 1) * f.split_chain_prob(i - 1);
                t_d[i - 1] = c.se(i)
                    + prev.w_wait
                    + f.pr_empty(i - 1) * t_d[i - 2]
                    + c.mg(i - 1) * f.merge_chain_prob(i - 1);

                // Theorem 3 stage parameters (all from level i−1). t_f is
                // the *structural* child hold time: the level-i lock is
                // released when restructuring completes, so §7's retention
                // does not extend it (the child queue's own waits, which
                // feed t_busy/t_idle via `prev`, already reflect T').
                let p_f = ins_share * f.pr_full(i - 1);
                let rho_o = prev.rho_w;
                let t_f = t_i[i - 2] + c.sp(i - 1) * f.split_chain_prob(i.saturating_sub(2));
                let t_busy = if rho_o > 0.0 {
                    prev.r_wait / rho_o + prev.r_u
                } else {
                    0.0
                };
                let t_idle = prev.r_e;
                let mu_r = 1.0 / t_s[i - 1];
                let se_i = c.se(i);
                let t_trans = cfg.recovery.t_trans;
                let rec_prob = if rec.upper_extra(f.pr_full(i)) > 0.0 {
                    f.pr_full(i)
                } else {
                    0.0
                };
                let exponential_approx = self.exponential_approx;

                solve_level(i, lambda_r, lambda_w, mu_r, lambda, move |burst| {
                    let mut agg = StagedService::theorem3_server(
                        se_i + burst,
                        p_f,
                        t_f,
                        rho_o,
                        t_busy,
                        t_idle,
                    );
                    if rec_prob > 0.0 {
                        // Naive recovery: the W lock is retained T_trans
                        // past the operation when the node is modified.
                        agg.push(Mixture::optional(rec_prob, t_trans));
                    }
                    if exponential_approx {
                        // Ablation: same mean, exponential variance.
                        agg = StagedService::new().with_stage(Mixture::always(agg.mean()));
                    }
                    agg
                })?
            };
            sols.push(sol);
        }

        // Theorem 5 response times.
        let response_time_search: f64 = (1..=h).map(|i| c.se(i) + sols[i - 1].r_wait).sum();
        let response_time_delete: f64 =
            c.m() + sols[0].w_wait + (2..=h).map(|i| c.se(i) + sols[i - 1].w_wait).sum::<f64>();
        let split_work: f64 = (1..h).map(|j| f.split_chain_prob(j) * c.sp(j)).sum();
        let response_time_insert: f64 = c.m()
            + (2..=h).map(|i| c.se(i)).sum::<f64>()
            + (1..=h).map(|i| sols[i - 1].w_wait).sum::<f64>()
            + split_work;

        let perf = Performance {
            lambda,
            response_time_search,
            response_time_insert,
            response_time_delete,
            levels: sols,
        };
        Ok((
            perf,
            HoldTimes {
                search: t_s,
                insert: t_i,
                delete: t_d,
            },
        ))
    }
}

impl PerformanceModel for NaiveLockCoupling {
    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::NaiveLockCoupling
    }

    fn evaluate(&self, lambda: f64) -> Result<Performance> {
        Ok(self.evaluate_detailed(lambda)?.0)
    }

    fn as_dyn(&self) -> &dyn PerformanceModel {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalysisError;

    fn model() -> NaiveLockCoupling {
        NaiveLockCoupling::new(ModelConfig::paper_base())
    }

    #[test]
    fn zero_load_response_is_serial_time() {
        let (perf, _) = model().evaluate_detailed(0.0).unwrap();
        // Serial search: Se over 5 levels = 1 + 1 + 5 + 5 + 5 = 17
        assert!((perf.response_time_search - 17.0).abs() < 1e-9);
        // Serial delete: M + Se(2..5) = 10 + (5 + 5 + 1 + 1) = 22
        assert!((perf.response_time_delete - 22.0).abs() < 1e-9);
        // Insert adds expected split work on top of the delete path shape.
        assert!(perf.response_time_insert > perf.response_time_delete - 1e-12);
        assert_eq!(perf.root_writer_utilization(), 0.0);
    }

    #[test]
    fn hold_times_follow_theorem_1_shapes() {
        let (_, hold) = model().evaluate_detailed(0.1).unwrap();
        let c = ModelConfig::paper_base();
        // Leaf: T(S,1) = Se(1), T(I,1) = T(D,1) = M.
        assert_eq!(hold.search[0], c.cost.se(1));
        assert_eq!(hold.insert[0], c.cost.m());
        assert_eq!(hold.delete[0], c.cost.m());
        // Upper levels hold longer than a bare search.
        for i in 2..=c.height() {
            assert!(hold.search[i - 1] >= c.cost.se(i));
            assert!(hold.insert[i - 1] > hold.search[i - 1]);
        }
    }

    #[test]
    fn response_times_increase_with_load() {
        let m = model();
        let lo = m.evaluate(0.05).unwrap();
        let hi = m.evaluate(0.25).unwrap();
        assert!(hi.response_time_search > lo.response_time_search);
        assert!(hi.response_time_insert > lo.response_time_insert);
        assert!(hi.root_writer_utilization() > lo.root_writer_utilization());
    }

    #[test]
    fn root_is_the_bottleneck() {
        // Theorem 2: because of lock-coupling the bottleneck is the root.
        let m = model();
        let mut lambda = 0.4;
        loop {
            match m.evaluate(lambda) {
                Ok(_) => lambda *= 1.3,
                Err(AnalysisError::Saturated { level, .. }) => {
                    assert_eq!(level, m.cfg.height(), "bottleneck must be the root");
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(lambda < 1e6, "never saturated");
        }
    }

    #[test]
    fn root_utilization_grows_superlinearly() {
        // Figure 10: going from ρ_w = .5 to ρ_w = 1 takes less than a 50%
        // increase in arrival rate.
        let m = model();
        let lambda_half = m.lambda_at_root_rho(0.5).unwrap();
        let max = m.max_throughput().unwrap();
        assert!(
            max < 1.5 * lambda_half,
            "lock-coupling: saturation ({max}) must come within 50% beyond \
             the rho=.5 point ({lambda_half})"
        );
    }

    #[test]
    fn updates_wait_longer_than_searches() {
        let perf = model().evaluate(0.25).unwrap();
        for l in &perf.levels {
            assert!(l.w_wait >= l.r_wait);
        }
    }

    #[test]
    fn search_only_mix_has_no_waiting() {
        let cfg = ModelConfig::new(
            cbtree_btree_model::TreeShape::paper(),
            cbtree_btree_model::OpMix::searches_only(),
            cbtree_btree_model::CostModel::paper(),
        )
        .unwrap();
        let m = NaiveLockCoupling::new(cfg);
        let perf = m.evaluate(5.0).unwrap();
        assert!((perf.response_time_search - 17.0).abs() < 1e-9);
        assert_eq!(perf.root_writer_utilization(), 0.0);
    }

    #[test]
    fn rejects_negative_lambda() {
        assert!(model().evaluate(-1.0).is_err());
    }

    #[test]
    fn recovery_slows_the_tree_down() {
        use crate::config::RecoveryMode;
        let base = ModelConfig::paper_base();
        // Naive recovery under full lock-coupling saturates very early
        // (every update W-locks the root and retains it with probability
        // Pr[F(h)]), so probe a low load all three variants sustain.
        let lam = 0.04;
        let none = NaiveLockCoupling::new(base.clone()).evaluate(lam).unwrap();
        let naive = NaiveLockCoupling::new(base.clone().with_recovery(RecoveryMode::Naive, 100.0))
            .evaluate(lam)
            .unwrap();
        let leaf = NaiveLockCoupling::new(base.with_recovery(RecoveryMode::LeafOnly, 100.0))
            .evaluate(lam)
            .unwrap();
        assert!(naive.response_time_insert > leaf.response_time_insert);
        assert!(leaf.response_time_insert > none.response_time_insert);
    }
}
