//! Rules of thumb (§6): closed-form approximations of the *effective
//! maximum arrival rate* `λ_{ρ=.5}` — the rate at which the root's writer
//! utilization reaches 0.5, beyond which waiting grows disproportionately.
//!
//! Derivation sketch (paper §6): at the root, `ρ_w = λ_w/μ_a`, so
//! `λ_{w,ρ=.5} = μ_a/2`; the aggregate service is approximated by the root
//! search, the reader-burst logarithm (`T_r`), the child-lock wait
//! (approximating `ρ_{w,h−1} ≈ ρ_w/E(h)`), and the child hold time if the
//! grandchild is full. Note the derivation's equation (7) uses the root's
//! *child* level — `Se(h−1)` — although the final displayed formula prints
//! `Se(2)`; we follow the derivation (for the paper's 5-level tree with two
//! in-memory levels they differ: level 2 is on disk, level h−1 = 4 is in
//! memory). The ablation benchmark quantifies the difference.
//!
//! The headline qualitative conclusions these formulas encode:
//!
//! * **Naive Lock-coupling** (Rules 1–2): `λ_{ρ=.5}` is essentially
//!   independent of the node size `N` — it is set by the root search time.
//!   With binary-search nodes it *decreases* as `log N`, so small nodes
//!   are best.
//! * **Optimistic Descent** (Rules 3–4): `λ_{ρ=.5} ∝ 1/Pr[F(1)] ∝ N`
//!   (up to the `log²N` search factor), so large nodes are best.

use crate::{AnalysisError, ModelConfig, Result};

fn require(cond: bool, name: &'static str, constraint: &'static str) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(AnalysisError::InvalidParameter { name, constraint })
    }
}

/// Rule of Thumb 1: Naive Lock-coupling effective maximum arrival rate.
///
/// ```text
/// λ ≈ [ 2(1−q_s)·( Se(h)·(1 + ln(1 + q_s/(2(1−q_s))))
///       + (1/(2E(h)−1) + (q_i/(q_i+q_d))·Pr[F(h−1)])
///         · Se(h−1)·(1.5 + q_s/(2E(h)(1−q_s))) ) ]⁻¹
/// ```
pub fn naive_lc_rot1(cfg: &ModelConfig) -> Result<f64> {
    let h = cfg.height();
    require(h >= 2, "height", "rule of thumb 1 needs h ≥ 2")?;
    let qs = cfg.mix.q_search;
    require(
        qs < 1.0,
        "q_search",
        "a pure-search mix has no writer bottleneck",
    )?;
    let e_h = cfg.shape.root_fanout();
    let se_h = cfg.cost.se(h);
    let se_child = cfg.cost.se(h - 1);
    let ins_share = cfg.mix.insert_share_of_updates();
    let prf_child = cfg.fullness.pr_full(h - 1);

    let root_term = se_h * (1.0 + (qs / (2.0 * (1.0 - qs))).ln_1p());
    let child_weight = 1.0 / (2.0 * e_h - 1.0) + ins_share * prf_child;
    let child_term = se_child * (1.5 + qs / (2.0 * e_h * (1.0 - qs)));
    Ok(1.0 / (2.0 * (1.0 - qs) * (root_term + child_weight * child_term)))
}

/// Rule of Thumb 2 (limit): Naive Lock-coupling with large nodes and root
/// fanout — only the root term survives.
pub fn naive_lc_rot2(cfg: &ModelConfig) -> Result<f64> {
    let qs = cfg.mix.q_search;
    require(
        qs < 1.0,
        "q_search",
        "a pure-search mix has no writer bottleneck",
    )?;
    let se_h = cfg.cost.se(cfg.height());
    let root_term = se_h * (1.0 + (qs / (2.0 * (1.0 - qs))).ln_1p());
    Ok(1.0 / (2.0 * (1.0 - qs) * root_term))
}

/// Rule of Thumb 3: Optimistic Descent effective maximum arrival rate.
///
/// The writer class at the root is the redo stream, `λ_w = q_i·Pr[F(1)]·λ`,
/// and the reader/writer ratio `1/(q_i·Pr[F(1)])` is large, so the
/// logarithms are kept un-linearized.
pub fn optimistic_rot3(cfg: &ModelConfig) -> Result<f64> {
    let h = cfg.height();
    require(h >= 2, "height", "rule of thumb 3 needs h ≥ 2")?;
    let w = cfg.mix.q_insert * cfg.fullness.pr_full(1);
    require(
        w > 0.0,
        "q_insert·Pr[F(1)]",
        "no redo stream: effective max is unbounded",
    )?;
    let e_h = cfg.shape.root_fanout();
    let se_h = cfg.cost.se(h);
    let se_child = cfg.cost.se(h - 1);
    let ins_share = cfg.mix.insert_share_of_updates();
    let prf_child = cfg.fullness.pr_full(h - 1);

    let root_term = se_h * (1.0 + (1.0 / (2.0 * w)).ln_1p());
    let child_weight = 1.0 / (2.0 * e_h - 1.0) + ins_share * prf_child;
    let child_term = se_child * (1.5 + (1.0 / (2.0 * e_h * w)).ln_1p());
    Ok(1.0 / (2.0 * w * (root_term + child_weight * child_term)))
}

/// Rule of Thumb 4 (limit): Optimistic Descent with large nodes and root
/// fanout.
pub fn optimistic_rot4(cfg: &ModelConfig) -> Result<f64> {
    let w = cfg.mix.q_insert * cfg.fullness.pr_full(1);
    require(
        w > 0.0,
        "q_insert·Pr[F(1)]",
        "no redo stream: effective max is unbounded",
    )?;
    let se_h = cfg.cost.se(cfg.height());
    let root_term = se_h * (1.0 + (1.0 / (2.0 * w)).ln_1p());
    Ok(1.0 / (2.0 * w * root_term))
}

/// The literal-text variant of Rule 1 using `Se(2)` instead of `Se(h−1)` —
/// kept for the ablation comparing the printed formula against the
/// derivation (they coincide when `h = 3` or all levels share a cost).
pub fn naive_lc_rot1_literal_se2(cfg: &ModelConfig) -> Result<f64> {
    let h = cfg.height();
    require(h >= 2, "height", "rule of thumb 1 needs h ≥ 2")?;
    let qs = cfg.mix.q_search;
    require(
        qs < 1.0,
        "q_search",
        "a pure-search mix has no writer bottleneck",
    )?;
    let e_h = cfg.shape.root_fanout();
    let se_h = cfg.cost.se(h);
    let se2 = cfg.cost.se(2);
    let ins_share = cfg.mix.insert_share_of_updates();
    let prf_child = cfg.fullness.pr_full(h - 1);

    let root_term = se_h * (1.0 + (qs / (2.0 * (1.0 - qs))).ln_1p());
    let child_weight = 1.0 / (2.0 * e_h - 1.0) + ins_share * prf_child;
    let child_term = se2 * (1.5 + qs / (2.0 * e_h * (1.0 - qs)));
    Ok(1.0 / (2.0 * (1.0 - qs) * (root_term + child_weight * child_term)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NaiveLockCoupling, OptimisticDescent, PerformanceModel};
    use cbtree_btree_model::OpMix;

    #[test]
    fn rot1_close_to_analysis_for_in_memory_tree() {
        // Figure 13: with everything in memory the rule of thumb closely
        // matches the full analysis.
        let cfg = ModelConfig::pinned(13, 5, 6.0, 5, 1.0, 1.0, OpMix::paper()).unwrap();
        let rot = naive_lc_rot1(&cfg).unwrap();
        let model = NaiveLockCoupling::new(cfg);
        let exact = model.lambda_at_root_rho(0.5).unwrap();
        let ratio = rot / exact;
        assert!(
            (0.5..2.0).contains(&ratio),
            "rule of thumb {rot} vs analysis {exact} (ratio {ratio})"
        );
    }

    #[test]
    fn rot1_approaches_rot2_for_large_nodes() {
        let small = ModelConfig::pinned(13, 5, 6.0, 5, 1.0, 1.0, OpMix::paper()).unwrap();
        let large = ModelConfig::pinned(513, 5, 60.0, 5, 1.0, 1.0, OpMix::paper()).unwrap();
        let gap_small = (naive_lc_rot1(&small).unwrap() - naive_lc_rot2(&small).unwrap()).abs();
        let gap_large = (naive_lc_rot1(&large).unwrap() - naive_lc_rot2(&large).unwrap()).abs();
        assert!(gap_large < gap_small, "rot1 must approach the limit rule");
    }

    #[test]
    fn naive_effective_max_insensitive_to_node_size() {
        // §6: Naive Lock-coupling's effective max doesn't grow with N.
        let n13 =
            naive_lc_rot1(&ModelConfig::pinned(13, 5, 6.0, 5, 1.0, 1.0, OpMix::paper()).unwrap())
                .unwrap();
        let n103 =
            naive_lc_rot1(&ModelConfig::pinned(103, 5, 6.0, 5, 1.0, 1.0, OpMix::paper()).unwrap())
                .unwrap();
        assert!(
            (n103 - n13).abs() / n13 < 0.25,
            "naive RoT should barely move with N: {n13} → {n103}"
        );
    }

    #[test]
    fn optimistic_effective_max_grows_with_node_size() {
        let n13 =
            optimistic_rot3(&ModelConfig::pinned(13, 5, 6.0, 5, 1.0, 1.0, OpMix::paper()).unwrap())
                .unwrap();
        let n103 = optimistic_rot3(
            &ModelConfig::pinned(103, 5, 6.0, 5, 1.0, 1.0, OpMix::paper()).unwrap(),
        )
        .unwrap();
        assert!(
            n103 > 3.0 * n13,
            "OD effective max must grow ~N: {n13} → {n103}"
        );
    }

    #[test]
    fn rot3_in_reasonable_agreement_with_analysis() {
        let cfg = ModelConfig::pinned(59, 4, 8.0, 4, 1.0, 1.0, OpMix::paper()).unwrap();
        let rot = optimistic_rot3(&cfg).unwrap();
        let model = OptimisticDescent::new(cfg);
        let exact = model.lambda_at_root_rho(0.5).unwrap();
        let ratio = rot / exact;
        assert!(
            (0.3..3.0).contains(&ratio),
            "rule of thumb {rot} vs analysis {exact} (ratio {ratio})"
        );
    }

    #[test]
    fn od_beats_naive_increasingly_with_node_size() {
        // §6's closing comparison: as N grows, OD's advantage widens.
        let at = |n: usize| {
            let cfg = ModelConfig::pinned(n, 5, 6.0, 5, 1.0, 1.0, OpMix::paper()).unwrap();
            optimistic_rot3(&cfg).unwrap() / naive_lc_rot1(&cfg).unwrap()
        };
        assert!(at(103) > at(13));
    }

    #[test]
    fn literal_se2_differs_only_with_disk_split() {
        // With uniform costs, Se(2) == Se(h−1) and the variants agree.
        let uniform = ModelConfig::pinned(13, 5, 6.0, 5, 1.0, 1.0, OpMix::paper()).unwrap();
        assert!(
            (naive_lc_rot1(&uniform).unwrap() - naive_lc_rot1_literal_se2(&uniform).unwrap()).abs()
                < 1e-12
        );
        // With 2 in-memory levels and D=10 they differ substantially.
        let split = ModelConfig::pinned(13, 5, 6.0, 2, 10.0, 1.0, OpMix::paper()).unwrap();
        let derived = naive_lc_rot1(&split).unwrap();
        let literal = naive_lc_rot1_literal_se2(&split).unwrap();
        assert!(
            derived > literal,
            "Se(h−1)=memory beats Se(2)=disk: {derived} vs {literal}"
        );
    }

    #[test]
    fn degenerate_mixes_rejected() {
        let cfg = ModelConfig::pinned(13, 5, 6.0, 5, 1.0, 1.0, OpMix::searches_only()).unwrap();
        assert!(naive_lc_rot1(&cfg).is_err());
        assert!(optimistic_rot3(&cfg).is_err());
        assert!(optimistic_rot4(&cfg).is_err());
    }
}
