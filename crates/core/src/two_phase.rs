//! Two-Phase Locking on the B-tree — the §8 "full version" extension.
//!
//! Under strict 2PL applied to the index, an operation acquires a lock on
//! every node it touches and releases nothing until it completes:
//! searches hold shared locks on the whole root-to-leaf path, updates
//! hold exclusive locks on the whole path. The framework models this as
//! the degenerate lock-coupling algorithm whose "safe" test never
//! succeeds — a level-`i` lock is held for the node's own work plus
//! *everything below it*:
//!
//! ```text
//! T(o, 1) = leaf work (+ all restructuring, for inserts)
//! T(o, i) = Se(i) + child wait + T(o, i−1)
//! ```
//!
//! The root's exclusive lock is therefore held for essentially the whole
//! update — `ρ_w(h) = (q_i+q_d)·λ·T(I,h)` — and saturation arrives an
//! order of magnitude earlier than even Naive Lock-coupling. This is the
//! quantitative version of the paper's opening claim that "a restrictive
//! serialization technique on the B-tree index can cause a bottleneck",
//! and the baseline every dedicated B-tree algorithm is beating.

use crate::config::ModelConfig;
use crate::level::{solve_level, LevelSolution, Performance};
use crate::{Algorithm, PerformanceModel, Result};
use cbtree_queueing::stages::{Mixture, StagedService};

/// Analytical model of strict Two-Phase Locking over the whole descent.
#[derive(Debug, Clone)]
pub struct TwoPhaseLocking {
    cfg: ModelConfig,
}

impl TwoPhaseLocking {
    /// Builds the model for a configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        TwoPhaseLocking { cfg }
    }
}

impl PerformanceModel for TwoPhaseLocking {
    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::TwoPhaseLocking
    }

    fn evaluate(&self, lambda: f64) -> Result<Performance> {
        self.cfg.check_lambda(lambda)?;
        let cfg = &self.cfg;
        let h = cfg.height();
        let mix = &cfg.mix;
        let f = &cfg.fullness;
        let c = &cfg.cost;
        let rec = &cfg.recovery;
        let ins_share = mix.insert_share_of_updates();

        // All restructuring work, charged at the leaf stage (every lock
        // is held throughout anyway).
        let split_work: f64 = (1..h).map(|j| f.split_chain_prob(j) * c.sp(j)).sum();

        let mut t_s = vec![0.0; h];
        let mut t_u = vec![0.0; h]; // update hold time (insert/delete mixed)
        let mut sols: Vec<LevelSolution> = Vec::with_capacity(h);

        for level in 1..=h {
            let lambda_lvl = cfg.shape.arrival_at_level(lambda, level);
            let lambda_r = mix.q_search * lambda_lvl;
            let lambda_w = mix.update_fraction() * lambda_lvl;

            let sol = if level == 1 {
                t_s[0] = c.se(1);
                t_u[0] = c.m() + ins_share * split_work + rec.leaf_extra();
                let w_mean = t_u[0];
                let mu_r = 1.0 / t_s[0];
                solve_level(1, lambda_r, lambda_w, mu_r, lambda, |burst| {
                    StagedService::new().with_stage(Mixture::always(w_mean + burst))
                })?
            } else {
                let prev = &sols[level - 2];
                let i = level;
                // Hold times: own search + wait for the child lock + the
                // child's entire hold time (2PL never releases).
                t_s[i - 1] = c.se(i) + prev.r_wait + t_s[i - 2];
                t_u[i - 1] = c.se(i) + prev.w_wait + t_u[i - 2];

                let mu_r = 1.0 / (c.se(i) + prev.r_wait);
                let se_i = c.se(i);
                // The below-this-level part of the hold: child wait plus
                // the child's hold — modeled as its own exponential stage
                // (the variance of the lower subtree's work dominates).
                let below = prev.w_wait + t_u[i - 2];
                solve_level(i, lambda_r, lambda_w, mu_r, lambda, move |burst| {
                    StagedService::new()
                        .with_stage(Mixture::always(se_i + burst))
                        .with_stage(Mixture::always(below))
                })?
            };
            sols.push(sol);
        }

        let response_time_search: f64 = (1..=h).map(|i| c.se(i) + sols[i - 1].r_wait).sum();
        let wait_sum: f64 = (1..=h).map(|i| sols[i - 1].w_wait).sum();
        let serial_update: f64 = c.m() + (2..=h).map(|i| c.se(i)).sum::<f64>();
        let response_time_insert = serial_update + wait_sum + split_work;
        let response_time_delete = serial_update + wait_sum;

        Ok(Performance {
            lambda,
            response_time_search,
            response_time_insert,
            response_time_delete,
            levels: sols,
        })
    }

    fn as_dyn(&self) -> &dyn PerformanceModel {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveLockCoupling;

    fn model() -> TwoPhaseLocking {
        TwoPhaseLocking::new(ModelConfig::paper_base())
    }

    #[test]
    fn zero_load_matches_serial_times() {
        let perf = model().evaluate(0.0).unwrap();
        assert!((perf.response_time_search - 17.0).abs() < 1e-9);
        // Inserts: M + Se(2..5) + expected split work.
        assert!(perf.response_time_insert > 22.0);
    }

    #[test]
    fn far_worse_than_naive_lock_coupling() {
        // The whole point: even the "naive" dedicated algorithm crushes
        // index 2PL.
        let cfg = ModelConfig::paper_base();
        let tp = TwoPhaseLocking::new(cfg.clone()).max_throughput().unwrap();
        let naive = NaiveLockCoupling::new(cfg).max_throughput().unwrap();
        assert!(
            naive > 4.0 * tp,
            "naive LC ({naive}) must far outrun 2PL ({tp})"
        );
    }

    #[test]
    fn root_lock_held_for_whole_update() {
        // ρ_w(h) ≈ (q_i+q_d)·λ·T(I,h): at tiny λ the root utilization per
        // unit arrival is close to the serial update time.
        let m = model();
        let lambda = 0.005;
        let perf = m.evaluate(lambda).unwrap();
        let rho = perf.root_writer_utilization();
        let implied_hold = rho / (0.7 * lambda);
        assert!(
            implied_hold > 20.0,
            "root W hold ≈ whole update ({implied_hold} time units)"
        );
    }

    #[test]
    fn saturates_at_the_root() {
        let m = model();
        let max = m.max_throughput().unwrap();
        assert!(max < 0.15, "2PL max throughput must be tiny, got {max}");
        match m.evaluate(max * 1.05) {
            Err(e) => assert!(e.to_string().contains("level 5")),
            Ok(_) => panic!("must saturate above max"),
        }
    }

    #[test]
    fn search_waits_grow_with_load() {
        let m = model();
        let max = m.max_throughput().unwrap();
        let lo = m.evaluate(0.2 * max).unwrap();
        let hi = m.evaluate(0.9 * max).unwrap();
        assert!(hi.response_time_search > lo.response_time_search);
        assert!(hi.response_time_insert > lo.response_time_insert);
    }
}
