//! Analytical performance models of concurrent B-tree algorithms —
//! the framework of **Johnson & Shasha, PODS 1990**.
//!
//! A concurrent B-tree is modeled as an open network of FCFS
//! reader/writer lock queues, one *representative node* per tree level
//! (paper Figure 1). For a given arrival rate the framework computes, per
//! level, the writer utilization `ρ_w(i)` and the expected times `R(i)` /
//! `W(i)` to obtain a shared / exclusive lock — and from those, operation
//! response times (Theorem 5) and the maximum sustainable throughput
//! (Theorem 2).
//!
//! Three algorithms are modeled:
//!
//! * [`naive_lc`] — Naive Lock-coupling (Bayer–Schkolnick; paper §5,
//!   Theorems 1–5),
//! * [`optimistic`] — Optimistic Descent (Bayer–Schkolnick; paper §5.1),
//! * [`link`] — the Link-type algorithm (Lehman–Yao / Lanin–Shasha /
//!   Sagiv; paper §5.1),
//!
//! plus the §6 [`rules_of_thumb`], the §7 [`recovery`] extension
//! (Naive vs Leaf-only W-lock retention until transaction commit), and
//! one post-1990 algorithm in the same framework:
//!
//! * [`olc`] — Optimistic Lock Coupling: latch-free version-validated
//!   readers (zero shared-lock demand, restarts as rework) over
//!   lock-coupling writers.
//!
//! ## Conventions
//!
//! Levels are numbered as in the paper: leaves are level 1, the root is
//! level `h`. Time is dimensionless; the paper's experiments normalize the
//! root search to one time unit. Arrival rates are operations per time
//! unit into the whole tree.
//!
//! ## Quickstart
//!
//! ```
//! use cbtree_analysis::{Algorithm, ModelConfig};
//!
//! let cfg = ModelConfig::paper_base();          // §5.3 parameters
//! for alg in Algorithm::ALL {
//!     let model = alg.model(&cfg);
//!     let perf = model.evaluate(0.2).unwrap();  // λ = 0.2 ops/unit
//!     println!("{alg:?}: search RT {:.2}, insert RT {:.2}",
//!              perf.response_time_search, perf.response_time_insert);
//! }
//! // The paper's headline ranking: Link ≫ Optimistic ≫ Naive.
//! let max_naive = Algorithm::NaiveLockCoupling.model(&cfg).max_throughput().unwrap();
//! let max_opt   = Algorithm::OptimisticDescent.model(&cfg).max_throughput().unwrap();
//! let max_link  = Algorithm::LinkType.model(&cfg).max_throughput().unwrap();
//! assert!(max_link > max_opt && max_opt > max_naive);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod error;
pub mod level;
pub mod link;
pub mod naive_lc;
pub mod olc;
pub mod optimistic;
pub mod recovery;
pub mod rules_of_thumb;
pub mod throughput;
pub mod two_phase;

pub use config::{ModelConfig, RecoveryConfig, RecoveryMode};
pub use error::AnalysisError;
pub use level::{LevelSolution, Performance};
pub use link::LinkType;
pub use naive_lc::NaiveLockCoupling;
pub use olc::OptimisticLockCoupling;
pub use optimistic::OptimisticDescent;
pub use two_phase::TwoPhaseLocking;

/// Convenience result alias for analysis computations.
pub type Result<T> = std::result::Result<T, AnalysisError>;

/// The three concurrent B-tree algorithms the paper analyzes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Naive Lock-coupling: R/W crabbing, W locks retained while the child
    /// is unsafe (paper §2, analyzed in §5).
    NaiveLockCoupling,
    /// Optimistic Descent: R-lock descent, W lock only on the leaf;
    /// restart with a full W descent when the leaf is unsafe (§2, §5.1).
    OptimisticDescent,
    /// Link-type (Lehman–Yao): right-links remove lock-coupling; at most
    /// one lock held at a time (§2, §5.1).
    LinkType,
    /// Strict Two-Phase Locking over the whole descent — the baseline the
    /// paper's §8 full version adds; every lock is retained until the
    /// operation completes.
    TwoPhaseLocking,
    /// Optimistic Lock Coupling (post-1990 extension): readers are
    /// latch-free, validating per-node version counters hand-over-hand
    /// and restarting on a mismatch; writers crab as in Naive
    /// Lock-coupling — so the reader class vanishes from every queue
    /// and restarts replace reader lock waits.
    Olc,
}

impl Algorithm {
    /// The three algorithms the PODS paper analyzes, in its presentation
    /// order.
    pub const ALL: [Algorithm; 3] = [
        Algorithm::NaiveLockCoupling,
        Algorithm::OptimisticDescent,
        Algorithm::LinkType,
    ];

    /// The paper's three algorithms plus the Two-Phase Locking baseline.
    pub const ALL_WITH_BASELINE: [Algorithm; 4] = [
        Algorithm::TwoPhaseLocking,
        Algorithm::NaiveLockCoupling,
        Algorithm::OptimisticDescent,
        Algorithm::LinkType,
    ];

    /// Every modeled algorithm: the baseline set plus the post-1990
    /// Optimistic Lock Coupling extension.
    pub const ALL_EXTENDED: [Algorithm; 5] = [
        Algorithm::TwoPhaseLocking,
        Algorithm::NaiveLockCoupling,
        Algorithm::OptimisticDescent,
        Algorithm::LinkType,
        Algorithm::Olc,
    ];

    /// Instantiates the analytical model of this algorithm for a
    /// configuration.
    pub fn model(self, cfg: &ModelConfig) -> Box<dyn PerformanceModel> {
        match self {
            Algorithm::NaiveLockCoupling => Box::new(NaiveLockCoupling::new(cfg.clone())),
            Algorithm::OptimisticDescent => Box::new(OptimisticDescent::new(cfg.clone())),
            Algorithm::LinkType => Box::new(LinkType::new(cfg.clone())),
            Algorithm::TwoPhaseLocking => Box::new(TwoPhaseLocking::new(cfg.clone())),
            Algorithm::Olc => Box::new(OptimisticLockCoupling::new(cfg.clone())),
        }
    }

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::NaiveLockCoupling => "naive-lc",
            Algorithm::OptimisticDescent => "optimistic",
            Algorithm::LinkType => "link",
            Algorithm::TwoPhaseLocking => "two-phase",
            Algorithm::Olc => "olc",
        }
    }
}

/// An analytical performance model of one algorithm on one configuration.
pub trait PerformanceModel {
    /// The configuration the model was built from.
    fn config(&self) -> &ModelConfig;

    /// Which algorithm this models.
    fn algorithm(&self) -> Algorithm;

    /// Evaluates the model at total arrival rate `lambda`.
    ///
    /// Returns [`AnalysisError::Saturated`] when some level's lock queue
    /// has no stable operating point at this rate.
    fn evaluate(&self, lambda: f64) -> Result<Performance>;

    /// Maximum sustainable throughput: the supremum of arrival rates for
    /// which every level is stable (Theorem 2). Found by exponential
    /// search plus bisection on [`PerformanceModel::evaluate`].
    fn max_throughput(&self) -> Result<f64> {
        throughput::max_throughput(self.as_dyn())
    }

    /// The arrival rate at which the *root* writer utilization reaches
    /// `target_rho` — the §6 "effective maximum arrival rate" uses 0.5.
    fn lambda_at_root_rho(&self, target_rho: f64) -> Result<f64> {
        throughput::lambda_at_root_rho(self.as_dyn(), target_rho)
    }

    /// Upcast helper so default methods can hand `self` to free functions.
    fn as_dyn(&self) -> &dyn PerformanceModel;
}
