//! Maximum-throughput and utilization-target searches (Theorem 2, §6).
//!
//! An algorithm's maximum throughput on a particular tree is the largest
//! arrival rate at which every level's lock queue still has a stable
//! operating point (Theorem 2: for lock-coupling the binding constraint is
//! the root, `ρ_w(h) → 1`). The §6 rules of thumb instead target the
//! *effective* maximum — the rate at which the root's writer utilization
//! reaches 0.5, beyond which waiting grows disproportionately.

use crate::{AnalysisError, PerformanceModel, Result};

/// Relative tolerance of the throughput bisection.
const REL_TOL: f64 = 1e-9;
/// Hard cap on the exponential search. The Link-type algorithm saturates
/// only at astronomically high rates; anything beyond this is reported as
/// this cap rather than searched further.
pub const LAMBDA_CAP: f64 = 1e9;

fn is_stable(model: &dyn PerformanceModel, lambda: f64) -> Result<bool> {
    match model.evaluate(lambda) {
        Ok(_) => Ok(true),
        Err(e) if e.is_saturated() => Ok(false),
        Err(e) => Err(e),
    }
}

/// Finds the maximum sustainable arrival rate by exponential search for a
/// saturation bracket followed by bisection.
///
/// Returns [`LAMBDA_CAP`] when the model is still stable there (the
/// Link-type "no effective maximum" case).
pub fn max_throughput(model: &dyn PerformanceModel) -> Result<f64> {
    let mut lo = 0.0_f64;
    let mut hi = 1e-3_f64;
    while is_stable(model, hi)? {
        lo = hi;
        hi *= 2.0;
        if hi >= LAMBDA_CAP {
            return Ok(LAMBDA_CAP);
        }
    }
    // Invariant: stable at lo, saturated at hi.
    while hi - lo > REL_TOL * hi {
        let mid = 0.5 * (lo + hi);
        if is_stable(model, mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Finds the arrival rate at which the **root** writer utilization equals
/// `target_rho` (the §6 effective-maximum definition uses 0.5).
///
/// The root utilization is monotone in the arrival rate, so this is a
/// bisection between zero and the saturation point. Errors with
/// [`AnalysisError::InvalidParameter`] if the target is not reached before
/// some level saturates (possible for the Link-type algorithm, whose
/// bottleneck need not be the root).
pub fn lambda_at_root_rho(model: &dyn PerformanceModel, target_rho: f64) -> Result<f64> {
    if !(0.0..1.0).contains(&target_rho) {
        return Err(AnalysisError::InvalidParameter {
            name: "target_rho",
            constraint: "must be in [0, 1)",
        });
    }
    let max = max_throughput(model)?;
    let mut lo = 0.0_f64;
    let mut hi = max * (1.0 - 1e-7);
    let rho_at =
        |lambda: f64| -> Result<f64> { Ok(model.evaluate(lambda)?.root_writer_utilization()) };
    let rho_hi = match rho_at(hi) {
        Ok(r) => r,
        // The last stable point may sit so close to the edge that
        // re-evaluation saturates; treat as utilization 1.
        Err(e) if e.is_saturated() => 1.0,
        Err(e) => return Err(e),
    };
    if rho_hi < target_rho {
        return Err(AnalysisError::InvalidParameter {
            name: "target_rho",
            constraint: "root utilization never reaches the target before another \
                         level saturates",
        });
    }
    for _ in 0..200 {
        if hi - lo <= REL_TOL * (1.0 + hi) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        let rho = match rho_at(mid) {
            Ok(r) => r,
            Err(e) if e.is_saturated() => 1.0,
            Err(e) => return Err(e),
        };
        if rho < target_rho {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, ModelConfig, NaiveLockCoupling};

    #[test]
    fn max_throughput_brackets_stability() {
        let m = NaiveLockCoupling::new(ModelConfig::paper_base());
        let max = max_throughput(&m).unwrap();
        assert!(max > 0.0);
        assert!(
            m.evaluate(max * 0.999).is_ok(),
            "just below max must be stable"
        );
        assert!(
            m.evaluate(max * 1.01).unwrap_err().is_saturated(),
            "just above max must saturate"
        );
    }

    #[test]
    fn rho_target_bisection_hits_target() {
        let m = NaiveLockCoupling::new(ModelConfig::paper_base());
        let lam = lambda_at_root_rho(&m, 0.5).unwrap();
        let rho = m.evaluate(lam).unwrap().root_writer_utilization();
        assert!((rho - 0.5).abs() < 1e-4, "rho at solution = {rho}");
    }

    #[test]
    fn rho_targets_are_ordered() {
        let m = NaiveLockCoupling::new(ModelConfig::paper_base());
        let l25 = lambda_at_root_rho(&m, 0.25).unwrap();
        let l50 = lambda_at_root_rho(&m, 0.5).unwrap();
        let l75 = lambda_at_root_rho(&m, 0.75).unwrap();
        assert!(l25 < l50 && l50 < l75);
        assert!(l75 < max_throughput(&m).unwrap());
    }

    #[test]
    fn invalid_target_rejected() {
        let m = NaiveLockCoupling::new(ModelConfig::paper_base());
        assert!(lambda_at_root_rho(&m, 1.0).is_err());
        assert!(lambda_at_root_rho(&m, -0.1).is_err());
    }

    #[test]
    fn trait_default_methods_delegate() {
        let cfg = ModelConfig::paper_base();
        let m = Algorithm::NaiveLockCoupling.model(&cfg);
        let a = m.max_throughput().unwrap();
        let b = max_throughput(m.as_ref()).unwrap();
        assert_eq!(a, b);
    }
}
