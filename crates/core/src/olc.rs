//! The Optimistic Lock Coupling model (post-1990 extension).
//!
//! OLC (Leis et al.'s optimistic lock coupling, here applied to the
//! paper's framework) splits the two classes the 1990 framework treats
//! symmetrically:
//!
//! * **Readers take no locks at all.** A search reads each node inside a
//!   version window (snapshot the node's version counter, read, validate
//!   it unchanged) and re-validates the parent's recorded version after
//!   the child read. Readers therefore place **zero shared-lock demand**
//!   on every level's queue — `λ_R(i) = 0` — and never appear in any
//!   writer's reader burst.
//! * **Writers latch exactly as in Naive Lock-coupling** (Theorem 1's
//!   hold-time recursion and Theorem 3's staged aggregate server), minus
//!   the reader-burst stage, which is empty.
//!
//! What readers pay instead of lock waits is *rework*: a version window
//! that overlaps a writer's modification fails validation and the read
//! restarts from the deepest still-valid ancestor. We charge this to
//! first order per level `i`:
//!
//! * a window fails with probability
//!   `p_i = ρ_w(i) + λ_W(i)·Se(i)` (a writer currently holds the node,
//!   or one arrives during the window), clamped below 1;
//! * each failed attempt costs the re-read `Se(i)` plus — when the
//!   failure was a writer in residence — half the writer's aggregate
//!   hold `ρ_w(i)·T_a(i)/2` of stall before the retry can validate;
//! * retries are geometric, so the expected extra attempts per level are
//!   `p_i/(1−p_i)`.
//!
//! Because the reader class vanishes from the queues, writer waits are
//! strictly lower than Naive Lock-coupling's at every load, and the
//! tree's maximum throughput (still bounded by root writer coupling)
//! is strictly higher — while searches stay near-serial until writer
//! utilization becomes significant. Both effects are validated against
//! the discrete-event simulator and the live trees by the `analyze`
//! binary's four-pillar tables.

use crate::config::ModelConfig;
use crate::level::{solve_level, LevelSolution, Performance};
use crate::{Algorithm, PerformanceModel, Result};
use cbtree_queueing::stages::{Mixture, StagedService};

/// Analytical model of Optimistic Lock Coupling.
#[derive(Debug, Clone)]
pub struct OptimisticLockCoupling {
    cfg: ModelConfig,
}

impl OptimisticLockCoupling {
    /// Builds the model for a configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        OptimisticLockCoupling { cfg }
    }

    /// First-order probability that a level-`i` version window fails
    /// validation: a writer holds the node (`ρ_w`), or a writer's
    /// version bump lands inside the `Se(i)` read window.
    fn restart_probability(&self, sol: &LevelSolution, level: usize) -> f64 {
        (sol.rho_w + sol.lambda_w * self.cfg.cost.se(level)).min(0.95)
    }
}

impl PerformanceModel for OptimisticLockCoupling {
    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::Olc
    }

    fn evaluate(&self, lambda: f64) -> Result<Performance> {
        self.cfg.check_lambda(lambda)?;
        let cfg = &self.cfg;
        let h = cfg.height();
        let mix = &cfg.mix;
        let f = &cfg.fullness;
        let c = &cfg.cost;
        let rec = &cfg.recovery;
        let ins_share = mix.insert_share_of_updates();
        let del_share = mix.delete_share_of_updates();

        // Theorem 1 writer hold times, with every reader term zero.
        let mut t_i = vec![0.0; h];
        let mut t_d = vec![0.0; h];
        let mut sols: Vec<LevelSolution> = Vec::with_capacity(h);

        for level in 1..=h {
            let lambda_lvl = cfg.shape.arrival_at_level(lambda, level);
            // Readers are latch-free: zero shared-lock demand everywhere.
            let lambda_r = 0.0;
            let lambda_w = mix.update_fraction() * lambda_lvl;
            let mu_r = 1.0 / c.se(level);

            let sol = if level == 1 {
                t_i[0] = c.m();
                t_d[0] = c.m();
                let w_mean = ins_share * t_i[0] + del_share * t_d[0] + rec.leaf_extra();
                solve_level(1, lambda_r, lambda_w, mu_r, lambda, |burst| {
                    StagedService::new().with_stage(Mixture::always(w_mean + burst))
                })?
            } else {
                let prev = &sols[level - 2];
                let i = level;

                t_i[i - 1] = c.se(i)
                    + prev.w_wait
                    + f.pr_full(i - 1) * t_i[i - 2]
                    + c.sp(i - 1) * f.split_chain_prob(i - 1);
                t_d[i - 1] = c.se(i)
                    + prev.w_wait
                    + f.pr_empty(i - 1) * t_d[i - 2]
                    + c.mg(i - 1) * f.merge_chain_prob(i - 1);

                // Theorem 3 staged server, reader-burst-free: with no
                // shared-lock class, r_u = r_e = 0, so the busy branch
                // collapses to the child's exclusive wait alone.
                let p_f = ins_share * f.pr_full(i - 1);
                let rho_o = prev.rho_w;
                let t_f = t_i[i - 2] + c.sp(i - 1) * f.split_chain_prob(i.saturating_sub(2));
                let t_busy = if rho_o > 0.0 {
                    prev.w_wait / rho_o
                } else {
                    0.0
                };
                let t_idle = 0.0;
                let se_i = c.se(i);
                let t_trans = rec.t_trans;
                let rec_prob = if rec.upper_extra(f.pr_full(i)) > 0.0 {
                    f.pr_full(i)
                } else {
                    0.0
                };

                solve_level(i, lambda_r, lambda_w, mu_r, lambda, move |burst| {
                    let mut agg = StagedService::theorem3_server(
                        se_i + burst,
                        p_f,
                        t_f,
                        rho_o,
                        t_busy,
                        t_idle,
                    );
                    if rec_prob > 0.0 {
                        agg.push(Mixture::optional(rec_prob, t_trans));
                    }
                    agg
                })?
            };
            let mut sol = sol;
            // The P-K shared-lock wait is well-defined for the queue, but
            // no OLC reader ever joins it: report zero reader wait so the
            // four-pillar tables show the latch-free read path as such.
            sol.r_wait = 0.0;
            sols.push(sol);
        }

        // Search: latch-free descent — serial node work plus geometric
        // restart rework per level (no lock waits anywhere).
        let response_time_search: f64 = (1..=h)
            .map(|i| {
                let sol = &sols[i - 1];
                let p = self.restart_probability(sol, i);
                let retries = p / (1.0 - p);
                let stall = if sol.rho_w > 0.0 {
                    sol.rho_w * sol.t_agg / 2.0
                } else {
                    0.0
                };
                c.se(i) + retries * (c.se(i) + stall)
            })
            .sum();

        // Updates crab exactly as Naive Lock-coupling (Theorem 5), with
        // the W waits of the reader-free queues above.
        let response_time_delete: f64 =
            c.m() + sols[0].w_wait + (2..=h).map(|i| c.se(i) + sols[i - 1].w_wait).sum::<f64>();
        let split_work: f64 = (1..h).map(|j| f.split_chain_prob(j) * c.sp(j)).sum();
        let response_time_insert: f64 = c.m()
            + (2..=h).map(|i| c.se(i)).sum::<f64>()
            + (1..=h).map(|i| sols[i - 1].w_wait).sum::<f64>()
            + split_work;

        Ok(Performance {
            lambda,
            response_time_search,
            response_time_insert,
            response_time_delete,
            levels: sols,
        })
    }

    fn as_dyn(&self) -> &dyn PerformanceModel {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveLockCoupling;

    fn model() -> OptimisticLockCoupling {
        OptimisticLockCoupling::new(ModelConfig::paper_base())
    }

    #[test]
    fn zero_load_search_is_serial() {
        let perf = model().evaluate(0.0).unwrap();
        assert!((perf.response_time_search - 17.0).abs() < 1e-9);
        assert_eq!(perf.root_writer_utilization(), 0.0);
    }

    #[test]
    fn reader_latch_demand_is_zero_at_every_level() {
        let perf = model().evaluate(0.3).unwrap();
        for l in &perf.levels {
            assert_eq!(
                l.lambda_r, 0.0,
                "level {}: OLC readers never latch",
                l.level
            );
            assert_eq!(
                l.r_wait, 0.0,
                "level {}: P-K wait over an empty class",
                l.level
            );
        }
    }

    #[test]
    fn beats_naive_lock_coupling_where_it_matters() {
        // Removing the reader class from every queue lowers writer waits
        // at any common load and raises the saturation point. Searches
        // trade lock waits for restart rework — slightly costlier at low
        // contention, but they never queue, so they stay near-serial at
        // loads naive cannot even sustain.
        let cfg = ModelConfig::paper_base();
        let olc = OptimisticLockCoupling::new(cfg.clone());
        let naive = NaiveLockCoupling::new(cfg);
        let lam = 0.2;
        let po = olc.evaluate(lam).unwrap();
        let pn = naive.evaluate(lam).unwrap();
        assert!(po.response_time_insert < pn.response_time_insert);
        assert!(
            po.response_time_search < 1.1 * pn.response_time_search,
            "restart rework must stay comparable to naive's reader waits"
        );
        let mo = olc.max_throughput().unwrap();
        let mn = naive.max_throughput().unwrap();
        assert!(mo > mn, "olc ({mo}) must out-sustain naive ({mn})");
        // Past naive's saturation point OLC still answers searches:
        // finite, and bounded by the restart rework (no queueing blowup).
        let beyond = olc.evaluate(1.05 * mn).unwrap();
        assert!(beyond.response_time_search < 5.0 * 17.0);
    }

    #[test]
    fn still_saturates_at_the_root() {
        // Writers still couple, so Theorem 2's root bottleneck survives.
        use crate::AnalysisError;
        let m = model();
        let mut lambda = 0.4;
        loop {
            match m.evaluate(lambda) {
                Ok(_) => lambda *= 1.3,
                Err(AnalysisError::Saturated { level, .. }) => {
                    assert_eq!(level, m.cfg.height());
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(lambda < 1e6, "never saturated");
        }
    }

    #[test]
    fn restart_rework_grows_with_load() {
        let m = model();
        let lo = m.evaluate(0.05).unwrap();
        let hi = m.evaluate(0.3).unwrap();
        assert!(hi.response_time_search > lo.response_time_search);
        // But searches stay near-serial: rework only, no queueing.
        assert!(hi.response_time_search < 1.5 * 17.0);
    }

    #[test]
    fn search_only_mix_is_wait_and_restart_free() {
        let cfg = ModelConfig::new(
            cbtree_btree_model::TreeShape::paper(),
            cbtree_btree_model::OpMix::searches_only(),
            cbtree_btree_model::CostModel::paper(),
        )
        .unwrap();
        let m = OptimisticLockCoupling::new(cfg);
        let perf = m.evaluate(5.0).unwrap();
        assert!((perf.response_time_search - 17.0).abs() < 1e-9);
        assert_eq!(perf.root_writer_utilization(), 0.0);
    }
}
