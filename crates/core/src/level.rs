//! The shared per-level lock-queue solver and the performance report types.
//!
//! Every algorithm model reduces each tree level to the same computation:
//!
//! 1. split the level's arrivals into reader (shared) and writer
//!    (exclusive) classes,
//! 2. describe the *exclusive* part of a writer's aggregate service as a
//!    staged (hyperexponential) distribution whose always-taken first stage
//!    absorbs the reader-burst wait (Theorem 3's `t_e`),
//! 3. solve the Theorem 6 fixed point for the writer utilization `ρ_w`,
//! 4. read off the lock waits: `R(i)` from the M/G/1
//!    (Pollaczek–Khinchine) formula over aggregate customers, and
//!    `W(i) = R(i) + ρ_w·r_u + (1−ρ_w)·r_e`.
//!
//! The leaf level (Theorem 4) is the degenerate case where the entire
//! aggregate service is modeled by a *single* exponential stage, which
//! makes the M/G/1 wait collapse to the M/M/1 form `ρ·T_a/(1−ρ)`.

use crate::{AnalysisError, Result};
use cbtree_queueing::rw::reader_bursts;
use cbtree_queueing::solve::{first_root, DEFAULT_TOL};
use cbtree_queueing::stages::StagedService;

/// Solved state of one level's lock queue.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSolution {
    /// Level number (1 = leaves).
    pub level: usize,
    /// Reader (shared-lock) arrival rate at this level.
    pub lambda_r: f64,
    /// Writer (exclusive-lock) arrival rate at this level.
    pub lambda_w: f64,
    /// Writer utilization `ρ_w(i)` — probability a writer is queued.
    pub rho_w: f64,
    /// Reader-burst wait when another writer was queued, `r_u(i)`.
    pub r_u: f64,
    /// Reader-burst wait when the queue had no writer, `r_e(i)`.
    pub r_e: f64,
    /// Combined reader-burst wait `ρ_w·r_u + (1−ρ_w)·r_e`.
    pub burst: f64,
    /// Mean aggregate-customer service time `T_a(i)`.
    pub t_agg: f64,
    /// Expected time to obtain a shared lock, `R(i)`.
    pub r_wait: f64,
    /// Expected time to obtain an exclusive lock, `W(i)`.
    pub w_wait: f64,
}

impl LevelSolution {
    /// A level with no writers (and hence no lock waiting at all): pure
    /// reader traffic shares the lock freely.
    pub fn reader_only(level: usize, lambda_r: f64, mu_r: f64) -> Self {
        let (r_u, r_e) = reader_bursts(lambda_r, 0.0, mu_r, 0.0);
        LevelSolution {
            level,
            lambda_r,
            lambda_w: 0.0,
            rho_w: 0.0,
            r_u,
            r_e,
            burst: r_e,
            t_agg: 0.0,
            r_wait: 0.0,
            w_wait: r_e,
        }
    }
}

/// Solves one level's queue.
///
/// `make_exclusive(burst)` must return the staged service distribution of
/// a writer's aggregate customer *including* the reader burst (fold the
/// burst into the mean of the always-taken stage, as Theorem 3's `t_e`
/// does). The solver finds `ρ_w` such that
/// `ρ_w = λ_w · make_exclusive(burst(ρ_w)).mean()` with the Theorem 6
/// reader bursts, then computes the waits.
pub fn solve_level(
    level: usize,
    lambda_r: f64,
    lambda_w: f64,
    mu_r: f64,
    lambda_total: f64,
    make_exclusive: impl Fn(f64) -> StagedService,
) -> Result<LevelSolution> {
    if lambda_w <= 0.0 {
        return Ok(LevelSolution::reader_only(level, lambda_r, mu_r));
    }

    let burst_at = |rho: f64| -> f64 {
        let (r_u, r_e) = reader_bursts(lambda_r, lambda_w, mu_r, rho);
        rho * r_u + (1.0 - rho) * r_e
    };
    let g = |rho: f64| lambda_w * make_exclusive(burst_at(rho)).mean() - rho;

    const UPPER: f64 = 1.0 - 1e-9;
    let rho_w = first_root(0.0, UPPER, 512, DEFAULT_TOL, g).ok_or(AnalysisError::Saturated {
        level,
        lambda: lambda_total,
    })?;

    let (r_u, r_e) = reader_bursts(lambda_r, lambda_w, mu_r, rho_w);
    let burst = rho_w * r_u + (1.0 - rho_w) * r_e;
    let agg = make_exclusive(burst);
    let t_agg = agg.mean();
    // Pollaczek–Khinchine over aggregate customers (paper Theorem 3 proof):
    // R(i) = λ_w · x̄² / (2·(1−ρ_w)).
    let r_wait = lambda_w * agg.second_moment() / (2.0 * (1.0 - rho_w));
    let w_wait = r_wait + burst;

    Ok(LevelSolution {
        level,
        lambda_r,
        lambda_w,
        rho_w,
        r_u,
        r_e,
        burst,
        t_agg,
        r_wait,
        w_wait,
    })
}

/// Full performance report for one algorithm at one arrival rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Performance {
    /// Total arrival rate the model was evaluated at.
    pub lambda: f64,
    /// Expected response time of a search operation, `Per(S)`.
    pub response_time_search: f64,
    /// Expected response time of an insert operation, `Per(I)`.
    pub response_time_insert: f64,
    /// Expected response time of a delete operation, `Per(D)`.
    pub response_time_delete: f64,
    /// Per-level queue solutions, leaves first (`levels[0]` is level 1).
    pub levels: Vec<LevelSolution>,
}

impl Performance {
    /// Writer utilization at the root, `ρ_w(h)` — the bottleneck metric of
    /// Theorem 2 and Figure 10.
    pub fn root_writer_utilization(&self) -> f64 {
        self.levels.last().map_or(0.0, |l| l.rho_w)
    }

    /// The level solution for a 1-based level.
    pub fn level(&self, level: usize) -> &LevelSolution {
        &self.levels[level - 1]
    }

    /// Mix-weighted mean response time.
    pub fn mean_response_time(&self, q_search: f64, q_insert: f64, q_delete: f64) -> f64 {
        q_search * self.response_time_search
            + q_insert * self.response_time_insert
            + q_delete * self.response_time_delete
    }

    /// Total expected lock-wait experienced by a search (response time
    /// minus serial work); useful for validation against the simulator's
    /// wait statistics.
    pub fn search_wait(&self) -> f64 {
        self.levels.iter().map(|l| l.r_wait).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtree_queueing::stages::Mixture;

    /// With a single always-stage the level solver must reproduce the
    /// Theorem 4 / M/M/1 closed form.
    #[test]
    fn leaf_case_collapses_to_mm1() {
        let (lambda_w, base) = (0.05, 4.0);
        // no readers: burst = 0, T_a = base, rho = lambda_w * base
        let sol = solve_level(1, 0.0, lambda_w, 1.0, 1.0, |burst| {
            StagedService::new().with_stage(Mixture::always(base + burst))
        })
        .unwrap();
        let rho = lambda_w * base;
        assert!((sol.rho_w - rho).abs() < 1e-9);
        let expect_r = rho * base / (1.0 - rho);
        assert!(
            (sol.r_wait - expect_r).abs() < 1e-8,
            "{} vs {expect_r}",
            sol.r_wait
        );
        assert!((sol.w_wait - sol.r_wait).abs() < 1e-12, "no readers: W = R");
    }

    #[test]
    fn reader_only_level_has_no_waits() {
        let sol = solve_level(3, 2.0, 0.0, 1.0, 5.0, |_| {
            StagedService::new().with_stage(Mixture::always(1.0))
        })
        .unwrap();
        assert_eq!(sol.rho_w, 0.0);
        assert_eq!(sol.r_wait, 0.0);
    }

    #[test]
    fn saturation_reported_with_level() {
        let err = solve_level(4, 0.0, 2.0, 1.0, 9.0, |_| {
            StagedService::new().with_stage(Mixture::always(1.0))
        })
        .unwrap_err();
        match err {
            AnalysisError::Saturated { level, lambda } => {
                assert_eq!(level, 4);
                assert_eq!(lambda, 9.0);
            }
            other => panic!("expected saturation, got {other}"),
        }
    }

    #[test]
    fn readers_increase_both_waits() {
        let base = 2.0;
        let mk = |burst: f64| StagedService::new().with_stage(Mixture::always(base + burst));
        let quiet = solve_level(2, 0.0, 0.1, 1.0, 1.0, mk).unwrap();
        let busy = solve_level(2, 1.0, 0.1, 1.0, 1.0, mk).unwrap();
        assert!(busy.rho_w > quiet.rho_w);
        assert!(busy.w_wait > quiet.w_wait);
    }

    #[test]
    fn fixed_point_residual_is_small() {
        let sol = solve_level(2, 1.5, 0.2, 0.8, 1.0, |burst| {
            StagedService::new()
                .with_stage(Mixture::always(0.7 + burst))
                .with_stage(Mixture::optional(0.1, 3.0))
        })
        .unwrap();
        assert!((sol.lambda_w * sol.t_agg - sol.rho_w).abs() < 1e-7);
    }

    #[test]
    fn performance_accessors() {
        let mk = |level: usize, rho: f64| LevelSolution {
            level,
            lambda_r: 0.0,
            lambda_w: 0.1,
            rho_w: rho,
            r_u: 0.0,
            r_e: 0.0,
            burst: 0.0,
            t_agg: 1.0,
            r_wait: 0.5,
            w_wait: 0.6,
        };
        let p = Performance {
            lambda: 1.0,
            response_time_search: 10.0,
            response_time_insert: 20.0,
            response_time_delete: 15.0,
            levels: vec![mk(1, 0.1), mk(2, 0.4)],
        };
        assert_eq!(p.root_writer_utilization(), 0.4);
        assert_eq!(p.level(1).level, 1);
        assert!((p.mean_response_time(0.3, 0.5, 0.2) - (3.0 + 10.0 + 3.0)).abs() < 1e-12);
        assert!((p.search_wait() - 1.0).abs() < 1e-12);
    }
}
