//! Error type for the analytical framework.

use cbtree_btree_model::ModelError;
use cbtree_queueing::QueueError;
use std::fmt;

/// Errors raised while evaluating an analytical model.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// Some level's lock queue has no stable operating point at the
    /// requested arrival rate. This is the signal the maximum-throughput
    /// search probes for.
    Saturated {
        /// The level whose queue saturated (1 = leaves, `h` = root).
        level: usize,
        /// The total arrival rate that was being evaluated.
        lambda: f64,
    },
    /// An input parameter was outside its domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// A queueing computation failed for a reason other than saturation.
    Queue(QueueError),
    /// A model-parameter derivation failed.
    Model(ModelError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Saturated { level, lambda } => {
                write!(
                    f,
                    "lock queue at level {level} saturates at arrival rate {lambda}"
                )
            }
            AnalysisError::InvalidParameter { name, constraint } => {
                write!(f, "invalid analysis parameter `{name}`: {constraint}")
            }
            AnalysisError::Queue(e) => write!(f, "queueing error: {e}"),
            AnalysisError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Queue(e) => Some(e),
            AnalysisError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for AnalysisError {
    fn from(e: ModelError) -> Self {
        AnalysisError::Model(e)
    }
}

impl AnalysisError {
    /// Converts a queueing error at a known level, mapping
    /// [`QueueError::Saturated`] to [`AnalysisError::Saturated`] so the
    /// throughput search can treat saturation uniformly.
    pub fn from_queue_at_level(e: QueueError, level: usize, lambda: f64) -> Self {
        match e {
            QueueError::Saturated { .. } => AnalysisError::Saturated { level, lambda },
            other => AnalysisError::Queue(other),
        }
    }

    /// Whether this error reports saturation (as opposed to a genuine
    /// parameter/numerical failure).
    pub fn is_saturated(&self) -> bool {
        matches!(self, AnalysisError::Saturated { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_mapping() {
        let q = QueueError::Saturated {
            lambda_w: 1.0,
            lambda_r: 0.0,
        };
        let a = AnalysisError::from_queue_at_level(q, 5, 0.9);
        assert!(a.is_saturated());
        assert!(a.to_string().contains("level 5"));
    }

    #[test]
    fn non_saturation_passthrough() {
        let q = QueueError::NoConvergence { residual: 1.0 };
        let a = AnalysisError::from_queue_at_level(q, 2, 0.9);
        assert!(!a.is_saturated());
        assert!(matches!(a, AnalysisError::Queue(_)));
    }

    #[test]
    fn display_forms() {
        let e = AnalysisError::InvalidParameter {
            name: "lambda",
            constraint: "non-negative",
        };
        assert!(e.to_string().contains("lambda"));
    }
}
