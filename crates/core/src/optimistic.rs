//! The Optimistic Descent model (paper §5.1).
//!
//! Updates first descend exactly like searches — shared locks with
//! lock-coupling — and place an exclusive lock only on the leaf. If the
//! leaf turns out to be unsafe, the operation releases everything and
//! redescends placing exclusive locks all the way (a *redo-insert*, a new
//! operation class entering at rate `q_i·Pr[F(1)]·λ`).
//!
//! Modeling consequences relative to Naive Lock-coupling:
//!
//! * above the leaves the reader class carries *all* first descents
//!   (`λ_{R,i} = λ_i`) and the writer class only the redo operations
//!   (`λ_{W,i} = q_i·Pr[F(1)]·λ_i`);
//! * at the leaf, first-pass updates and redo-inserts all place W locks;
//! * a redo-insert heads for a leaf it just found full, so its level-2
//!   lock almost surely covers a leaf split — the redo class's
//!   "child-unsafe" probability at level 2 is 1, not `Pr[F(1)]`
//!   (the split-propagation chain for redos is `∏_{k=2..j} Pr[F(k)]`);
//! * the insert response time is the first descent plus `Pr[F(1)]` times
//!   the redo descent's response time.
//!
//! Redo-*deletes* are ignored: with merge-at-empty and inserts dominating,
//! `Pr[Em(1)] ≈ 0` (Corollary 1), which the configuration reports.

use crate::config::ModelConfig;
use crate::level::{solve_level, LevelSolution, Performance};
use crate::{Algorithm, PerformanceModel, Result};
use cbtree_queueing::stages::{Mixture, StagedService};

/// Analytical model of the Optimistic Descent algorithm.
#[derive(Debug, Clone)]
pub struct OptimisticDescent {
    cfg: ModelConfig,
}

/// Detailed evaluation output: the per-level solutions plus the redo
/// descent's response time (before weighting by `Pr[F(1)]`).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimisticDetail {
    /// The performance report (what `evaluate` returns).
    pub perf: Performance,
    /// Response time of a redo-insert descent, `Per(redo)`.
    pub redo_response_time: f64,
    /// Rate at which redo-inserts enter the tree, `q_i·Pr[F(1)]·λ`.
    pub redo_rate: f64,
}

impl OptimisticDescent {
    /// Builds the model for a configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        OptimisticDescent { cfg }
    }

    /// Probability that the redo class finds its child unsafe at `level`:
    /// 1 at level 2 (the leaf it is re-descending to was full), `Pr[F(i−1)]`
    /// above.
    fn redo_child_unsafe(&self, level: usize) -> f64 {
        if level == 2 {
            1.0
        } else {
            self.cfg.fullness.pr_full(level - 1)
        }
    }

    /// `∏_{k=1..j}` of the redo class's child-unsafe probabilities — the
    /// probability a redo-insert's split chain reaches level `j`.
    fn redo_split_chain(&self, j: usize) -> f64 {
        (2..=j).map(|k| self.cfg.fullness.pr_full(k)).product()
    }

    /// Evaluates the model with redo-descent detail.
    pub fn evaluate_detailed(&self, lambda: f64) -> Result<OptimisticDetail> {
        self.cfg.check_lambda(lambda)?;
        let cfg = &self.cfg;
        let h = cfg.height();
        let mix = &cfg.mix;
        let f = &cfg.fullness;
        let c = &cfg.cost;
        let rec = &cfg.recovery;
        let prf1 = f.pr_full(1);
        let redo_share = mix.q_insert * prf1; // of total λ

        // Redo-insert hold times T(I, i), Theorem 1 recursion with the
        // redo class's conditioning at level 2.
        let mut t_redo = vec![0.0; h];
        let mut t_s = vec![0.0; h];
        let mut sols: Vec<LevelSolution> = Vec::with_capacity(h);

        for level in 1..=h {
            let lambda_lvl = cfg.shape.arrival_at_level(lambda, level);

            let sol = if level == 1 {
                t_s[0] = c.se(1);
                t_redo[0] = c.m();
                let lambda_r = mix.q_search * lambda_lvl;
                // W class: first-pass inserts + first-pass deletes + redos.
                let lambda_w = (mix.update_fraction() + redo_share) * lambda_lvl;
                let m_eff = c.m() + rec.leaf_extra();
                // First-pass insert: does the modify when safe, merely
                // inspects (and restarts) when full.
                let w_first_ins = (1.0 - prf1) * m_eff + prf1 * c.se(1);
                let w_mean = if lambda_w > 0.0 {
                    (mix.q_insert * w_first_ins + mix.q_delete * m_eff + redo_share * m_eff)
                        / (mix.update_fraction() + redo_share)
                } else {
                    0.0
                };
                let mu_r = 1.0 / c.se(1);
                solve_level(1, lambda_r, lambda_w, mu_r, lambda, |burst| {
                    StagedService::new().with_stage(Mixture::always(w_mean + burst))
                })?
            } else {
                let prev = &sols[level - 2];
                let i = level;
                let p_unsafe_child = self.redo_child_unsafe(i);

                // Reader service: search the node, then wait for the child
                // lock. At level 2 the update first-passes wait for the
                // leaf's W lock; everywhere else all first descents wait
                // for the child's R lock.
                let child_wait = if i == 2 {
                    mix.q_search * prev.r_wait + mix.update_fraction() * prev.w_wait
                } else {
                    prev.r_wait
                };
                t_s[i - 1] = c.se(i) + child_wait;

                // Redo hold times: as Theorem 1, with the redo chain.
                // `redo_split_chain(i−1)` is 1 at i = 2: the leaf split is
                // (near-)certain for a redo descent. Unprimed hold times;
                // §7's retention enters only the queue services below.
                t_redo[i - 1] = c.se(i)
                    + prev.w_wait
                    + p_unsafe_child * t_redo[i - 2]
                    + c.sp(i - 1) * self.redo_split_chain(i - 1);

                let lambda_r = lambda_lvl; // all first descents
                let lambda_w = redo_share * lambda_lvl;

                let p_f = p_unsafe_child;
                let rho_o = prev.rho_w;
                let t_f = t_redo[i - 2] + c.sp(i - 1) * self.redo_split_chain(i - 2);
                let t_busy = if rho_o > 0.0 {
                    prev.r_wait / rho_o + prev.r_u
                } else {
                    0.0
                };
                let t_idle = prev.r_e;
                let mu_r = 1.0 / t_s[i - 1];
                let se_i = c.se(i);
                let t_trans = cfg.recovery.t_trans;
                let rec_prob = if rec.upper_extra(f.pr_full(i)) > 0.0 {
                    f.pr_full(i)
                } else {
                    0.0
                };

                solve_level(i, lambda_r, lambda_w, mu_r, lambda, move |burst| {
                    let mut agg = StagedService::theorem3_server(
                        se_i + burst,
                        p_f,
                        t_f,
                        rho_o,
                        t_busy,
                        t_idle,
                    );
                    if rec_prob > 0.0 {
                        agg.push(Mixture::optional(rec_prob, t_trans));
                    }
                    agg
                })?
            };
            sols.push(sol);
        }

        // Response times. First descents see Se(i) + R(i) above the leaf.
        let descent: f64 = (2..=h).map(|i| c.se(i) + sols[i - 1].r_wait).sum();
        let response_time_search = descent + c.se(1) + sols[0].r_wait;

        // Redo descent: full W descent like a Naive Lock-coupling insert,
        // with the leaf split (near-)certain.
        let redo_split_work: f64 = (1..h)
            .map(|j| {
                if j == 1 {
                    c.sp(1)
                } else {
                    self.redo_split_chain(j) * c.sp(j)
                }
            })
            .sum();
        let redo_response_time: f64 = c.m()
            + (2..=h).map(|i| c.se(i)).sum::<f64>()
            + (1..=h).map(|i| sols[i - 1].w_wait).sum::<f64>()
            + redo_split_work;

        let first_pass_leaf_work = (1.0 - prf1) * c.m() + prf1 * c.se(1);
        let response_time_insert =
            descent + sols[0].w_wait + first_pass_leaf_work + prf1 * redo_response_time;
        let response_time_delete = descent + sols[0].w_wait + c.m();

        let perf = Performance {
            lambda,
            response_time_search,
            response_time_insert,
            response_time_delete,
            levels: sols,
        };
        Ok(OptimisticDetail {
            perf,
            redo_response_time,
            redo_rate: redo_share * lambda,
        })
    }
}

impl PerformanceModel for OptimisticDescent {
    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::OptimisticDescent
    }

    fn evaluate(&self, lambda: f64) -> Result<Performance> {
        Ok(self.evaluate_detailed(lambda)?.perf)
    }

    fn as_dyn(&self) -> &dyn PerformanceModel {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveLockCoupling;

    fn model() -> OptimisticDescent {
        OptimisticDescent::new(ModelConfig::paper_base())
    }

    #[test]
    fn zero_load_search_is_serial() {
        let perf = model().evaluate(0.0).unwrap();
        assert!((perf.response_time_search - 17.0).abs() < 1e-9);
    }

    #[test]
    fn redo_rate_matches_formula() {
        let d = model().evaluate_detailed(0.3).unwrap();
        let cfg = ModelConfig::paper_base();
        let expect = cfg.mix.q_insert * cfg.fullness.pr_full(1) * 0.3;
        assert!((d.redo_rate - expect).abs() < 1e-12);
    }

    #[test]
    fn beats_naive_lock_coupling() {
        // Figure 12 / §8: Optimistic Descent significantly outperforms
        // Naive Lock-coupling.
        let cfg = ModelConfig::paper_base();
        let od = OptimisticDescent::new(cfg.clone());
        let nl = NaiveLockCoupling::new(cfg);
        let max_od = od.max_throughput().unwrap();
        let max_nl = nl.max_throughput().unwrap();
        assert!(
            max_od > 1.5 * max_nl,
            "OD max throughput {max_od} must clearly beat naive {max_nl}"
        );
        // And at a load naive can still sustain, OD's insert RT is lower.
        let lam = 0.8 * max_nl;
        let rt_od = od.evaluate(lam).unwrap().response_time_insert;
        let rt_nl = nl.evaluate(lam).unwrap().response_time_insert;
        assert!(rt_od < rt_nl, "insert RT: od={rt_od} naive={rt_nl}");
    }

    #[test]
    fn writer_rate_above_leaf_is_redo_only() {
        let perf = model().evaluate(0.3).unwrap();
        let cfg = ModelConfig::paper_base();
        let root = perf.level(cfg.height());
        let expect_w = cfg.mix.q_insert * cfg.fullness.pr_full(1) * 0.3;
        assert!((root.lambda_w - expect_w).abs() < 1e-12);
        assert!(
            (root.lambda_r - 0.3).abs() < 1e-12,
            "all first descents read the root"
        );
    }

    #[test]
    fn insert_slower_than_search_and_delete() {
        let perf = model().evaluate(0.3).unwrap();
        assert!(perf.response_time_insert > perf.response_time_delete);
        assert!(perf.response_time_delete > perf.response_time_search);
    }

    #[test]
    fn response_grows_with_load() {
        let m = model();
        let lo = m.evaluate(0.1).unwrap();
        let hi = m.evaluate(0.6).unwrap();
        assert!(hi.response_time_insert > lo.response_time_insert);
        assert!(hi.response_time_search > lo.response_time_search);
    }

    #[test]
    fn larger_nodes_help_od_specifically() {
        // §6: OD's effective max grows with node size; the redo rate falls
        // as 1/N.
        let mk = |n: usize| {
            ModelConfig::pinned(n, 5, 6.0, 2, 5.0, 1.0, cbtree_btree_model::OpMix::paper()).unwrap()
        };
        let small = OptimisticDescent::new(mk(13)).max_throughput().unwrap();
        let large = OptimisticDescent::new(mk(59)).max_throughput().unwrap();
        assert!(large > 2.0 * small, "N=59 ({large}) vs N=13 ({small})");
    }

    #[test]
    fn recovery_ranking_matches_section_7() {
        use crate::config::RecoveryMode;
        let base = ModelConfig::paper_with_disk_cost(10.0).unwrap();
        let lam = 0.25;
        let none = OptimisticDescent::new(base.clone()).evaluate(lam).unwrap();
        let leaf =
            OptimisticDescent::new(base.clone().with_recovery(RecoveryMode::LeafOnly, 100.0))
                .evaluate(lam)
                .unwrap();
        let naive = OptimisticDescent::new(base.with_recovery(RecoveryMode::Naive, 100.0))
            .evaluate(lam)
            .unwrap();
        assert!(
            naive.response_time_insert > leaf.response_time_insert,
            "naive recovery ({}) must be worse than leaf-only ({})",
            naive.response_time_insert,
            leaf.response_time_insert
        );
        assert!(leaf.response_time_insert >= none.response_time_insert);
        // "Leaf-only has slightly worse performance than no-recovery" —
        // within a small factor, not catastrophically worse.
        assert!(leaf.response_time_insert < 1.5 * none.response_time_insert);
    }
}
