//! The Link-type (Lehman–Yao) model (paper §5.1).
//!
//! Every node is linked to its right neighbor, so operations hold **at
//! most one lock at a time**: R locks on the way down, and updates take a
//! W lock only on the node they actually modify. A split half-splits the
//! node, links the new sibling, *releases* the node's lock, and only then
//! W-locks the parent to post the new pointer.
//!
//! Modeling consequences:
//!
//! * there is no lock-coupling, so the levels decouple — each level is an
//!   independent FCFS R/W queue whose service times are pure node work;
//! * the W-lock arrival rate at level `i > 1` is the rate at which splits
//!   propagate to it: `λ_{W,i} = q_i·λ_i·∏_{k<i} Pr[F(k)]`;
//! * R service is just `Se(i)`; W service is the node modification plus a
//!   possible half-split while the lock is held;
//! * link chases (an operation drifting right after a concurrent split)
//!   are rare enough to ignore analytically — the paper's Figure 9 and our
//!   simulator confirm the effect on response time is negligible.
//!
//! Because nothing couples the levels and the W rates fall geometrically
//! with height, the algorithm saturates only at enormous arrival rates —
//! "the Link-type algorithm has no effective maximum throughput" (§6).

use crate::config::ModelConfig;
use crate::level::{solve_level, LevelSolution, Performance};
use crate::{Algorithm, PerformanceModel, Result};
use cbtree_queueing::stages::{Mixture, StagedService};

/// Analytical model of the Link-type algorithm.
#[derive(Debug, Clone)]
pub struct LinkType {
    cfg: ModelConfig,
}

impl LinkType {
    /// Builds the model for a configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        LinkType { cfg }
    }

    /// Expected time to modify (insert a separator into) a level-`i` node.
    /// The paper defines `M` only for leaves; we extend the same 2× ratio
    /// to upper-level modifications.
    fn modify(&self, level: usize) -> f64 {
        2.0 * self.cfg.cost.se(level)
    }
}

impl PerformanceModel for LinkType {
    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::LinkType
    }

    fn evaluate(&self, lambda: f64) -> Result<Performance> {
        self.cfg.check_lambda(lambda)?;
        let cfg = &self.cfg;
        let h = cfg.height();
        let mix = &cfg.mix;
        let f = &cfg.fullness;
        let c = &cfg.cost;
        let rec = &cfg.recovery;
        let ins_share = mix.insert_share_of_updates();

        let mut sols: Vec<LevelSolution> = Vec::with_capacity(h);
        for level in 1..=h {
            let lambda_lvl = cfg.shape.arrival_at_level(lambda, level);
            let mu_r = 1.0 / c.se(level);

            let mut sol = if level == 1 {
                let lambda_r = mix.q_search * lambda_lvl;
                let lambda_w = mix.update_fraction() * lambda_lvl;
                // Insert W service: modify + (if now overfull) half-split,
                // all under the leaf lock. Deletes just modify.
                let split_prob = ins_share * f.pr_full(1);
                let m_eff = c.m() + rec.leaf_extra();
                let sp1 = c.sp(1);
                solve_level(1, lambda_r, lambda_w, mu_r, lambda, move |burst| {
                    StagedService::new()
                        .with_stage(Mixture::always(m_eff + burst))
                        .with_stage(Mixture::optional(split_prob, sp1))
                })?
            } else {
                // All operations pass through with R locks; W locks arrive
                // only as splits propagating up from below.
                let lambda_r = lambda_lvl;
                let lambda_w = mix.q_insert * lambda_lvl * f.split_chain_prob(level - 1);
                let rec_extra_prob = if rec.upper_extra(f.pr_full(level)) > 0.0 {
                    f.pr_full(level)
                } else {
                    0.0
                };
                let t_trans = rec.t_trans;
                let modify = self.modify(level);
                let split_prob = f.pr_full(level);
                let sp = c.sp(level);
                solve_level(level, lambda_r, lambda_w, mu_r, lambda, move |burst| {
                    let mut agg = StagedService::new()
                        .with_stage(Mixture::always(modify + burst))
                        .with_stage(Mixture::optional(split_prob, sp));
                    if rec_extra_prob > 0.0 {
                        agg.push(Mixture::optional(rec_extra_prob, t_trans));
                    }
                    agg
                })?
            };
            // Reader-wait refinement for the link protocol. The
            // Pollaczek–Khinchine form (right for the *writers*, who queue
            // behind whole aggregates) overcharges readers: a reader
            // arriving while no writer is queued joins the reader group
            // immediately — reader-burst "work" never blocks other
            // readers. A reader waits only when a writer is present
            // (probability λ_w·T_a): behind the writer's remaining burst
            // plus its hold, or behind the residual hold.
            if sol.lambda_w > 0.0 {
                let b = (sol.t_agg - sol.burst).max(0.0);
                sol.r_wait = sol.lambda_w * (0.5 * sol.burst * sol.burst + sol.burst * b + b * b);
                sol.w_wait = sol.w_wait.max(sol.r_wait + sol.burst);
            }
            sols.push(sol);
        }

        // Response times. Descent reads every level (one lock at a time).
        let response_time_search: f64 = (1..=h).map(|i| c.se(i) + sols[i - 1].r_wait).sum();

        // Insert: read down to the leaf's parent, W-lock the leaf, modify;
        // then with probability ∏Pr[F] the split climbs, paying the
        // half-split plus the next level's W wait and modification.
        let descent: f64 = (2..=h).map(|i| c.se(i) + sols[i - 1].r_wait).sum();
        let mut split_work = 0.0;
        for (j, sol_above) in sols.iter().enumerate().take(h).skip(1) {
            // j is the 0-based index of level j+1; sol_above is level j+1.
            let reach = f.split_chain_prob(j);
            split_work += reach * (c.sp(j) + sol_above.w_wait + self.modify(j + 1));
        }
        let response_time_insert = descent + sols[0].w_wait + c.m() + split_work;
        let response_time_delete = descent + sols[0].w_wait + c.m();

        Ok(Performance {
            lambda,
            response_time_search,
            response_time_insert,
            response_time_delete,
            levels: sols,
        })
    }

    fn as_dyn(&self) -> &dyn PerformanceModel {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NaiveLockCoupling, OptimisticDescent};

    fn model() -> LinkType {
        LinkType::new(ModelConfig::paper_base())
    }

    #[test]
    fn zero_load_search_is_serial() {
        let perf = model().evaluate(0.0).unwrap();
        assert!((perf.response_time_search - 17.0).abs() < 1e-9);
    }

    #[test]
    fn writer_rates_match_split_propagation() {
        // λ_{W,i} = q_i·λ_i·∏_{k<i} Pr[F(k)]. Per representative node the
        // rate is roughly flat above the leaf (E·Pr[F] ≈ 1 at steady
        // state), far below the leaf's update rate, and smallest at the
        // root (whose fanout is below steady state).
        let perf = model().evaluate(1.0).unwrap();
        let cfg = ModelConfig::paper_base();
        for i in 2..=5 {
            let lvl = perf.level(i);
            let expect = cfg.mix.q_insert
                * cfg.shape.arrival_at_level(1.0, i)
                * cfg.fullness.split_chain_prob(i - 1);
            assert!((lvl.lambda_w - expect).abs() < 1e-12, "level {i}");
            assert!(lvl.lambda_w < perf.level(1).lambda_w);
        }
        assert!(perf.level(5).lambda_w < perf.level(4).lambda_w);
    }

    #[test]
    fn dominates_both_other_algorithms() {
        // Figure 12 / §8: Link ≫ Optimistic ≫ Naive.
        let cfg = ModelConfig::paper_base();
        let link = LinkType::new(cfg.clone()).max_throughput().unwrap();
        let od = OptimisticDescent::new(cfg.clone())
            .max_throughput()
            .unwrap();
        let naive = NaiveLockCoupling::new(cfg).max_throughput().unwrap();
        assert!(
            link > 3.0 * od && od > 1.5 * naive,
            "expected link ({link}) >> od ({od}) >> naive ({naive})"
        );
    }

    #[test]
    fn effectively_unbounded_concurrency() {
        // §6: "the Link-type algorithm has no effective maximum
        // throughput" — it sustains rates far beyond the other
        // algorithms' saturation points.
        let m = model();
        assert!(m.evaluate(20.0).is_ok(), "link must sustain λ=20");
        let max = m.max_throughput().unwrap();
        assert!(max > 50.0, "link saturation should be enormous, got {max}");
    }

    #[test]
    fn response_time_nearly_flat_until_high_load() {
        let m = model();
        let lo = m.evaluate(0.1).unwrap().response_time_insert;
        let mid = m.evaluate(2.0).unwrap().response_time_insert;
        assert!(
            mid < 1.5 * lo,
            "link insert RT should stay nearly flat: {lo} → {mid}"
        );
    }

    #[test]
    fn search_and_delete_relationships() {
        let perf = model().evaluate(1.0).unwrap();
        assert!(perf.response_time_insert >= perf.response_time_delete);
        assert!(perf.response_time_delete > perf.response_time_search);
    }

    #[test]
    fn upper_level_readers_carry_everyone() {
        let perf = model().evaluate(2.0).unwrap();
        let cfg = ModelConfig::paper_base();
        let root = perf.level(cfg.height());
        assert!((root.lambda_r - 2.0).abs() < 1e-12);
    }
}
