//! Property-based tests of the analytical framework: structural
//! invariants that must hold for *every* algorithm across randomized
//! configurations — monotonicity in load, cost, and recovery burden;
//! consistency between per-level solutions and response times; and
//! saturation behavior.

use cbtree_analysis::{Algorithm, ModelConfig, RecoveryMode};
use cbtree_btree_model::{CostModel, NodeParams, OpMix, TreeShape};
use proptest::prelude::*;

fn arb_mix() -> impl Strategy<Value = OpMix> {
    // Insert-dominated mixes (the regime the analysis targets).
    (0.05f64..0.9, 0.05f64..0.5).prop_filter_map("inserts must dominate", |(qs, qd_frac)| {
        let updates = 1.0 - qs;
        let qd = updates * qd_frac.min(0.45);
        let qi = updates - qd;
        OpMix::new(qs, qi, qd).ok().filter(|m| m.inserts_dominate())
    })
}

fn arb_config() -> impl Strategy<Value = ModelConfig> {
    (
        5usize..64,         // node size
        10_000u64..200_000, // items
        1.0f64..12.0,       // disk cost
        0usize..4,          // memory levels
        arb_mix(),
    )
        .prop_filter_map("valid configuration", |(n, items, d, mem, mix)| {
            let shape = TreeShape::derive(items, NodeParams::with_max_size(n).ok()?).ok()?;
            let cost = CostModel::paper_style(shape.height, mem, d, 1.0).ok()?;
            ModelConfig::new(shape, mix, cost).ok()
        })
}

fn algorithms() -> [Algorithm; 4] {
    Algorithm::ALL_WITH_BASELINE
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At zero load every response time equals its serial cost: positive,
    /// finite, and independent of the algorithm's lock discipline for
    /// searches.
    #[test]
    fn zero_load_is_serial_and_wait_free(cfg in arb_config()) {
        let serial_search: f64 = (1..=cfg.height()).map(|i| cfg.cost.se(i)).sum();
        for alg in algorithms() {
            let perf = alg.model(&cfg).evaluate(0.0).unwrap();
            prop_assert!((perf.response_time_search - serial_search).abs() < 1e-6,
                "{alg:?}: {} vs serial {serial_search}", perf.response_time_search);
            prop_assert!(perf.response_time_insert.is_finite());
            prop_assert!(perf.response_time_insert > 0.0);
            for l in &perf.levels {
                prop_assert_eq!(l.rho_w, 0.0);
                prop_assert_eq!(l.r_wait, 0.0);
            }
        }
    }

    /// Response times and the root utilization are monotone in the
    /// arrival rate, for every algorithm.
    #[test]
    fn monotone_in_lambda(cfg in arb_config(), f1 in 0.05f64..0.45, f2 in 0.5f64..0.9) {
        for alg in algorithms() {
            let model = alg.model(&cfg);
            let Ok(max) = model.max_throughput() else { continue };
            let lo = model.evaluate(f1 * max).unwrap();
            let hi = model.evaluate(f2 * max).unwrap();
            prop_assert!(hi.response_time_insert >= lo.response_time_insert - 1e-9,
                "{alg:?} insert RT must grow with load");
            prop_assert!(hi.response_time_search >= lo.response_time_search - 1e-9);
            prop_assert!(hi.root_writer_utilization() >= lo.root_writer_utilization() - 1e-9);
        }
    }

    /// The maximum-throughput ranking 2PL ≤ naive ≤ optimistic ≤ link
    /// holds across random configurations.
    #[test]
    fn ranking_invariant(cfg in arb_config()) {
        let max = |a: Algorithm| a.model(&cfg).max_throughput().unwrap();
        let tp = max(Algorithm::TwoPhaseLocking);
        let naive = max(Algorithm::NaiveLockCoupling);
        let od = max(Algorithm::OptimisticDescent);
        let link = max(Algorithm::LinkType);
        prop_assert!(tp <= naive * 1.001, "2pl {tp} vs naive {naive}");
        prop_assert!(naive <= od * 1.001, "naive {naive} vs od {od}");
        prop_assert!(od <= link * 1.001, "od {od} vs link {link}");
    }

    /// Evaluating exactly at a stable rate never errs, and just above the
    /// maximum always saturates.
    #[test]
    fn saturation_boundary_is_sharp(cfg in arb_config(), frac in 0.1f64..0.95) {
        for alg in [Algorithm::NaiveLockCoupling, Algorithm::OptimisticDescent,
                    Algorithm::TwoPhaseLocking] {
            let model = alg.model(&cfg);
            let max = model.max_throughput().unwrap();
            prop_assert!(model.evaluate(frac * max).is_ok(), "{alg:?} stable below max");
            let above = model.evaluate(max * 1.05);
            prop_assert!(above.is_err(), "{alg:?} must saturate above max");
        }
    }

    /// Uniform service dilation scales zero-load response times linearly
    /// and maximum throughput inversely (§5.2).
    #[test]
    fn dilation_covariance(cfg in arb_config(), factor in 1.1f64..4.0) {
        let dilated = ModelConfig::new(
            cfg.shape.clone(), cfg.mix, cfg.cost.dilated(factor).unwrap()).unwrap();
        for alg in algorithms() {
            let m0 = alg.model(&cfg);
            let m1 = alg.model(&dilated);
            let rt0 = m0.evaluate(0.0).unwrap().response_time_insert;
            let rt1 = m1.evaluate(0.0).unwrap().response_time_insert;
            prop_assert!((rt1 / rt0 - factor).abs() < 1e-6);
            let max0 = m0.max_throughput().unwrap();
            let max1 = m1.max_throughput().unwrap();
            prop_assert!((max0 / max1 - factor).abs() < 0.05 * factor,
                "{alg:?}: max {max0} vs dilated {max1}");
        }
    }

    /// Recovery ordering none ≤ leaf-only ≤ naive holds at any stable
    /// load, for the algorithms with full W descents.
    #[test]
    fn recovery_ordering(cfg in arb_config(), frac in 0.1f64..0.7, t_trans in 10.0f64..300.0) {
        for alg in [Algorithm::NaiveLockCoupling, Algorithm::OptimisticDescent] {
            let naive_cfg = cfg.clone().with_recovery(RecoveryMode::Naive, t_trans);
            let leaf_cfg = cfg.clone().with_recovery(RecoveryMode::LeafOnly, t_trans);
            let m_naive = alg.model(&naive_cfg);
            let Ok(max) = m_naive.max_throughput() else { continue };
            let lambda = frac * max;
            let rt_none = alg.model(&cfg).evaluate(lambda).unwrap().response_time_insert;
            let rt_leaf = alg.model(&leaf_cfg).evaluate(lambda).unwrap().response_time_insert;
            let rt_naive = m_naive.evaluate(lambda).unwrap().response_time_insert;
            prop_assert!(rt_none <= rt_leaf + 1e-9, "{alg:?}");
            prop_assert!(rt_leaf <= rt_naive + 1e-9, "{alg:?}");
        }
    }

    /// Per-level consistency: writer waits dominate reader waits, and
    /// utilizations live in [0, 1).
    #[test]
    fn level_solutions_consistent(cfg in arb_config(), frac in 0.2f64..0.8) {
        for alg in algorithms() {
            let model = alg.model(&cfg);
            let Ok(max) = model.max_throughput() else { continue };
            let perf = model.evaluate(frac * max).unwrap();
            for l in &perf.levels {
                prop_assert!((0.0..1.0).contains(&l.rho_w), "{alg:?} level {}", l.level);
                prop_assert!(l.w_wait + 1e-9 >= l.r_wait,
                    "{alg:?} level {}: W wait {} < R wait {}", l.level, l.w_wait, l.r_wait);
                prop_assert!(l.r_wait >= 0.0 && l.w_wait.is_finite());
            }
        }
    }

    /// Rules of thumb stay within an order of magnitude of the full
    /// analysis for in-memory trees (their advertised regime).
    #[test]
    fn rules_of_thumb_sane_in_memory(n in 9usize..128, mix in arb_mix()) {
        let shape = TreeShape::derive(100_000,
            NodeParams::with_max_size(n).unwrap()).unwrap();
        let height = shape.height;
        let cost = CostModel::paper_style(height, height, 1.0, 1.0).unwrap();
        let cfg = ModelConfig::new(shape, mix, cost).unwrap();
        if let (Ok(exact), Ok(rot)) = (
            Algorithm::NaiveLockCoupling.model(&cfg).lambda_at_root_rho(0.5),
            cbtree_analysis::rules_of_thumb::naive_lc_rot1(&cfg),
        ) {
            let ratio = rot / exact;
            prop_assert!((0.2..5.0).contains(&ratio),
                "RoT1 {rot} vs analysis {exact} at N={n}");
        }
    }
}
