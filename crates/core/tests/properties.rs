//! Randomized tests of the analytical framework: structural invariants
//! that must hold for *every* algorithm across randomized configurations
//! — monotonicity in load, cost, and recovery burden; consistency between
//! per-level solutions and response times; and saturation behavior.
//! Cases come from `cbtree_workload::Rng` and reproduce from the printed
//! `(seed, case)` pair.

use cbtree_analysis::{Algorithm, ModelConfig, RecoveryMode};
use cbtree_btree_model::{CostModel, NodeParams, OpMix, TreeShape};
use cbtree_workload::Rng;

const SEED: u64 = 0x5EED_C04E;
const CASES: usize = 24;

fn uniform(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Insert-dominated mixes (the regime the analysis targets).
fn random_mix(rng: &mut Rng) -> OpMix {
    loop {
        let qs = uniform(rng, 0.05, 0.9);
        let qd_frac = uniform(rng, 0.05, 0.45);
        let updates = 1.0 - qs;
        let qd = updates * qd_frac;
        let qi = updates - qd;
        if let Ok(m) = OpMix::new(qs, qi, qd) {
            if m.inserts_dominate() {
                return m;
            }
        }
    }
}

fn random_config(rng: &mut Rng) -> ModelConfig {
    loop {
        let n = 5 + rng.next_below(59) as usize;
        let items = rng.range_u64(10_000, 200_000);
        let d = uniform(rng, 1.0, 12.0);
        let mem = rng.next_below(4) as usize;
        let mix = random_mix(rng);
        let Ok(params) = NodeParams::with_max_size(n) else {
            continue;
        };
        let Ok(shape) = TreeShape::derive(items, params) else {
            continue;
        };
        let Ok(cost) = CostModel::paper_style(shape.height, mem, d, 1.0) else {
            continue;
        };
        if let Ok(cfg) = ModelConfig::new(shape, mix, cost) {
            return cfg;
        }
    }
}

fn algorithms() -> [Algorithm; 4] {
    Algorithm::ALL_WITH_BASELINE
}

/// At zero load every response time equals its serial cost: positive,
/// finite, and independent of the algorithm's lock discipline for
/// searches.
#[test]
fn zero_load_is_serial_and_wait_free() {
    let mut rng = Rng::new(SEED);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let serial_search: f64 = (1..=cfg.height()).map(|i| cfg.cost.se(i)).sum();
        for alg in algorithms() {
            let perf = alg.model(&cfg).evaluate(0.0).unwrap();
            assert!(
                (perf.response_time_search - serial_search).abs() < 1e-6,
                "{alg:?} case={case}: {} vs serial {serial_search}",
                perf.response_time_search
            );
            assert!(perf.response_time_insert.is_finite());
            assert!(perf.response_time_insert > 0.0);
            for l in &perf.levels {
                assert_eq!(l.rho_w, 0.0, "{alg:?} case={case}");
                assert_eq!(l.r_wait, 0.0, "{alg:?} case={case}");
            }
        }
    }
}

/// Response times and the root utilization are monotone in the arrival
/// rate, for every algorithm.
#[test]
fn monotone_in_lambda() {
    let mut rng = Rng::new(SEED ^ 1);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let f1 = uniform(&mut rng, 0.05, 0.45);
        let f2 = uniform(&mut rng, 0.5, 0.9);
        for alg in algorithms() {
            let model = alg.model(&cfg);
            let Ok(max) = model.max_throughput() else {
                continue;
            };
            let lo = model.evaluate(f1 * max).unwrap();
            let hi = model.evaluate(f2 * max).unwrap();
            assert!(
                hi.response_time_insert >= lo.response_time_insert - 1e-9,
                "{alg:?} case={case}: insert RT must grow with load"
            );
            assert!(hi.response_time_search >= lo.response_time_search - 1e-9);
            assert!(hi.root_writer_utilization() >= lo.root_writer_utilization() - 1e-9);
        }
    }
}

/// The maximum-throughput ranking 2PL ≤ naive ≤ optimistic ≤ link holds
/// across random configurations.
#[test]
fn ranking_invariant() {
    let mut rng = Rng::new(SEED ^ 2);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let max = |a: Algorithm| a.model(&cfg).max_throughput().unwrap();
        let tp = max(Algorithm::TwoPhaseLocking);
        let naive = max(Algorithm::NaiveLockCoupling);
        let od = max(Algorithm::OptimisticDescent);
        let link = max(Algorithm::LinkType);
        assert!(
            tp <= naive * 1.001,
            "case={case}: 2pl {tp} vs naive {naive}"
        );
        assert!(naive <= od * 1.001, "case={case}: naive {naive} vs od {od}");
        assert!(od <= link * 1.001, "case={case}: od {od} vs link {link}");
    }
}

/// Evaluating exactly at a stable rate never errs, and just above the
/// maximum always saturates.
#[test]
fn saturation_boundary_is_sharp() {
    let mut rng = Rng::new(SEED ^ 3);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let frac = uniform(&mut rng, 0.1, 0.95);
        for alg in [
            Algorithm::NaiveLockCoupling,
            Algorithm::OptimisticDescent,
            Algorithm::TwoPhaseLocking,
        ] {
            let model = alg.model(&cfg);
            let max = model.max_throughput().unwrap();
            assert!(
                model.evaluate(frac * max).is_ok(),
                "{alg:?} case={case}: stable below max"
            );
            assert!(
                model.evaluate(max * 1.05).is_err(),
                "{alg:?} case={case}: must saturate above max"
            );
        }
    }
}

/// Uniform service dilation scales zero-load response times linearly and
/// maximum throughput inversely (§5.2).
#[test]
fn dilation_covariance() {
    let mut rng = Rng::new(SEED ^ 4);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let factor = uniform(&mut rng, 1.1, 4.0);
        let dilated = ModelConfig::new(
            cfg.shape.clone(),
            cfg.mix,
            cfg.cost.dilated(factor).unwrap(),
        )
        .unwrap();
        for alg in algorithms() {
            let m0 = alg.model(&cfg);
            let m1 = alg.model(&dilated);
            let rt0 = m0.evaluate(0.0).unwrap().response_time_insert;
            let rt1 = m1.evaluate(0.0).unwrap().response_time_insert;
            assert!((rt1 / rt0 - factor).abs() < 1e-6, "{alg:?} case={case}");
            let max0 = m0.max_throughput().unwrap();
            let max1 = m1.max_throughput().unwrap();
            assert!(
                (max0 / max1 - factor).abs() < 0.05 * factor,
                "{alg:?} case={case}: max {max0} vs dilated {max1}"
            );
        }
    }
}

/// Recovery ordering none ≤ leaf-only ≤ naive holds at any stable load,
/// for the algorithms with full W descents.
#[test]
fn recovery_ordering() {
    let mut rng = Rng::new(SEED ^ 5);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let frac = uniform(&mut rng, 0.1, 0.7);
        let t_trans = uniform(&mut rng, 10.0, 300.0);
        for alg in [Algorithm::NaiveLockCoupling, Algorithm::OptimisticDescent] {
            let naive_cfg = cfg.clone().with_recovery(RecoveryMode::Naive, t_trans);
            let leaf_cfg = cfg.clone().with_recovery(RecoveryMode::LeafOnly, t_trans);
            let m_naive = alg.model(&naive_cfg);
            let Ok(max) = m_naive.max_throughput() else {
                continue;
            };
            let lambda = frac * max;
            let rt_none = alg
                .model(&cfg)
                .evaluate(lambda)
                .unwrap()
                .response_time_insert;
            let rt_leaf = alg
                .model(&leaf_cfg)
                .evaluate(lambda)
                .unwrap()
                .response_time_insert;
            let rt_naive = m_naive.evaluate(lambda).unwrap().response_time_insert;
            assert!(rt_none <= rt_leaf + 1e-9, "{alg:?} case={case}");
            assert!(rt_leaf <= rt_naive + 1e-9, "{alg:?} case={case}");
        }
    }
}

/// Per-level consistency: writer waits dominate reader waits, and
/// utilizations live in [0, 1).
#[test]
fn level_solutions_consistent() {
    let mut rng = Rng::new(SEED ^ 6);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let frac = uniform(&mut rng, 0.2, 0.8);
        for alg in algorithms() {
            let model = alg.model(&cfg);
            let Ok(max) = model.max_throughput() else {
                continue;
            };
            let perf = model.evaluate(frac * max).unwrap();
            for l in &perf.levels {
                assert!(
                    (0.0..1.0).contains(&l.rho_w),
                    "{alg:?} case={case} level {}",
                    l.level
                );
                assert!(
                    l.w_wait + 1e-9 >= l.r_wait,
                    "{alg:?} case={case} level {}: W wait {} < R wait {}",
                    l.level,
                    l.w_wait,
                    l.r_wait
                );
                assert!(l.r_wait >= 0.0 && l.w_wait.is_finite());
            }
        }
    }
}

/// Rules of thumb stay within an order of magnitude of the full analysis
/// for in-memory trees (their advertised regime).
#[test]
fn rules_of_thumb_sane_in_memory() {
    let mut rng = Rng::new(SEED ^ 7);
    for case in 0..CASES {
        let n = 9 + rng.next_below(119) as usize;
        let mix = random_mix(&mut rng);
        let shape = TreeShape::derive(100_000, NodeParams::with_max_size(n).unwrap()).unwrap();
        let height = shape.height;
        let cost = CostModel::paper_style(height, height, 1.0, 1.0).unwrap();
        let cfg = ModelConfig::new(shape, mix, cost).unwrap();
        if let (Ok(exact), Ok(rot)) = (
            Algorithm::NaiveLockCoupling
                .model(&cfg)
                .lambda_at_root_rho(0.5),
            cbtree_analysis::rules_of_thumb::naive_lc_rot1(&cfg),
        ) {
            let ratio = rot / exact;
            assert!(
                (0.2..5.0).contains(&ratio),
                "case={case}: RoT1 {rot} vs analysis {exact} at N={n}"
            );
        }
    }
}
