//! Compact binary trace events.
//!
//! An event is three `u64` words:
//!
//! | word | contents                                              |
//! |------|-------------------------------------------------------|
//! | `w0` | timestamp, nanoseconds since the process trace epoch  |
//! | `w1` | `kind << 56 \| arg << 48 \| level << 32` (low 32 zero)|
//! | `w2` | node id (the node lock's address), or 0               |
//!
//! The thread id is not stored per event — each ring buffer belongs to
//! exactly one thread, so the drain stamps it on the way out.

use crate::json::Json;

/// What happened. Stored in the top byte of `w1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A latch was requested (`arg`: 1 = exclusive, 0 = shared).
    LatchRequest = 1,
    /// The requested latch was granted (same `arg` convention).
    LatchGrant = 2,
    /// A held latch is about to be released (same `arg` convention).
    LatchRelease = 3,
    /// A map operation began (`arg`: an [`opcode`] constant).
    OpBegin = 4,
    /// A map operation finished (`arg`: opcode, plus [`OP_HIT`] if it
    /// found / replaced / removed a key).
    OpEnd = 5,
    /// An optimistic descent gave up and restarted pessimistically.
    Restart = 6,
    /// A B-link descent chased a right-link.
    Chase = 7,
    /// A node restructure (half-split) window opened at `node`.
    SplitBegin = 8,
    /// The restructure window closed: the separator is posted (or the
    /// root was grown).
    SplitEnd = 9,
    /// A recovery-protocol transaction committed, releasing its latches.
    TxnCommit = 10,
    /// A probe-mode descent spilled its latches and retried.
    TxnSpill = 11,
    /// An operation entered a service-layer shard ingress queue
    /// (`level`: shard index, `node`: operation key).
    Enqueue = 12,
    /// A worker dequeued an operation for service (same conventions).
    Dequeue = 13,
    /// Admission control dropped an operation (`arg`: a [`shed`]
    /// reason code; `level`: shard index, `node`: operation key).
    Shed = 14,
    /// A worker began executing a drained batch (`arg`: batch size,
    /// clamped at 255; `level`: shard index).
    BatchBegin = 15,
    /// The batch finished (`arg`: size, `level`: shard index, `node`:
    /// operations served from an already-held leaf — the amortized
    /// descents saved).
    BatchEnd = 16,
}

/// All kinds, for iteration and name lookup.
pub const ALL_KINDS: [EventKind; 16] = [
    EventKind::LatchRequest,
    EventKind::LatchGrant,
    EventKind::LatchRelease,
    EventKind::OpBegin,
    EventKind::OpEnd,
    EventKind::Restart,
    EventKind::Chase,
    EventKind::SplitBegin,
    EventKind::SplitEnd,
    EventKind::TxnCommit,
    EventKind::TxnSpill,
    EventKind::Enqueue,
    EventKind::Dequeue,
    EventKind::Shed,
    EventKind::BatchBegin,
    EventKind::BatchEnd,
];

impl EventKind {
    /// Decodes the kind byte; `None` for torn or unknown slots.
    pub fn from_u8(b: u8) -> Option<EventKind> {
        ALL_KINDS.into_iter().find(|k| *k as u8 == b)
    }

    /// Stable snake_case name used in JSONL artifacts.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::LatchRequest => "latch_request",
            EventKind::LatchGrant => "latch_grant",
            EventKind::LatchRelease => "latch_release",
            EventKind::OpBegin => "op_begin",
            EventKind::OpEnd => "op_end",
            EventKind::Restart => "restart",
            EventKind::Chase => "chase",
            EventKind::SplitBegin => "split_begin",
            EventKind::SplitEnd => "split_end",
            EventKind::TxnCommit => "txn_commit",
            EventKind::TxnSpill => "txn_spill",
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::Shed => "shed",
            EventKind::BatchBegin => "batch_begin",
            EventKind::BatchEnd => "batch_end",
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(s: &str) -> Option<EventKind> {
        ALL_KINDS.into_iter().find(|k| k.name() == s)
    }
}

/// Operation codes carried in the `arg` byte of `OpBegin`/`OpEnd`.
pub mod opcode {
    /// `get` / lookup.
    pub const SEARCH: u8 = 0;
    /// `insert`.
    pub const INSERT: u8 = 1;
    /// `remove`.
    pub const DELETE: u8 = 2;
    /// `range` scan.
    pub const RANGE: u8 = 3;
    /// `contains_key`.
    pub const CONTAINS: u8 = 4;

    /// Stable names for the codes above (index = code).
    pub const NAMES: [&str; 5] = ["search", "insert", "delete", "range", "contains"];
}

/// Reason codes carried in the `arg` byte of [`EventKind::Shed`].
pub mod shed {
    /// The shard's bounded ingress queue was full at admission.
    pub const QUEUE_FULL: u8 = 1;
    /// The operation waited past the enqueue-age timeout.
    pub const TIMEOUT: u8 = 2;

    /// Stable names for the codes above (index = code − 1).
    pub const NAMES: [&str; 2] = ["queue_full", "timeout"];
}

/// `OpEnd` arg flag: the operation found (search/contains), replaced
/// (insert) or removed (delete) an existing key.
pub const OP_HIT: u8 = 0x10;

/// Latch `arg` value for exclusive mode (shared is 0).
pub const MODE_EXCLUSIVE: u8 = 1;

/// One decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process trace epoch (monotonic clock).
    pub ts_ns: u64,
    /// Emitting thread's trace id (stamped at drain).
    pub thread: u32,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument byte (mode, opcode, ...).
    pub arg: u8,
    /// Tree level of the latched node (leaves = 1; 0 = not a tree node,
    /// e.g. the root-pointer lock).
    pub level: u16,
    /// Node id: the node lock's address, 0 when not applicable.
    pub node: u64,
}

impl Event {
    /// Packs the kind/arg/level word (`w1`).
    pub fn pack(kind: EventKind, arg: u8, level: u16) -> u64 {
        ((kind as u64) << 56) | ((arg as u64) << 48) | ((level as u64) << 32)
    }

    /// Decodes the three stored words; `None` when the kind byte is not
    /// a known event (torn slot).
    pub fn decode(w0: u64, w1: u64, w2: u64, thread: u32) -> Option<Event> {
        let kind = EventKind::from_u8((w1 >> 56) as u8)?;
        Some(Event {
            ts_ns: w0,
            thread,
            kind,
            arg: (w1 >> 48) as u8,
            level: (w1 >> 32) as u16,
            node: w2,
        })
    }

    /// Serializes to the JSONL `event` record shape.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("type", Json::from("event")),
            ("ts", Json::from(self.ts_ns)),
            ("thr", Json::from(u64::from(self.thread))),
            ("k", Json::from(self.kind.name())),
            ("a", Json::from(u64::from(self.arg))),
            ("lvl", Json::from(u64::from(self.level))),
            ("node", Json::from(self.node)),
        ])
    }

    /// Parses an `event` record produced by [`Event::to_json`].
    pub fn from_json(j: &Json) -> Result<Event, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("event missing {k:?}"));
        let num = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("event {k:?} not u64"))
        };
        let kind_name = field("k")?
            .as_str()
            .ok_or_else(|| "event \"k\" not a string".to_string())?;
        let kind = EventKind::from_name(kind_name)
            .ok_or_else(|| format!("unknown event kind {kind_name:?}"))?;
        Ok(Event {
            ts_ns: num("ts")?,
            thread: num("thr")? as u32,
            kind,
            arg: num("a")? as u8,
            level: num("lvl")? as u16,
            node: num("node")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_u8_and_name() {
        for k in ALL_KINDS {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(200), None);
        assert_eq!(EventKind::from_name("nope"), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let e = Event {
            ts_ns: 123_456_789,
            thread: 7,
            kind: EventKind::LatchGrant,
            arg: MODE_EXCLUSIVE,
            level: 3,
            node: 0xDEAD_BEEF,
        };
        let w1 = Event::pack(e.kind, e.arg, e.level);
        assert_eq!(Event::decode(e.ts_ns, w1, e.node, e.thread), Some(e));
        assert_eq!(
            Event::decode(0, 0, 0, 0),
            None,
            "zeroed slot is not an event"
        );
    }

    #[test]
    fn json_round_trip() {
        let e = Event {
            ts_ns: 42,
            thread: 3,
            kind: EventKind::OpEnd,
            arg: opcode::INSERT | OP_HIT,
            level: 0,
            node: 0,
        };
        let text = e.to_json().to_string().unwrap();
        let back = Event::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, e);
    }
}
