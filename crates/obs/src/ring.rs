//! Single-writer fixed-capacity event ring buffers.
//!
//! Each tracing thread owns one [`Ring`]. The owner appends with
//! [`Ring::push`] (three relaxed slot stores plus one release store of
//! the write counter — no CAS, no branch on fullness); when the buffer
//! wraps, the oldest undrained events are overwritten and counted as
//! dropped. A drainer harvests with [`Ring::drain_into`], which is
//! intended to run at quiesce (no concurrent `push` on the same ring);
//! if the owner does race a drain, the worst case is a torn slot whose
//! kind byte fails to decode — never undefined behavior, since slots
//! are plain atomics.

use crate::event::Event;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default ring capacity in events (per thread). At 24 bytes per event
/// this bounds trace memory at 1.5 MiB per thread.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One event slot: the three encoded words.
struct Slot([AtomicU64; 3]);

/// A fixed-capacity single-writer ring of encoded events.
pub struct Ring {
    slots: Box<[Slot]>,
    /// Total events ever pushed (monotone; slot = `written % capacity`).
    written: AtomicU64,
    /// Total events handed to a drainer (monotone, `<= written`).
    drained: AtomicU64,
    /// Trace id of the owning thread, stamped on drained events.
    thread: u32,
    /// Set by the owner's TLS destructor; the registry garbage-collects
    /// dead rings after their final drain.
    dead: AtomicBool,
}

impl Ring {
    /// Creates a ring holding `capacity` events (min 2) for `thread`.
    pub fn new(capacity: usize, thread: u32) -> Ring {
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|_| Slot([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]))
            .collect();
        Ring {
            slots,
            written: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            thread,
            dead: AtomicBool::new(false),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Owning thread's trace id.
    pub fn thread(&self) -> u32 {
        self.thread
    }

    /// Marks the ring's owner as gone (TLS destructor).
    pub fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
    }

    /// Whether the owner is gone.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Appends an encoded event. Owner thread only.
    #[inline]
    pub fn push(&self, w0: u64, w1: u64, w2: u64) {
        let n = self.written.load(Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        slot.0[0].store(w0, Ordering::Relaxed);
        slot.0[1].store(w1, Ordering::Relaxed);
        slot.0[2].store(w2, Ordering::Relaxed);
        // Publish after the slot words so a quiescent drainer that
        // acquires `written` sees complete slots.
        self.written.store(n + 1, Ordering::Release);
    }

    /// Drains every undrained event (oldest surviving first) into
    /// `out`, returning how many events were overwritten before they
    /// could be drained. Per-thread timestamp order is preserved:
    /// events are appended in push order and the owner's clock is
    /// monotonic.
    pub fn drain_into(&self, out: &mut Vec<Event>) -> u64 {
        let written = self.written.load(Ordering::Acquire);
        let drained = self.drained.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let available = written - drained;
        let (start, dropped) = if available > cap {
            (written - cap, available - cap)
        } else {
            (drained, 0)
        };
        for i in start..written {
            let slot = &self.slots[(i % cap) as usize];
            let w0 = slot.0[0].load(Ordering::Relaxed);
            let w1 = slot.0[1].load(Ordering::Relaxed);
            let w2 = slot.0[2].load(Ordering::Relaxed);
            if let Some(ev) = Event::decode(w0, w1, w2, self.thread) {
                out.push(ev);
            }
        }
        self.drained.store(written, Ordering::Relaxed);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn push_n(r: &Ring, from: u64, n: u64) {
        for i in from..from + n {
            r.push(i, Event::pack(EventKind::Chase, 0, 1), i * 10);
        }
    }

    #[test]
    fn fill_and_drain_in_order() {
        let r = Ring::new(8, 3);
        push_n(&r, 0, 5);
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 0);
        assert_eq!(out.len(), 5);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64);
            assert_eq!(e.node, i as u64 * 10);
            assert_eq!(e.thread, 3);
        }
    }

    #[test]
    fn wrap_around_keeps_newest_and_counts_drops() {
        let r = Ring::new(8, 0);
        push_n(&r, 0, 20);
        let mut out = Vec::new();
        assert_eq!(
            r.drain_into(&mut out),
            12,
            "20 written into 8 slots drops 12"
        );
        let ts: Vec<u64> = out.iter().map(|e| e.ts_ns).collect();
        assert_eq!(
            ts,
            (12..20).collect::<Vec<_>>(),
            "last 8 events survive, in order"
        );
    }

    #[test]
    fn drop_counter_resets_between_drains() {
        let r = Ring::new(4, 0);
        push_n(&r, 0, 6);
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 2);
        out.clear();
        push_n(&r, 6, 3);
        assert_eq!(
            r.drain_into(&mut out),
            0,
            "no new overwrites since last drain"
        );
        assert_eq!(
            out.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![6, 7, 8]
        );
    }

    #[test]
    fn exact_boundary_drops_nothing() {
        let r = Ring::new(8, 0);
        push_n(&r, 0, 8);
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 0);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn empty_drain_is_empty() {
        let r = Ring::new(8, 0);
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 0);
        assert!(out.is_empty());
    }
}
