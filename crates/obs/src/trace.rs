//! Process-wide tracing facade.
//!
//! Emit functions (`latch_request`, `op_begin`, ...) write into the
//! calling thread's [`Ring`](crate::ring::Ring) and are compiled to
//! inlined no-ops unless the `trace` cargo feature is on, so the
//! instrumented hot paths in `cbtree-sync` and `cbtree-btree` call them
//! unconditionally. With the feature on, emission still costs nothing
//! until [`enable`] is called (one relaxed load).
//!
//! The drain protocol: a coordinator quiesces its worker threads (the
//! harness parks them on a barrier), then calls [`drain`], which
//! harvests every registered ring into one trace ordered by timestamp,
//! preserving each thread's own event order (stable sort over
//! per-thread monotone sequences). Rings of threads that have exited
//! are drained one final time and then unregistered.

use crate::event::Event;
use crate::json::Json;

/// A drained trace: every surviving event across all threads, ordered
/// by timestamp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events sorted by `ts_ns`; ties keep per-thread order.
    pub events: Vec<Event>,
    /// Events overwritten in some ring before they could be drained.
    pub dropped: u64,
    /// Number of per-thread rings that contributed.
    pub threads: u32,
}

impl Trace {
    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Serializes the `trace_info` header record (event/drop counts).
    pub fn info_json(&self) -> Json {
        Json::obj([
            ("type", Json::from("trace_info")),
            ("events", Json::from(self.events.len() as u64)),
            ("dropped", Json::from(self.dropped)),
            ("threads", Json::from(u64::from(self.threads))),
        ])
    }
}

pub use imp::*;

#[cfg(feature = "trace")]
mod imp {
    use super::Trace;
    use crate::event::{Event, EventKind, MODE_EXCLUSIVE};
    use crate::ring::{Ring, DEFAULT_RING_CAPACITY};
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static DEFAULT_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
    static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

    fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    /// Nanoseconds since the process trace epoch.
    pub fn now_ns() -> u64 {
        epoch().elapsed().as_nanos() as u64
    }

    /// Turns event emission on or off process-wide.
    pub fn enable(on: bool) {
        // Pin the epoch before the first event so timestamps are small.
        let _ = epoch();
        ENABLED.store(on, Ordering::Release);
    }

    /// Whether emission is currently on. Inline so call sites guarding
    /// otherwise-uninlinable emission (e.g. through a function pointer)
    /// pay one predictable load-and-branch while tracing is off.
    #[inline(always)]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Acquire)
    }

    /// Sets the per-thread ring capacity (in events) used by threads
    /// that have not traced yet. Existing rings keep their size.
    pub fn set_default_ring_capacity(events: usize) {
        DEFAULT_CAP.store(events.max(2), Ordering::Relaxed);
    }

    /// Serializes whole-process trace measurements (e.g. concurrent
    /// harness runs in one test binary would drain each other's rings).
    pub fn measurement_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// TLS slot owning this thread's ring; the destructor marks the
    /// ring dead so the registry can unregister it after a final drain.
    struct ThreadRing(Arc<Ring>);

    impl Drop for ThreadRing {
        fn drop(&mut self) {
            self.0.mark_dead();
        }
    }

    thread_local! {
        static TLS_RING: std::cell::OnceCell<ThreadRing> = const { std::cell::OnceCell::new() };
    }

    fn register() -> ThreadRing {
        let ring = Arc::new(Ring::new(
            DEFAULT_CAP.load(Ordering::Relaxed),
            NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        ));
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&ring));
        ThreadRing(ring)
    }

    #[inline]
    pub(super) fn emit(kind: EventKind, arg: u8, level: u16, node: u64) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        let ts = now_ns();
        let w1 = Event::pack(kind, arg, level);
        // Ignore emission attempts during thread teardown.
        let _ = TLS_RING.try_with(|cell| {
            cell.get_or_init(register).0.push(ts, w1, node);
        });
    }

    /// Harvests every registered ring into one time-ordered trace and
    /// unregisters rings whose threads have exited. Call at quiesce:
    /// events pushed concurrently with the drain may be missed until
    /// the next drain or, at worst, torn and skipped.
    pub fn drain() -> Trace {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let mut events = Vec::new();
        let mut dropped = 0;
        let threads = reg.len() as u32;
        for ring in reg.iter() {
            dropped += ring.drain_into(&mut events);
        }
        reg.retain(|r| !r.is_dead());
        drop(reg);
        // Stable sort: each ring's slice is already in its thread's
        // monotone timestamp order, and ties keep that order.
        events.sort_by_key(|e| e.ts_ns);
        Trace {
            events,
            dropped,
            threads,
        }
    }

    /// A latch was requested on `node` at tree `level`.
    #[inline(always)]
    pub fn latch_request(level: u16, exclusive: bool, node: u64) {
        emit(
            EventKind::LatchRequest,
            if exclusive { MODE_EXCLUSIVE } else { 0 },
            level,
            node,
        );
    }

    /// The requested latch was granted.
    #[inline(always)]
    pub fn latch_grant(level: u16, exclusive: bool, node: u64) {
        emit(
            EventKind::LatchGrant,
            if exclusive { MODE_EXCLUSIVE } else { 0 },
            level,
            node,
        );
    }

    /// A held latch is about to be released.
    #[inline(always)]
    pub fn latch_release(level: u16, exclusive: bool, node: u64) {
        emit(
            EventKind::LatchRelease,
            if exclusive { MODE_EXCLUSIVE } else { 0 },
            level,
            node,
        );
    }

    /// A map operation (an [`opcode`](crate::event::opcode)) began.
    #[inline(always)]
    pub fn op_begin(op: u8) {
        emit(EventKind::OpBegin, op, 0, 0);
    }

    /// The operation finished; `hit` = found/replaced/removed a key.
    #[inline(always)]
    pub fn op_end(op: u8, hit: bool) {
        let arg = if hit { op | crate::event::OP_HIT } else { op };
        emit(EventKind::OpEnd, arg, 0, 0);
    }

    /// An optimistic descent restarted pessimistically.
    #[inline(always)]
    pub fn restart() {
        emit(EventKind::Restart, 0, 0, 0);
    }

    /// A B-link descent chased a right-link.
    #[inline(always)]
    pub fn chase() {
        emit(EventKind::Chase, 0, 0, 0);
    }

    /// A half-split restructure window opened at `node`.
    #[inline(always)]
    pub fn split_begin(level: u16, node: u64) {
        emit(EventKind::SplitBegin, 0, level, node);
    }

    /// The restructure window closed (separator posted / root grown).
    #[inline(always)]
    pub fn split_end(level: u16, node: u64) {
        emit(EventKind::SplitEnd, 0, level, node);
    }

    /// A recovery-protocol transaction committed.
    #[inline(always)]
    pub fn txn_commit() {
        emit(EventKind::TxnCommit, 0, 0, 0);
    }

    /// A probe-mode descent spilled its latches and retried.
    #[inline(always)]
    pub fn txn_spill() {
        emit(EventKind::TxnSpill, 0, 0, 0);
    }

    /// An operation on `key` entered shard `shard`'s ingress queue.
    #[inline(always)]
    pub fn enqueue(shard: u16, key: u64) {
        emit(EventKind::Enqueue, 0, shard, key);
    }

    /// A worker dequeued the operation on `key` from shard `shard`.
    #[inline(always)]
    pub fn dequeue(shard: u16, key: u64) {
        emit(EventKind::Dequeue, 0, shard, key);
    }

    /// Admission control dropped the operation on `key` at shard
    /// `shard` (`reason`: a [`shed`](crate::event::shed) code).
    #[inline(always)]
    pub fn shed(shard: u16, reason: u8, key: u64) {
        emit(EventKind::Shed, reason, shard, key);
    }

    /// A worker on shard `shard` began executing a drained batch of
    /// `size` operations (clamped at 255 in the event).
    #[inline(always)]
    pub fn batch_begin(shard: u16, size: usize) {
        emit(EventKind::BatchBegin, size.min(255) as u8, shard, 0);
    }

    /// The batch finished; `leaf_reuses` counts operations served from
    /// an already-held leaf (the descents batching saved).
    #[inline(always)]
    pub fn batch_end(shard: u16, size: usize, leaf_reuses: u64) {
        emit(EventKind::BatchEnd, size.min(255) as u8, shard, leaf_reuses);
    }
}

#[cfg(not(feature = "trace"))]
#[allow(missing_docs, clippy::missing_docs_in_private_items)]
mod imp {
    //! No-op stubs: with the `trace` feature off every emit inlines to
    //! nothing and `drain` reports an empty trace.
    use super::Trace;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// See the `trace`-feature implementation; always 0 here.
    pub fn now_ns() -> u64 {
        0
    }

    /// No-op (tracing is compiled out).
    pub fn enable(_on: bool) {}

    /// Always `false` (tracing is compiled out).
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// No-op (tracing is compiled out).
    pub fn set_default_ring_capacity(_events: usize) {}

    /// Still a real lock so callers can serialize measurements
    /// identically with or without the feature.
    pub fn measurement_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Always empty (tracing is compiled out).
    pub fn drain() -> Trace {
        Trace::default()
    }

    #[inline(always)]
    pub fn latch_request(_level: u16, _exclusive: bool, _node: u64) {}
    #[inline(always)]
    pub fn latch_grant(_level: u16, _exclusive: bool, _node: u64) {}
    #[inline(always)]
    pub fn latch_release(_level: u16, _exclusive: bool, _node: u64) {}
    #[inline(always)]
    pub fn op_begin(_op: u8) {}
    #[inline(always)]
    pub fn op_end(_op: u8, _hit: bool) {}
    #[inline(always)]
    pub fn restart() {}
    #[inline(always)]
    pub fn chase() {}
    #[inline(always)]
    pub fn split_begin(_level: u16, _node: u64) {}
    #[inline(always)]
    pub fn split_end(_level: u16, _node: u64) {}
    #[inline(always)]
    pub fn txn_commit() {}
    #[inline(always)]
    pub fn txn_spill() {}
    #[inline(always)]
    pub fn enqueue(_shard: u16, _key: u64) {}
    #[inline(always)]
    pub fn dequeue(_shard: u16, _key: u64) {}
    #[inline(always)]
    pub fn shed(_shard: u16, _reason: u8, _key: u64) {}
    #[inline(always)]
    pub fn batch_begin(_shard: u16, _size: usize) {}
    #[inline(always)]
    pub fn batch_end(_shard: u16, _size: usize, _leaf_reuses: u64) {}
}
