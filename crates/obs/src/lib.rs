//! `cbtree-obs`: the observability substrate of the workspace.
//!
//! Four pieces, all dependency-free:
//!
//! - [`trace`] — feature-gated, lock-free event tracing: each thread
//!   appends compact binary events (latch request/grant/release with
//!   level and node id, op begin/end, optimistic restarts, right-link
//!   chases, split windows, transaction commit/spill) to its own
//!   fixed-capacity [`ring::Ring`]; a coordinator drains all rings at
//!   quiesce into one time-ordered [`Trace`]. With the `trace` cargo
//!   feature off, every emit function is an inlined no-op, so the
//!   instrumented hot paths in `cbtree-sync`/`cbtree-btree` cost
//!   nothing (guarded by the lockbench overhead check in CI).
//! - [`replay`] — reconstructs per-level writer utilization ρ_w,
//!   wait/hold means, latch-chain depth, and restart/chase/split rates
//!   from a drained trace, closing the analysis/sim/live triangle with
//!   a fourth, directly measured column.
//! - [`json`] — a small hand-rolled JSON/JSONL serializer and parser
//!   for machine-readable run artifacts; exact integers, explicit
//!   rejection of NaN/Inf.
//! - [`table`] — the aligned-table/CSV writer shared by every CLI
//!   (formerly private to `cbtree-bench`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod event;
pub mod json;
pub mod replay;
pub mod ring;
pub mod table;
pub mod trace;

pub use event::{opcode, Event, EventKind, MODE_EXCLUSIVE, OP_HIT};
pub use json::{parse_jsonl, read_jsonl, write_jsonl, Json, JsonError};
pub use replay::{replay, BatchReplay, LevelReplay, OpReplay, Replay};
pub use trace::Trace;

/// Version stamped into every JSONL artifact's `meta` record; bump on
/// any backward-incompatible record-shape change.
pub const SCHEMA_VERSION: u32 = 1;
