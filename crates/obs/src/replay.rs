//! Trace replay: reconstructs per-level utilization and wait/hold
//! statistics from a drained event stream.
//!
//! Pairing is per thread: latch acquisition is blocking, so between a
//! thread's `LatchRequest` and the matching `LatchGrant` that thread
//! emits no other latch event, and a grant's `LatchRelease` is matched
//! by `(thread, node)`. Ring buffers overwrite their oldest events
//! under pressure, so the replay computes utilization over the window
//! every surviving thread covers: from the latest per-thread first
//! timestamp to the latest timestamp overall. Holds are clipped to that
//! window; grants whose release was overwritten are counted in
//! [`Replay::unmatched`] and still contribute hold time to the window
//! end (they were genuinely held).

use crate::event::{opcode, EventKind, MODE_EXCLUSIVE, OP_HIT};
use crate::json::Json;
use crate::trace::Trace;
use std::collections::{HashMap, HashSet};

/// Reconstructed statistics for one tree level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelReplay {
    /// Tree level (leaves = 1; 0 = non-tree locks such as the root
    /// pointer).
    pub level: u16,
    /// Distinct node ids observed in latch events at this level.
    pub nodes_seen: usize,
    /// Writer utilization with the analysis's *presence* semantics: per
    /// node, the union of intervals during which at least one writer
    /// held or waited for the latch (request → release), summed over
    /// nodes and divided by `nodes_seen × window`. Directly comparable
    /// to the analytical ρ_w and `SimReport::rho_w_by_level`.
    pub rho_w: f64,
    /// Hold-only writer utilization: exclusive grant→release
    /// nanoseconds within the window divided by `nodes_seen × window` —
    /// the quantity the live lock counters measure (`LevelLive::rho_w`).
    pub rho_w_hold: f64,
    /// Exclusive grants observed.
    pub w_grants: u64,
    /// Shared grants observed.
    pub r_grants: u64,
    /// Mean request→grant nanoseconds, exclusive.
    pub mean_w_wait_ns: f64,
    /// Mean request→grant nanoseconds, shared.
    pub mean_r_wait_ns: f64,
    /// Mean grant→release nanoseconds, exclusive.
    pub mean_w_hold_ns: f64,
    /// Mean grant→release nanoseconds, shared.
    pub mean_r_hold_ns: f64,
}

/// Per-operation-kind reconstruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpReplay {
    /// Operation name (see [`opcode::NAMES`]).
    pub op: &'static str,
    /// Completed operations (begin/end pairs).
    pub completed: u64,
    /// Mean begin→end nanoseconds over completed pairs.
    pub mean_ns: f64,
}

/// Per-shard batched-execution reconstruction (from
/// `BatchBegin`/`BatchEnd` pairs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReplay {
    /// Shard index the batches ran on.
    pub shard: u16,
    /// Completed batches (begin/end pairs).
    pub batches: u64,
    /// Operations across those batches (sum of batch sizes).
    pub ops: u64,
    /// Operations served from an already-held leaf (descents saved by
    /// sorted-batch amortization).
    pub leaf_reuses: u64,
    /// Largest batch observed (clamped at 255 in the events).
    pub max_size: u8,
    /// Mean begin→end nanoseconds over completed batches.
    pub mean_ns: f64,
}

impl BatchReplay {
    /// Mean operations per batch (0 when no batches completed).
    pub fn mean_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }

    /// Fraction of operations that reused a held leaf.
    pub fn reuse_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.leaf_reuses as f64 / self.ops as f64
        }
    }
}

/// Everything reconstructed from one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// Window start: latest first-event timestamp across threads (the
    /// instant from which every surviving ring has coverage).
    pub window_start_ns: u64,
    /// Window end: latest event timestamp.
    pub window_end_ns: u64,
    /// Per-level reconstructions, tree levels only (level ≥ 1), leaves
    /// first.
    pub levels: Vec<LevelReplay>,
    /// Per-op-kind reconstructions, ops that occurred only.
    pub ops: Vec<OpReplay>,
    /// Optimistic restarts.
    pub restarts: u64,
    /// Right-link chases.
    pub chases: u64,
    /// Completed split windows (begin/end pairs).
    pub splits: u64,
    /// Mean split-window nanoseconds over completed pairs.
    pub mean_split_ns: f64,
    /// Transaction commits.
    pub txn_commits: u64,
    /// Latch spill-and-retry events.
    pub txn_spills: u64,
    /// Deepest simultaneous latch chain observed on any thread.
    pub peak_latch_chain: usize,
    /// Grants or releases whose counterpart was overwritten.
    pub unmatched: u64,
    /// Events dropped by ring overwrite (copied from the trace).
    pub dropped: u64,
    /// Service-layer ingress enqueues (generator → shard queue).
    pub enqueues: u64,
    /// Service-layer dequeues (worker picked the operation up).
    pub dequeues: u64,
    /// Operations dropped by admission control (full queue or timeout).
    pub sheds: u64,
    /// Per-shard batched-execution statistics, shards with batches
    /// only, ascending shard index.
    pub batches: Vec<BatchReplay>,
}

impl Replay {
    /// Window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_end_ns.saturating_sub(self.window_start_ns)
    }

    /// Reconstructed ρ_w for `level`, if observed.
    pub fn rho_w(&self, level: u16) -> Option<f64> {
        self.levels
            .iter()
            .find(|l| l.level == level)
            .map(|l| l.rho_w)
    }

    /// Serializes the `trace_summary` JSONL record.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("type", Json::from("trace_summary")),
            ("window_start_ns", Json::from(self.window_start_ns)),
            ("window_end_ns", Json::from(self.window_end_ns)),
            (
                "levels",
                Json::arr(self.levels.iter().map(|l| {
                    Json::obj([
                        ("level", Json::from(u64::from(l.level))),
                        ("nodes_seen", Json::from(l.nodes_seen)),
                        ("rho_w", Json::from(l.rho_w)),
                        ("rho_w_hold", Json::from(l.rho_w_hold)),
                        ("w_grants", Json::from(l.w_grants)),
                        ("r_grants", Json::from(l.r_grants)),
                        ("mean_w_wait_ns", Json::f64_or_null(l.mean_w_wait_ns)),
                        ("mean_r_wait_ns", Json::f64_or_null(l.mean_r_wait_ns)),
                        ("mean_w_hold_ns", Json::f64_or_null(l.mean_w_hold_ns)),
                        ("mean_r_hold_ns", Json::f64_or_null(l.mean_r_hold_ns)),
                    ])
                })),
            ),
            (
                "ops",
                Json::arr(self.ops.iter().map(|o| {
                    Json::obj([
                        ("op", Json::from(o.op)),
                        ("completed", Json::from(o.completed)),
                        ("mean_ns", Json::f64_or_null(o.mean_ns)),
                    ])
                })),
            ),
            ("restarts", Json::from(self.restarts)),
            ("chases", Json::from(self.chases)),
            ("splits", Json::from(self.splits)),
            ("mean_split_ns", Json::f64_or_null(self.mean_split_ns)),
            ("txn_commits", Json::from(self.txn_commits)),
            ("txn_spills", Json::from(self.txn_spills)),
            ("peak_latch_chain", Json::from(self.peak_latch_chain)),
            ("unmatched", Json::from(self.unmatched)),
            ("dropped", Json::from(self.dropped)),
            ("enqueues", Json::from(self.enqueues)),
            ("dequeues", Json::from(self.dequeues)),
            ("sheds", Json::from(self.sheds)),
            (
                "batches",
                Json::arr(self.batches.iter().map(|b| {
                    Json::obj([
                        ("shard", Json::from(u64::from(b.shard))),
                        ("batches", Json::from(b.batches)),
                        ("ops", Json::from(b.ops)),
                        ("leaf_reuses", Json::from(b.leaf_reuses)),
                        ("max_size", Json::from(u64::from(b.max_size))),
                        ("mean_size", Json::from(b.mean_size())),
                        ("reuse_rate", Json::from(b.reuse_rate())),
                        ("mean_ns", Json::f64_or_null(b.mean_ns)),
                    ])
                })),
            ),
        ])
    }
}

#[derive(Default)]
struct LevelAccum {
    nodes: HashSet<u64>,
    /// Per-node exclusive presence intervals (request → release).
    w_intervals: HashMap<u64, Vec<(u64, u64)>>,
    w_busy_ns: u64,
    w_grants: u64,
    r_grants: u64,
    w_wait_ns: u64,
    w_waits: u64,
    r_wait_ns: u64,
    r_waits: u64,
    w_hold_ns: u64,
    w_holds: u64,
    r_hold_ns: u64,
    r_holds: u64,
}

/// Reconstructs per-level and per-op statistics from a drained trace.
pub fn replay(trace: &Trace) -> Replay {
    let mut out = Replay {
        dropped: trace.dropped,
        ..Replay::default()
    };
    if trace.events.is_empty() {
        return out;
    }

    // Window: latest first-event ts per thread .. latest ts overall.
    let mut first_by_thread: HashMap<u32, u64> = HashMap::new();
    for e in &trace.events {
        first_by_thread.entry(e.thread).or_insert(e.ts_ns);
        out.window_end_ns = out.window_end_ns.max(e.ts_ns);
    }
    out.window_start_ns = first_by_thread.values().copied().max().unwrap_or(0);
    let (start, end) = (out.window_start_ns, out.window_end_ns);
    let clipped = |a: u64, b: u64| -> u64 { b.min(end).saturating_sub(a.max(start)) };

    let mut levels: HashMap<u16, LevelAccum> = HashMap::new();
    // (thread, node) → (request ts, exclusive, level) of the in-flight
    // blocking acquire.
    let mut requests: HashMap<(u32, u64), (u64, bool, u16)> = HashMap::new();
    // (thread, node) → (grant ts, exclusive, level, presence start) of a
    // held latch; presence starts at the request (a queued writer
    // already counts toward ρ_w) or at the grant when the request was
    // overwritten.
    let mut held: HashMap<(u32, u64), (u64, bool, u16, u64)> = HashMap::new();
    // thread → held-latch count (peak chain depth).
    let mut chain: HashMap<u32, usize> = HashMap::new();
    // thread → per-op-kind begin ts.
    let mut op_begin: HashMap<(u32, u8), u64> = HashMap::new();
    let mut op_ns: [(u64, u64); opcode::NAMES.len()] = Default::default();
    // (thread, node) → split-begin ts.
    let mut split_begin: HashMap<(u32, u64), u64> = HashMap::new();
    let mut split_ns: (u64, u64) = (0, 0);
    // (thread, shard) → batch-begin ts.
    let mut batch_begin: HashMap<(u32, u16), u64> = HashMap::new();
    // shard → (batches, ops, leaf_reuses, max_size, total ns).
    let mut batch_acc: HashMap<u16, (u64, u64, u64, u8, u64)> = HashMap::new();

    for e in &trace.events {
        match e.kind {
            EventKind::LatchRequest => {
                let exclusive = e.arg & MODE_EXCLUSIVE != 0;
                requests.insert((e.thread, e.node), (e.ts_ns, exclusive, e.level));
            }
            EventKind::LatchGrant => {
                let exclusive = e.arg & MODE_EXCLUSIVE != 0;
                let acc = levels.entry(e.level).or_default();
                acc.nodes.insert(e.node);
                let mut presence_start = e.ts_ns;
                if let Some((req, _, _)) = requests.remove(&(e.thread, e.node)) {
                    presence_start = req;
                    let wait = e.ts_ns.saturating_sub(req);
                    if exclusive {
                        acc.w_wait_ns += wait;
                        acc.w_waits += 1;
                    } else {
                        acc.r_wait_ns += wait;
                        acc.r_waits += 1;
                    }
                } else {
                    out.unmatched += 1;
                }
                if exclusive {
                    acc.w_grants += 1;
                } else {
                    acc.r_grants += 1;
                }
                if held
                    .insert(
                        (e.thread, e.node),
                        (e.ts_ns, exclusive, e.level, presence_start),
                    )
                    .is_none()
                {
                    let depth = chain.entry(e.thread).or_insert(0);
                    *depth += 1;
                    out.peak_latch_chain = out.peak_latch_chain.max(*depth);
                }
            }
            EventKind::LatchRelease => {
                if let Some((granted, exclusive, level, presence_start)) =
                    held.remove(&(e.thread, e.node))
                {
                    if let Some(depth) = chain.get_mut(&e.thread) {
                        *depth = depth.saturating_sub(1);
                    }
                    let acc = levels.entry(level).or_default();
                    let hold = e.ts_ns.saturating_sub(granted);
                    if exclusive {
                        acc.w_hold_ns += hold;
                        acc.w_holds += 1;
                        acc.w_busy_ns += clipped(granted, e.ts_ns);
                        acc.w_intervals
                            .entry(e.node)
                            .or_default()
                            .push((presence_start, e.ts_ns));
                    } else {
                        acc.r_hold_ns += hold;
                        acc.r_holds += 1;
                    }
                } else {
                    out.unmatched += 1;
                }
            }
            EventKind::OpBegin => {
                op_begin.insert((e.thread, e.arg), e.ts_ns);
            }
            EventKind::OpEnd => {
                let op = e.arg & !OP_HIT;
                if let Some(begin) = op_begin.remove(&(e.thread, op)) {
                    if let Some(slot) = op_ns.get_mut(op as usize) {
                        slot.0 += 1;
                        slot.1 += e.ts_ns.saturating_sub(begin);
                    }
                }
            }
            EventKind::Restart => out.restarts += 1,
            EventKind::Chase => out.chases += 1,
            EventKind::SplitBegin => {
                split_begin.insert((e.thread, e.node), e.ts_ns);
            }
            EventKind::SplitEnd => {
                if let Some(begin) = split_begin.remove(&(e.thread, e.node)) {
                    split_ns.0 += 1;
                    split_ns.1 += e.ts_ns.saturating_sub(begin);
                }
            }
            EventKind::TxnCommit => out.txn_commits += 1,
            EventKind::TxnSpill => out.txn_spills += 1,
            EventKind::Enqueue => out.enqueues += 1,
            EventKind::Dequeue => out.dequeues += 1,
            EventKind::Shed => out.sheds += 1,
            EventKind::BatchBegin => {
                batch_begin.insert((e.thread, e.level), e.ts_ns);
            }
            EventKind::BatchEnd => {
                if let Some(begin) = batch_begin.remove(&(e.thread, e.level)) {
                    let acc = batch_acc.entry(e.level).or_default();
                    acc.0 += 1;
                    acc.1 += u64::from(e.arg);
                    acc.2 += e.node;
                    acc.3 = acc.3.max(e.arg);
                    acc.4 += e.ts_ns.saturating_sub(begin);
                }
            }
        }
    }

    // Latches still held when the trace ends were genuinely busy to the
    // window end; writers still queued at trace end were present too.
    for (&(_, node), &(granted, exclusive, level, presence_start)) in &held {
        out.unmatched += 1;
        if exclusive {
            let acc = levels.entry(level).or_default();
            acc.w_busy_ns += clipped(granted, end);
            acc.w_intervals
                .entry(node)
                .or_default()
                .push((presence_start, end));
        }
    }
    for (&(_, node), &(req, exclusive, level)) in &requests {
        if exclusive {
            let acc = levels.entry(level).or_default();
            acc.nodes.insert(node);
            acc.w_intervals.entry(node).or_default().push((req, end));
        }
    }

    let window = out.window_ns().max(1) as f64;
    let mean = |sum: u64, n: u64| {
        if n == 0 {
            f64::NAN
        } else {
            sum as f64 / n as f64
        }
    };
    // Per-node union of presence intervals, clipped to the window:
    // overlapping writers (one holding, more queued) must not be
    // double-counted — ρ_w is "a writer is present", not "number of
    // writers present".
    let present_ns = |iv: &HashMap<u64, Vec<(u64, u64)>>| -> u64 {
        let mut total = 0u64;
        for spans in iv.values() {
            let mut spans = spans.clone();
            spans.sort_unstable();
            let mut cur: Option<(u64, u64)> = None;
            for (a, b) in spans {
                match &mut cur {
                    Some((_, e0)) if a <= *e0 => *e0 = (*e0).max(b),
                    _ => {
                        if let Some((s, e0)) = cur.take() {
                            total += clipped(s, e0);
                        }
                        cur = Some((a, b));
                    }
                }
            }
            if let Some((s, e0)) = cur {
                total += clipped(s, e0);
            }
        }
        total
    };
    let mut level_ids: Vec<u16> = levels.keys().copied().filter(|&l| l >= 1).collect();
    level_ids.sort_unstable();
    out.levels = level_ids
        .into_iter()
        .map(|level| {
            let a = &levels[&level];
            let denom = a.nodes.len().max(1) as f64 * window;
            LevelReplay {
                level,
                nodes_seen: a.nodes.len(),
                rho_w: present_ns(&a.w_intervals) as f64 / denom,
                rho_w_hold: a.w_busy_ns as f64 / denom,
                w_grants: a.w_grants,
                r_grants: a.r_grants,
                mean_w_wait_ns: mean(a.w_wait_ns, a.w_waits),
                mean_r_wait_ns: mean(a.r_wait_ns, a.r_waits),
                mean_w_hold_ns: mean(a.w_hold_ns, a.w_holds),
                mean_r_hold_ns: mean(a.r_hold_ns, a.r_holds),
            }
        })
        .collect();
    out.ops = op_ns
        .iter()
        .enumerate()
        .filter(|(_, (n, _))| *n > 0)
        .map(|(i, &(n, sum))| OpReplay {
            op: opcode::NAMES[i],
            completed: n,
            mean_ns: mean(sum, n),
        })
        .collect();
    out.splits = split_ns.0;
    out.mean_split_ns = mean(split_ns.1, split_ns.0);
    let mut shards: Vec<u16> = batch_acc.keys().copied().collect();
    shards.sort_unstable();
    out.batches = shards
        .into_iter()
        .map(|shard| {
            let (batches, ops, leaf_reuses, max_size, total_ns) = batch_acc[&shard];
            BatchReplay {
                shard,
                batches,
                ops,
                leaf_reuses,
                max_size,
                mean_ns: mean(total_ns, batches),
            }
        })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(ts: u64, thread: u32, kind: EventKind, arg: u8, level: u16, node: u64) -> Event {
        Event {
            ts_ns: ts,
            thread,
            kind,
            arg,
            level,
            node,
        }
    }

    #[test]
    fn reconstructs_rho_w_from_one_writer() {
        // One node at level 1: writer present (queued from 10, holding
        // from 20) until 60 of the 100ns window; both threads' coverage
        // starts at 0.
        let trace = Trace {
            events: vec![
                ev(0, 1, EventKind::Chase, 0, 0, 0),
                ev(0, 0, EventKind::OpBegin, opcode::SEARCH, 0, 0),
                ev(10, 0, EventKind::LatchRequest, MODE_EXCLUSIVE, 1, 7),
                ev(20, 0, EventKind::LatchGrant, MODE_EXCLUSIVE, 1, 7),
                ev(60, 0, EventKind::LatchRelease, MODE_EXCLUSIVE, 1, 7),
                ev(100, 1, EventKind::Chase, 0, 0, 0),
            ],
            dropped: 0,
            threads: 2,
        };
        let r = replay(&trace);
        assert_eq!(r.window_ns(), 100);
        let lvl = &r.levels[0];
        assert_eq!(lvl.level, 1);
        assert_eq!(lvl.nodes_seen, 1);
        assert_eq!(lvl.w_grants, 1);
        // Presence spans request→release (50 ns); hold-only spans
        // grant→release (40 ns).
        assert!((lvl.rho_w - 0.50).abs() < 1e-12, "rho_w = {}", lvl.rho_w);
        assert!(
            (lvl.rho_w_hold - 0.40).abs() < 1e-12,
            "rho_w_hold = {}",
            lvl.rho_w_hold
        );
        assert_eq!(lvl.mean_w_wait_ns, 10.0);
        assert_eq!(lvl.mean_w_hold_ns, 40.0);
        assert_eq!(r.chases, 2);
        assert_eq!(r.unmatched, 0);
    }

    #[test]
    fn overlapping_writers_union_not_sum() {
        // Thread 0 holds node 7 over [0, 20]; thread 1 queues at 5 and
        // holds over [20, 30]. Writer-present is the union [0, 30] of a
        // 40ns window — NOT 0+20 plus 5..30 summed (which would give
        // 45/40 > 1).
        let trace = Trace {
            events: vec![
                ev(0, 0, EventKind::LatchRequest, MODE_EXCLUSIVE, 1, 7),
                ev(0, 0, EventKind::LatchGrant, MODE_EXCLUSIVE, 1, 7),
                ev(0, 1, EventKind::Chase, 0, 0, 0),
                ev(5, 1, EventKind::LatchRequest, MODE_EXCLUSIVE, 1, 7),
                ev(20, 0, EventKind::LatchRelease, MODE_EXCLUSIVE, 1, 7),
                ev(20, 1, EventKind::LatchGrant, MODE_EXCLUSIVE, 1, 7),
                ev(30, 1, EventKind::LatchRelease, MODE_EXCLUSIVE, 1, 7),
                ev(40, 0, EventKind::Chase, 0, 0, 0),
            ],
            dropped: 0,
            threads: 2,
        };
        let r = replay(&trace);
        assert_eq!(r.window_ns(), 40);
        let lvl = &r.levels[0];
        assert!((lvl.rho_w - 0.75).abs() < 1e-12, "rho_w = {}", lvl.rho_w);
        assert!(
            (lvl.rho_w_hold - 0.75).abs() < 1e-12,
            "rho_w_hold = {}",
            lvl.rho_w_hold
        );
        assert_eq!(lvl.mean_w_wait_ns, 7.5, "waits 0 and 15 average to 7.5");
        assert_eq!(r.unmatched, 0);
    }

    #[test]
    fn open_holds_count_to_window_end_and_unmatched() {
        let trace = Trace {
            events: vec![
                ev(0, 0, EventKind::LatchGrant, MODE_EXCLUSIVE, 2, 9),
                ev(50, 0, EventKind::Restart, 0, 0, 0),
            ],
            dropped: 3,
            threads: 1,
        };
        let r = replay(&trace);
        // Grant with no request (request overwritten) + never released.
        assert_eq!(r.unmatched, 2);
        assert_eq!(r.dropped, 3);
        let lvl = &r.levels[0];
        assert_eq!(lvl.level, 2);
        assert!((lvl.rho_w - 1.0).abs() < 1e-12, "held for the whole window");
        assert_eq!(r.restarts, 1);
    }

    #[test]
    fn chain_depth_and_ops() {
        let trace = Trace {
            events: vec![
                ev(0, 0, EventKind::OpBegin, opcode::INSERT, 0, 0),
                ev(1, 0, EventKind::LatchGrant, MODE_EXCLUSIVE, 2, 1),
                ev(2, 0, EventKind::LatchGrant, MODE_EXCLUSIVE, 1, 2),
                ev(3, 0, EventKind::LatchRelease, MODE_EXCLUSIVE, 2, 1),
                ev(4, 0, EventKind::LatchRelease, MODE_EXCLUSIVE, 1, 2),
                ev(5, 0, EventKind::OpEnd, opcode::INSERT | OP_HIT, 0, 0),
            ],
            dropped: 0,
            threads: 1,
        };
        let r = replay(&trace);
        assert_eq!(r.peak_latch_chain, 2);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(r.ops[0].op, "insert");
        assert_eq!(r.ops[0].completed, 1);
        assert_eq!(r.ops[0].mean_ns, 5.0);
    }

    #[test]
    fn batch_pairs_aggregate_per_shard() {
        let trace = Trace {
            events: vec![
                ev(0, 0, EventKind::BatchBegin, 8, 0, 0),
                ev(100, 0, EventKind::BatchEnd, 8, 0, 6),
                ev(120, 0, EventKind::BatchBegin, 4, 0, 0),
                ev(180, 0, EventKind::BatchEnd, 4, 0, 2),
                ev(50, 1, EventKind::BatchBegin, 16, 3, 0),
                ev(250, 1, EventKind::BatchEnd, 16, 3, 15),
                // A begin whose end was overwritten contributes nothing.
                ev(300, 1, EventKind::BatchBegin, 2, 3, 0),
            ],
            dropped: 0,
            threads: 2,
        };
        let r = replay(&trace);
        assert_eq!(r.batches.len(), 2);
        let s0 = &r.batches[0];
        assert_eq!((s0.shard, s0.batches, s0.ops), (0, 2, 12));
        assert_eq!(s0.leaf_reuses, 8);
        assert_eq!(s0.max_size, 8);
        assert_eq!(s0.mean_size(), 6.0);
        assert_eq!(s0.mean_ns, 80.0);
        let s3 = &r.batches[1];
        assert_eq!((s3.shard, s3.batches, s3.ops), (3, 1, 16));
        assert!((s3.reuse_rate() - 15.0 / 16.0).abs() < 1e-12);
        let text = r.to_json().to_string().unwrap();
        assert!(text.contains("\"batches\":["));
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn summary_json_serializes_with_nan_means_as_null() {
        let trace = Trace {
            events: vec![ev(0, 0, EventKind::LatchGrant, 0, 1, 1)],
            dropped: 0,
            threads: 1,
        };
        let r = replay(&trace);
        // No releases → hold means are NaN; serialization must not fail.
        let text = r.to_json().to_string().unwrap();
        assert!(text.contains("\"mean_w_hold_ns\":null"));
        assert!(Json::parse(&text).is_ok());
    }
}
