//! Minimal aligned-table printing and CSV output for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A titled table of string cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Human-readable title (printed above the table).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; each row must have `columns.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width disagrees with the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in `{}`",
            self.title
        );
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.columns, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV (header + rows). Cells containing commas
    /// or quotes are quoted per RFC 4180.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                body,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, body)
    }
}

/// Formats a float with the given precision, rendering non-finite values
/// as `sat` (the saturation marker used across the experiment tables).
pub fn fmt_f(x: f64, prec: usize) -> String {
    if x.is_finite() {
        format!("{x:.prec$}")
    } else {
        "sat".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push(vec!["1".into(), "10.5".into()]);
        t.push(vec!["100".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("x"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1,5".into(), "x\"y".into()]);
        let dir = std::env::temp_dir().join("cbtree_table_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("a,b\n"));
        assert!(body.contains("\"1,5\""));
        assert!(body.contains("\"x\"\"y\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fmt_f_saturation_marker() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(f64::INFINITY, 2), "sat");
        assert_eq!(fmt_f(f64::NAN, 2), "sat");
    }
}
