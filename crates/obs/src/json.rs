//! A small hand-rolled JSON value, serializer, and parser.
//!
//! Built for machine-readable run artifacts (JSONL: one record per
//! line), deliberately dependency-free. Two properties the report
//! pipeline relies on:
//!
//! - **Integers stay exact.** `u64`/`i64` are distinct variants and are
//!   serialized digit-for-digit, so counters and node ids round-trip.
//! - **Non-finite floats are rejected, not smuggled.** `NaN`/`±Inf`
//!   have no JSON spelling; [`Json::write`] returns [`JsonError`]
//!   instead of inventing one. Report serializers must map undefined
//!   statistics (e.g. an empty histogram's quantile) to `null`
//!   explicitly.

use std::fmt;

/// A JSON value. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer, serialized exactly.
    U64(u64),
    /// Negative integer, serialized exactly.
    I64(i64),
    /// Finite float (non-finite values fail to serialize).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v >= 0 {
            Json::U64(v as u64)
        } else {
            Json::I64(v)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A float that serializes as `null` when not finite (for optional
    /// statistics like quantiles of an empty histogram).
    pub fn f64_or_null(v: f64) -> Json {
        if v.is_finite() {
            Json::F64(v)
        } else {
            Json::Null
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (accepts `U64` and integral non-negative `F64`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes into `out`. Fails on non-finite floats.
    pub fn write(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::I64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::F64(v) => {
                if !v.is_finite() {
                    return Err(JsonError(format!(
                        "non-finite float {v} has no JSON representation; \
                         use Json::f64_or_null for optional statistics"
                    )));
                }
                // `{:?}` is the shortest representation that round-trips
                // the f64 exactly, and is valid JSON for finite values.
                let _ = fmt::Write::write_fmt(out, format_args!("{v:?}"));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Serializes to a `String`. Fails on non-finite floats.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    /// Parses one JSON value from `text` (must consume all non-space input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(JsonError(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("non-utf8 number".into()))?;
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    return if v == 0 {
                        Ok(Json::U64(0))
                    } else if v <= i64::MAX as u64 + 1 {
                        Ok(Json::I64((v as i128).wrapping_neg() as i64))
                    } else {
                        Err(JsonError(format!("integer {text} out of i64 range")))
                    };
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| JsonError(format!("bad number {text:?} at byte {start}")))?;
        if !v.is_finite() {
            return Err(JsonError(format!("number {text:?} overflows f64")));
        }
        Ok(Json::F64(v))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(JsonError(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => return Err(JsonError("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(chunk).map_err(|_| JsonError("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

/// Writes records as JSONL (one JSON value per line), creating parent
/// directories. Fails (without writing) on non-finite floats.
pub fn write_jsonl(path: &std::path::Path, records: &[Json]) -> std::io::Result<()> {
    let mut body = String::new();
    for r in records {
        r.write(&mut body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        body.push('\n');
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, body)
}

/// Parses JSONL text into records, skipping blank lines.
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, JsonError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| Json::parse(l).map_err(|e| JsonError(format!("line {}: {}", i + 1, e.0))))
        .collect()
}

/// Reads and parses a JSONL file.
pub fn read_jsonl(path: &std::path::Path) -> Result<Vec<Json>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
}
