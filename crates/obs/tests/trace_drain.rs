//! Cross-thread drain tests for the tracing facade (need the `trace`
//! feature; the whole file is a no-op without it).
#![cfg(feature = "trace")]

use cbtree_obs::trace;
use std::collections::HashMap;
use std::sync::Barrier;

/// Events from one thread stay in timestamp order after the global
/// merge, and every thread's events survive an uncontended drain.
#[test]
fn cross_thread_drain_preserves_per_thread_timestamp_order() {
    let _guard = trace::measurement_lock();
    trace::enable(true);
    let _ = trace::drain(); // discard anything a sibling test left behind

    const THREADS: usize = 4;
    const EVENTS: u64 = 500;
    let start = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let start = &start;
            s.spawn(move || {
                start.wait();
                for i in 0..EVENTS {
                    // node encodes (spawn index, sequence) so the test can
                    // check per-thread order independent of trace ids.
                    trace::split_begin(1, t as u64 * 10_000 + i);
                }
            });
        }
    });

    let t = trace::drain();
    trace::enable(false);
    assert_eq!(t.dropped, 0, "500 events fit every ring");
    // Group by emitting thread: within each, timestamps and sequence
    // numbers must both be non-decreasing.
    let mut by_thread: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    for e in &t.events {
        by_thread
            .entry(e.thread)
            .or_default()
            .push((e.ts_ns, e.node));
    }
    let worker_events: Vec<&Vec<(u64, u64)>> = by_thread
        .values()
        .filter(|v| v.len() == EVENTS as usize)
        .collect();
    assert_eq!(
        worker_events.len(),
        THREADS,
        "all {THREADS} worker rings drained"
    );
    for seq in worker_events {
        for w in seq.windows(2) {
            assert!(w[0].0 <= w[1].0, "timestamps sorted within a thread");
            assert!(w[0].1 < w[1].1, "per-thread emission order preserved");
        }
    }
    // The merged stream as a whole is timestamp-sorted.
    for w in t.events.windows(2) {
        assert!(w[0].ts_ns <= w[1].ts_ns);
    }
}

/// Disabled emission writes nothing; re-enabling resumes.
#[test]
fn enable_gate_controls_emission() {
    let _guard = trace::measurement_lock();
    trace::enable(true);
    let _ = trace::drain();

    trace::enable(false);
    trace::split_begin(1, 1);
    trace::enable(true);
    trace::split_begin(1, 2);
    let t = trace::drain();
    trace::enable(false);
    let mine: Vec<u64> = t.events.iter().map(|e| e.node).collect();
    assert_eq!(mine, vec![2], "only the enabled emission landed");
}
