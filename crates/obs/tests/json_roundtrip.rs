//! Serializer/parser round-trip and NaN/Inf rejection tests.

use cbtree_obs::json::{parse_jsonl, write_jsonl, Json, JsonError};

#[test]
fn scalars_round_trip_exactly() {
    let cases = [
        (Json::Null, "null"),
        (Json::Bool(true), "true"),
        (Json::Bool(false), "false"),
        (Json::U64(0), "0"),
        (Json::U64(u64::MAX), "18446744073709551615"),
        (Json::I64(-1), "-1"),
        (Json::I64(i64::MIN), "-9223372036854775808"),
        (Json::Str("hi".into()), "\"hi\""),
    ];
    for (v, text) in cases {
        assert_eq!(v.to_string().unwrap(), text);
        assert_eq!(Json::parse(text).unwrap(), v);
    }
}

#[test]
fn floats_round_trip_bit_exactly() {
    for x in [0.5, 1.0, -2.75, 1e-300, 1e300, 0.1, std::f64::consts::PI] {
        let text = Json::F64(x).to_string().unwrap();
        match Json::parse(&text).unwrap() {
            Json::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{text}"),
            // Integral floats print as "1.0" etc. so never collapse to ints.
            other => panic!("{text} parsed as {other:?}"),
        }
    }
}

#[test]
fn nan_and_inf_are_rejected_not_smuggled() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = Json::F64(bad).to_string().unwrap_err();
        assert!(err.0.contains("non-finite"), "{err}");
        // ... even nested deep inside a report-shaped record.
        let rec = Json::obj([(
            "levels",
            Json::arr([Json::obj([("rho_w", Json::F64(bad))])]),
        )]);
        assert!(rec.to_string().is_err());
        // ... and write_jsonl refuses to produce a corrupt artifact.
        let path = std::env::temp_dir().join("cbtree_obs_nan_test.jsonl");
        let err = write_jsonl(&path, &[rec]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
    // The explicit escape hatch maps non-finite to null.
    assert_eq!(Json::f64_or_null(f64::NAN), Json::Null);
    assert_eq!(Json::f64_or_null(2.5), Json::F64(2.5));
}

#[test]
fn nested_structures_round_trip() {
    let v = Json::obj([
        ("type", Json::from("live_report")),
        ("protocol", Json::from("b-link")),
        ("threads", Json::from(16u64)),
        ("rho", Json::from(0.125)),
        (
            "note",
            Json::from("quotes \" and \\ and\nnewlines\tok \u{1} low"),
        ),
        (
            "levels",
            Json::arr([
                Json::obj([("level", Json::from(1u64)), ("rho_w", Json::from(0.5))]),
                Json::Null,
            ]),
        ),
        ("empty_arr", Json::arr([])),
        ("empty_obj", Json::obj([])),
    ]);
    let text = v.to_string().unwrap();
    assert_eq!(Json::parse(&text).unwrap(), v);
}

#[test]
fn parser_accepts_foreign_whitespace_and_escapes() {
    let v = Json::parse(" { \"a\" : [ 1 , -2.5e1 ] , \"s\" : \"\\u0041\\u00e9\" } ").unwrap();
    assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    assert_eq!(
        v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
        Some(-25.0)
    );
    assert_eq!(v.get("s").unwrap().as_str(), Some("Aé"));
}

#[test]
fn parser_rejects_malformed_input() {
    for bad in [
        "",
        "{",
        "[1,",
        "{\"a\":}",
        "tru",
        "\"unterminated",
        "1 2",
        "nan",
        "Infinity",
        "--1",
    ] {
        assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
    }
}

#[test]
fn jsonl_skips_blank_lines_and_reports_line_numbers() {
    let recs = parse_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
    assert_eq!(recs.len(), 2);
    let JsonError(msg) = parse_jsonl("{\"a\":1}\n{oops}\n").unwrap_err();
    assert!(msg.starts_with("line 2:"), "{msg}");
}

#[test]
fn jsonl_file_round_trip() {
    let path = std::env::temp_dir().join("cbtree_obs_jsonl_test.jsonl");
    let recs = vec![
        Json::obj([("schema", Json::from(1u64))]),
        Json::obj([("x", Json::from(0.25)), ("y", Json::Null)]),
    ];
    write_jsonl(&path, &recs).unwrap();
    assert_eq!(cbtree_obs::read_jsonl(&path).unwrap(), recs);
    let _ = std::fs::remove_file(path);
}
