//! Criterion benchmarks of the discrete-event simulator: events per
//! second for each algorithm at a moderate load, and the cost of the
//! construction phase.

use cbtree_sim::tree::SimTree;
use cbtree_sim::{run, SimAlgorithm, SimConfig};
use cbtree_workload::{OpStream, OpsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn sim_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/2000-measured-ops");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2000));
    for (alg, rate) in [
        (SimAlgorithm::NaiveLockCoupling, 0.1),
        (SimAlgorithm::OptimisticDescent, 0.4),
        (SimAlgorithm::LinkType, 1.0),
    ] {
        let mut cfg = SimConfig::paper(alg, rate, 1).scaled_down(5);
        cfg.measured_ops = 2000;
        group.bench_function(BenchmarkId::from_parameter(format!("{alg:?}")), |b| {
            b.iter(|| std::hint::black_box(run(&cfg).unwrap()));
        });
    }
    group.finish();
}

fn tree_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/build-tree");
    group.sample_size(10);
    for items in [10_000usize, 40_000] {
        group.throughput(Throughput::Elements(items as u64));
        group.bench_function(BenchmarkId::from_parameter(items), |b| {
            b.iter_with_setup(
                || {
                    let mut s = OpStream::new(OpsConfig::paper(100_000_000), 3);
                    s.construction_sequence(items)
                },
                |seq| std::hint::black_box(SimTree::build(13, &seq)),
            );
        });
    }
    group.finish();
}

criterion_group!(benches, sim_run, tree_construction);
criterion_main!(benches);
