//! Microbenchmarks of the discrete-event simulator: events per second
//! for each algorithm at a moderate load, and the cost of the
//! construction phase. Plain `fn main()` harness over
//! `cbtree_bench::microbench`.

use cbtree_bench::microbench::bench;
use cbtree_sim::tree::SimTree;
use cbtree_sim::{run, SimAlgorithm, SimConfig};
use cbtree_workload::{OpStream, OpsConfig};

const SAMPLES: usize = 5;

fn sim_run() {
    for (alg, rate) in [
        (SimAlgorithm::NaiveLockCoupling, 0.1),
        (SimAlgorithm::OptimisticDescent, 0.4),
        (SimAlgorithm::LinkType, 1.0),
    ] {
        let mut cfg = SimConfig::paper(alg, rate, 1).scaled_down(5);
        cfg.measured_ops = 2000;
        bench(
            &format!("sim/2000-measured-ops/{alg:?}"),
            2000,
            SAMPLES,
            || {
                std::hint::black_box(run(&cfg).unwrap());
            },
        );
    }
}

fn tree_construction() {
    for items in [10_000usize, 40_000] {
        let mut s = OpStream::new(OpsConfig::paper(100_000_000), 3);
        let seq = s.construction_sequence(items);
        bench(
            &format!("sim/build-tree/{items}"),
            items as u64,
            SAMPLES,
            || {
                std::hint::black_box(SimTree::build(13, &seq));
            },
        );
    }
}

fn main() {
    sim_run();
    tree_construction();
}
