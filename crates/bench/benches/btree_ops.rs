//! Microbenchmarks of the real concurrent B+-trees: the three latching
//! protocols under single-threaded and multi-threaded mixed workloads.
//! The paper's ranking (link ≥ optimistic ≥ lock-coupling under
//! concurrency) should reproduce on real hardware in the multi-threaded
//! groups. Plain `fn main()` harness over `cbtree_bench::microbench`.

use cbtree_bench::microbench::bench;
use cbtree_btree::{ConcurrentBTree, Protocol};
use cbtree_workload::{OpStream, Operation, OpsConfig};
use std::sync::Arc;

const PREFILL: u64 = 50_000;
const OPS_PER_ITER: usize = 20_000;
const SAMPLES: usize = 5;

fn prefilled(protocol: Protocol) -> Arc<ConcurrentBTree<u64>> {
    let tree = Arc::new(ConcurrentBTree::new(protocol, 64));
    let mut stream = OpStream::new(OpsConfig::paper(1_000_000), 7);
    let mut inserted = 0;
    while inserted < PREFILL {
        if let Operation::Insert(k) = stream.next_op() {
            if tree.insert(k, k).is_none() {
                inserted += 1;
            }
        }
    }
    tree
}

fn apply(tree: &ConcurrentBTree<u64>, op: Operation) {
    match op {
        Operation::Search(k) => {
            std::hint::black_box(tree.get(&k));
        }
        Operation::Insert(k) => {
            std::hint::black_box(tree.insert(k, k));
        }
        Operation::Delete(k) => {
            std::hint::black_box(tree.remove(&k));
        }
    }
}

fn single_threaded() {
    for protocol in Protocol::ALL {
        let tree = prefilled(protocol);
        let mut stream = OpStream::new(OpsConfig::paper(1_000_000), 99);
        bench(
            &format!("btree/single-thread-mixed/{}", protocol.name()),
            OPS_PER_ITER as u64,
            SAMPLES,
            || {
                for _ in 0..OPS_PER_ITER {
                    apply(&tree, stream.next_op());
                }
            },
        );
    }
}

fn multi_threaded() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    for protocol in Protocol::ALL {
        let tree = prefilled(protocol);
        let mut round = 0u64;
        bench(
            &format!("btree/{threads}-threads-mixed/{}", protocol.name()),
            (OPS_PER_ITER * threads) as u64,
            SAMPLES,
            || {
                round += 1;
                std::thread::scope(|s| {
                    for t in 0..threads as u64 {
                        let tree = Arc::clone(&tree);
                        s.spawn(move || {
                            let mut stream =
                                OpStream::new(OpsConfig::paper(1_000_000), round * 1000 + t);
                            for _ in 0..OPS_PER_ITER {
                                apply(&tree, stream.next_op());
                            }
                        });
                    }
                });
            },
        );
    }
}

fn read_only_scaling() {
    for protocol in Protocol::ALL {
        let tree = prefilled(protocol);
        let mut round = 0u64;
        bench(
            &format!("btree/read-only-8-threads/{}", protocol.name()),
            (OPS_PER_ITER * 8) as u64,
            SAMPLES,
            || {
                round += 1;
                std::thread::scope(|s| {
                    for t in 0..8u64 {
                        let tree = Arc::clone(&tree);
                        s.spawn(move || {
                            let mut x = round.wrapping_mul(0x9E37).wrapping_add(t);
                            for _ in 0..OPS_PER_ITER {
                                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                std::hint::black_box(tree.get(&((x >> 33) % 1_000_000)));
                            }
                        });
                    }
                });
            },
        );
    }
}

fn main() {
    single_threaded();
    multi_threaded();
    read_only_scaling();
}
