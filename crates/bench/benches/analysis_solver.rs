//! Criterion benchmarks of the analytical machinery itself: the Theorem 6
//! fixed point, full per-algorithm model evaluations, and the
//! maximum-throughput search. These quantify the claim that the framework
//! is cheap enough to use interactively for capacity planning.

use cbtree_analysis::{Algorithm, ModelConfig};
use cbtree_queueing::RwQueue;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn theorem6_fixed_point(c: &mut Criterion) {
    c.bench_function("queueing/theorem6-fixed-point", |b| {
        let q = RwQueue::new(1.5, 0.25, 1.2, 0.9).unwrap();
        b.iter(|| std::hint::black_box(q.solve().unwrap()));
    });
}

fn model_evaluation(c: &mut Criterion) {
    let cfg = ModelConfig::paper_base();
    let mut group = c.benchmark_group("analysis/evaluate");
    for alg in Algorithm::ALL {
        let model = alg.model(&cfg);
        let lambda = 0.5 * model.max_throughput().unwrap();
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter(|| std::hint::black_box(model.evaluate(lambda).unwrap()));
        });
    }
    group.finish();
}

fn max_throughput_search(c: &mut Criterion) {
    let cfg = ModelConfig::paper_base();
    let mut group = c.benchmark_group("analysis/max-throughput");
    group.sample_size(20);
    for alg in [Algorithm::NaiveLockCoupling, Algorithm::OptimisticDescent] {
        let model = alg.model(&cfg);
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter(|| std::hint::black_box(model.max_throughput().unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    theorem6_fixed_point,
    model_evaluation,
    max_throughput_search
);
criterion_main!(benches);
