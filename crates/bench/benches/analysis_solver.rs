//! Microbenchmarks of the analytical machinery itself: the Theorem 6
//! fixed point, full per-algorithm model evaluations, and the
//! maximum-throughput search. These quantify the claim that the framework
//! is cheap enough to use interactively for capacity planning. Plain
//! `fn main()` harness over `cbtree_bench::microbench`.

use cbtree_analysis::{Algorithm, ModelConfig};
use cbtree_bench::microbench::bench;
use cbtree_queueing::RwQueue;

const INNER: u64 = 1000;
const SAMPLES: usize = 10;

fn theorem6_fixed_point() {
    let q = RwQueue::new(1.5, 0.25, 1.2, 0.9).unwrap();
    bench("queueing/theorem6-fixed-point", INNER, SAMPLES, || {
        for _ in 0..INNER {
            std::hint::black_box(q.solve().unwrap());
        }
    });
}

fn model_evaluation() {
    let cfg = ModelConfig::paper_base();
    for alg in Algorithm::ALL {
        let model = alg.model(&cfg);
        let lambda = 0.5 * model.max_throughput().unwrap();
        bench(
            &format!("analysis/evaluate/{}", alg.name()),
            INNER,
            SAMPLES,
            || {
                for _ in 0..INNER {
                    std::hint::black_box(model.evaluate(lambda).unwrap());
                }
            },
        );
    }
}

fn max_throughput_search() {
    let cfg = ModelConfig::paper_base();
    for alg in [Algorithm::NaiveLockCoupling, Algorithm::OptimisticDescent] {
        let model = alg.model(&cfg);
        bench(
            &format!("analysis/max-throughput/{}", alg.name()),
            INNER / 10,
            SAMPLES,
            || {
                for _ in 0..INNER / 10 {
                    std::hint::black_box(model.max_throughput().unwrap());
                }
            },
        );
    }
}

fn main() {
    theorem6_fixed_point();
    model_evaluation();
    max_throughput_search();
}
