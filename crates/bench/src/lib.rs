//! Experiment harness regenerating every table and figure of Johnson &
//! Shasha (PODS 1990), plus shared table/CSV utilities used by the
//! `experiments` binary and the std-only microbenchmarks.
//!
//! Each `figN` function in [`figures`] reproduces one figure of the
//! paper's evaluation: it sweeps the same parameter the paper sweeps,
//! runs the analytical model (and, where the paper overlays simulation,
//! the discrete-event simulator with multiple seeds), and returns a
//! [`Table`] whose rows are the series the figure plots.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod figures;
pub mod microbench;
pub use cbtree_obs::table;

pub use figures::{run_figure, ExpOptions, FIGURES};
pub use table::Table;
