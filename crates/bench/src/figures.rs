//! One function per paper figure (3–16) plus the ablations DESIGN.md
//! calls out. Every function returns a [`Table`] whose rows regenerate
//! the figure's series: the swept parameter, the analytical prediction,
//! and — where the paper overlays simulation — multi-seed simulation
//! means with 95% confidence intervals.

use crate::table::{fmt_f, Table};
use cbtree_analysis::recovery::RecoveryComparison;
use cbtree_analysis::{rules_of_thumb, Algorithm, ModelConfig, PerformanceModel};
use cbtree_btree_model::{MergePolicy, NodeParams, OpMix, TreeShape};
use cbtree_sim::costs::SimCosts;
use cbtree_sim::{run_seeds, SeedSummary, SimAlgorithm, SimConfig};
use std::path::PathBuf;

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Shrinks simulations (~20×) for fast smoke runs.
    pub quick: bool,
    /// When set, each table is also written as `<out_dir>/<name>.csv`.
    pub out_dir: Option<PathBuf>,
    /// Seeds for the multi-seed simulation protocol (paper: 5 seeds).
    pub seeds: Vec<u64>,
    /// Skip simulations entirely (analysis-only tables where applicable).
    pub with_sim: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            quick: false,
            out_dir: None,
            seeds: vec![1, 2, 3, 4, 5],
            with_sim: true,
        }
    }
}

impl ExpOptions {
    /// Quick smoke-test options (small sims, 2 seeds).
    pub fn quick() -> Self {
        ExpOptions {
            quick: true,
            seeds: vec![1, 2],
            ..Default::default()
        }
    }
}

/// All experiment names accepted by [`run_figure`].
pub const FIGURES: &[&str] = &[
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "baseline-2pl",
    "extension-lru",
    "extension-skew",
    "ablation-rot-se2",
    "ablation-merge-policy",
    "ablation-hyperexp",
];

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

fn sim_config(
    alg: SimAlgorithm,
    lambda: f64,
    disk_cost: f64,
    node_capacity: usize,
    opts: &ExpOptions,
) -> SimConfig {
    let mut c = SimConfig::paper(alg, lambda, 1);
    c.node_capacity = node_capacity;
    c.costs = SimCosts {
        base: 1.0,
        disk_cost,
        memory_levels: 2,
    };
    if opts.quick {
        c = c.scaled_down(20).with_min_window(60.0, 150.0);
    } else {
        // Warm up for ≥120 time units (~5 zero-load response times) and
        // measure ≥400 — a fixed op count alone is far too short a window
        // at the link algorithm's high arrival rates.
        c = c.with_min_window(120.0, 400.0);
    }
    c
}

fn sim_point(
    alg: SimAlgorithm,
    lambda: f64,
    disk_cost: f64,
    node_capacity: usize,
    opts: &ExpOptions,
) -> Option<SeedSummary> {
    if !opts.with_sim {
        return None;
    }
    run_seeds(
        &sim_config(alg, lambda, disk_cost, node_capacity, opts),
        &opts.seeds,
    )
    .ok()
}

/// Analysis configuration matching the simulated tree exactly: the shape
/// is *measured* from the tree the simulator's construction phase builds
/// (same seed), so the model analyzes the same B-tree the simulation runs
/// on — the paper's "performance of an algorithm on a B-tree of a
/// particular size".
fn matched_cfg(disk_cost: f64, node_capacity: usize, opts: &ExpOptions) -> ModelConfig {
    let sim_c = sim_config(SimAlgorithm::LinkType, 1.0, disk_cost, node_capacity, opts);
    let shape = cbtree_sim::runner::matched_tree_shape(&sim_c)
        .expect("construction produces a valid shape");
    let cost = cbtree_btree_model::CostModel::paper_style(shape.height, 2, disk_cost, 1.0)
        .expect("valid cost");
    ModelConfig::new(shape, OpMix::paper(), cost).expect("consistent")
}

/// Mix-weighted zero-load response time of a model.
fn serial_rt(model: &dyn PerformanceModel) -> f64 {
    let p = model.evaluate(0.0).expect("zero load is always stable");
    let m = &model.config().mix;
    p.mean_response_time(m.q_search, m.q_insert, m.q_delete)
}

/// Smallest arrival rate at which the mix-weighted response time reaches
/// `factor` times its zero-load value, capped at the maximum throughput
/// (used to pick a display range for the Link-type algorithm, which has
/// no effective maximum).
fn lambda_at_rt_factor(model: &dyn PerformanceModel, factor: f64) -> f64 {
    let base = serial_rt(model);
    let max = model.max_throughput().unwrap_or(1.0);
    let m = model.config().mix;
    let rt = |lambda: f64| -> f64 {
        model
            .evaluate(lambda)
            .map(|p| p.mean_response_time(m.q_search, m.q_insert, m.q_delete))
            .unwrap_or(f64::INFINITY)
    };
    let mut lo = 0.0;
    let mut hi = max * (1.0 - 1e-6);
    if rt(hi) < factor * base {
        return hi;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if rt(mid) < factor * base {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

const SWEEP_FRACS: [f64; 8] = [0.1, 0.25, 0.4, 0.55, 0.7, 0.8, 0.9, 0.95];

enum Metric {
    Search,
    Insert,
}

/// Shared engine for Figures 3–8: one algorithm, one response-time
/// metric, analysis vs simulation across an arrival-rate sweep.
fn response_time_figure(
    title: &str,
    algorithm: Algorithm,
    sim_alg: SimAlgorithm,
    metric: Metric,
    disk_cost: f64,
    opts: &ExpOptions,
) -> Table {
    let cfg = matched_cfg(disk_cost, 13, opts);
    let model = algorithm.model(&cfg);
    let top = match algorithm {
        // Lock-retaining algorithms are swept to their saturation point
        // (OLC's writers still couple, so it saturates too).
        Algorithm::NaiveLockCoupling
        | Algorithm::OptimisticDescent
        | Algorithm::TwoPhaseLocking
        | Algorithm::Olc => model
            .max_throughput()
            .expect("finite for coupling algorithms"),
        // The link algorithm has no effective maximum; sweep to the knee.
        Algorithm::LinkType => lambda_at_rt_factor(model.as_ref(), 2.5),
    };
    let mut t = Table::new(
        title,
        &[
            "lambda",
            "analysis_rt",
            "sim_rt",
            "sim_ci95",
            "sim_rho_root",
        ],
    );
    for frac in SWEEP_FRACS {
        let lambda = frac * top;
        let analysis = model
            .evaluate(lambda)
            .map(|p| match metric {
                Metric::Search => p.response_time_search,
                Metric::Insert => p.response_time_insert,
            })
            .unwrap_or(f64::INFINITY);
        let sim = sim_point(sim_alg, lambda, disk_cost, 13, opts);
        let (s_rt, s_ci, s_rho) = match &sim {
            Some(s) => {
                let sm = match metric {
                    Metric::Search => s.resp_search,
                    Metric::Insert => s.resp_insert,
                };
                (
                    fmt_f(sm.mean, 2),
                    fmt_f(sm.ci95, 2),
                    fmt_f(s.root_writer_utilization.mean, 3),
                )
            }
            None => ("-".into(), "-".into(), "-".into()),
        };
        t.push(vec![
            fmt_f(lambda, 4),
            fmt_f(analysis, 2),
            s_rt,
            s_ci,
            s_rho,
        ]);
    }
    t
}

// ----------------------------------------------------------------------
// Figures
// ----------------------------------------------------------------------

/// Figure 3: Naive Lock-coupling insert response time vs arrival rate.
pub fn fig3(opts: &ExpOptions) -> Table {
    response_time_figure(
        "Fig 3: Naive Lock-coupling insert response time vs arrival rate (D=5, 2 mem levels)",
        Algorithm::NaiveLockCoupling,
        SimAlgorithm::NaiveLockCoupling,
        Metric::Insert,
        5.0,
        opts,
    )
}

/// Figure 4: Naive Lock-coupling search response time vs arrival rate.
pub fn fig4(opts: &ExpOptions) -> Table {
    response_time_figure(
        "Fig 4: Naive Lock-coupling search response time vs arrival rate (D=5, 2 mem levels)",
        Algorithm::NaiveLockCoupling,
        SimAlgorithm::NaiveLockCoupling,
        Metric::Search,
        5.0,
        opts,
    )
}

/// Figure 5: Optimistic Descent search response time vs arrival rate.
pub fn fig5(opts: &ExpOptions) -> Table {
    response_time_figure(
        "Fig 5: Optimistic Descent search response time vs arrival rate (D=5, 2 mem levels)",
        Algorithm::OptimisticDescent,
        SimAlgorithm::OptimisticDescent,
        Metric::Search,
        5.0,
        opts,
    )
}

/// Figure 6: Optimistic Descent insert response time vs arrival rate.
pub fn fig6(opts: &ExpOptions) -> Table {
    response_time_figure(
        "Fig 6: Optimistic Descent insert response time vs arrival rate (D=5, 2 mem levels)",
        Algorithm::OptimisticDescent,
        SimAlgorithm::OptimisticDescent,
        Metric::Insert,
        5.0,
        opts,
    )
}

/// Figure 7: Link-type search response time vs arrival rate.
pub fn fig7(opts: &ExpOptions) -> Table {
    response_time_figure(
        "Fig 7: Link-type search response time vs arrival rate (D=5, 2 mem levels)",
        Algorithm::LinkType,
        SimAlgorithm::LinkType,
        Metric::Search,
        5.0,
        opts,
    )
}

/// Figure 8: Link-type insert response time vs arrival rate.
pub fn fig8(opts: &ExpOptions) -> Table {
    response_time_figure(
        "Fig 8: Link-type insert response time vs arrival rate (D=5, 2 mem levels)",
        Algorithm::LinkType,
        SimAlgorithm::LinkType,
        Metric::Insert,
        5.0,
        opts,
    )
}

/// Figure 9: link crossings are rare and have negligible performance
/// effect (D = 10). The analytical model ignores crossings entirely; its
/// agreement with the crossing-aware simulator is the "negligible" claim.
pub fn fig9(opts: &ExpOptions) -> Table {
    let cfg = matched_cfg(10.0, 13, opts);
    let model = Algorithm::LinkType.model(&cfg);
    let top = lambda_at_rt_factor(model.as_ref(), 2.5);
    let mut t = Table::new(
        "Fig 9: Link-type crossings per operation vs arrival rate (D=10)",
        &[
            "lambda",
            "crossings_per_1000_ops",
            "sim_search_rt",
            "analysis_search_rt_no_chase",
        ],
    );
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let lambda = frac * top;
        let analysis = model
            .evaluate(lambda)
            .map(|p| p.response_time_search)
            .unwrap_or(f64::INFINITY);
        let sim = sim_point(SimAlgorithm::LinkType, lambda, 10.0, 13, opts);
        let (cross, s_rt) = match &sim {
            Some(s) => (
                fmt_f(1000.0 * s.crossings_per_op.mean, 2),
                fmt_f(s.resp_search.mean, 2),
            ),
            None => ("-".into(), "-".into()),
        };
        t.push(vec![fmt_f(lambda, 3), cross, s_rt, fmt_f(analysis, 2)]);
    }
    t
}

/// Figure 10: root writer utilization of Naive Lock-coupling grows
/// super-linearly in the arrival rate.
pub fn fig10(opts: &ExpOptions) -> Table {
    let cfg = matched_cfg(5.0, 13, opts);
    let model = Algorithm::NaiveLockCoupling.model(&cfg);
    let max = model.max_throughput().expect("finite");
    let mut t = Table::new(
        "Fig 10: Naive Lock-coupling root writer utilization vs arrival rate (D=5)",
        &[
            "lambda",
            "lambda_over_max",
            "rho_w_analysis",
            "rho_w_sim",
            "sim_ci95",
        ],
    );
    for frac in [0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99] {
        let lambda = frac * max;
        let rho = model
            .evaluate(lambda)
            .map(|p| p.root_writer_utilization())
            .unwrap_or(f64::INFINITY);
        let sim = sim_point(SimAlgorithm::NaiveLockCoupling, lambda, 5.0, 13, opts);
        let (s_rho, s_ci) = match &sim {
            Some(s) => (
                fmt_f(s.root_writer_utilization.mean, 3),
                fmt_f(s.root_writer_utilization.ci95, 3),
            ),
            None => ("-".into(), "-".into()),
        };
        t.push(vec![
            fmt_f(lambda, 4),
            fmt_f(frac, 2),
            fmt_f(rho, 3),
            s_rho,
            s_ci,
        ]);
    }
    t
}

/// Figure 11: Naive Lock-coupling maximum throughput vs disk cost.
pub fn fig11(_opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 11: Naive Lock-coupling maximum throughput vs disk cost (2 mem levels)",
        &["disk_cost", "max_throughput", "lambda_rho_half"],
    );
    for d in [1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 15.0, 20.0] {
        let cfg = ModelConfig::paper_with_disk_cost(d).expect("valid disk cost");
        let model = Algorithm::NaiveLockCoupling.model(&cfg);
        let max = model.max_throughput().unwrap_or(f64::NAN);
        let half = model.lambda_at_root_rho(0.5).unwrap_or(f64::NAN);
        t.push(vec![fmt_f(d, 0), fmt_f(max, 4), fmt_f(half, 4)]);
    }
    t
}

/// Figure 12: insert response times of the three algorithms (D = 5).
pub fn fig12(opts: &ExpOptions) -> Table {
    let cfg = matched_cfg(5.0, 13, opts);
    let naive = Algorithm::NaiveLockCoupling.model(&cfg);
    let od = Algorithm::OptimisticDescent.model(&cfg);
    let link = Algorithm::LinkType.model(&cfg);
    let od_max = od.max_throughput().expect("finite");
    let mut t = Table::new(
        "Fig 12: insert response time comparison, analysis (D=5) — naive vs optimistic vs link",
        &[
            "lambda",
            "naive_rt",
            "optimistic_rt",
            "link_rt",
            "link_rt_sim",
        ],
    );
    for frac in [0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9, 1.1, 1.5, 3.0] {
        let lambda = frac * od_max;
        let rt = |m: &dyn PerformanceModel| {
            m.evaluate(lambda)
                .map(|p| p.response_time_insert)
                .unwrap_or(f64::INFINITY)
        };
        let link_sim = if frac <= 3.0 {
            sim_point(SimAlgorithm::LinkType, lambda, 5.0, 13, opts)
                .map(|s| fmt_f(s.resp_insert.mean, 2))
                .unwrap_or_else(|| "-".into())
        } else {
            "-".into()
        };
        t.push(vec![
            fmt_f(lambda, 4),
            fmt_f(rt(naive.as_ref()), 2),
            fmt_f(rt(od.as_ref()), 2),
            fmt_f(rt(link.as_ref()), 2),
            link_sim,
        ]);
    }
    t
}

fn node_size_sweep() -> Vec<usize> {
    vec![5, 9, 13, 21, 31, 45, 59, 101]
}

fn pinned_cfg_for_n(n: usize, disk_cost: f64) -> ModelConfig {
    let shape = TreeShape::derive(40_000, NodeParams::with_max_size(n).expect("n >= 3"))
        .expect("valid shape");
    let cost = cbtree_btree_model::CostModel::paper_style(shape.height, 2, disk_cost, 1.0)
        .expect("valid cost");
    ModelConfig::new(shape, OpMix::paper(), cost).expect("consistent")
}

/// Figure 13: Naive Lock-coupling rule-of-thumb 1 and limit rule 2 vs the
/// full analysis, across node sizes, for D = 1 (all memory-equivalent)
/// and D = 10.
pub fn fig13(_opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 13: Naive Lock-coupling rules of thumb vs analysis (lambda at rho_w = .5)",
        &["N", "D", "analysis", "rule_of_thumb_1", "limit_rule_2"],
    );
    for d in [1.0, 10.0] {
        for n in node_size_sweep() {
            let cfg = pinned_cfg_for_n(n, d);
            let model = Algorithm::NaiveLockCoupling.model(&cfg);
            let exact = model.lambda_at_root_rho(0.5).unwrap_or(f64::NAN);
            let rot1 = rules_of_thumb::naive_lc_rot1(&cfg).unwrap_or(f64::NAN);
            let rot2 = rules_of_thumb::naive_lc_rot2(&cfg).unwrap_or(f64::NAN);
            t.push(vec![
                n.to_string(),
                fmt_f(d, 0),
                fmt_f(exact, 4),
                fmt_f(rot1, 4),
                fmt_f(rot2, 4),
            ]);
        }
    }
    t
}

/// Figure 14: Optimistic Descent rule-of-thumb 3 and limit rule 4 vs the
/// full analysis, across node sizes and disk costs.
pub fn fig14(_opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig 14: Optimistic Descent rules of thumb vs analysis (lambda at rho_w = .5)",
        &["N", "D", "analysis", "rule_of_thumb_3", "limit_rule_4"],
    );
    for d in [1.0, 10.0] {
        for n in node_size_sweep() {
            let cfg = pinned_cfg_for_n(n, d);
            let model = Algorithm::OptimisticDescent.model(&cfg);
            let exact = model.lambda_at_root_rho(0.5).unwrap_or(f64::NAN);
            let rot3 = rules_of_thumb::optimistic_rot3(&cfg).unwrap_or(f64::NAN);
            let rot4 = rules_of_thumb::optimistic_rot4(&cfg).unwrap_or(f64::NAN);
            t.push(vec![
                n.to_string(),
                fmt_f(d, 0),
                fmt_f(exact, 4),
                fmt_f(rot3, 4),
                fmt_f(rot4, 4),
            ]);
        }
    }
    t
}

fn recovery_figure(title: &str, cfg: ModelConfig, sim: Option<&ExpOptions>) -> Table {
    use cbtree_sim::SimRecovery;
    let cmp = RecoveryComparison::new(Algorithm::OptimisticDescent, &cfg, 100.0);
    let (_, _, max_naive) = cmp
        .max_throughputs()
        .expect("recovery variants have finite maxima under optimistic descent");
    let mut t = Table::new(
        title,
        &[
            "lambda",
            "no_recovery_rt",
            "leaf_only_rt",
            "naive_recovery_rt",
            "leaf_only_sim",
            "naive_sim",
        ],
    );
    let sim_at = |lambda: f64, recovery: SimRecovery, opts: &ExpOptions| -> String {
        let mut c = sim_config(SimAlgorithm::OptimisticDescent, lambda, 10.0, 13, opts);
        c.recovery = recovery;
        run_seeds(&c, &opts.seeds)
            .map(|s| fmt_f(s.resp_insert.mean, 2))
            .unwrap_or_else(|_| "unstable".into())
    };
    for frac in [0.1, 0.3, 0.5, 0.7, 0.85, 1.2, 1.8] {
        let lambda = frac * max_naive;
        let one = |m: &dyn PerformanceModel| {
            m.evaluate(lambda)
                .map(|p| p.response_time_insert)
                .unwrap_or(f64::INFINITY)
        };
        let (s_leaf, s_naive) = match sim.filter(|o| o.with_sim) {
            Some(opts) => (
                sim_at(lambda, SimRecovery::LeafOnly { t_trans: 100.0 }, opts),
                if frac < 1.0 {
                    sim_at(lambda, SimRecovery::Naive { t_trans: 100.0 }, opts)
                } else {
                    "-".into()
                },
            ),
            None => ("-".into(), "-".into()),
        };
        t.push(vec![
            fmt_f(lambda, 4),
            fmt_f(one(cmp.none.as_ref()), 2),
            fmt_f(one(cmp.leaf_only.as_ref()), 2),
            fmt_f(one(cmp.naive.as_ref()), 2),
            s_leaf,
            s_naive,
        ]);
    }
    t
}

/// Figure 15: recovery-algorithm comparison on Optimistic Descent insert
/// response time, N = 13, h = 5, D = 10, T_trans = 100.
pub fn fig15(opts: &ExpOptions) -> Table {
    // The analysis columns use the matched (measured) shape so the
    // simulation overlay compares like with like.
    recovery_figure(
        "Fig 15: recovery comparison, OD insert RT (N=13, 5 levels, D=10, T_trans=100)",
        matched_cfg(10.0, 13, opts),
        Some(opts),
    )
}

/// Figure 16: the same comparison with N = 59 and 4 levels.
///
/// The paper pins this tree at 4 levels; steady-state occupancy for
/// 40 000 items would give 3, so the shape is pinned explicitly (see
/// EXPERIMENTS.md).
pub fn fig16(_opts: &ExpOptions) -> Table {
    let cfg = ModelConfig::pinned(59, 4, 6.0, 2, 10.0, 1.0, OpMix::paper()).expect("valid");
    recovery_figure(
        "Fig 16: recovery comparison, OD insert RT (N=59, 4 levels, D=10, T_trans=100)",
        cfg,
        None, // the pinned 4-level shape has no simulated counterpart
    )
}

/// Ablation: Rule of Thumb 1 with the derivation's `Se(h−1)` vs the
/// printed formula's literal `Se(2)`, against the full analysis, as the
/// disk split makes the two levels differ.
pub fn ablation_rot_se2(_opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Ablation: RoT 1 child-level term — derivation Se(h-1) vs literal Se(2)",
        &["D", "analysis", "rot1_se_h_minus_1", "rot1_literal_se2"],
    );
    for d in [1.0, 2.0, 5.0, 10.0, 20.0] {
        let cfg = ModelConfig::paper_with_disk_cost(d).expect("valid");
        let model = Algorithm::NaiveLockCoupling.model(&cfg);
        let exact = model.lambda_at_root_rho(0.5).unwrap_or(f64::NAN);
        let derived = rules_of_thumb::naive_lc_rot1(&cfg).unwrap_or(f64::NAN);
        let literal = rules_of_thumb::naive_lc_rot1_literal_se2(&cfg).unwrap_or(f64::NAN);
        t.push(vec![
            fmt_f(d, 0),
            fmt_f(exact, 4),
            fmt_f(derived, 4),
            fmt_f(literal, 4),
        ]);
    }
    t
}

/// Extension (§8 "full version"): strict Two-Phase Locking as the
/// baseline against the paper's three algorithms — analysis and
/// simulation of insert response times, D = 5.
pub fn baseline_2pl(opts: &ExpOptions) -> Table {
    let cfg = matched_cfg(5.0, 13, opts);
    let tp = Algorithm::TwoPhaseLocking.model(&cfg);
    let naive = Algorithm::NaiveLockCoupling.model(&cfg);
    let od = Algorithm::OptimisticDescent.model(&cfg);
    let link = Algorithm::LinkType.model(&cfg);
    let tp_max = tp.max_throughput().expect("finite");
    let mut t = Table::new(
        "Extension: Two-Phase Locking baseline vs the paper's algorithms (insert RT, D=5)",
        &[
            "lambda",
            "two_phase_rt",
            "two_phase_sim",
            "naive_rt",
            "optimistic_rt",
            "link_rt",
        ],
    );
    for frac in [0.2, 0.5, 0.8, 0.95, 2.0, 6.0, 30.0] {
        let lambda = frac * tp_max;
        let rt = |m: &dyn PerformanceModel| {
            m.evaluate(lambda)
                .map(|p| p.response_time_insert)
                .unwrap_or(f64::INFINITY)
        };
        let sim = if frac < 1.0 {
            sim_point(SimAlgorithm::TwoPhaseLocking, lambda, 5.0, 13, opts)
                .map(|s| fmt_f(s.resp_insert.mean, 2))
                .unwrap_or_else(|| "-".into())
        } else {
            "-".into()
        };
        t.push(vec![
            fmt_f(lambda, 4),
            fmt_f(rt(tp.as_ref()), 2),
            sim,
            fmt_f(rt(naive.as_ref()), 2),
            fmt_f(rt(od.as_ref()), 2),
            fmt_f(rt(link.as_ref()), 2),
        ]);
    }
    t
}

/// Extension (§8 "full version"): LRU buffering. Sweeps the buffer-pool
/// size (in nodes) and reports per-level hit rates plus each algorithm's
/// maximum throughput, replacing the binary memory/disk level split with
/// Che's-approximation hit probabilities.
pub fn extension_lru(_opts: &ExpOptions) -> Table {
    use cbtree_btree_model::{lru_cost_model, LruHits};
    let shape = TreeShape::paper();
    let total_nodes: f64 = (1..=shape.height).map(|l| shape.node_count(l)).sum();
    let mut t = Table::new(
        "Extension: LRU buffer sweep (D=5): hit rates and max throughput per algorithm",
        &[
            "buffer_nodes",
            "hit_leaf",
            "hit_L3",
            "hit_L4",
            "naive_max",
            "optimistic_max",
        ],
    );
    for frac in [0.002, 0.01, 0.05, 0.15, 0.3, 0.6, 1.0] {
        let buffer = frac * total_nodes;
        let hits = LruHits::compute(&shape, buffer).expect("valid buffer");
        let cost = lru_cost_model(&shape, buffer, 5.0, 1.0).expect("valid cost");
        let cfg = ModelConfig::new(shape.clone(), OpMix::paper(), cost).expect("consistent");
        let naive = Algorithm::NaiveLockCoupling
            .model(&cfg)
            .max_throughput()
            .unwrap_or(f64::NAN);
        let od = Algorithm::OptimisticDescent
            .model(&cfg)
            .max_throughput()
            .unwrap_or(f64::NAN);
        t.push(vec![
            fmt_f(buffer, 0),
            fmt_f(hits.hit(1), 3),
            fmt_f(hits.hit(3), 3),
            fmt_f(hits.hit(4), 3),
            fmt_f(naive, 4),
            fmt_f(od, 4),
        ]);
    }
    t
}

/// Extension: key-skew sensitivity. The framework assumes uniform key
/// traffic (arrival rates divide evenly by fanout); this experiment
/// sweeps Zipf skew in the *simulator* and reports how far response
/// times and link-crossing rates drift from the uniform-traffic
/// analysis — mapping the model's domain of validity.
pub fn extension_skew(opts: &ExpOptions) -> Table {
    use cbtree_workload::KeyDist;
    let cfg = matched_cfg(5.0, 13, opts);
    let link = Algorithm::LinkType.model(&cfg);
    let naive = Algorithm::NaiveLockCoupling.model(&cfg);
    let naive_max = naive.max_throughput().expect("finite");
    let lambda_naive = 0.6 * naive_max;
    let lambda_link = 20.0 * naive_max;
    let uniform_naive = naive
        .evaluate(lambda_naive)
        .map(|p| p.response_time_insert)
        .unwrap_or(f64::INFINITY);
    let uniform_link = link
        .evaluate(lambda_link)
        .map(|p| p.response_time_insert)
        .unwrap_or(f64::INFINITY);

    let mut t = Table::new(
        "Extension: Zipf key skew vs the uniform-traffic analysis (insert RT, D=5)",
        &[
            "zipf_theta",
            "naive_sim_rt",
            "naive_analysis_uniform",
            "link_sim_rt",
            "link_analysis_uniform",
            "link_crossings_per_1000",
        ],
    );
    for theta in [0.0, 0.5, 0.8, 0.99, 1.2] {
        let mut row: Vec<String> = vec![fmt_f(theta, 2)];
        let mut c = sim_config(SimAlgorithm::NaiveLockCoupling, lambda_naive, 5.0, 13, opts);
        c.ops.keys = KeyDist::Zipf {
            n: 100_000_000,
            theta,
        };
        row.push(
            run_seeds(&c, &opts.seeds)
                .map(|s| fmt_f(s.resp_insert.mean, 2))
                .unwrap_or_else(|_| "unstable".into()),
        );
        row.push(fmt_f(uniform_naive, 2));
        let mut c = sim_config(SimAlgorithm::LinkType, lambda_link, 5.0, 13, opts);
        c.ops.keys = KeyDist::Zipf {
            n: 100_000_000,
            theta,
        };
        match run_seeds(&c, &opts.seeds) {
            Ok(s) => {
                row.push(fmt_f(s.resp_insert.mean, 2));
                row.push(fmt_f(uniform_link, 2));
                row.push(fmt_f(1000.0 * s.crossings_per_op.mean, 2));
            }
            Err(_) => {
                row.push("unstable".into());
                row.push(fmt_f(uniform_link, 2));
                row.push("-".into());
            }
        }
        t.push(row);
    }
    t
}

/// Ablation: Theorem 3's staged hyperexponential upper-level server vs a
/// plain exponential of equal mean — how much waiting the variance
/// carries, validated against the simulator.
pub fn ablation_hyperexp(opts: &ExpOptions) -> Table {
    let cfg = matched_cfg(5.0, 13, opts);
    let staged = cbtree_analysis::NaiveLockCoupling::new(cfg.clone());
    let expo = cbtree_analysis::NaiveLockCoupling::new_exponential_approx(cfg);
    let max = staged.max_throughput().expect("finite");
    let mut t = Table::new(
        "Ablation: Theorem 3 staged server vs exponential approximation (naive LC insert RT)",
        &["lambda", "staged_rt", "exponential_rt", "sim_rt"],
    );
    for frac in [0.3, 0.5, 0.7, 0.85, 0.95] {
        let lambda = frac * max;
        let rt = |m: &dyn PerformanceModel| {
            m.evaluate(lambda)
                .map(|p| p.response_time_insert)
                .unwrap_or(f64::INFINITY)
        };
        let sim = sim_point(SimAlgorithm::NaiveLockCoupling, lambda, 5.0, 13, opts)
            .map(|s| fmt_f(s.resp_insert.mean, 2))
            .unwrap_or_else(|| "-".into());
        t.push(vec![
            fmt_f(lambda, 4),
            fmt_f(rt(&staged), 2),
            fmt_f(rt(&expo), 2),
            sim,
        ]);
    }
    t
}

/// Ablation: merge-at-empty vs merge-at-half restructuring rates (the
/// §3.2 justification for analyzing merge-at-empty B-trees).
pub fn ablation_merge_policy(_opts: &ExpOptions) -> Table {
    let mix = OpMix::paper();
    let mut t = Table::new(
        "Ablation: leaf restructurings per update — merge-at-empty vs merge-at-half",
        &["N", "at_empty", "at_half", "ratio"],
    );
    for n in node_size_sweep() {
        let node = NodeParams::with_max_size(n).expect("n >= 3");
        let ae = MergePolicy::AtEmpty.leaf_restructure_rate(&node, &mix);
        let ah = MergePolicy::AtHalf.leaf_restructure_rate(&node, &mix);
        t.push(vec![
            n.to_string(),
            fmt_f(ae, 5),
            fmt_f(ah, 5),
            fmt_f(ah / ae.max(1e-12), 2),
        ]);
    }
    t
}

/// Runs one named experiment (or `all`), printing tables and writing CSVs
/// when an output directory is configured.
pub fn run_figure(name: &str, opts: &ExpOptions) -> Vec<Table> {
    let one = |f: fn(&ExpOptions) -> Table| vec![f(opts)];
    let tables: Vec<Table> = match name {
        "fig3" => one(fig3),
        "fig4" => one(fig4),
        "fig5" => one(fig5),
        "fig6" => one(fig6),
        "fig7" => one(fig7),
        "fig8" => one(fig8),
        "fig9" => one(fig9),
        "fig10" => one(fig10),
        "fig11" => one(fig11),
        "fig12" => one(fig12),
        "fig13" => one(fig13),
        "fig14" => one(fig14),
        "fig15" => one(fig15),
        "fig16" => one(fig16),
        "baseline-2pl" => one(baseline_2pl),
        "extension-lru" => one(extension_lru),
        "extension-skew" => one(extension_skew),
        "ablation-hyperexp" => one(ablation_hyperexp),
        "ablation-rot-se2" => one(ablation_rot_se2),
        "ablation-merge-policy" => one(ablation_merge_policy),
        "all" => FIGURES.iter().flat_map(|n| run_figure(n, opts)).collect(),
        other => panic!("unknown experiment `{other}`; known: {FIGURES:?} or `all`"),
    };
    if name != "all" {
        if let Some(dir) = &opts.out_dir {
            for table in &tables {
                let path = dir.join(format!("{name}.csv"));
                if let Err(e) = table.write_csv(&path) {
                    eprintln!("warning: failed to write {}: {e}", path.display());
                }
            }
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nosim() -> ExpOptions {
        ExpOptions {
            with_sim: false,
            ..ExpOptions::quick()
        }
    }

    #[test]
    fn analysis_only_figures_have_rows() {
        for name in [
            "fig11",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "ablation-rot-se2",
            "ablation-merge-policy",
        ] {
            let tables = run_figure(name, &nosim());
            assert_eq!(tables.len(), 1, "{name}");
            assert!(!tables[0].rows.is_empty(), "{name} produced no rows");
        }
    }

    #[test]
    fn fig12_shows_the_ranking() {
        let t = fig12(&nosim());
        // At moderate load (lock queues active) the ranking is
        // naive ≥ optimistic ≥ link in response time. (At *zero* load OD
        // pays its redo overhead and can sit slightly above naive — the
        // paper's "higher maximum throughput usually means lower response
        // times, but not always".)
        let row = &t.rows[5]; // frac 0.7 of OD max
        let naive: f64 = row[1].parse().unwrap_or(f64::INFINITY);
        let od: f64 = row[2].parse().unwrap();
        let link: f64 = row[3].parse().unwrap();
        assert!(naive >= od && od >= link, "{naive} {od} {link}");
        // At the top rate naive must be saturated.
        let last = &t.rows[t.rows.len() - 1];
        assert_eq!(last[1], "sat");
    }

    #[test]
    fn fig11_throughput_decreases_with_disk_cost() {
        let t = fig11(&nosim());
        let max_at = |i: usize| -> f64 { t.rows[i][1].parse().unwrap() };
        for i in 1..t.rows.len() {
            assert!(max_at(i) < max_at(i - 1), "throughput must fall as D grows");
        }
        assert!(max_at(0) > 2.0 * max_at(7), "D=1 should far outrun D=20");
    }

    #[test]
    fn fig13_naive_flat_fig14_od_grows() {
        let t13 = fig13(&nosim());
        let first: f64 = t13.rows[0][2].parse().unwrap();
        let last_d1 = &t13.rows[node_size_sweep().len() - 1];
        let last: f64 = last_d1[2].parse().unwrap();
        assert!((last / first) < 2.0, "naive effective max nearly flat in N");

        let t14 = fig14(&nosim());
        let f14: f64 = t14.rows[0][2].parse().unwrap();
        let l14: f64 = t14.rows[node_size_sweep().len() - 1][2].parse().unwrap();
        assert!(
            l14 > 3.0 * f14,
            "OD effective max grows with N: {f14} → {l14}"
        );
    }

    #[test]
    fn recovery_figures_rank_correctly() {
        for t in [fig15(&nosim()), fig16(&nosim())] {
            for row in &t.rows {
                let none: f64 = row[1].parse().unwrap_or(f64::INFINITY);
                let leaf: f64 = row[2].parse().unwrap_or(f64::INFINITY);
                if let Ok(naive) = row[3].parse::<f64>() {
                    assert!(naive >= leaf - 1e-6, "naive ≥ leaf-only in {}", t.title);
                }
                if none.is_finite() && leaf.is_finite() {
                    assert!(leaf >= none - 1e-6);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_name_panics() {
        run_figure("fig99", &nosim());
    }
}
