//! `cbtree-trace`: offline analyzer for `live --json` run artifacts.
//!
//! Reads the JSONL records a traced live run wrote (meta, live_report,
//! trace_info, and per-event records), replays the event stream into
//! per-level statistics, re-evaluates the analytical model and the
//! discrete-event simulator at the run's measured arrival rate, and
//! prints the four-pillar comparison per level:
//!
//! ```text
//! cargo run --release -p cbtree-bench --bin cbtree-trace -- results/run-blink.jsonl
//! ```
//!
//! The `anl`, `sim` and `trc` ρ_w columns all use the analysis's
//! *presence* semantics (a writer holds **or waits for** the latch); the
//! `live` column is the lock counters' hold-only measurement, which the
//! trace reproduces separately as `trc-hold`.

use cbtree_analysis::{Algorithm, ModelConfig, RecoveryMode};
use cbtree_btree::Protocol;
use cbtree_btree_model::{CostModel, NodeParams, OpMix, TreeShape};
use cbtree_obs::event::Event;
use cbtree_obs::table::{fmt_f, Table};
use cbtree_obs::{replay, Json, Replay, Trace};
use cbtree_sim::costs::SimCosts;
use cbtree_sim::{SimAlgorithm, SimConfig, SimRecovery, SimReport};
use cbtree_workload::{KeyDist, OpsConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cbtree-trace [options] FILE...

Analyzes JSONL run artifacts written by `live --json`.

  --json PATH     write the comparison as JSONL records
  --timeline N    print the first N trace events as a latch timeline
  --sim-seed N    simulator seed for the cross-check (default 1)
  -h, --help      print this help
";

struct Args {
    files: Vec<PathBuf>,
    json: Option<PathBuf>,
    timeline: usize,
    sim_seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut files = Vec::new();
    let mut json = None;
    let mut timeline = 0;
    let mut sim_seed = 1;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} requires an argument"))
        };
        match flag.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--json" => json = Some(PathBuf::from(value()?)),
            "--timeline" => timeline = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            "--sim-seed" => sim_seed = value()?.parse().map_err(|e| format!("{flag}: {e}"))?,
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        return Err("no input files".into());
    }
    Ok(Args {
        files,
        json,
        timeline,
        sim_seed,
    })
}

/// The parsed pieces of one run artifact.
struct RunArtifact {
    protocol: Protocol,
    capacity: usize,
    initial_items: u64,
    mix: (f64, f64, f64),
    keyspace: u64,
    txn: u64,
    threads: u64,
    report: Json,
    trace: Option<Trace>,
}

fn f64_field(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn u64_field(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn load(path: &Path) -> Result<RunArtifact, String> {
    let records = cbtree_obs::read_jsonl(path)?;
    let of_type = |t: &str| {
        records
            .iter()
            .find(|r| r.get("type").and_then(Json::as_str) == Some(t))
    };
    let meta = of_type("meta").ok_or("no meta record")?;
    if meta.get("kind").and_then(Json::as_str) != Some("live_run") {
        return Err("meta record is not a live_run".into());
    }
    let report = of_type("live_report")
        .ok_or("no live_report record")?
        .clone();
    let mix = meta
        .get("mix")
        .and_then(Json::as_arr)
        .filter(|m| m.len() == 3)
        .ok_or("meta mix is not a 3-array")?;
    let events: Vec<Event> = records
        .iter()
        .filter(|r| r.get("type").and_then(Json::as_str) == Some("event"))
        .map(Event::from_json)
        .collect::<Result<_, _>>()?;
    let trace = (!events.is_empty()).then(|| {
        let info = of_type("trace_info");
        Trace {
            events,
            dropped: info.map_or(0, |i| u64_field(i, "dropped")),
            threads: info.map_or(0, |i| u64_field(i, "threads") as u32),
        }
    });
    Ok(RunArtifact {
        protocol: meta
            .get("protocol")
            .and_then(Json::as_str)
            .ok_or("meta has no protocol")?
            .parse()?,
        capacity: u64_field(meta, "capacity") as usize,
        initial_items: u64_field(meta, "initial_items"),
        mix: (
            mix[0].as_f64().unwrap_or(f64::NAN),
            mix[1].as_f64().unwrap_or(f64::NAN),
            mix[2].as_f64().unwrap_or(f64::NAN),
        ),
        keyspace: u64_field(meta, "keyspace").max(1),
        txn: u64_field(meta, "txn").max(1),
        threads: u64_field(meta, "threads"),
        report,
        trace,
    })
}

/// Maps a live protocol onto its analytical and simulated counterparts.
fn pillars(p: Protocol) -> (Algorithm, RecoveryMode, SimAlgorithm) {
    match p {
        Protocol::LockCoupling => (
            Algorithm::NaiveLockCoupling,
            RecoveryMode::None,
            SimAlgorithm::NaiveLockCoupling,
        ),
        Protocol::OptimisticDescent => (
            Algorithm::OptimisticDescent,
            RecoveryMode::None,
            SimAlgorithm::OptimisticDescent,
        ),
        Protocol::BLink => (
            Algorithm::LinkType,
            RecoveryMode::None,
            SimAlgorithm::LinkType,
        ),
        Protocol::TwoPhase => (
            Algorithm::TwoPhaseLocking,
            RecoveryMode::None,
            SimAlgorithm::TwoPhaseLocking,
        ),
        Protocol::Olc => (Algorithm::Olc, RecoveryMode::None, SimAlgorithm::Olc),
        Protocol::RecoveryNaive => (
            Algorithm::NaiveLockCoupling,
            RecoveryMode::Naive,
            SimAlgorithm::NaiveLockCoupling,
        ),
        Protocol::RecoveryLeaf => (
            Algorithm::NaiveLockCoupling,
            RecoveryMode::LeafOnly,
            SimAlgorithm::NaiveLockCoupling,
        ),
    }
}

/// Everything the comparison derives from one artifact.
struct Comparison {
    lambda: f64,
    unit_secs: f64,
    /// Per-level ρ_w, leaves first: (analysis, sim, live counters, trace
    /// presence, trace hold). NaN where a pillar has no value.
    rho_rows: Vec<(f64, f64, f64, f64, f64)>,
    /// Per-level exclusive waits in ns, same pillar order minus the hold
    /// column.
    wait_rows: Vec<(f64, f64, f64, f64)>,
    replayed: Option<Replay>,
    sim: Option<SimReport>,
}

fn compare(run: &RunArtifact, sim_seed: u64) -> Result<Comparison, String> {
    let err = |e: &dyn std::fmt::Display| e.to_string();
    let (alg, recovery, sim_alg) = pillars(run.protocol);
    let mix = OpMix::new(run.mix.0, run.mix.1, run.mix.2).map_err(|e| err(&e))?;
    let node = NodeParams::with_max_size(run.capacity).map_err(|e| err(&e))?;
    let shape = TreeShape::derive(run.initial_items.max(1), node).map_err(|e| err(&e))?;
    let height = shape.height;
    // The live trees are all in memory: every level memory-resident.
    let cost = CostModel::paper_style(height, height, 5.0, 1.0).map_err(|e| err(&e))?;
    let base_cfg = ModelConfig::new(shape, mix, cost).map_err(|e| err(&e))?;

    // Calibration: one model cost unit in wall-clock seconds, fixed by
    // this run's own mean search response time against the zero-load
    // link-type path. Contention inflates the numerator, so under load
    // this over-estimates the unit — good enough to place the measured
    // throughput on the model's λ axis, rougher than `analyze --live`'s
    // dedicated single-threaded calibration run.
    let zero = Algorithm::LinkType
        .model(&base_cfg)
        .evaluate(1e-9)
        .map_err(|e| err(&e))?;
    let resp_search = run
        .report
        .get("resp_search")
        .map(|s| f64_field(s, "mean"))
        .unwrap_or(f64::NAN);
    if !resp_search.is_finite() || resp_search <= 0.0 {
        return Err("live_report has no usable resp_search.mean".into());
    }
    let unit_secs = resp_search / zero.response_time_search;
    let throughput = f64_field(&run.report, "throughput");
    let lambda = throughput * unit_secs;
    let t_trans = run.txn as f64 * zero.response_time_insert;
    let cfg = base_cfg.with_recovery(recovery, t_trans);

    let perf = alg.model(&cfg).evaluate(lambda).ok();

    let mut sc = SimConfig::paper(sim_alg, lambda, sim_seed);
    sc.node_capacity = run.capacity;
    sc.initial_items = (run.initial_items as usize).min(200_000);
    sc.ops = OpsConfig {
        q_search: run.mix.0,
        q_insert: run.mix.1,
        q_delete: run.mix.2,
        keys: KeyDist::Uniform {
            lo: 0,
            hi: run.keyspace,
        },
    };
    sc.costs = SimCosts {
        base: 1.0,
        disk_cost: 5.0,
        memory_levels: height,
    };
    sc.recovery = match recovery {
        RecoveryMode::None => SimRecovery::None,
        RecoveryMode::Naive => SimRecovery::Naive { t_trans },
        RecoveryMode::LeafOnly => SimRecovery::LeafOnly { t_trans },
    };
    sc = sc.with_min_window(100.0, 300.0);
    let sim = cbtree_sim::run(&sc).ok();

    let replayed = run.trace.as_ref().map(replay);
    let live_levels = run.report.get("levels").and_then(Json::as_arr);
    let live_waits = run.report.get("wait_w_by_level").and_then(Json::as_arr);

    let levels = height
        .max(live_levels.map_or(0, <[Json]>::len))
        .max(sim.as_ref().map_or(0, |s| s.rho_w_by_level.len()));
    let unit_ns = unit_secs * 1e9;
    let mut rho_rows = Vec::with_capacity(levels);
    let mut wait_rows = Vec::with_capacity(levels);
    for i in 0..levels {
        let lvl = (i + 1) as u16;
        let anl = perf
            .as_ref()
            .and_then(|p| p.levels.get(i))
            .map_or(f64::NAN, |l| l.rho_w);
        let sim_rho = sim
            .as_ref()
            .and_then(|s| s.rho_w_by_level.get(i).copied())
            .unwrap_or(f64::NAN);
        let live = live_levels
            .and_then(|ls| ls.get(i))
            .map_or(f64::NAN, |l| f64_field(l, "rho_w"));
        let trc = replayed.as_ref().and_then(|r| r.rho_w(lvl));
        let trc_hold = replayed
            .as_ref()
            .and_then(|r| r.levels.iter().find(|l| l.level == lvl))
            .map(|l| l.rho_w_hold);
        rho_rows.push((
            anl,
            sim_rho,
            live,
            trc.unwrap_or(f64::NAN),
            trc_hold.unwrap_or(f64::NAN),
        ));

        let anl_w = perf
            .as_ref()
            .and_then(|p| p.levels.get(i))
            .map_or(f64::NAN, |l| l.w_wait * unit_ns);
        let sim_w = sim
            .as_ref()
            .and_then(|s| s.wait_w_by_level.get(i).copied())
            .map_or(f64::NAN, |w| w * unit_ns);
        let live_w = live_waits
            .and_then(|ws| ws.get(i))
            .and_then(Json::as_f64)
            .map_or(f64::NAN, |w| w * 1e9);
        let trc_w = replayed
            .as_ref()
            .and_then(|r| r.levels.iter().find(|l| l.level == lvl))
            .map_or(f64::NAN, |l| l.mean_w_wait_ns);
        wait_rows.push((anl_w, sim_w, live_w, trc_w));
    }

    Ok(Comparison {
        lambda,
        unit_secs,
        rho_rows,
        wait_rows,
        replayed,
        sim,
    })
}

/// Like [`fmt_f`] but renders absent measurements as `-` ("sat" is
/// reserved for the saturated analytical/simulated columns).
fn cell(x: f64, prec: usize) -> String {
    if x.is_finite() {
        fmt_f(x, prec)
    } else {
        "-".into()
    }
}

fn rates_json(label: &str, live: f64, trace: Option<f64>) -> Json {
    Json::obj(vec![
        ("metric", label.into()),
        ("live", Json::f64_or_null(live)),
        ("trace", trace.map_or(Json::Null, Json::f64_or_null)),
    ])
}

fn print_timeline(trace: &Trace, n: usize) {
    let mut t = Table::new(
        "latch timeline (first events of the measured window)",
        &["ts(us)", "thread", "event", "arg", "level", "node"],
    );
    for e in trace.events.iter().take(n) {
        t.push(vec![
            fmt_f(e.ts_ns as f64 / 1e3, 3),
            e.thread.to_string(),
            e.kind.name().to_string(),
            e.arg.to_string(),
            e.level.to_string(),
            format!("{:#x}", e.node),
        ]);
    }
    t.print();
}

fn analyze_file(path: &Path, args: &Args, records: &mut Vec<Json>) -> Result<(), String> {
    let run = load(path)?;
    let cmp = compare(&run, args.sim_seed)?;

    println!(
        "{}: {} | {} threads | capacity {} | {} initial items | txn {}",
        path.display(),
        run.protocol.name(),
        run.threads,
        run.capacity,
        run.initial_items,
        run.txn,
    );
    println!(
        "calibration: 1 cost unit = {:.0} ns (from this run's searches) | λ = {:.4} ops/unit",
        cmp.unit_secs * 1e9,
        cmp.lambda
    );
    match &cmp.replayed {
        Some(r) => println!(
            "trace: {:.1} ms window, {} unmatched, {} dropped",
            r.window_ns() as f64 / 1e6,
            r.unmatched,
            r.dropped
        ),
        None => println!("trace: no event records (run without --features trace?)"),
    }

    let mut t = Table::new(
        "per-level writer utilization rho_w (level 1 = leaves)",
        &["level", "anl", "sim", "live", "trc", "trc-hold"],
    );
    for (i, &(anl, sim, live, trc, trc_hold)) in cmp.rho_rows.iter().enumerate().rev() {
        t.push(vec![
            (i + 1).to_string(),
            fmt_f(anl, 4),
            fmt_f(sim, 4),
            cell(live, 4),
            cell(trc, 4),
            cell(trc_hold, 4),
        ]);
    }
    t.print();
    println!("(anl/sim/trc count queued writers as present; live and trc-hold are hold-only)");

    let mut t = Table::new(
        "per-level mean exclusive wait (ns)",
        &["level", "anl", "sim", "live", "trc"],
    );
    for (i, &(anl, sim, live, trc)) in cmp.wait_rows.iter().enumerate().rev() {
        t.push(vec![
            (i + 1).to_string(),
            fmt_f(anl, 0),
            fmt_f(sim, 0),
            cell(live, 0),
            cell(trc, 0),
        ]);
    }
    t.print();

    let counters = run.report.get("counters").cloned().unwrap_or(Json::Null);
    let ops = u64_field(&counters, "ops").max(1) as f64;
    let rate = |key: &str| u64_field(&counters, key) as f64 / ops;
    let trc_rate = |f: fn(&Replay) -> u64| {
        cmp.replayed.as_ref().map(|r| {
            let completed: u64 = r.ops.iter().map(|o| o.completed).sum();
            f(r) as f64 / completed.max(1) as f64
        })
    };
    let rate_rows = [
        ("restart rate", rate("restarts"), trc_rate(|r| r.restarts)),
        ("chase rate", rate("chases"), trc_rate(|r| r.chases)),
        (
            "peak latch chain",
            u64_field(&counters, "peak_chain") as f64,
            cmp.replayed.as_ref().map(|r| r.peak_latch_chain as f64),
        ),
        (
            "txn commits",
            u64_field(&counters, "txn_commits") as f64,
            cmp.replayed.as_ref().map(|r| r.txn_commits as f64),
        ),
        (
            "txn spills",
            u64_field(&counters, "txn_spills") as f64,
            cmp.replayed.as_ref().map(|r| r.txn_spills as f64),
        ),
    ];
    let mut t = Table::new(
        "engine events: counters vs trace",
        &["metric", "live", "trc"],
    );
    for &(label, live, trc) in &rate_rows {
        t.push(vec![
            label.to_string(),
            fmt_f(live, 4),
            trc.map_or_else(|| "-".into(), |v| fmt_f(v, 4)),
        ]);
    }
    t.print();

    if let Some(r) = cmp.replayed.as_ref().filter(|r| !r.batches.is_empty()) {
        let mut t = Table::new(
            "per-shard batched execution (from trace)",
            &[
                "shard",
                "batches",
                "ops",
                "mean-size",
                "max",
                "reuse%",
                "mean-us",
            ],
        );
        for b in &r.batches {
            t.push(vec![
                b.shard.to_string(),
                b.batches.to_string(),
                b.ops.to_string(),
                fmt_f(b.mean_size(), 2),
                b.max_size.to_string(),
                fmt_f(b.reuse_rate() * 100.0, 1),
                fmt_f(b.mean_ns / 1e3, 1),
            ]);
        }
        t.print();
    }

    if let (Some(trace), true) = (&run.trace, args.timeline > 0) {
        print_timeline(trace, args.timeline);
    }
    println!();

    records.push(Json::obj(vec![
        ("type", "trace_compare".into()),
        ("file", path.display().to_string().into()),
        ("protocol", run.protocol.name().into()),
        ("lambda", Json::f64_or_null(cmp.lambda)),
        ("unit_secs", Json::f64_or_null(cmp.unit_secs)),
        (
            "levels",
            Json::arr(cmp.rho_rows.iter().enumerate().map(|(i, r)| {
                Json::obj(vec![
                    ("level", (i + 1).into()),
                    ("anl_rho_w", Json::f64_or_null(r.0)),
                    ("sim_rho_w", Json::f64_or_null(r.1)),
                    ("live_rho_w", Json::f64_or_null(r.2)),
                    ("trace_rho_w", Json::f64_or_null(r.3)),
                    ("trace_rho_w_hold", Json::f64_or_null(r.4)),
                ])
            })),
        ),
        (
            "rates",
            Json::arr(
                rate_rows
                    .iter()
                    .map(|&(label, live, trc)| rates_json(label, live, trc)),
            ),
        ),
        (
            "trace_summary",
            cmp.replayed.as_ref().map_or(Json::Null, Replay::to_json),
        ),
        (
            "sim_report",
            cmp.sim.as_ref().map_or(Json::Null, SimReport::to_json),
        ),
    ]));
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut records = vec![Json::obj(vec![
        ("type", "meta".into()),
        ("schema", cbtree_obs::SCHEMA_VERSION.into()),
        ("kind", "trace_compare".into()),
    ])];
    let mut failed = false;
    for path in &args.files {
        if let Err(e) = analyze_file(path, &args, &mut records) {
            eprintln!("error: {}: {e}", path.display());
            failed = true;
        }
    }
    if let Some(path) = &args.json {
        if let Err(e) = cbtree_obs::write_jsonl(path, &records) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
